"""Binary support vector classifier over the from-scratch SMO solver.

Wraps :func:`repro.svm.smo.solve_binary_svm` in an estimator with the
prediction-side exports KARL consumes: the support-vector expansion
``(P, w, tau=rho)`` is a Type III kernel aggregation query.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import NotFittedError, as_matrix
from repro.core.kernels import GaussianKernel, Kernel
from repro.svm.smo import solve_binary_svm

__all__ = ["SVC"]


class SVC:
    """Binary C-SVM classifier.

    Parameters
    ----------
    C : float
        Box constraint.
    kernel : Kernel, optional
        Defaults to a Gaussian kernel with LibSVM's default ``gamma = 1/d``
        at fit time.
    """

    def __init__(self, C: float = 1.0, kernel: Kernel | None = None,
                 tol: float = 1e-3, max_iter: int = 100_000,
                 shrinking: bool = False):
        self.C = float(C)
        self.kernel = kernel
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self.shrinking = bool(shrinking)
        self.support_vectors_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None  # a_i * y_i (signed)
        self.rho_: float | None = None
        self.n_iter_: int | None = None
        self.converged_: bool | None = None

    def fit(self, X, y) -> "SVC":
        """Train on points ``X`` with labels ``y`` in {-1, +1}."""
        X = as_matrix(X, name="X")
        if self.kernel is None:
            self.kernel = GaussianKernel(gamma=1.0 / X.shape[1])
        y = np.asarray(y, dtype=np.float64).ravel()
        sol = solve_binary_svm(
            X, y, self.kernel, C=self.C, tol=self.tol,
            max_iter=self.max_iter, shrinking=self.shrinking,
        )
        mask = sol.support_mask()
        self.support_vectors_ = X[mask]
        self.dual_coef_ = sol.alpha[mask] * y[mask]
        self.rho_ = sol.rho
        self.n_iter_ = sol.iterations
        self.converged_ = sol.converged
        self.platt_a_ = None
        self.platt_b_ = None
        # kept for optional self-calibration (calibrate() without args)
        self._train_X = X
        self._train_y = y
        return self

    def _require_fit(self):
        if self.support_vectors_ is None:
            raise NotFittedError("SVC used before fit")

    def decision_function(self, queries) -> np.ndarray:
        """``f(q) = sum_i a_i y_i K(x_i, q) - rho`` for each query row."""
        self._require_fit()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return np.array(
            [
                float(self.dual_coef_ @ self.kernel.pairwise(q, self.support_vectors_))
                - self.rho_
                for q in queries
            ]
        )

    def predict(self, queries) -> np.ndarray:
        """Class labels in {-1, +1}."""
        return np.where(self.decision_function(queries) >= 0.0, 1, -1)

    def score(self, X, y) -> float:
        """Mean accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))

    def calibrate(self, X=None, y=None) -> "SVC":
        """Fit Platt-scaling parameters for :meth:`predict_proba`.

        Uses held-out ``(X, y)`` when given (recommended); otherwise
        calibrates on the training decision values as stored in the model
        — slightly optimistic, like LibSVM without cross-validation.
        """
        from repro.svm.platt import fit_sigmoid

        self._require_fit()
        if X is None:
            X, y = self._train_X, self._train_y
        f = self.decision_function(X)
        self.platt_a_, self.platt_b_ = fit_sigmoid(f, np.asarray(y).ravel())
        return self

    def predict_proba(self, queries) -> np.ndarray:
        """``(n, 2)`` class probabilities ``[P(-1), P(+1)]`` (needs
        :meth:`calibrate`)."""
        from repro.svm.platt import sigmoid_probability

        if getattr(self, "platt_a_", None) is None:
            raise NotFittedError("call calibrate() before predict_proba()")
        p_pos = sigmoid_probability(
            self.decision_function(queries), self.platt_a_, self.platt_b_
        )
        return np.stack([1.0 - p_pos, p_pos], axis=1)

    @property
    def n_support_(self) -> int:
        self._require_fit()
        return self.support_vectors_.shape[0]

    def to_kaq(self) -> tuple[np.ndarray, np.ndarray, float]:
        """Export ``(points, weights, tau)`` for the KAQ engine (Type III)."""
        self._require_fit()
        return self.support_vectors_, self.dual_coef_.copy(), float(self.rho_)
