"""From-scratch SVM substrate (replaces LibSVM's training phase).

Binary C-SVM and one-class nu-SVM trained by SMO; their support-vector
expansions are exactly the Type II/III kernel aggregation queries KARL
accelerates at prediction time.
"""

from repro.svm.multiclass import AcceleratedOneVsOne, OneVsOneSVC
from repro.svm.one_class import OneClassSVM, solve_one_class
from repro.svm.platt import fit_sigmoid, sigmoid_probability
from repro.svm.scaling import MinMaxScaler
from repro.svm.smo import SMOResult, solve_binary_svm
from repro.svm.svc import SVC
from repro.svm.validate import select_one_class_nu, select_svc_params

__all__ = [
    "SVC",
    "OneClassSVM",
    "OneVsOneSVC",
    "AcceleratedOneVsOne",
    "MinMaxScaler",
    "SMOResult",
    "solve_binary_svm",
    "solve_one_class",
    "fit_sigmoid",
    "sigmoid_probability",
    "select_one_class_nu",
    "select_svc_params",
]
