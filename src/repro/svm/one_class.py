"""One-class nu-SVM (Schoelkopf et al. [33]) trained by SMO.

The paper's Type II models come from LibSVM's 1-class SVM; this is the same
dual, solved from scratch:

    min_a   0.5 * a' K a
    s.t.    0 <= a_i <= 1/(nu * n),    sum_i a_i = 1

The resulting decision function ``f(q) = sum_i a_i K(x_i, q) - rho`` has
*positive* weights — exactly Type II weighting — and the TKAQ threshold is
``tau = rho`` (paper Table III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InvalidParameterError, NotFittedError, as_matrix
from repro.core.kernels import GaussianKernel, Kernel

__all__ = ["OneClassSVM", "solve_one_class"]

_TAU = 1e-12


@dataclass
class _OneClassSolution:
    alpha: np.ndarray
    rho: float
    iterations: int
    converged: bool


def solve_one_class(
    X, kernel: Kernel, nu: float = 0.1, tol: float = 1e-4, max_iter: int = 100_000
) -> _OneClassSolution:
    """Solve the one-class dual by maximal-violating-pair SMO.

    Initialisation follows LibSVM: the first ``floor(nu*n)`` points start at
    the upper bound, one fractional point makes the sum exactly 1.
    """
    X = as_matrix(X, name="X")
    n = X.shape[0]
    if not 0.0 < nu <= 1.0:
        raise InvalidParameterError(f"nu must be in (0, 1]; got {nu}")
    upper = 1.0 / (nu * n)

    alpha = np.zeros(n)
    n_at_bound = int(nu * n)
    alpha[:n_at_bound] = upper
    if n_at_bound < n:
        alpha[n_at_bound] = 1.0 - n_at_bound * upper

    K = kernel.matrix(X) if n <= 3000 else None

    def row(i: int) -> np.ndarray:
        if K is not None:
            return K[i]
        return kernel.pairwise(X[i], X)

    diag = (
        np.diagonal(K).copy()
        if K is not None
        else np.array([kernel(X[i], X[i]) for i in range(n)])
    )

    # gradient of 0.5 a'Ka is (K a)_i
    if K is not None:
        grad = K @ alpha
    else:
        nz = np.flatnonzero(alpha)
        grad = np.zeros(n)
        for i in nz:
            grad += alpha[i] * row(i)

    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        can_grow = alpha < upper - _TAU
        can_shrink = alpha > _TAU
        g_grow = np.where(can_grow, grad, np.inf)
        g_shrink = np.where(can_shrink, grad, -np.inf)
        i = int(np.argmin(g_grow))  # steepest descent direction +e_i
        j = int(np.argmax(g_shrink))  # paired with -e_j
        if g_shrink[j] - g_grow[i] < tol:
            converged = True
            break

        Ki = row(i)
        Kj = row(j)
        eta = diag[i] + diag[j] - 2.0 * Ki[j]
        if eta < _TAU:
            eta = _TAU
        delta = (grad[j] - grad[i]) / eta
        delta = min(delta, upper - alpha[i], alpha[j])
        if delta <= _TAU:
            converged = True
            break
        alpha[i] += delta
        alpha[j] -= delta
        grad += delta * (Ki - Kj)

    # rho from free vectors, else the bound-interval midpoint
    free = (alpha > _TAU) & (alpha < upper - _TAU)
    if free.any():
        rho = float(grad[free].mean())
    else:
        hi = grad[alpha <= _TAU].min() if (alpha <= _TAU).any() else np.inf
        lo = grad[alpha >= upper - _TAU].max() if (alpha >= upper - _TAU).any() else -np.inf
        if not np.isfinite(hi):
            rho = float(lo)
        elif not np.isfinite(lo):
            rho = float(hi)
        else:
            rho = float(0.5 * (hi + lo))
    return _OneClassSolution(alpha=alpha, rho=rho, iterations=it, converged=converged)


class OneClassSVM:
    """One-class SVM estimator with Type II KAQ export.

    Parameters
    ----------
    nu : float
        Upper bound on the training outlier fraction / lower bound on the
        support-vector fraction.
    kernel : Kernel, optional
        Defaults to a Gaussian kernel with LibSVM's default
        ``gamma = 1/d`` at fit time.
    """

    def __init__(self, nu: float = 0.1, kernel: Kernel | None = None,
                 tol: float = 1e-4, max_iter: int = 100_000):
        self.nu = float(nu)
        self.kernel = kernel
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self.support_vectors_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self.rho_: float | None = None
        self.n_iter_: int | None = None

    def fit(self, X) -> "OneClassSVM":
        """Train on (unlabelled) points ``X``."""
        X = as_matrix(X, name="X")
        if self.kernel is None:
            self.kernel = GaussianKernel(gamma=1.0 / X.shape[1])
        sol = solve_one_class(
            X, self.kernel, nu=self.nu, tol=self.tol, max_iter=self.max_iter
        )
        mask = sol.alpha > 1e-12
        self.support_vectors_ = X[mask]
        self.dual_coef_ = sol.alpha[mask]
        self.rho_ = sol.rho
        self.n_iter_ = sol.iterations
        return self

    def _require_fit(self):
        if self.support_vectors_ is None:
            raise NotFittedError("OneClassSVM used before fit")

    def decision_function(self, queries) -> np.ndarray:
        """``f(q) = sum_i a_i K(x_i, q) - rho`` for each query row."""
        self._require_fit()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return np.array(
            [
                float(self.dual_coef_ @ self.kernel.pairwise(q, self.support_vectors_))
                - self.rho_
                for q in queries
            ]
        )

    def predict(self, queries) -> np.ndarray:
        """+1 for inliers (``f >= 0``), -1 for outliers."""
        return np.where(self.decision_function(queries) >= 0.0, 1, -1)

    def to_kaq(self) -> tuple[np.ndarray, np.ndarray, float]:
        """Export ``(points, weights, tau)`` for the KAQ engine (Type II)."""
        self._require_fit()
        return self.support_vectors_, self.dual_coef_.copy(), float(self.rho_)
