"""Small model-selection helpers (the paper's "automatic script" stand-in).

For Type II datasets the paper sweeps the 1-class ``nu`` in [0.01, 0.3] and
keeps the most accurate model; Type III uses LibSVM's grid search over
``(C, gamma)``.  These helpers reproduce that selection loop on validation
accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.kernels import GaussianKernel, Kernel
from repro.svm.one_class import OneClassSVM
from repro.svm.svc import SVC

__all__ = ["select_one_class_nu", "select_svc_params"]


def select_one_class_nu(
    train,
    inliers,
    outliers,
    kernel: Kernel | None = None,
    nus=(0.01, 0.05, 0.1, 0.2, 0.3),
):
    """Pick ``nu`` maximising balanced accuracy on held-out in/outliers.

    Returns the fitted best :class:`OneClassSVM` and its score.
    """
    if len(nus) == 0:
        raise InvalidParameterError("nus must be non-empty")
    best_model, best_score = None, -1.0
    for nu in nus:
        model = OneClassSVM(nu=nu, kernel=kernel).fit(train)
        tpr = float(np.mean(model.predict(inliers) == 1))
        tnr = float(np.mean(model.predict(outliers) == -1))
        score = 0.5 * (tpr + tnr)
        if score > best_score:
            best_model, best_score = model, score
    return best_model, best_score


def select_svc_params(
    X_train,
    y_train,
    X_val,
    y_val,
    Cs=(0.3, 1.0, 3.0, 10.0),
    gammas=None,
    kernel_factory=None,
):
    """Grid search ``(C, gamma)`` for a Gaussian SVC on validation accuracy.

    ``kernel_factory(gamma)`` may replace the default Gaussian factory to
    search other kernel families (e.g. polynomial degree fixed, gamma
    swept).  Returns ``(best fitted SVC, best accuracy)``.
    """
    d = np.asarray(X_train).shape[1]
    if gammas is None:
        gammas = (0.5 / d, 1.0 / d, 2.0 / d)
    if kernel_factory is None:
        kernel_factory = GaussianKernel
    best_model, best_score = None, -1.0
    for gamma in gammas:
        for C in Cs:
            model = SVC(C=C, kernel=kernel_factory(gamma)).fit(X_train, y_train)
            score = model.score(X_val, y_val)
            if score > best_score:
                best_model, best_score = model, score
    return best_model, best_score
