"""Platt scaling: probability calibration for SVM decision values.

LibSVM's ``-b 1`` option fits a sigmoid ``P(y=+1 | f) = 1/(1+exp(A f + B))``
to the decision values.  This is the Lin-Lin-Weng (2007) implementation —
a damped Newton iteration on the regularised log-likelihood, numerically
robust at extreme decision values.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import DataShapeError, InvalidParameterError

__all__ = ["fit_sigmoid", "sigmoid_probability"]


def fit_sigmoid(decision, labels, max_iter: int = 100,
                min_step: float = 1e-10, tol: float = 1e-12):
    """Fit ``(A, B)`` of ``P(+1|f) = 1/(1+exp(A f + B))`` by damped Newton.

    ``decision`` are decision values ``f(x_i)``; ``labels`` are +-1.
    Targets are the smoothed frequencies of Platt (1999).
    """
    f = np.asarray(decision, dtype=np.float64).ravel()
    y = np.asarray(labels, dtype=np.float64).ravel()
    if f.shape != y.shape:
        raise DataShapeError(
            f"decision and labels must match; got {f.shape} vs {y.shape}"
        )
    if not np.all(np.isin(y, (-1.0, 1.0))):
        raise InvalidParameterError("labels must be +-1")
    n_pos = float((y > 0).sum())
    n_neg = float((y < 0).sum())
    if n_pos == 0 or n_neg == 0:
        raise InvalidParameterError("need both classes to calibrate")

    hi_target = (n_pos + 1.0) / (n_pos + 2.0)
    lo_target = 1.0 / (n_neg + 2.0)
    t = np.where(y > 0, hi_target, lo_target)

    a, b = 0.0, math.log((n_neg + 1.0) / (n_pos + 1.0))

    def objective(a_, b_):
        z = a_ * f + b_
        # stable log(1 + exp(z)) handling both signs
        pos_z = z > 0
        val = np.empty_like(z)
        val[pos_z] = t[pos_z] * z[pos_z] + np.log1p(np.exp(-z[pos_z]))
        val[~pos_z] = (t[~pos_z] - 1.0) * z[~pos_z] + np.log1p(np.exp(z[~pos_z]))
        return float(val.sum())

    fval = objective(a, b)
    for _ in range(max_iter):
        # p = sigmoid(-z) = P(+1); q = 1 - p, computed stably
        p = sigmoid_probability(f, a, b)
        q = 1.0 - p
        d1 = t - p  # gradient of the NLL w.r.t. z is (t - p)
        g1 = float((f * d1).sum())
        g2 = float(d1.sum())
        if abs(g1) < tol and abs(g2) < tol:
            break
        d2 = p * q
        h11 = float((f * f * d2).sum()) + 1e-12
        h22 = float(d2.sum()) + 1e-12
        h21 = float((f * d2).sum())
        det = h11 * h22 - h21 * h21
        da = -(h22 * g1 - h21 * g2) / det
        db = -(-h21 * g1 + h11 * g2) / det
        gd = g1 * da + g2 * db

        step = 1.0
        while step >= min_step:
            new_a, new_b = a + step * da, b + step * db
            new_f = objective(new_a, new_b)
            if new_f < fval + 1e-4 * step * gd:
                a, b, fval = new_a, new_b, new_f
                break
            step *= 0.5
        else:
            break  # line search failed: converged to numerical precision
    return a, b


def sigmoid_probability(decision, a: float, b: float) -> np.ndarray:
    """``P(+1 | f)`` under fitted ``(A, B)`` (numerically stable)."""
    z = a * np.asarray(decision, dtype=np.float64) + b
    out = np.empty_like(z)
    pos = z >= 0
    e = np.exp(-z[pos])
    out[pos] = e / (1.0 + e)
    out[~pos] = 1.0 / (1.0 + np.exp(z[~pos]))
    return out
