"""Feature scaling, as LibSVM's ``svm-scale`` does before training.

The paper normalises Type II/III datasets to ``[0, 1]^d`` for the Gaussian
kernel (Section V-C) and to ``[-1, 1]^d`` for the polynomial kernel
(Section V-F) — it explicitly credits this normalisation for the tightness
of the bounds on support-vector data.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError, NotFittedError, as_matrix

__all__ = ["MinMaxScaler"]


class MinMaxScaler:
    """Affine scaling of each feature to ``[lo, hi]``.

    Constant features map to the midpoint of the target range.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        lo, hi = feature_range
        if not lo < hi:
            raise InvalidParameterError(
                f"feature_range must satisfy lo < hi; got {feature_range}"
            )
        self.feature_range = (float(lo), float(hi))
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def fit(self, points) -> "MinMaxScaler":
        """Record per-feature min/max."""
        points = as_matrix(points)
        self.data_min_ = points.min(axis=0)
        self.data_max_ = points.max(axis=0)
        return self

    def transform(self, points) -> np.ndarray:
        """Scale ``points`` using the fitted ranges (clipping not applied)."""
        if self.data_min_ is None:
            raise NotFittedError("MinMaxScaler used before fit")
        points = as_matrix(points)
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        safe = np.where(span > 0.0, span, 1.0)
        unit = (points - self.data_min_) / safe
        out = lo + unit * (hi - lo)
        # constant features -> midpoint
        const = span <= 0.0
        if const.any():
            out[:, const] = 0.5 * (lo + hi)
        return out

    def fit_transform(self, points) -> np.ndarray:
        """Fit and scale in one call."""
        return self.fit(points).transform(points)

    def inverse_transform(self, scaled) -> np.ndarray:
        """Undo the scaling (constant features return their original min)."""
        if self.data_min_ is None:
            raise NotFittedError("MinMaxScaler used before fit")
        scaled = as_matrix(scaled, name="scaled")
        lo, hi = self.feature_range
        unit = (scaled - lo) / (hi - lo)
        return self.data_min_ + unit * (self.data_max_ - self.data_min_)
