"""One-vs-one multi-class SVM (the paper's "future work" extension).

The paper's conclusion names multi-class kernel SVM as a promising
direction; the standard construction (used by LibSVM) trains a binary SVC
per class pair and predicts by majority vote.  Every pairwise decision
function is itself a Type III kernel aggregation query, so KARL
accelerates multi-class prediction for free.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.errors import InvalidParameterError, NotFittedError, as_matrix
from repro.core.kernels import Kernel
from repro.svm.svc import SVC

__all__ = ["OneVsOneSVC", "AcceleratedOneVsOne"]


class OneVsOneSVC:
    """Multi-class classifier from one-vs-one binary SVCs.

    Parameters are forwarded to each underlying :class:`~repro.svm.svc.SVC`.
    """

    def __init__(self, C: float = 1.0, kernel: Kernel | None = None,
                 tol: float = 1e-3, max_iter: int = 100_000):
        self.C = C
        self.kernel = kernel
        self.tol = tol
        self.max_iter = max_iter
        self.classes_: np.ndarray | None = None
        self.estimators_: dict[tuple, SVC] | None = None

    def fit(self, X, y) -> "OneVsOneSVC":
        """Train a binary SVC for every pair of classes in ``y``."""
        X = as_matrix(X, name="X")
        y = np.asarray(y).ravel()
        self.classes_ = np.unique(y)
        if self.classes_.shape[0] < 2:
            raise InvalidParameterError("need at least two classes")
        self.estimators_ = {}
        for a, b in combinations(self.classes_, 2):
            mask = (y == a) | (y == b)
            labels = np.where(y[mask] == a, 1.0, -1.0)
            clf = SVC(C=self.C, kernel=self.kernel, tol=self.tol,
                      max_iter=self.max_iter)
            clf.fit(X[mask], labels)
            self.estimators_[(a, b)] = clf
        return self

    def predict(self, queries) -> np.ndarray:
        """Majority vote over all pairwise classifiers."""
        if self.estimators_ is None:
            raise NotFittedError("OneVsOneSVC used before fit")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        class_index = {c: k for k, c in enumerate(self.classes_)}
        votes = np.zeros((queries.shape[0], self.classes_.shape[0]), dtype=np.int64)
        for (a, b), clf in self.estimators_.items():
            preds = clf.predict(queries)
            votes[preds == 1, class_index[a]] += 1
            votes[preds == -1, class_index[b]] += 1
        return self.classes_[np.argmax(votes, axis=1)]

    def accelerate(self, index: str = "kd", leaf_capacity: int = 20,
                   scheme: str = "karl") -> "AcceleratedOneVsOne":
        """Wrap every pairwise decision function in a KARL evaluator.

        Each pairwise vote is a Type III TKAQ at ``tau = rho``, so
        multi-class prediction inherits KARL's pruning — the paper's
        "multi-class kernel SVM" future-work direction.
        """
        if self.estimators_ is None:
            raise NotFittedError("OneVsOneSVC used before fit")
        return AcceleratedOneVsOne(self, index, leaf_capacity, scheme)

    def score(self, X, y) -> float:
        """Mean accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))


class AcceleratedOneVsOne:
    """KARL-backed predictor for a fitted :class:`OneVsOneSVC`.

    Builds one signed-weight index per pairwise model; ``predict`` answers
    every vote with a pruned threshold query instead of a support-vector
    scan.  Predictions agree with the exact predictor by construction
    (TKAQ answers are exact).
    """

    def __init__(self, model: OneVsOneSVC, index: str, leaf_capacity: int,
                 scheme: str):
        from repro.core.aggregator import KernelAggregator
        from repro.index.builder import build_index

        self.classes_ = model.classes_
        self._voters = []
        for (a, b), clf in model.estimators_.items():
            sv, w, tau = clf.to_kaq()
            tree = build_index(index, sv, weights=w, leaf_capacity=leaf_capacity)
            agg = KernelAggregator(tree, clf.kernel, scheme=scheme)
            self._voters.append((a, b, agg, tau))

    def predict_one(self, q) -> object:
        """Class of a single query by pruned pairwise votes."""
        class_index = {c: k for k, c in enumerate(self.classes_)}
        votes = np.zeros(self.classes_.shape[0], dtype=np.int64)
        for a, b, agg, tau in self._voters:
            if agg.tkaq(q, tau).answer:
                votes[class_index[a]] += 1
            else:
                votes[class_index[b]] += 1
        return self.classes_[int(np.argmax(votes))]

    def predict(self, queries) -> np.ndarray:
        """Classes for each query row."""
        return np.array(
            [self.predict_one(q) for q in np.atleast_2d(
                np.asarray(queries, dtype=np.float64)
            )]
        )

    def score(self, X, y) -> float:
        """Mean accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))
