"""Sequential Minimal Optimization for the binary C-SVM dual.

The paper trains its Type III models with LibSVM; offline we implement the
same solver family from scratch: SMO with maximal-violating-pair working
set selection (Keerthi et al. / LibSVM's WSS1) on the dual

    min_a   0.5 * a' Q a - e' a
    s.t.    0 <= a_i <= C,    y' a = 0,      Q_ij = y_i y_j K(x_i, x_j)

The trained model is exactly the object KARL's online phase consumes
(paper Table III): the support vectors ``P``, weights ``w_i = a_i y_i``
(Type III — mixed signs), and decision threshold ``tau = rho``, with
classification ``sign(F_P(q) - rho)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import DataShapeError, InvalidParameterError, as_matrix
from repro.core.kernels import Kernel

__all__ = ["SMOResult", "solve_binary_svm"]

#: pair updates abort when the quadratic term degenerates below this
_TAU = 1e-12


@dataclass
class SMOResult:
    """Solution of the binary SVM dual."""

    alpha: np.ndarray  # (n,) dual variables in [0, C]
    rho: float  # decision threshold: f(x) = sum a_i y_i K(x_i, x) - rho
    iterations: int
    converged: bool

    def support_mask(self, atol: float = 1e-9) -> np.ndarray:
        """Boolean mask of support vectors (``alpha > atol``)."""
        return self.alpha > atol


class _GramCache:
    """Kernel-row provider: full matrix for small n, LRU rows otherwise."""

    def __init__(self, kernel: Kernel, X: np.ndarray, dense_limit: int = 3000,
                 max_rows: int = 2048):
        self.kernel = kernel
        self.X = X
        n = X.shape[0]
        self._full = kernel.matrix(X) if n <= dense_limit else None
        self._rows: dict[int, np.ndarray] = {}
        self._max_rows = max_rows

    def row(self, i: int) -> np.ndarray:
        if self._full is not None:
            return self._full[i]
        cached = self._rows.get(i)
        if cached is not None:
            return cached
        row = self.kernel.pairwise(self.X[i], self.X)
        if len(self._rows) >= self._max_rows:
            # drop an arbitrary (oldest-inserted) entry
            self._rows.pop(next(iter(self._rows)))
        self._rows[i] = row
        return row

    def diag(self) -> np.ndarray:
        if self._full is not None:
            return np.diagonal(self._full).copy()
        return np.array(
            [self.kernel(self.X[i], self.X[i]) for i in range(self.X.shape[0])]
        )


def _smo_loop(X, y, kernel, C, tol, max_iter, alpha0=None, grad0=None):
    """Warm-startable maximal-violating-pair SMO on (sub)arrays.

    Returns ``(alpha, grad, iterations, converged)``.  ``grad0`` must be the
    dual gradient consistent with ``alpha0`` over the *full* problem this
    subproblem is embedded in (fixed variables contribute constants that
    live inside ``grad0``).
    """
    n = X.shape[0]
    gram = _GramCache(kernel, X)
    diag = gram.diag()
    alpha = np.zeros(n) if alpha0 is None else np.array(alpha0, dtype=np.float64)
    # gradient of the dual objective: G_i = (Q alpha)_i - 1
    grad = -np.ones(n) if grad0 is None else np.array(grad0, dtype=np.float64)

    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        # maximal violating pair over the signed gradient -y*G
        yg = -y * grad
        up = ((y > 0) & (alpha < C)) | ((y < 0) & (alpha > 0))
        low = ((y < 0) & (alpha < C)) | ((y > 0) & (alpha > 0))
        if not up.any() or not low.any():
            converged = True
            break
        yg_up = np.where(up, yg, -np.inf)
        yg_low = np.where(low, yg, np.inf)
        i = int(np.argmax(yg_up))
        j = int(np.argmin(yg_low))
        if yg_up[i] - yg_low[j] < tol:
            converged = True
            break

        Ki = gram.row(i)
        Kj = gram.row(j)
        ai_old = alpha[i]
        aj_old = alpha[j]
        # LibSVM's two-variable analytic solve in alpha space
        if y[i] != y[j]:
            # eta = K_ii + K_jj - 2 K_ij in raw-kernel terms for both branches
            quad = diag[i] + diag[j] - 2.0 * Ki[j]
            if quad <= 0.0:
                quad = _TAU
            delta = (-grad[i] - grad[j]) / quad
            diff = ai_old - aj_old
            ai = ai_old + delta
            aj = aj_old + delta
            if diff > 0.0 and aj < 0.0:
                aj, ai = 0.0, diff
            elif diff <= 0.0 and ai < 0.0:
                ai, aj = 0.0, -diff
            if diff > 0.0:
                if ai > C:
                    ai, aj = C, C - diff
            else:
                if aj > C:
                    aj, ai = C, C + diff
        else:
            quad = diag[i] + diag[j] - 2.0 * Ki[j]
            if quad <= 0.0:
                quad = _TAU
            delta = (grad[i] - grad[j]) / quad
            total = ai_old + aj_old
            ai = ai_old - delta
            aj = aj_old + delta
            if total > C:
                if ai > C:
                    ai, aj = C, total - C
                if aj > C:
                    aj, ai = C, total - C
            else:
                if aj < 0.0:
                    aj, ai = 0.0, total
                if ai < 0.0:
                    ai, aj = 0.0, total

        d_ai = ai - ai_old
        d_aj = aj - aj_old
        if abs(d_ai) < _TAU and abs(d_aj) < _TAU:
            converged = True  # numerically stuck at the optimum
            break
        alpha[i] = ai
        alpha[j] = aj
        # grad update: G += Q[:, i] d_ai + Q[:, j] d_aj, Q[:, k] = y*y_k*K_k
        grad += y * (y[i] * d_ai * Ki + y[j] * d_aj * Kj)

    return alpha, grad, it, converged


def _full_gradient(alpha, y, gram, n):
    """Recompute ``G = Q alpha - 1`` exactly from the support set."""
    grad = -np.ones(n)
    for k in np.flatnonzero(alpha > 0.0):
        grad += alpha[int(k)] * y[int(k)] * y * gram.row(int(k))
    return grad


def _max_violation(alpha, grad, y, C):
    """``(m - M, up_mask, low_mask)`` of the full KKT system."""
    yg = -y * grad
    up = ((y > 0) & (alpha < C)) | ((y < 0) & (alpha > 0))
    low = ((y < 0) & (alpha < C)) | ((y > 0) & (alpha > 0))
    if not up.any() or not low.any():
        return -np.inf, up, low
    return float(yg[up].max() - yg[low].min()), up, low


def solve_binary_svm(
    X,
    y,
    kernel: Kernel,
    C: float = 1.0,
    tol: float = 1e-3,
    max_iter: int = 100_000,
    shrinking: bool = False,
) -> SMOResult:
    """Solve the binary C-SVM dual by SMO with maximal-violating pairs.

    Parameters
    ----------
    X : (n, d) array
        Training points.
    y : (n,) array of +-1
        Labels.
    kernel, C, tol, max_iter
        Kernel object, box constraint, KKT-violation stopping tolerance,
        and iteration cap.
    shrinking : bool
        LibSVM-style shrinking: after a warm-up phase, optimisation
        continues on the *active set* (free variables plus KKT-violating
        bound variables) with periodic full-gradient reconciliation.  The
        final solution satisfies the same global KKT tolerance as the
        unshrunk solver; on large problems with many bounded support
        vectors the subproblems are far smaller.
    """
    X = as_matrix(X, name="X")
    y = np.asarray(y, dtype=np.float64).ravel()
    n = X.shape[0]
    if y.shape[0] != n:
        raise DataShapeError(f"y has length {y.shape[0]}, expected {n}")
    if not np.all(np.isin(y, (-1.0, 1.0))):
        raise InvalidParameterError("labels must be +-1")
    if len(np.unique(y)) < 2:
        raise InvalidParameterError("training data must contain both classes")
    if C <= 0.0:
        raise InvalidParameterError(f"C must be positive; got {C}")

    if not shrinking or n < 400:
        alpha, grad, it, converged = _smo_loop(X, y, kernel, C, tol, max_iter)
        rho = _compute_rho(alpha, grad, y, C)
        return SMOResult(alpha=alpha, rho=rho, iterations=it,
                         converged=converged)

    # --- shrinking: warm-up, then compacted active-set rounds -------------
    gram = _GramCache(kernel, X)
    warmup = min(max_iter, max(1000, n // 2))
    alpha, grad, total_it, converged = _smo_loop(
        X, y, kernel, C, tol, warmup
    )
    rounds = 0
    while not converged and total_it < max_iter and rounds < 50:
        rounds += 1
        violation, up, low = _max_violation(alpha, grad, y, C)
        if violation < tol:
            converged = True
            break
        yg = -y * grad
        m_val = yg[up].max()
        big_m = yg[low].min()
        free = (alpha > 1e-12) & (alpha < C - 1e-12)
        # keep bound variables that could still pair with a violator
        could_rise = up & (yg > big_m - tol)
        could_fall = low & (yg < m_val + tol)
        active = free | could_rise | could_fall
        idx = np.flatnonzero(active)
        if idx.size < 2 or len(np.unique(y[idx])) < 2 or idx.size > 0.9 * n:
            # degenerate active set: finish on the full problem
            alpha, grad, it2, converged = _smo_loop(
                X, y, kernel, C, tol, max_iter - total_it,
                alpha0=alpha, grad0=grad,
            )
            total_it += it2
            break
        sub_alpha, _, it2, _ = _smo_loop(
            X[idx], y[idx], kernel, C, tol,
            min(max_iter - total_it, 20 * idx.size),
            alpha0=alpha[idx], grad0=grad[idx],
        )
        total_it += it2
        alpha[idx] = sub_alpha
        grad = _full_gradient(alpha, y, gram, n)

    rho = _compute_rho(alpha, grad, y, C)
    return SMOResult(alpha=alpha, rho=rho, iterations=total_it,
                     converged=converged)


def _compute_rho(alpha, grad, y, C) -> float:
    """LibSVM's rho: midpoint of the feasibility interval of ``y*G``.

    Free vectors (0 < a < C) pin ``rho`` exactly; otherwise the midpoint of
    the bound-derived interval is used.
    """
    yg = y * grad
    free = (alpha > 1e-12) & (alpha < C - 1e-12)
    if free.any():
        return float(yg[free].mean())
    up = ((y > 0) & (alpha <= 1e-12)) | ((y < 0) & (alpha >= C - 1e-12))
    low = ((y < 0) & (alpha <= 1e-12)) | ((y > 0) & (alpha >= C - 1e-12))
    hi = yg[up].min() if up.any() else 0.0
    lo = yg[low].max() if low.any() else 0.0
    return float(0.5 * (hi + lo))
