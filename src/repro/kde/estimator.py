"""Kernel density estimation on top of the KARL aggregation engine.

The KDE use case is the paper's Type I weighting: every point carries the
identical weight ``1/n`` (up to the normalising constant of the kernel).
``KernelDensity`` wires Scott's-rule bandwidth selection, index
construction, and the eKAQ / TKAQ query types of Table III together behind
a small estimator API.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.aggregator import KernelAggregator
from repro.core.errors import InvalidParameterError, NotFittedError, as_matrix
from repro.core.kernels import GaussianKernel
from repro.index.builder import build_index
from repro.kde.bandwidth import gamma_from_bandwidth, scott_bandwidth

__all__ = ["KernelDensity"]


class KernelDensity:
    """Gaussian kernel density estimator with index-accelerated queries.

    Parameters
    ----------
    bandwidth : float or "scott"
        Smoothing bandwidth ``h``; ``"scott"`` (default) applies Scott's
        rule at fit time, as the paper does for its Type I datasets.
    index : str
        ``"kd"`` or ``"ball"``.
    leaf_capacity : int
        Index leaf capacity.
    scheme : str
        Bound scheme for queries: ``"karl"`` (default) or ``"sota"``.
    normalize : bool
        When True, ``density`` returns a properly normalised Gaussian KDE
        (divides by ``n * (2*pi)^{d/2} * h^d``); when False it returns the
        raw aggregate ``sum_i exp(-gamma dist^2)/n`` the paper queries.
    """

    def __init__(
        self,
        bandwidth="scott",
        index: str = "kd",
        leaf_capacity: int = 80,
        scheme: str = "karl",
        normalize: bool = False,
    ):
        if bandwidth != "scott":
            bandwidth = float(bandwidth)
            if bandwidth <= 0.0:
                raise InvalidParameterError(
                    f"bandwidth must be positive or 'scott'; got {bandwidth}"
                )
        self.bandwidth = bandwidth
        self.index = index
        self.leaf_capacity = int(leaf_capacity)
        self.scheme = scheme
        self.normalize = bool(normalize)
        self._agg: KernelAggregator | None = None
        self.bandwidth_: float | None = None
        self.gamma_: float | None = None

    # ------------------------------------------------------------------

    def fit(self, points, sample_weight=None) -> "KernelDensity":
        """Index ``points`` and freeze the bandwidth.

        ``sample_weight`` (optional, positive) turns this into a weighted
        KDE — Type II weighting — e.g. for importance-weighted samples or
        pre-aggregated (binned) data.  Weights are normalised to sum to 1.
        """
        points = as_matrix(points)
        n, d = points.shape
        h = scott_bandwidth(points) if self.bandwidth == "scott" else self.bandwidth
        self.bandwidth_ = float(h)
        self.gamma_ = gamma_from_bandwidth(h)
        kernel = GaussianKernel(self.gamma_)
        if sample_weight is None:
            weights = np.full(n, 1.0 / n)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64).ravel()
            if weights.shape != (n,):
                raise InvalidParameterError(
                    f"sample_weight must have shape ({n},); got {weights.shape}"
                )
            if np.any(weights <= 0.0) or not np.isfinite(weights).all():
                raise InvalidParameterError(
                    "sample_weight entries must be finite and > 0"
                )
            weights = weights / weights.sum()
        self._weights = weights
        tree = build_index(
            self.index, points, weights=weights, leaf_capacity=self.leaf_capacity
        )
        self._agg = KernelAggregator(tree, kernel, scheme=self.scheme)
        self._norm = 1.0
        if self.normalize:
            self._norm = 1.0 / ((2.0 * math.pi) ** (d / 2.0) * h**d)
        return self

    def _require_fit(self) -> KernelAggregator:
        if self._agg is None:
            raise NotFittedError("KernelDensity used before fit")
        return self._agg

    @property
    def aggregator(self) -> KernelAggregator:
        """The underlying query evaluator (for advanced use / benchmarks)."""
        return self._require_fit()

    # ------------------------------------------------------------------

    def density(self, q, eps: float = 0.0) -> float:
        """Density at ``q``; exact when ``eps == 0``, else an eKAQ estimate."""
        agg = self._require_fit()
        raw = agg.exact(q) if eps <= 0.0 else agg.ekaq(q, eps).estimate
        return raw * self._norm

    def density_many(self, queries, eps: float = 0.0) -> np.ndarray:
        """Vector of densities for each row of ``queries``."""
        return np.array([self.density(q, eps) for q in np.atleast_2d(queries)])

    def above_threshold(self, q, tau: float) -> bool:
        """TKAQ: is the (raw) aggregate at ``q`` above ``tau``?

        ``tau`` is in raw-aggregate units (the paper's thresholds are set
        from sampled means of the raw aggregate).
        """
        return self._require_fit().tkaq(q, tau).answer

    def sample(self, n: int, rng=None) -> np.ndarray:
        """Draw ``n`` points from the fitted density (generative sampling).

        A Gaussian KDE is a weighted mixture of ``N(p_i, h^2 I)`` kernels;
        sampling picks a data point with probability proportional to its
        weight and adds isotropic noise.
        """
        agg = self._require_fit()
        if n < 1:
            raise InvalidParameterError(f"n must be >= 1; got {n}")
        rng = np.random.default_rng(rng)
        base = agg.tree.points
        # tree points are permuted; permute the normalised weights to match
        probs = self._weights[agg.tree.perm]
        idx = rng.choice(base.shape[0], size=n, p=probs)
        return base[idx] + self.bandwidth_ * rng.standard_normal(
            (n, base.shape[1])
        )

    def mean_aggregate(self, queries) -> float:
        """Mean raw aggregate over a query sample — the paper's ``mu``
        threshold (Section V-B)."""
        agg = self._require_fit()
        vals = [agg.exact(q) for q in np.atleast_2d(queries)]
        return float(np.mean(vals))
