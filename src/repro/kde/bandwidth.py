"""Bandwidth selection rules for kernel density estimation.

The paper follows [15] (Gan & Bailis) and obtains the Gaussian kernel's
``gamma`` from Scott's rule for its Type I experiments.  For the kernel
``exp(-gamma * dist^2)`` the correspondence with the classical bandwidth
``h`` is ``gamma = 1 / (2 h^2)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import as_matrix, check_positive

__all__ = [
    "scott_bandwidth",
    "silverman_bandwidth",
    "gamma_from_bandwidth",
    "scott_gamma",
    "median_gamma",
]


def _mean_std(points: np.ndarray) -> float:
    """Average per-dimension sample standard deviation (ddof=1)."""
    std = points.std(axis=0, ddof=1) if points.shape[0] > 1 else np.ones(points.shape[1])
    mean = float(std.mean())
    return mean if mean > 0.0 else 1.0


def scott_bandwidth(points) -> float:
    """Scott's rule: ``h = sigma * n^(-1/(d+4))``."""
    points = as_matrix(points)
    n, d = points.shape
    return _mean_std(points) * n ** (-1.0 / (d + 4))


def silverman_bandwidth(points) -> float:
    """Silverman's rule: ``h = sigma * (4 / (n (d + 2)))^(1/(d+4))``."""
    points = as_matrix(points)
    n, d = points.shape
    return _mean_std(points) * (4.0 / (n * (d + 2.0))) ** (1.0 / (d + 4))


def gamma_from_bandwidth(h: float) -> float:
    """``gamma`` of ``exp(-gamma * dist^2)`` equivalent to bandwidth ``h``."""
    h = check_positive(h, "h")
    return 1.0 / (2.0 * h * h)


def scott_gamma(points) -> float:
    """Convenience: Scott's-rule ``gamma`` for a dataset (paper Section V-A)."""
    return gamma_from_bandwidth(scott_bandwidth(points))


def median_gamma(points, sample: int = 1000, seed: int = 0) -> float:
    """The median heuristic: ``gamma = 1 / median(dist^2)``.

    The standard kernel-methods bandwidth (Gretton et al.'s default for
    MMD and related estimators): set the squared length scale to the
    median pairwise squared distance, estimated on a subsample of at
    most ``sample`` points.  Compared to Scott's rule — which shrinks
    the bandwidth as ``n`` grows and makes kernel sums spiky — the
    median heuristic keeps kernel values concentrated, which is the
    regime where sampling-based estimators (``repro.sketch``) certify
    tight errors at small coreset sizes.
    """
    points = as_matrix(points)
    n = points.shape[0]
    if n < 2:
        return 1.0
    if n > sample:
        idx = np.random.default_rng(seed).choice(n, sample, replace=False)
        points = points[idx]
    sq_norms = np.einsum("ij,ij->i", points, points)
    d2 = sq_norms[:, None] - 2.0 * (points @ points.T) + sq_norms[None, :]
    med = float(np.median(d2[np.triu_indices(points.shape[0], k=1)]))
    return 1.0 / med if med > 0.0 else 1.0
