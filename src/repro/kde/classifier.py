"""Threshold-based kernel density classification (Gan & Bailis, SIGMOD'17).

The paper's SOTA baseline [15] was built for exactly this task: classify a
query point by comparing class-conditional kernel densities,

    predict(q) = +1  iff  pi_+ * f_+(q)  >  pi_- * f_-(q)

With Gaussian KDE on both sides, the decision reduces to the sign of a
*single* kernel aggregate with signed weights

    F(q) = sum_i w_i K(q, x_i),   w_i = +pi_+/n_+  for class +1,
                                        -pi_-/n_-  for class -1

— i.e. a Type III TKAQ with ``tau = 0`` — so the classifier rides directly
on the KARL engine and inherits its pruning.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregator import KernelAggregator
from repro.core.errors import (
    DataShapeError,
    InvalidParameterError,
    NotFittedError,
    as_matrix,
)
from repro.core.kernels import GaussianKernel, Kernel
from repro.index.builder import build_index
from repro.kde.bandwidth import gamma_from_bandwidth, scott_bandwidth

__all__ = ["KernelDensityClassifier", "MulticlassKernelDensityClassifier"]


class KernelDensityClassifier:
    """Binary classifier from class-conditional Gaussian KDEs.

    Parameters
    ----------
    bandwidth : float or "scott"
        Shared smoothing bandwidth (Scott's rule on the pooled data by
        default, as in the paper's Type I setup).
    priors : tuple(float, float) or "empirical"
        Class priors ``(pi_-, pi_+)``; ``"empirical"`` uses training
        frequencies (which makes the weights identical to ``y_i / n``).
    index, leaf_capacity, scheme
        Index configuration for the single signed-weight tree.
    """

    def __init__(
        self,
        bandwidth="scott",
        priors="empirical",
        index: str = "kd",
        leaf_capacity: int = 40,
        scheme: str = "karl",
    ):
        self.bandwidth = bandwidth
        self.priors = priors
        self.index = index
        self.leaf_capacity = int(leaf_capacity)
        self.scheme = scheme
        self._agg: KernelAggregator | None = None
        self.gamma_: float | None = None
        self.classes_ = np.array([-1, 1])

    def fit(self, X, y) -> "KernelDensityClassifier":
        """Build the signed-weight index from labelled points."""
        X = as_matrix(X, name="X")
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.shape[0] != X.shape[0]:
            raise DataShapeError(
                f"y has length {y.shape[0]}, expected {X.shape[0]}"
            )
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise InvalidParameterError("labels must be +-1")
        n_pos = int((y > 0).sum())
        n_neg = int((y < 0).sum())
        if n_pos == 0 or n_neg == 0:
            raise InvalidParameterError("training data must contain both classes")

        if self.priors == "empirical":
            pi_neg, pi_pos = n_neg / y.shape[0], n_pos / y.shape[0]
        else:
            pi_neg, pi_pos = self.priors
            if pi_neg <= 0 or pi_pos <= 0:
                raise InvalidParameterError("priors must be positive")

        h = scott_bandwidth(X) if self.bandwidth == "scott" else float(self.bandwidth)
        self.gamma_ = gamma_from_bandwidth(h)
        kernel: Kernel = GaussianKernel(self.gamma_)

        weights = np.where(y > 0, pi_pos / n_pos, -pi_neg / n_neg)
        tree = build_index(
            self.index, X, weights=weights, leaf_capacity=self.leaf_capacity
        )
        self._agg = KernelAggregator(tree, kernel, scheme=self.scheme)
        return self

    def _require_fit(self) -> KernelAggregator:
        if self._agg is None:
            raise NotFittedError("KernelDensityClassifier used before fit")
        return self._agg

    @property
    def aggregator(self) -> KernelAggregator:
        """The underlying evaluator (for benchmarks / inspection)."""
        return self._require_fit()

    def decision_function(self, queries) -> np.ndarray:
        """Signed density difference ``pi_+ f_+(q) - pi_- f_-(q)`` (exact)."""
        agg = self._require_fit()
        return np.array([agg.exact(q) for q in np.atleast_2d(queries)])

    def predict_one(self, q) -> int:
        """Class of a single query, decided by a pruned TKAQ at tau = 0."""
        return 1 if self._require_fit().tkaq(q, 0.0).answer else -1

    def predict(self, queries) -> np.ndarray:
        """Classes for each query row (pruned threshold queries)."""
        return np.array([self.predict_one(q) for q in np.atleast_2d(queries)])

    def score(self, X, y) -> float:
        """Mean accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))


class MulticlassKernelDensityClassifier:
    """Multi-class density classification by competing bound refinement.

    One aggregator per class holds ``pi_c * f_c``; a query is classified by
    the class with the largest aggregate.  Instead of computing every
    class's density exactly, the classes race: anytime bounds
    (:meth:`~repro.core.aggregator.KernelAggregator.refine_bounds`) are
    tightened with geometrically growing budgets until one class's lower
    bound clears every other class's upper bound.  The answer always equals
    the exact argmax (ties excepted).

    Parameters
    ----------
    bandwidth : float or "scott"
        Shared bandwidth (Scott's rule on the pooled data by default).
    priors : "empirical" or dict
        Class priors; ``"empirical"`` uses training frequencies.
    """

    def __init__(self, bandwidth="scott", priors="empirical", index: str = "kd",
                 leaf_capacity: int = 40, scheme: str = "karl"):
        self.bandwidth = bandwidth
        self.priors = priors
        self.index = index
        self.leaf_capacity = int(leaf_capacity)
        self.scheme = scheme
        self.classes_: np.ndarray | None = None
        self._aggs: list[KernelAggregator] | None = None
        self.gamma_: float | None = None

    def fit(self, X, y) -> "MulticlassKernelDensityClassifier":
        """Build one weighted index per class."""
        X = as_matrix(X, name="X")
        y = np.asarray(y).ravel()
        if y.shape[0] != X.shape[0]:
            raise DataShapeError(
                f"y has length {y.shape[0]}, expected {X.shape[0]}"
            )
        self.classes_ = np.unique(y)
        if self.classes_.shape[0] < 2:
            raise InvalidParameterError("need at least two classes")

        h = scott_bandwidth(X) if self.bandwidth == "scott" else float(self.bandwidth)
        self.gamma_ = gamma_from_bandwidth(h)
        kernel: Kernel = GaussianKernel(self.gamma_)

        n = y.shape[0]
        self._aggs = []
        for c in self.classes_:
            members = X[y == c]
            n_c = members.shape[0]
            pi_c = (
                n_c / n if self.priors == "empirical" else float(self.priors[c])
            )
            if pi_c <= 0:
                raise InvalidParameterError(f"prior for class {c!r} must be > 0")
            tree = build_index(
                self.index, members, weights=np.full(n_c, pi_c / n_c),
                leaf_capacity=self.leaf_capacity,
            )
            self._aggs.append(KernelAggregator(tree, kernel, scheme=self.scheme))
        return self

    def _require_fit(self):
        if self._aggs is None:
            raise NotFittedError(
                "MulticlassKernelDensityClassifier used before fit"
            )

    def decision_values(self, q) -> np.ndarray:
        """Exact ``pi_c * f_c(q)`` per class (diagnostic path)."""
        self._require_fit()
        return np.array([agg.exact(q) for agg in self._aggs])

    def predict_one(self, q, initial_budget: int = 8):
        """Class label for one query via racing bound refinement."""
        self._require_fit()
        budget = int(initial_budget)
        max_budget = 4 * max(agg.tree.n for agg in self._aggs)
        while budget <= max_budget:
            results = [agg.refine_bounds(q, budget) for agg in self._aggs]
            lowers = np.array([r.lower for r in results])
            uppers = np.array([r.upper for r in results])
            best = int(np.argmax(lowers))
            others_upper = np.delete(uppers, best)
            if lowers[best] > others_upper.max():
                return self.classes_[best]
            budget *= 4
        # unresolvable by bounds (exact tie or numerics): exact argmax
        return self.classes_[int(np.argmax(self.decision_values(q)))]

    def predict(self, queries) -> np.ndarray:
        """Class labels for each query row."""
        return np.array([self.predict_one(q) for q in np.atleast_2d(
            np.asarray(queries, dtype=np.float64)
        )])

    def score(self, X, y) -> float:
        """Mean accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))
