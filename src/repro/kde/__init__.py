"""Kernel density estimation (Type I weighting) on the KARL engine."""

from repro.kde.bandwidth import (
    gamma_from_bandwidth,
    scott_bandwidth,
    scott_gamma,
    silverman_bandwidth,
)
from repro.kde.classifier import (
    KernelDensityClassifier,
    MulticlassKernelDensityClassifier,
)
from repro.kde.estimator import KernelDensity

__all__ = [
    "KernelDensity",
    "KernelDensityClassifier",
    "MulticlassKernelDensityClassifier",
    "scott_bandwidth",
    "silverman_bandwidth",
    "gamma_from_bandwidth",
    "scott_gamma",
]
