"""Native-speed refinement: JIT-compiled kernels with a pure-Python twin.

The refinement loop's per-pop cost is interpreter overhead, not numpy
work — each pop slices two rows, calls a handful of numpy functions and
evaluates a few transcendentals.  This package restructures the loop
around flat structure-of-arrays node state (argument intervals, moments,
children, terminal flags — all addressable by node id) and drives it with
scalar arithmetic that :mod:`numba` can compile.  Three execution tiers
share bit-for-bit identical arithmetic:

1. **JIT** — ``@njit(cache=True)`` compiled kernels (numba installed);
2. **pykernel** — the same kernel functions, uncompiled (testing hook:
   proves tier 1 and tier 3 bracket identical code);
3. **fallback** — a ``heapq``-driven Python loop over the same SoA
   precompute, selected automatically when numba is absent.  It is the
   tier that must be fast without any compiler: the SoA precompute
   removes all per-pop numpy calls, leaving ``math.exp`` and float
   arithmetic.

Pop order is identical across tiers because heap keys ``(-gap, tie)``
are unique (the tie counter is monotone), so *any* correct heap yields
the same pop sequence; bound values are identical because every tier
evaluates the same scalar formulas (``math.exp`` lowers to libm under
numba).  The float64 path therefore reproduces the golden contract
bitwise no matter which tier runs.

Selection is environment-driven::

    REPRO_NATIVE=auto   # default: native where supported, JIT if numba
    REPRO_NATIVE=1      # same, but a numba compile failure is an error
    REPRO_NATIVE=0      # disable: always the classic interpreted loop

or programmatic via :func:`set_mode` (e.g. from benchmark harnesses and
the parallel evaluator's worker initializer, where the parent's
programmatic mode must survive the spawn).
"""

from __future__ import annotations

import os
import time
import warnings
from types import SimpleNamespace

__all__ = [
    "get_mode",
    "set_mode",
    "enabled",
    "numba_available",
    "get_kernels",
    "native_status",
    "force_pykernel",
]

_MODES = ("0", "1", "auto")

_mode: str | None = None        # resolved lazily from the environment
_numba_version: str | None = None
_numba_checked = False
_kernels: SimpleNamespace | None = None
_compile_seconds: float = 0.0
_force_pykernel = False


def get_mode() -> str:
    """Current native mode: ``"0"``, ``"1"``, or ``"auto"``."""
    global _mode
    if _mode is None:
        raw = os.environ.get("REPRO_NATIVE", "auto").strip().lower()
        _mode = raw if raw in _MODES else "auto"
    return _mode


def set_mode(mode: str) -> None:
    """Override the native mode for this process (``"0"``/``"1"``/``"auto"``)."""
    global _mode
    mode = str(mode).strip().lower()
    if mode not in _MODES:
        raise ValueError(f"native mode must be one of {_MODES}; got {mode!r}")
    _mode = mode


def enabled() -> bool:
    """True when the native path may engage (mode is not ``"0"``)."""
    return get_mode() != "0"


def numba_available() -> bool:
    """True when numba imports (checked once, lazily)."""
    global _numba_checked, _numba_version
    if not _numba_checked:
        _numba_checked = True
        try:
            import numba  # noqa: F401

            _numba_version = getattr(numba, "__version__", "unknown")
        except Exception:
            _numba_version = None
    return _numba_version is not None


def force_pykernel(flag: bool) -> None:
    """Testing hook: drive the uncompiled kernel loop even without numba.

    The array-heap kernel functions are plain Python until numba compiles
    them; forcing them on lets the test suite prove — in a numba-free
    environment — that the kernel loop and the heapq fallback produce
    bitwise-identical results.
    """
    global _force_pykernel
    _force_pykernel = bool(flag)


def pykernel_forced() -> bool:
    return _force_pykernel


def get_kernels() -> SimpleNamespace:
    """The kernel namespace: JIT-compiled when numba is present and the
    mode allows it, plain Python otherwise.

    Returns a namespace with ``refine_leaf_yield`` and ``worst_gap_rows``
    plus ``compiled`` (bool) and the one-time ``compile_seconds``.  The
    first compiling call pays the JIT cost; ``cache=True`` persists the
    machine code across processes.
    """
    global _kernels, _compile_seconds
    if _kernels is not None:
        return _kernels
    from repro.native import kernels as _k

    plain = SimpleNamespace(
        refine_leaf_yield=_k.refine_leaf_yield,
        worst_gap_rows=_k.worst_gap_rows_py,
        compiled=False,
        compile_seconds=0.0,
    )
    if not (enabled() and numba_available()):
        _kernels = plain
        return _kernels
    try:
        import numba

        t0 = time.perf_counter()
        jit = numba.njit(cache=True, fastmath=False)
        refine, worst = _k.build_jit(jit)
        compiled = SimpleNamespace(
            refine_leaf_yield=refine,
            worst_gap_rows=worst,
            compiled=True,
            compile_seconds=0.0,
        )
        # compilation itself happens at first call; force it here so the
        # cost lands in one visible place rather than the first query
        _k.warm_compile(compiled)
        _compile_seconds = time.perf_counter() - t0
        compiled.compile_seconds = _compile_seconds
        _kernels = compiled
    except Exception as exc:  # pragma: no cover - depends on numba install
        if get_mode() == "1":
            raise RuntimeError(
                f"REPRO_NATIVE=1 but numba compilation failed: {exc}"
            ) from exc
        warnings.warn(
            f"numba present but compilation failed ({exc}); "
            "using the pure-Python native fallback",
            RuntimeWarning,
            stacklevel=2,
        )
        _kernels = plain
    return _kernels


def native_status() -> dict:
    """Introspection for benchmarks and ``BENCH_*.json`` host metadata."""
    numba_available()
    return {
        "mode": get_mode(),
        "numba_version": _numba_version,
        "jit_compiled": bool(_kernels is not None and _kernels.compiled),
        "compile_seconds": _compile_seconds,
    }
