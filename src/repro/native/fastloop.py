"""Code-generated best-first fast loops for the numba-free tier.

The fallback loop's remaining interpreter cost after the SoA precompute
is *calls*: two specialized part-bound closure invocations per expanded
child, each building and unpacking a result tuple.  This module removes
them by generating the whole refinement loop's source per
``(scheme, profile, has_neg, float32)`` configuration, with the scalar
chord/tangent arithmetic of :func:`repro.native.kernels.node_bounds_scalar`
pasted inline — straight-line transcriptions of the same formulas, so
the generated loop stays bitwise-identical to the traced twin and to the
compiled kernel (parity is enforced by tests/test_native.py and the
golden contract).

Generation happens once per configuration (module-level cache); the
produced function is a plain Python callable

    fast_loop(refiner, q, q_sq, root_lb, root_ub, spec, stats)

mirroring ``NativeRefiner._run_python_fast``'s contract: refine until
the inline ``spec = (mode, p1, p2)`` stop fires or the frontier is
exhausted, then return ``(lb, ub, stats)``.
"""

from __future__ import annotations

import heapq
import math
import textwrap

import numpy as np

from repro.native.kernels import _DEGENERATE_SPAN

__all__ = ["build_fast_loop"]


def _karl_src(pid: int, s0: str, s1src: str, blo: str, bhi: str,
              x: str) -> str:
    """KARL chord/tangent bounds as straight-line source.

    ``s0`` is a bound local, ``s1src`` an indexing expression evaluated
    once (inside the non-trivial branch only, where the value is used);
    results land in ``blo``/``bhi``.  ``x`` suffixes every intermediate
    so two instances (positive and negative part) can share a scope.
    """
    if pid == 0:  # Gaussian
        deg = f"""\
{blo} = {s0} * exp(-g * hi)
{bhi} = {s0} * exp(-g * lo)"""
        main = f"""\
glo{x} = exp(-g * lo)
ghi{x} = exp(-g * hi)
{bhi} = glo{x} * {s0} + (ghi{x} - glo{x}) / span{x} * (s1{x} - lo * {s0})
gx{x} = exp(-g * xbar{x})
{blo} = gx{x} * {s0} + (-g * gx{x}) * (s1{x} - xbar{x} * {s0})"""
    elif pid == 1:  # Laplacian
        deg = f"""\
{blo} = {s0} * exp(-g * sqrt(max(hi, 0.0)))
{bhi} = {s0} * exp(-g * sqrt(max(lo, 0.0)))"""
        main = f"""\
xbar{x} = xbar{x} if xbar{x} >= aux else aux
glo{x} = exp(-g * sqrt(max(lo, 0.0)))
ghi{x} = exp(-g * sqrt(max(hi, 0.0)))
{bhi} = glo{x} * {s0} + (ghi{x} - glo{x}) / span{x} * (s1{x} - lo * {s0})
gx{x} = exp(-g * sqrt(max(xbar{x}, 0.0)))
root{x} = sqrt(max(xbar{x}, aux))
deriv{x} = -g / (2.0 * root{x}) * exp(-g * root{x})
{blo} = gx{x} * {s0} + deriv{x} * (s1{x} - xbar{x} * {s0})"""
    elif pid == 2:  # Cauchy
        deg = f"""\
{blo} = {s0} * (1.0 / (1.0 + g * hi))
{bhi} = {s0} * (1.0 / (1.0 + g * lo))"""
        main = f"""\
glo{x} = 1.0 / (1.0 + g * lo)
ghi{x} = 1.0 / (1.0 + g * hi)
{bhi} = glo{x} * {s0} + (ghi{x} - glo{x}) / span{x} * (s1{x} - lo * {s0})
den{x} = 1.0 + g * xbar{x}
gx{x} = 1.0 / den{x}
{blo} = gx{x} * {s0} + (-g / den{x} ** 2.0) * (s1{x} - xbar{x} * {s0})"""
    else:  # Epanechnikov
        deg = f"""\
vh{x} = 1.0 - g * hi
vl{x} = 1.0 - g * lo
{blo} = {s0} * (vh{x} if vh{x} > 0.0 else 0.0)
{bhi} = {s0} * (vl{x} if vl{x} > 0.0 else 0.0)"""
        main = f"""\
vl{x} = 1.0 - g * lo
glo{x} = vl{x} if vl{x} > 0.0 else 0.0
vh{x} = 1.0 - g * hi
ghi{x} = vh{x} if vh{x} > 0.0 else 0.0
{bhi} = glo{x} * {s0} + (ghi{x} - glo{x}) / span{x} * (s1{x} - lo * {s0})
if hi <= aux or lo >= aux:
    {blo} = {bhi}
else:
    vx{x} = 1.0 - g * xbar{x}
    gx{x} = vx{x} if vx{x} > 0.0 else 0.0
    deriv{x} = -g if xbar{x} < aux else 0.0
    {blo} = gx{x} * {s0} + deriv{x} * (s1{x} - xbar{x} * {s0})"""

    ind = textwrap.indent
    return (
        f"if {s0} <= 0.0:\n"
        f"    {blo} = {bhi} = 0.0\n"
        f"else:\n"
        f"    span{x} = hi - lo\n"
        f"    if span{x} <= _DEG:\n"
        f"{ind(deg, ' ' * 8)}\n"
        f"    else:\n"
        f"        s1{x} = {s1src}\n"
        f"        xbar{x} = s1{x} / {s0}\n"
        f"        xbar{x} = (lo if xbar{x} < lo else\n"
        f"                   hi if xbar{x} > hi else xbar{x})\n"
        f"{ind(main, ' ' * 8)}"
    )


def _sota_src(pid: int, s0: str, blo: str, bhi: str, x: str) -> str:
    """SOTA constant bounds (profile at the far/near corner) inline."""
    if pid == 0:
        return (f"{blo} = {s0} * exp(-g * hi)\n"
                f"{bhi} = {s0} * exp(-g * lo)")
    if pid == 1:
        return (f"{blo} = {s0} * exp(-g * sqrt(max(hi, 0.0)))\n"
                f"{bhi} = {s0} * exp(-g * sqrt(max(lo, 0.0)))")
    if pid == 2:
        return (f"{blo} = {s0} * (1.0 / (1.0 + g * hi))\n"
                f"{bhi} = {s0} * (1.0 / (1.0 + g * lo))")
    return (f"vh{x} = 1.0 - g * hi\n"
            f"vl{x} = 1.0 - g * lo\n"
            f"{blo} = {s0} * (vh{x} if vh{x} > 0.0 else 0.0)\n"
            f"{bhi} = {s0} * (vl{x} if vl{x} > 0.0 else 0.0)")


def _part_src(scheme_id: int, pid: int, s0: str, s1src: str, blo: str,
              bhi: str, x: str) -> str:
    """One part's ``(lower, upper)`` bound block for the given scheme."""
    if scheme_id == 0:
        return _karl_src(pid, s0, s1src, blo, bhi, x)
    if scheme_id == 1:
        return _sota_src(pid, s0, blo, bhi, x)
    karl = _karl_src(pid, s0, s1src, f"klb{x}", f"kub{x}", f"{x}k")
    sota = _sota_src(pid, s0, f"slb{x}", f"sub{x}", f"{x}s")
    # Python max/min tie semantics: the KARL bound wins ties
    return (
        f"{karl}\n{sota}\n"
        f"{blo} = klb{x} if klb{x} >= slb{x} else slb{x}\n"
        f"{bhi} = kub{x} if kub{x} <= sub{x} else sub{x}"
    )


#: Neumaier compensated add of ``{v}`` into ``(f_{a}, c_{a})``, abs()
#: spelled as conditionals (same comparison outcome — -0.0 ties compare
#: equal — without the builtin call)
_ACC = """\
t = f_{a} + {v}
c_{a} += ((f_{a} - t) + {v}
          if (f_{a} if f_{a} >= 0.0 else -f_{a})
          >= ({v} if {v} >= 0.0 else -{v})
          else ({v} - t) + f_{a})
f_{a} = t"""


def _acc(acc: str, value: str) -> str:
    return _ACC.format(a=acc, v=value)


_LOOP_TEMPLATE = """\
def fast_loop(refiner, q, q_sq, root_lb, root_ub, spec, stats,
              g={g!r}, aux={aux!r}, _DEG={deg!r}, exp=_exp, sqrt=_sqrt,
              max=max, heappush=_heappush, heappop=_heappop,
              memoryview=memoryview, ndarray=_ndarray):
    mode, p1, p2 = spec
    one_eps = 1.0 + p1
    checks = 0
    terminal = refiner._terminal_list
    left = refiner._left_list
    sizes = refiner._sizes_list
    leaf_exact = refiner._leaf_exact
    node_lbs = refiner._scratch_lb
    node_ubs = refiner._scratch_ub
    node_lbs[0] = root_lb
    node_ubs[0] = root_ub

    exact_sum = 0.0
    f_lb = root_lb
    c_lb = 0.0
    f_ub = root_ub
    c_ub = 0.0
    tie = 1
    heap = [(-(root_ub - root_lb), 0, 0)]
    lb = exact_sum + (f_lb + c_lb)
    ub = exact_sum + (f_ub + c_ub)

    pops = exps = leaves = pts = 0
    arg_lo = None  # SoA memoryviews, built lazily on the first expansion
    while heap:
        if mode == 0:
            if lb > p1 or ub <= p1:
                break
        elif mode == 1:
            if ub <= one_eps * lb:
                break
        elif mode == 2:
            if checks >= p1:
                break
            checks += 1
        elif ub + p2 <= one_eps * (lb + p2):
            break
        pops += 1
        _, _, node = heappop(heap)
        x0 = -node_lbs[node]
{acc_pop_lb}
        x0 = -node_ubs[node]
{acc_pop_ub}

        if terminal[node]:
            exact_sum += leaf_exact(q, q_sq, node)
            leaves += 1
            pts += sizes[node]
        else:
            exps += 1
            if arg_lo is None:
                # memoryviews: O(1) setup (vs O(m) tolist) and plain
                # Python floats on indexing (vs boxed numpy scalars)
                (arg_lo, arg_hi, pos_w, pos_s1, neg_w, neg_s1, err,
                 widen) = tuple(
                    memoryview(a) if isinstance(a, ndarray) else a
                    for a in refiner._precompute_arrays(q, q_sq)
                )
            child = left[node]
{child_block}
            child += 1
{child_block}

        lb = exact_sum + (f_lb + c_lb)
        ub = exact_sum + (f_ub + c_ub)

    stats.iterations += pops
    stats.nodes_expanded += exps
    stats.leaves_evaluated += leaves
    stats.points_evaluated += pts
    if not heap:
        lb = ub = exact_sum
    return lb, ub, stats
"""

_CHILD_TEMPLATE = """\
            lo = arg_lo[child]
            hi = arg_hi[child]
            pw = pos_w[child]
{part_pos}
{part_neg}
{widen_block}
{acc_child_lb}
{acc_child_ub}
            node_lbs[child] = c_lo
            node_ubs[child] = c_hi
            heappush(heap, (-(c_hi - c_lo), tie, child))
            tie += 1"""

_PART_NEG = """\
s0n = neg_w[child]
if s0n > 0.0:
{neg_body}
    c_lo, c_hi = c_lo - n_ub, c_hi - n_lb"""

_WIDEN = """\
e = err[child]
c_lo = c_lo - e
c_hi = c_hi + e"""

_CACHE: dict = {}


def build_fast_loop(scheme_id: int, pid: int, g: float, aux: float,
                    has_neg: bool, widen: bool):
    """The generated fast loop for one refiner configuration (cached)."""
    key = (scheme_id, pid, float(g), float(aux), bool(has_neg), bool(widen))
    fn = _CACHE.get(key)
    if fn is None:
        fn = _compile(*key)
        _CACHE[key] = fn
    return fn


def _compile(scheme_id, pid, g, aux, has_neg, widen):
    ind = textwrap.indent
    part_pos = ind(
        _part_src(scheme_id, pid, "pw", "pos_s1[child]", "c_lo", "c_hi", ""),
        " " * 12,
    )
    if has_neg:
        neg_body = ind(
            _part_src(scheme_id, pid, "s0n", "neg_s1[child]", "n_lb",
                      "n_ub", "n"),
            " " * 4,
        )
        part_neg = ind(_PART_NEG.format(neg_body=neg_body), " " * 12)
    else:
        part_neg = " " * 12 + "pass"
    widen_block = ind(_WIDEN, " " * 12) if widen else " " * 12 + "pass"
    child_block = _CHILD_TEMPLATE.format(
        part_pos=part_pos,
        part_neg=part_neg,
        widen_block=widen_block,
        acc_child_lb=ind(_acc("lb", "c_lo"), " " * 12),
        acc_child_ub=ind(_acc("ub", "c_hi"), " " * 12),
    )
    src = _LOOP_TEMPLATE.format(
        g=g, aux=aux, deg=_DEGENERATE_SPAN,
        acc_pop_lb=ind(_acc("lb", "x0"), " " * 8),
        acc_pop_ub=ind(_acc("ub", "x0"), " " * 8),
        child_block=child_block,
    )
    namespace = {
        "_exp": math.exp,
        "_sqrt": math.sqrt,
        "_heappush": heapq.heappush,
        "_heappop": heapq.heappop,
        "_ndarray": np.ndarray,
    }
    exec(compile(src, f"<fastloop s{scheme_id} p{pid}>", "exec"), namespace)
    return namespace["fast_loop"]
