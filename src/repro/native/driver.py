"""Native refinement driver: per-query SoA precompute + loop dispatch.

A :class:`NativeRefiner` is built lazily per :class:`KernelAggregator`
(like the multiquery backend) and takes over ``_refine``'s loop when the
kernel/scheme support it.  The work splits three ways:

* **per-query precompute** (numpy, bitwise-safe): argument intervals for
  every non-root node via the fused geometry call
  (:meth:`SpatialIndex.all_pair_dist_bounds` — per-row arithmetic, so
  values match the per-pop two-row slices exactly), and pair dot
  products via one stacked ``(pairs, 2, d) @ (d,)`` matmul (bitwise
  equal to the per-pop two-row gemv — verified property, encoded in the
  parity tests).  Built lazily on the first expansion, so queries the
  root bounds already certify pay nothing.
* **the loop** — either the compiled array-heap kernel
  (:func:`repro.native.kernels.refine_leaf_yield`, resumed across
  terminal pops so exact leaf aggregates stay on the interpreted
  numpy path), or a ``heapq``-driven Python twin when numba is absent
  or instrumentation (obs traces, ``BoundTrace``, the frontier parity
  hook) needs per-pop callbacks.
* **mixed precision** (opt-in ``precision="float32"``): the precompute
  runs in float32 and every per-node bound is widened by a certified
  worst-case rounding radius, so TKAQ/eKAQ contracts hold
  unconditionally (see ``docs/native.md`` for the error model).

The float64 path is bitwise-identical to the interpreted loop by
construction: same arithmetic, same pop order (unique heap keys), same
leaf/exact path.
"""

from __future__ import annotations

import heapq
import time
from itertools import count

import numpy as np

from repro.core.bounds import HybridBounds, KARLBounds, SOTABounds
from repro.core.kernels import Kernel
from repro.core.profiles import (
    CauchyProfile,
    EpanechnikovProfile,
    GaussianProfile,
    LaplacianProfile,
)
from repro import native
from repro.native import kernels as _kernels
from repro.native.fastloop import build_fast_loop

__all__ = ["NativeRefiner", "PROFILE_IDS", "SCHEME_IDS", "F32_PROFILES"]

#: profiles the scalar kernel transcribes; ids match kernels.py
PROFILE_IDS = {
    GaussianProfile: 0,
    LaplacianProfile: 1,
    CauchyProfile: 2,
    EpanechnikovProfile: 3,
}

SCHEME_IDS = {KARLBounds: 0, SOTABounds: 1, HybridBounds: 2}

#: profiles with a global slope bound ``|g'| <= gamma`` — the certified
#: float32 error model needs it; the Laplacian's clamped slope is
#: ``~gamma / (2 sqrt(eps))``, far too large to be useful
F32_PROFILES = (GaussianProfile, CauchyProfile, EpanechnikovProfile)

_U32 = float(np.finfo(np.float32).eps)
_EPS64 = float(np.finfo(np.float64).eps)

#: per-element operation-count factor in the float32 rounding bounds:
#: a d-term reduction plus the handful of elementwise ops around it
def _op_factor(d: int) -> float:
    return float(d + 8)


class NativeRefiner:
    """Drives best-first refinement over flat node-state arrays."""

    def __init__(self, agg):
        self.agg = agg
        self.tree = agg.tree
        profile = agg.kernel.profile
        self.pid = PROFILE_IDS[type(profile)]
        self.gamma = float(profile.gamma)
        if self.pid == 1:
            self.aux = float(profile.eps)
        elif self.pid == 3:
            self.aux = float(profile.cutoff)
        else:
            self.aux = 0.0
        self.scheme_id = SCHEME_IDS[type(agg.scheme)]
        self.has_neg = 1 if agg._has_neg else 0
        self.terminal = self.tree.terminal_mask(agg.max_depth)
        self.left = self.tree.left
        self.m = int(self.left.shape[0])
        self.float32 = agg.precision == "float32"
        self._zeros = np.zeros(self.m)
        self._f32_stats = None  # lazy float32 mirrors of the signed stats
        self._aq = None  # lazy precompute scratch (with _s1, _geom_scratch)
        # Python fast-loop state: plain lists index ~3x faster than numpy
        # arrays (no scalar boxing); the loop itself is code-generated
        # per configuration with the part-bound arithmetic inlined
        self._fast_loop = build_fast_loop(
            self.scheme_id, self.pid, self.gamma, self.aux,
            bool(self.has_neg), self.float32,
        )
        self._terminal_list = self.terminal.tolist()
        self._left_list = self.left.tolist()
        self._sizes_list = self.tree.node_sizes().tolist()
        self._leaf_exact = self._make_leaf_exact()
        # per-node bound scratch for the fast loop's 3-tuple heap entries
        self._scratch_lb = [0.0] * self.m
        self._scratch_ub = [0.0] * self.m

    def _make_leaf_exact(self):
        """Leaf aggregation closure — a verbatim transcription of
        ``KernelAggregator._leaf_exact`` (``Kernel.pairwise`` over the
        leaf slice) with the method dispatch and no-op ``asarray`` calls
        resolved at build time and every elementwise step running in
        place on the distance buffer (same values, no temporaries —
        scalar multiplication commutes bitwise, and ``max(x, 0)`` on the
        already-clamped buffer is the identity).  Bitwise-identical by
        construction; ``supports`` rejects kernels overriding
        ``pairwise``."""
        tree = self.tree
        points = tree.points
        sq_norms = tree.sq_norms
        weights = tree.weights
        # per-node slice objects built once (plain-int bounds, no per-pop
        # numpy scalar boxing or slice construction)
        slices = [
            slice(int(s), int(e))
            for s, e in zip(tree.start.tolist(), tree.end.tolist())
        ]
        pid, g = self.pid, self.gamma
        neg_g = -g
        _sub, _max, _exp = np.subtract, np.maximum, np.exp
        _sqrt, _div = np.sqrt, np.divide

        if pid == 0:  # exp(-g * d2)

            def leaf_exact(q, q_sq, node):
                sl = slices[node]
                d2 = points[sl] @ q
                d2 *= 2.0
                _sub(q_sq, d2, out=d2)
                d2 += sq_norms[sl]
                _max(d2, 0.0, out=d2)
                d2 *= neg_g
                _exp(d2, out=d2)
                return float(weights[sl] @ d2)

        elif pid == 1:  # exp(-g * sqrt(d2))

            def leaf_exact(q, q_sq, node):
                sl = slices[node]
                d2 = points[sl] @ q
                d2 *= 2.0
                _sub(q_sq, d2, out=d2)
                d2 += sq_norms[sl]
                _max(d2, 0.0, out=d2)
                _sqrt(d2, out=d2)
                d2 *= neg_g
                _exp(d2, out=d2)
                return float(weights[sl] @ d2)

        elif pid == 2:  # 1 / (1 + g * d2)

            def leaf_exact(q, q_sq, node):
                sl = slices[node]
                d2 = points[sl] @ q
                d2 *= 2.0
                _sub(q_sq, d2, out=d2)
                d2 += sq_norms[sl]
                _max(d2, 0.0, out=d2)
                d2 *= g
                d2 += 1.0
                _div(1.0, d2, out=d2)
                return float(weights[sl] @ d2)

        else:  # max(1 - g * d2, 0)

            def leaf_exact(q, q_sq, node):
                sl = slices[node]
                d2 = points[sl] @ q
                d2 *= 2.0
                _sub(q_sq, d2, out=d2)
                d2 += sq_norms[sl]
                _max(d2, 0.0, out=d2)
                d2 *= g
                _sub(1.0, d2, out=d2)
                _max(d2, 0.0, out=d2)
                return float(weights[sl] @ d2)

        return leaf_exact

    # ------------------------------------------------------------------
    # support matrix
    # ------------------------------------------------------------------

    @staticmethod
    def supports(tree, kernel, scheme) -> bool:
        """True when the native kernels replicate this configuration.

        Same envelope as the multiquery backend — convex-decreasing
        distance profiles under the stock karl/sota/hybrid schemes — plus
        the profile/scheme types must be *exactly* the transcribed ones
        (a subclass overriding ``part_bounds`` must fall back to the
        interpreted loop).
        """
        return (
            kernel.argument == "dist_sq"
            and type(kernel.profile) in PROFILE_IDS
            and type(scheme) in SCHEME_IDS
            and hasattr(tree, "all_pair_dist_bounds")
            # the native leaf path transcribes Kernel.pairwise; a subclass
            # overriding it must run on the interpreted loop
            and type(kernel).pairwise is Kernel.pairwise
            and type(kernel).arguments is Kernel.arguments
        )

    @staticmethod
    def supports_float32(kernel) -> bool:
        """True when the certified float32 error model covers the profile."""
        return type(kernel.profile) in F32_PROFILES

    # ------------------------------------------------------------------
    # per-query structure-of-arrays precompute
    # ------------------------------------------------------------------

    def _precompute_arrays(self, q, q_sq):
        """Flat per-node bound inputs: ``(arg_lo, arg_hi, pos_w, pos_s1,
        neg_w, neg_s1, err, widen)``, all length-``m`` float64, slot 0
        (the root) unused."""
        if self.float32:
            return self._precompute_f32(q, q_sq)
        tree = self.tree
        st = tree.stats
        m, d = self.m, tree.d
        if self._aq is None:
            # per-refiner scratch: the (m, d) geometry intermediates and
            # the (m,) moment accumulators are the precompute's only
            # large temporaries — reusing them across queries removes
            # ~5 allocations per query (values unchanged: same ops, in
            # place)
            self._aq = np.empty(m - 1)
            self._s1 = np.empty(m - 1)
            self._geom_scratch = tuple(
                np.empty((m - 1, d)) for _ in range(3)
            )
        near, far = tree.all_pair_dist_bounds(q, self._geom_scratch)
        arg_lo = np.empty(m)
        arg_hi = np.empty(m)
        arg_lo[0] = arg_hi[0] = 0.0
        arg_lo[1:] = near
        arg_hi[1:] = far
        # one stacked matmul == per-pair two-row gemv, bitwise (BFS
        # sibling adjacency makes pair rows consecutive); 2.0 * aq
        # commutes to aq *= 2.0 and the chain w*q_sq - 2aq + b runs in
        # place in evaluation order
        aq = self._aq
        np.matmul(st.pos_a[1:].reshape(-1, 2, d), q, out=aq.reshape(-1, 2))
        s1 = self._s1
        np.multiply(st.pos_w[1:], q_sq, out=s1)
        aq *= 2.0
        s1 -= aq
        s1 += st.pos_b[1:]
        pos_s1 = np.empty(m)
        pos_s1[0] = 0.0
        pos_s1[1:] = np.where(s1 > 0.0, s1, 0.0)
        if self.has_neg:
            # pos moments are copied out above, so the scratch is free
            naq = self._aq
            np.matmul(
                st.neg_a[1:].reshape(-1, 2, d), q, out=naq.reshape(-1, 2)
            )
            ns1 = self._s1
            np.multiply(st.neg_w[1:], q_sq, out=ns1)
            naq *= 2.0
            ns1 -= naq
            ns1 += st.neg_b[1:]
            neg_s1 = np.empty(m)
            neg_s1[0] = 0.0
            neg_s1[1:] = np.where(ns1 > 0.0, ns1, 0.0)
            neg_w = st.neg_w
        else:
            neg_w = neg_s1 = self._zeros
        return arg_lo, arg_hi, st.pos_w, pos_s1, neg_w, neg_s1, self._zeros, 0

    def _f32_mirrors(self):
        if self._f32_stats is None:
            st = self.tree.stats
            f32 = np.float32
            mirrors = {
                "pos_a": np.ascontiguousarray(st.pos_a[1:], dtype=f32),
                "pos_b": st.pos_b[1:].astype(f32),
                "pos_w": st.pos_w[1:].astype(f32),
            }
            mirrors["abs_pos_a"] = np.abs(mirrors["pos_a"])
            if self.has_neg:
                mirrors["neg_a"] = np.ascontiguousarray(st.neg_a[1:], dtype=f32)
                mirrors["neg_b"] = st.neg_b[1:].astype(f32)
                mirrors["neg_w"] = st.neg_w[1:].astype(f32)
                mirrors["abs_neg_a"] = np.abs(mirrors["neg_a"])
            self._f32_stats = mirrors
        return self._f32_stats

    def _f32_moments(self, mir, part, q32, q_sq32, q_abs32, q_sq, k_ops):
        """Float32 part moments + certified error radius (float64).

        Returns ``(s1, err_s1)`` over nodes ``1..m-1``: the clipped
        float32 moment (cast up) and a bound on ``|s1_f32 - s1_f64|``
        from ``u32 * ops * magnitude`` with the magnitude evaluated in
        float64 (inflated for its own float32 dot rounding).
        """
        st = self.tree.stats
        d = self.tree.d
        a32 = mir[f"{part}_a"]
        aq32 = np.matmul(a32.reshape(-1, 2, d), q32).reshape(-1)
        s1_32 = mir[f"{part}_w"] * q_sq32 - np.float32(2.0) * aq32 + mir[f"{part}_b"]
        s1 = s1_32.astype(np.float64)
        s1 = np.where(s1 > 0.0, s1, 0.0)
        mag_aq = np.matmul(
            mir[f"abs_{part}_a"].reshape(-1, 2, d), q_abs32
        ).reshape(-1).astype(np.float64)
        w64 = st.pos_w[1:] if part == "pos" else st.neg_w[1:]
        b64 = st.pos_b[1:] if part == "pos" else st.neg_b[1:]
        mag_s1 = (w64 * q_sq + 2.0 * mag_aq + b64) * (1.0 + 1e-5)
        err_s1 = _U32 * k_ops * mag_s1
        return s1, err_s1, mag_s1, w64

    def _precompute_f32(self, q, q_sq):
        """Mixed-precision SoA: float32 values + per-node widening radii.

        Validity: the widened interval ``[lo32 - e, hi32 + e]`` contains
        the true float64 interval, so chords/tangents/ranges over it
        bound every point; the moment perturbation enters bounds through
        a slope of magnitude ``<= gamma``, so widening each bound by
        ``gamma * err_s1`` (plus a float64 evaluation slack) certifies
        the result.  ``pos_w``/``neg_w`` stay exact float64 (they are
        per-node, not per-query, so float32 saves nothing there).
        """
        tree = self.tree
        m, d = self.m, tree.d
        mir = self._f32_mirrors()
        q32 = q.astype(np.float32)
        q_abs32 = np.abs(q32)
        q_sq32 = np.float32(q32 @ q32)
        k_ops = _op_factor(d)

        near32, far32 = tree.all_pair_dist_bounds_f32(q32)
        far = far32.astype(np.float64)
        err_arg = _U32 * k_ops * far
        arg_lo = np.empty(m)
        arg_hi = np.empty(m)
        arg_lo[0] = arg_hi[0] = 0.0
        arg_lo[1:] = np.maximum(near32.astype(np.float64) - err_arg, 0.0)
        arg_hi[1:] = far + err_arg

        pos_s1_t, err_s1, mag_s1, pos_w64 = self._f32_moments(
            mir, "pos", q32, q_sq32, q_abs32, q_sq, k_ops
        )
        pos_s1 = np.empty(m)
        pos_s1[0] = 0.0
        pos_s1[1:] = pos_s1_t
        err_t = self.gamma * err_s1
        # float64 evaluation slack: intermediates are bounded by
        # s0 + gamma * (|s1| + hi * s0); a generous 64-ulp multiple covers
        # the ~15 floating ops of the chord/tangent formulas
        slack_mag = pos_w64 + self.gamma * (mag_s1 + arg_hi[1:] * pos_w64)
        if self.has_neg:
            neg_s1_t, nerr_s1, nmag_s1, neg_w64 = self._f32_moments(
                mir, "neg", q32, q_sq32, q_abs32, q_sq, k_ops
            )
            neg_s1 = np.empty(m)
            neg_s1[0] = 0.0
            neg_s1[1:] = neg_s1_t
            neg_w = tree.stats.neg_w
            err_t = err_t + self.gamma * nerr_s1
            slack_mag = slack_mag + neg_w64 + self.gamma * (
                nmag_s1 + arg_hi[1:] * neg_w64
            )
        else:
            neg_w = neg_s1 = self._zeros
        err = np.zeros(m)
        err[1:] = err_t + 64.0 * _EPS64 * slack_mag
        return arg_lo, arg_hi, tree.stats.pos_w, pos_s1, neg_w, neg_s1, err, 1

    # ------------------------------------------------------------------
    # loop dispatch
    # ------------------------------------------------------------------

    def run(self, q, q_sq, root_lb, root_ub, stop, spec, trace, stats, otrace):
        """Refine from precomputed root bounds; mirrors ``_refine``'s loop.

        ``spec`` is the structured stop condition ``(mode, p1, p2)`` the
        compiled kernel evaluates inline; the Python twin uses the
        ``stop`` closure directly, so instrumented runs (obs traces,
        ``BoundTrace``, the frontier parity hook) take the per-pop twin
        with identical recording to the interpreted loop.
        """
        from repro.core import aggregator as agg_mod

        ns = native.get_kernels()
        if ns.compile_seconds and otrace is not None:
            # surface one-time JIT cost in the first traced query's phases
            if not getattr(native, "_compile_phase_reported", False):
                native._compile_phase_reported = True
                otrace.add_phase("native_compile", ns.compile_seconds)
        use_kernel = (
            (ns.compiled or native.pykernel_forced())
            and trace is None
            and otrace is None
            and not agg_mod._VERIFY_FRONTIER
        )
        if use_kernel:
            mode, p1, p2 = spec
            return self._run_kernel(
                q, q_sq, root_lb, root_ub, mode, p1, p2, stats, ns
            )
        return self._run_python(
            q, q_sq, root_lb, root_ub, stop, spec, trace, stats, otrace
        )

    # -- Python twin (heapq; handles all instrumentation) ---------------

    def _run_python(self, q, q_sq, root_lb, root_ub, stop, spec, trace,
                    stats, otrace):
        from repro.core import aggregator as agg_mod

        if trace is None and otrace is None and not agg_mod._VERIFY_FRONTIER:
            return self._run_python_fast(q, q_sq, root_lb, root_ub, spec,
                                         stats)
        return self._run_python_traced(q, q_sq, root_lb, root_ub, stop,
                                       trace, stats, otrace)

    def _run_python_fast(self, q, q_sq, root_lb, root_ub, spec, stats):
        """The uninstrumented fallback loop — the fast tier when numba is
        absent.  Delegates to the code-generated specialization (see
        :mod:`repro.native.fastloop`): same arithmetic as
        ``_run_python_traced`` with the Neumaier steps, the ``spec``
        stop condition, and the chord/tangent part bounds all inlined
        straight-line for this (scheme, profile) configuration."""
        return self._fast_loop(self, q, q_sq, root_lb, root_ub, spec, stats)

    def _run_python_traced(self, q, q_sq, root_lb, root_ub, stop, trace,
                           stats, otrace):
        from repro.core import aggregator as agg_mod

        agg = self.agg
        tree = self.tree
        _acc = agg_mod._acc_add
        node_bounds = _kernels.node_bounds_scalar
        heappush = heapq.heappush
        heappop = heapq.heappop
        terminal = self.terminal
        left = tree.left
        scheme_id, pid = self.scheme_id, self.pid
        gamma, aux = self.gamma, self.aux
        has_neg = self.has_neg

        exact_sum = 0.0
        frontier_lb, comp_lb = root_lb, 0.0
        frontier_ub, comp_ub = root_ub, 0.0
        tie = count()
        heap = [(-(root_ub - root_lb), next(tie), 0, root_lb, root_ub)]

        lb = exact_sum + (frontier_lb + comp_lb)
        ub = exact_sum + (frontier_ub + comp_ub)
        if trace is not None:
            trace.record(lb, ub)
        if otrace is not None:
            otrace.total_bound_evals += 1  # the root

        pre = None  # SoA lists, built lazily on the first expansion
        while heap and not stop(lb, ub):
            stats.iterations += 1
            _, _, node, node_lb, node_ub = heappop(heap)
            frontier_lb, comp_lb = _acc(frontier_lb, comp_lb, -node_lb)
            frontier_ub, comp_ub = _acc(frontier_ub, comp_ub, -node_ub)
            if otrace is not None:
                pop_t0 = time.perf_counter()
                pop_expanded = pop_leaves = pop_points = 0

            if terminal[node]:
                exact_sum += agg._leaf_exact(q, q_sq, node)
                stats.record_leaf(tree.node_size(node))
                if otrace is not None:
                    pop_leaves = 1
                    pop_points = tree.node_size(node)
                    otrace.add_phase("leaves", time.perf_counter() - pop_t0)
            else:
                stats.record_expansion()
                if pre is None:
                    pre_t0 = time.perf_counter()
                    pre = tuple(
                        a.tolist() if isinstance(a, np.ndarray) else a
                        for a in self._precompute_arrays(q, q_sq)
                    )
                    if otrace is not None:
                        otrace.add_phase(
                            "native_precompute", time.perf_counter() - pre_t0
                        )
                arg_lo, arg_hi, pos_w, pos_s1, neg_w, neg_s1, err, widen = pre
                first = int(left[node])
                for child in (first, first + 1):
                    c_lb, c_ub = node_bounds(
                        scheme_id, pid, gamma, aux,
                        arg_lo[child], arg_hi[child],
                        pos_w[child], pos_s1[child],
                        neg_w[child], neg_s1[child], has_neg,
                    )
                    if widen:
                        c_lb = c_lb - err[child]
                        c_ub = c_ub + err[child]
                    frontier_lb, comp_lb = _acc(frontier_lb, comp_lb, c_lb)
                    frontier_ub, comp_ub = _acc(frontier_ub, comp_ub, c_ub)
                    heappush(
                        heap, (-(c_ub - c_lb), next(tie), child, c_lb, c_ub)
                    )
                if otrace is not None:
                    pop_expanded = 1
                    otrace.add_phase("bounds", time.perf_counter() - pop_t0)

            if agg_mod._VERIFY_FRONTIER:
                agg._verify_frontier(heap, frontier_lb + comp_lb,
                                     frontier_ub + comp_ub)

            lb = exact_sum + (frontier_lb + comp_lb)
            ub = exact_sum + (frontier_ub + comp_ub)
            if trace is not None:
                trace.record(lb, ub)
            if otrace is not None:
                otrace.record_round(
                    frontier=len(heap), expanded=pop_expanded,
                    leaves=pop_leaves, points=pop_points,
                    bound_evals=2 * pop_expanded, lb=lb, ub=ub,
                )

        if not heap:
            lb = ub = exact_sum
        if otrace is not None:
            agg._finish_trace(
                otrace, q, q_sq, [item[2] for item in heap], stats, lb, ub
            )
        return lb, ub, stats

    # -- compiled kernel loop (resumed across terminal pops) ------------

    def _run_kernel(self, q, q_sq, root_lb, root_ub, mode, p1, p2, stats, ns):
        agg = self.agg
        tree = self.tree
        lb = 0.0 + (root_lb + 0.0)
        ub = 0.0 + (root_ub + 0.0)
        # the loop's first stop check, evaluated before paying for the
        # precompute (mode 2's counter starts at 0 -> one check consumed)
        if mode == 0:
            stopped = lb > p1 or ub <= p1
        elif mode == 1:
            stopped = ub <= (1.0 + p1) * lb
        elif mode == 2:
            stopped = 0 >= p1
        else:
            stopped = ub + p2 <= (1.0 + p1) * (lb + p2)
        if stopped:
            return lb, ub, stats

        arg_lo, arg_hi, pos_w, pos_s1, neg_w, neg_s1, err, widen = (
            self._precompute_arrays(q, q_sq)
        )
        m = self.m
        hk = np.empty(m + 2)
        ht = np.empty(m + 2, dtype=np.int64)
        hn = np.empty(m + 2, dtype=np.int64)
        hl = np.empty(m + 2)
        hu = np.empty(m + 2)
        hk[0] = -(root_ub - root_lb)
        ht[0] = 0
        hn[0] = 0
        hl[0] = root_lb
        hu[0] = root_ub
        istate = np.zeros(6, dtype=np.int64)
        istate[0] = 1   # heap holds the root
        istate[1] = 1   # next tie
        istate[4] = 1   # first stop check already ran above
        istate[5] = 1   # ... and counted, for mode 2
        fstate = np.zeros(8)
        fstate[0] = root_lb
        fstate[2] = root_ub
        fstate[5] = lb
        fstate[6] = ub

        refine = ns.refine_leaf_yield
        while True:
            status, node = refine(
                hk, ht, hn, hl, hu, istate, fstate,
                self.left, self.terminal,
                arg_lo, arg_hi, pos_w, pos_s1, neg_w, neg_s1, err,
                self.has_neg, widen,
                self.scheme_id, self.pid, self.gamma, self.aux,
                mode, float(p1), float(p2),
            )
            if status != _kernels.LEAF:
                break
            node = int(node)
            fstate[4] += self._leaf_exact(q, q_sq, node)
            stats.record_leaf(tree.node_size(node))
            fstate[5] = fstate[4] + (fstate[0] + fstate[1])
            fstate[6] = fstate[4] + (fstate[2] + fstate[3])

        stats.iterations = int(istate[2])
        stats.nodes_expanded = int(istate[3])
        if status == _kernels.EXHAUSTED:
            lb = ub = float(fstate[4])
        else:
            lb = float(fstate[5])
            ub = float(fstate[6])
        return lb, ub, stats
