"""Jittable refinement kernels: scalar bound math + array-heap loop.

Everything in this module is plain Python written inside numba's
``nopython`` subset; :func:`build_jit` rebinds the module globals to their
``@njit`` twins in dependency order, so the same source serves as the
compiled kernel and — uncompiled — as its reference twin (the
``force_pykernel`` testing tier).

Bitwise contract with the interpreted evaluator
-----------------------------------------------
Every formula below is a verbatim transcription of the scalar paths in
:mod:`repro.core.bounds` (``KARLBounds.part_bounds`` convex/linear
branches, ``SOTABounds.part_bounds``, ``HybridBounds``, the generic
Type III ``node_bounds`` rule) and :mod:`repro.core.profiles` (the
``math.*`` scalar branches).  Notable traps encoded here:

* ``math.exp`` is libm — numba lowers it to the same libm call, while
  ``np.exp`` over arrays takes a SIMD path that differs in the last ulp
  on ~5% of inputs.  Per-node bound evaluation therefore stays scalar.
* Cauchy's derivative divides by ``den ** 2.0`` — CPython's ``den ** 2``
  is libm ``pow``, which differs from ``den * den`` on ~0.1% of inputs.
* Moment clipping is the conditional ``s1 if s1 > 0.0 else 0.0``, not
  ``max``: the two differ on negative zeros.

The heap stores keys ``(-gap, tie)``; ties are unique and monotone, so
pop order is independent of the heap implementation and matches
``heapq`` exactly.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "node_bounds_scalar",
    "refine_leaf_yield",
    "worst_gap_rows",
    "worst_gap_rows_py",
    "build_jit",
]

#: must match repro.core.bounds._DEGENERATE_SPAN
_DEGENERATE_SPAN = 1e-13

# profile ids (see driver.PROFILE_IDS)
_GAUSSIAN = 0
_LAPLACIAN = 1
_CAUCHY = 2
_EPANECHNIKOV = 3

# scheme ids
_KARL = 0
_SOTA = 1
_HYBRID = 2

# refine_leaf_yield status codes
STOPPED = 0
LEAF = 1
EXHAUSTED = 2


# ----------------------------------------------------------------------
# scalar profile evaluation (transcribed from repro.core.profiles)
# ----------------------------------------------------------------------

def _value(pid, gamma, aux, x):
    """``g(x)`` — scalar branches of the four distance profiles."""
    if pid == _GAUSSIAN:
        return math.exp(-gamma * x)
    if pid == _LAPLACIAN:
        return math.exp(-gamma * math.sqrt(max(x, 0.0)))
    if pid == _CAUCHY:
        return 1.0 / (1.0 + gamma * x)
    v = 1.0 - gamma * x  # Epanechnikov
    return v if v > 0.0 else 0.0


def _deriv(pid, gamma, aux, x):
    """``g'(x)`` — ``aux`` is Laplacian's eps / Epanechnikov's cutoff."""
    if pid == _GAUSSIAN:
        return -gamma * math.exp(-gamma * x)
    if pid == _LAPLACIAN:
        root = math.sqrt(max(x, aux))
        return -gamma / (2.0 * root) * math.exp(-gamma * root)
    if pid == _CAUCHY:
        den = 1.0 + gamma * x
        return -gamma / den ** 2.0
    return -gamma if x < aux else 0.0  # Epanechnikov subgradient


# ----------------------------------------------------------------------
# scalar bound schemes (transcribed from repro.core.bounds)
# ----------------------------------------------------------------------

def _karl_part(pid, gamma, aux, lo, hi, s0, s1):
    if s0 <= 0.0:
        return 0.0, 0.0
    span = hi - lo
    if span <= _DEGENERATE_SPAN:
        # range_on: all four profiles are decreasing -> (g(hi), g(lo))
        return s0 * _value(pid, gamma, aux, hi), s0 * _value(pid, gamma, aux, lo)
    xbar = s1 / s0
    xbar = lo if xbar < lo else hi if xbar > hi else xbar
    if pid == _LAPLACIAN:  # clamp_tangent away from the g' singularity
        xbar = xbar if xbar >= aux else aux
    glo = _value(pid, gamma, aux, lo)
    ghi = _value(pid, gamma, aux, hi)
    chord_val = glo * s0 + (ghi - glo) / span * (s1 - lo * s0)
    if pid == _EPANECHNIKOV and (hi <= aux or lo >= aux):
        return chord_val, chord_val  # "linear" shape: the chord is exact
    gx = _value(pid, gamma, aux, xbar)
    tangent_val = gx * s0 + _deriv(pid, gamma, aux, xbar) * (s1 - xbar * s0)
    return tangent_val, chord_val


def _sota_part(pid, gamma, aux, lo, hi, s0, s1):
    gmin = _value(pid, gamma, aux, hi)
    gmax = _value(pid, gamma, aux, lo)
    return s0 * gmin, s0 * gmax


def _part_bounds(scheme_id, pid, gamma, aux, lo, hi, s0, s1):
    if scheme_id == _KARL:
        return _karl_part(pid, gamma, aux, lo, hi, s0, s1)
    if scheme_id == _SOTA:
        return _sota_part(pid, gamma, aux, lo, hi, s0, s1)
    klb, kub = _karl_part(pid, gamma, aux, lo, hi, s0, s1)
    slb, sub = _sota_part(pid, gamma, aux, lo, hi, s0, s1)
    # Python max/min return the first argument on ties
    lb = klb if klb >= slb else slb
    ub = kub if kub <= sub else sub
    return lb, ub


def node_bounds_scalar(scheme_id, pid, gamma, aux, lo, hi,
                       s0p, s1p, s0n, s1n, has_neg):
    """Node contribution bounds; Type III rule ``LB+ - UB-, UB+ - LB-``."""
    lb, ub = _part_bounds(scheme_id, pid, gamma, aux, lo, hi, s0p, s1p)
    if has_neg and s0n > 0.0:
        nlb, nub = _part_bounds(scheme_id, pid, gamma, aux, lo, hi, s0n, s1n)
        return lb - nub, ub - nlb
    return lb, ub


# ----------------------------------------------------------------------
# compensated frontier sums (transcribed from aggregator._acc_add)
# ----------------------------------------------------------------------

def _acc_add(s, c, x):
    t = s + x
    if abs(s) >= abs(x):
        c += (s - t) + x
    else:
        c += (x - t) + s
    return t, c


# ----------------------------------------------------------------------
# array-based binary heap keyed on (key, tie) — unique keys, so the pop
# order matches heapq's tuple ordering exactly
# ----------------------------------------------------------------------

def _heap_push(keys, ties, nodes, lbs, ubs, size, k, t, nd, lo, hi):
    i = size
    keys[i] = k
    ties[i] = t
    nodes[i] = nd
    lbs[i] = lo
    ubs[i] = hi
    while i > 0:
        parent = (i - 1) >> 1
        pk = keys[parent]
        if k < pk or (k == pk and t < ties[parent]):
            keys[i] = keys[parent]
            ties[i] = ties[parent]
            nodes[i] = nodes[parent]
            lbs[i] = lbs[parent]
            ubs[i] = ubs[parent]
            i = parent
        else:
            break
    keys[i] = k
    ties[i] = t
    nodes[i] = nd
    lbs[i] = lo
    ubs[i] = hi
    return size + 1


def _heap_pop(keys, ties, nodes, lbs, ubs, size):
    nd = nodes[0]
    lo = lbs[0]
    hi = ubs[0]
    size -= 1
    if size > 0:
        k = keys[size]
        t = ties[size]
        mn = nodes[size]
        ml = lbs[size]
        mu = ubs[size]
        i = 0
        while True:
            child = 2 * i + 1
            if child >= size:
                break
            right = child + 1
            if right < size:
                ck, rk = keys[child], keys[right]
                if rk < ck or (rk == ck and ties[right] < ties[child]):
                    child = right
            ck = keys[child]
            if ck < k or (ck == k and ties[child] < t):
                keys[i] = keys[child]
                ties[i] = ties[child]
                nodes[i] = nodes[child]
                lbs[i] = lbs[child]
                ubs[i] = ubs[child]
                i = child
            else:
                break
        keys[i] = k
        ties[i] = t
        nodes[i] = mn
        lbs[i] = ml
        ubs[i] = mu
    return size, nd, lo, hi


# ----------------------------------------------------------------------
# the resumable best-first loop
# ----------------------------------------------------------------------

def refine_leaf_yield(
    heap_key, heap_tie, heap_node, heap_lb, heap_ub,
    istate, fstate,
    left, terminal,
    arg_lo, arg_hi, pos_w, pos_s1, neg_w, neg_s1, err,
    has_neg, widen,
    scheme_id, pid, gamma, aux,
    mode, p1, p2,
):
    """Run best-first refinement until a stop, a terminal pop, or exhaustion.

    Mirrors ``KernelAggregator._refine``'s loop body on flat arrays.  The
    exact leaf aggregate needs numpy/BLAS arithmetic that must match the
    interpreted path bitwise, so terminal pops *yield*: the function
    returns ``(LEAF, node)`` with all loop state parked in ``istate`` /
    ``fstate``, the caller folds the leaf's exact sum into
    ``fstate[4]``..``fstate[6]`` and re-enters.  ``(STOPPED, -1)`` means
    the stop predicate fired; ``(EXHAUSTED, -1)`` means the heap drained.

    State layout — ``istate``: 0 heap size, 1 tie counter, 2 pops,
    3 expansions, 4 skip-first-check flag, 5 stop checks consumed;
    ``fstate``: 0/1 compensated frontier lower (sum, correction), 2/3
    frontier upper, 4 exact sum, 5 global lb, 6 global ub.

    Stop modes: 0 TKAQ (``lb > p1 or ub <= p1``), 1 eKAQ
    (``ub <= (1+p1)*lb``), 2 pop budget (``checks >= p1``), 3
    buffer-shifted eKAQ (``ub+p2 <= (1+p1)*(lb+p2)``).
    """
    size = istate[0]
    tie = istate[1]
    f_lb = fstate[0]
    c_lb = fstate[1]
    f_ub = fstate[2]
    c_ub = fstate[3]
    exact_sum = fstate[4]
    lb = fstate[5]
    ub = fstate[6]

    while size > 0:
        if istate[4] != 0:
            istate[4] = 0  # caller already ran this iteration's stop check
        elif mode == 0:
            if lb > p1 or ub <= p1:
                break
        elif mode == 1:
            if ub <= (1.0 + p1) * lb:
                break
        elif mode == 2:
            checks = istate[5]
            istate[5] = checks + 1
            if checks >= p1:
                break
        else:
            if ub + p2 <= (1.0 + p1) * (lb + p2):
                break

        size, node, node_lb, node_ub = _heap_pop(
            heap_key, heap_tie, heap_node, heap_lb, heap_ub, size
        )
        istate[2] += 1
        f_lb, c_lb = _acc_add(f_lb, c_lb, -node_lb)
        f_ub, c_ub = _acc_add(f_ub, c_ub, -node_ub)

        if terminal[node] != 0:
            # park the state and yield: the caller adds the exact leaf
            # aggregate and recomputes lb/ub with the same expressions
            istate[0] = size
            istate[1] = tie
            fstate[0] = f_lb
            fstate[1] = c_lb
            fstate[2] = f_ub
            fstate[3] = c_ub
            fstate[4] = exact_sum
            return LEAF, node

        istate[3] += 1
        first = left[node]
        for j in range(2):
            child = first + j
            c_lo, c_hi = node_bounds_scalar(
                scheme_id, pid, gamma, aux,
                arg_lo[child], arg_hi[child],
                pos_w[child], pos_s1[child], neg_w[child], neg_s1[child],
                has_neg,
            )
            if widen != 0:
                c_lo = c_lo - err[child]
                c_hi = c_hi + err[child]
            f_lb, c_lb = _acc_add(f_lb, c_lb, c_lo)
            f_ub, c_ub = _acc_add(f_ub, c_ub, c_hi)
            size = _heap_push(
                heap_key, heap_tie, heap_node, heap_lb, heap_ub, size,
                -(c_hi - c_lo), tie, child, c_lo, c_hi,
            )
            tie += 1

        lb = exact_sum + (f_lb + c_lb)
        ub = exact_sum + (f_ub + c_ub)

    istate[0] = size
    istate[1] = tie
    fstate[0] = f_lb
    fstate[1] = c_lb
    fstate[2] = f_ub
    fstate[3] = c_ub
    fstate[4] = exact_sum
    fstate[5] = lb
    fstate[6] = ub
    return (STOPPED, -1) if size > 0 else (EXHAUSTED, -1)


# ----------------------------------------------------------------------
# multiquery per-round reduction
# ----------------------------------------------------------------------

def worst_gap_rows(lb_mat, ub_mat):
    """Per-row argmax of ``ub - lb`` without materialising the gap matrix.

    First-maximum semantics match ``np.argmax`` (strict ``>`` update);
    gaps are assumed finite (guaranteed for the supported profiles).
    """
    n_rows, n_cols = lb_mat.shape
    out = np.empty(n_rows, dtype=np.int64)
    for i in range(n_rows):
        best = ub_mat[i, 0] - lb_mat[i, 0]
        idx = 0
        for j in range(1, n_cols):
            v = ub_mat[i, j] - lb_mat[i, j]
            if v > best:
                best = v
                idx = j
        out[i] = idx
    return out


def worst_gap_rows_py(lb_mat, ub_mat):
    """Numpy twin of :func:`worst_gap_rows` (used when numba is absent)."""
    return np.argmax(np.subtract(ub_mat, lb_mat), axis=1)


# ----------------------------------------------------------------------
# JIT assembly
# ----------------------------------------------------------------------

def build_jit(njit):
    """Rebind the module's kernels to ``@njit`` twins, dependency-first.

    numba resolves global references at first compilation, so jitting in
    call order makes every nested call a fast nopython call.  Returns the
    two public entry points.  After this runs, the pure-Python twins are
    replaced in-module (the ``force_pykernel`` tier is only meaningful in
    numba-free environments).
    """
    global _value, _deriv, _karl_part, _sota_part, _part_bounds
    global node_bounds_scalar, _acc_add, _heap_push, _heap_pop
    global refine_leaf_yield, worst_gap_rows
    _value = njit(_value)
    _deriv = njit(_deriv)
    _karl_part = njit(_karl_part)
    _sota_part = njit(_sota_part)
    _part_bounds = njit(_part_bounds)
    node_bounds_scalar = njit(node_bounds_scalar)
    _acc_add = njit(_acc_add)
    _heap_push = njit(_heap_push)
    _heap_pop = njit(_heap_pop)
    refine_leaf_yield = njit(refine_leaf_yield)
    worst_gap_rows = njit(worst_gap_rows)
    return refine_leaf_yield, worst_gap_rows


def warm_compile(ns) -> None:
    """Force compilation on a two-node toy problem (root + no children).

    Called once by ``repro.native.get_kernels`` so the JIT cost is paid
    (and measured) in one place instead of silently inside the first
    query.
    """
    m = 3
    f = np.zeros(m, dtype=np.float64)
    i8 = np.zeros(m, dtype=np.int64)
    heap = [np.zeros(m + 2) for _ in range(2)]
    heap_i = [np.zeros(m + 2, dtype=np.int64) for _ in range(3)]
    istate = np.zeros(6, dtype=np.int64)
    fstate = np.zeros(8, dtype=np.float64)
    left = i8.copy()
    left[0] = 1
    terminal = np.ones(m, dtype=np.uint8)
    terminal[0] = 0
    istate[0] = 1  # root on the heap
    heap_i[1][0] = 0
    ns.refine_leaf_yield(
        heap[0], heap_i[0], heap_i[1], heap[1], np.zeros(m + 2),
        istate, fstate,
        left, terminal,
        f, f.copy(), f.copy(), f.copy(), f.copy(), f.copy(), f.copy(),
        0, 0, 0, 0, 1.0, 0.0, 1, 0.5, 0.0,
    )
    ns.worst_gap_rows(np.zeros((2, 2)), np.ones((2, 2)))
