"""Linear functions of the kernel argument and their O(d) aggregation.

The paper's Lemma 2 (Type I) and Lemma 5 (Type II) show that for a linear
function ``Lin_{m,c}(x) = m*x + c`` of the kernel argument ``x``,

    FL_P(q, Lin_{m,c}) = sum_i w_i * (m * x_i + c) = m * S1 + c * S0

where ``S0 = sum_i w_i`` and ``S1 = sum_i w_i * x_i`` are the zeroth and
first weighted moments of the argument.  Both moments are O(d) at query
time given the per-node sufficient statistics:

* distance argument ``x_i = dist(q, p_i)^2``:
  ``S1 = w_P * ||q||^2 - 2 * q . a_P + b_P``
* dot-product argument ``x_i = q . p_i``:
  ``S1 = q . a_P``

with ``w_P = sum w_i``, ``a_P = sum w_i p_i``, ``b_P = sum w_i ||p_i||^2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Line", "chord", "tangent", "moments_dist_sq", "moments_dot"]


@dataclass(frozen=True)
class Line:
    """The linear function ``x -> m*x + c``."""

    m: float
    c: float

    def __call__(self, x):
        return self.m * np.asarray(x, dtype=np.float64) + self.c

    def aggregate(self, s0: float, s1: float) -> float:
        """``sum_i w_i * (m*x_i + c)`` given moments ``s0, s1`` (Lemma 2/5)."""
        return self.m * s1 + self.c * s0


def chord(profile, lo: float, hi: float) -> Line:
    """Chord of ``g`` between ``(lo, g(lo))`` and ``(hi, g(hi))`` (Eq. 6-7).

    Degenerates to the constant ``g(lo)`` when the interval has zero width.
    """
    glo = float(profile.value(lo))
    ghi = float(profile.value(hi))
    span = hi - lo
    if span <= 0.0 or not np.isfinite(span):
        return Line(0.0, max(glo, ghi))
    m = (ghi - glo) / span
    return Line(m, glo - m * lo)


def tangent(profile, t: float) -> Line:
    """Tangent of ``g`` at ``t``: slope ``g'(t)``, through ``(t, g(t))``."""
    m = float(profile.deriv(t))
    return Line(m, float(profile.value(t)) - m * t)


def moments_dist_sq(
    q_sq_norm: float, q: np.ndarray, w: float, a: np.ndarray, b: float
) -> tuple[float, float]:
    """Moments ``(S0, S1)`` of the squared-distance argument (Lemma 2/5).

    ``S1 = sum_i w_i * dist(q, p_i)^2 = w*||q||^2 - 2*q.a + b``; tiny
    negative values from floating-point cancellation are clamped to 0.
    """
    s1 = w * q_sq_norm - 2.0 * float(q @ a) + b
    return w, s1 if s1 > 0.0 else 0.0


def moments_dot(q: np.ndarray, w: float, a: np.ndarray) -> tuple[float, float]:
    """Moments ``(S0, S1)`` of the dot-product argument (Section IV-B)."""
    return w, float(q @ a)
