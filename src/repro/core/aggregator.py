"""Best-first kernel aggregation query evaluator (TKAQ / eKAQ).

This is the refinement framework of the state of the art (paper
Section II-B, Table V) that KARL reuses unchanged — only the per-node bound
functions differ:

1. compute bounds for the root node; initialise global ``lb``/``ub``;
2. repeatedly pop the frontier node with the largest bound gap
   ``ub_R - lb_R`` from a priority queue;
3. replace its contribution either by its children's bounds or — at a leaf —
   by the exact partial aggregate over its points;
4. stop as soon as the query can be answered from the global bounds:
   ``lb > tau`` or ``ub <= tau`` (TKAQ), ``ub <= (1+eps) * lb`` (eKAQ).

The evaluator supports a *depth cap*: nodes at ``max_depth`` are treated as
leaves.  Capping at depth ``i`` simulates the truncated tree ``T_i`` of the
in-situ online tuner (Section III-C) on the single fully-built tree.
"""

from __future__ import annotations

import heapq
import time
from itertools import count

import numpy as np

from repro.core.bounds import BoundScheme, HybridBounds, KARLBounds, SOTABounds
from repro.core.errors import (
    DataShapeError,
    InvalidParameterError,
    as_matrix,
    as_query_param,
    as_vector,
    as_warm_interval,
)
from repro.core.kernels import Kernel
from repro.core.results import (
    BatchQueryStats,
    BoundTrace,
    EKAQBatchResult,
    EKAQResult,
    QueryStats,
    TKAQBatchResult,
    TKAQResult,
    fold_query_stats,
)
from repro.obs import runtime as _obs

__all__ = ["KernelAggregator", "resolve_scheme"]

#: scheme instances the tracer uses to attribute pruning power (KARL vs
#: SOTA bounds at the frontier nodes left unopened at termination)
_COMPARE_SCHEMES = (KARLBounds(), SOTABounds())

#: cap on the element count of one (queries x points) kernel grid in
#: ``exact_many``; larger batches are evaluated in query blocks so the
#: temporaries stay cache-friendly (~32 MB of float64)
_MAX_EXACT_ELEMENTS = 1 << 22

#: smallest batch ``backend="auto"`` routes through an enabled coreset
#: tier; below this the exact backends' per-batch overhead is lower
_CORESET_AUTO_BATCH = 64

#: test hook: when True, the refinement loop cross-checks its compensated
#: running frontier sums against a full O(|heap|) re-summation every pop
_VERIFY_FRONTIER = False

_SCHEMES = {"karl": KARLBounds, "sota": SOTABounds, "hybrid": HybridBounds}


def _acc_add(s: float, c: float, x: float) -> tuple[float, float]:
    """One Neumaier step: fold ``x`` into the compensated sum ``(s, c)``.

    The frontier lower/upper sums are maintained incrementally across heap
    pushes and pops; plain floating adds would drift over long refinement
    runs (the old design periodically re-summed the whole heap, an
    O(|heap|) stall).  Compensated summation keeps the running value exact
    to within one rounding of the true sum with O(1) work per update.
    """
    t = s + x
    if abs(s) >= abs(x):
        c += (s - t) + x
    else:
        c += (x - t) + s
    return t, c


def resolve_scheme(scheme) -> BoundScheme:
    """Accept a scheme name ("karl", "sota", "hybrid") or an instance."""
    if isinstance(scheme, BoundScheme):
        return scheme
    try:
        return _SCHEMES[str(scheme).lower()]()
    except KeyError:
        raise InvalidParameterError(
            f"unknown bound scheme {scheme!r}; expected one of {sorted(_SCHEMES)}"
        ) from None


class KernelAggregator:
    """Evaluates ``F_P(q) = sum_i w_i K(q, p_i)`` queries over an index.

    Parameters
    ----------
    tree : SpatialIndex
        kd-tree or ball-tree over the weighted point set.
    kernel : Kernel
        Gaussian / Laplacian / polynomial / sigmoid kernel.
    scheme : str or BoundScheme
        ``"karl"`` (default), ``"sota"``, or ``"hybrid"``.
    max_depth : int, optional
        Treat nodes at this depth as leaves (in-situ tuning; ``None`` = full
        tree; ``0`` degenerates to a sequential scan).
    coreset : CoresetConfig, dict, or True, optional
        Enable the certified-approximate coreset tier
        (:mod:`repro.sketch`).  ``True`` uses default auto-calibrated
        construction; a dict or :class:`~repro.sketch.CoresetConfig`
        tunes it.  With a config present, ``backend="auto"`` routes
        large batches through the coreset (falling back per query to the
        exact path whenever the certificate cannot meet the contract);
        ``backend="coreset"`` works regardless, building a
        default-config coreset on first use.
    """

    def __init__(self, tree, kernel: Kernel, scheme="karl", max_depth: int | None = None,
                 coreset=None, precision: str = "float64", router=None):
        self.tree = tree
        self.kernel = kernel
        self.scheme = resolve_scheme(scheme)
        if max_depth is not None and max_depth < 0:
            raise InvalidParameterError(f"max_depth must be >= 0; got {max_depth}")
        self.max_depth = max_depth
        self._has_neg = tree.stats.has_negative
        self._multiquery = None  # lazily-built batch backend (same config)
        self._parallel = None    # lazily-built process pool backend
        self._parallel_key = None
        self._coreset = None     # lazily-built coreset tier (repro.sketch)
        self._coreset_config = coreset
        self._router = None      # lazily-built online router (core.router)
        self._router_config = router
        self._closed = False     # set by close(); forbids backend="parallel"
        self._native = None      # lazily-built native refiner (repro.native)
        # _pair_bounds relies on BFS sibling adjacency (right == left + 1)
        internal = tree.left >= 0
        if not np.all(tree.right[internal] == tree.left[internal] + 1):
            raise InvalidParameterError(
                "tree does not have BFS sibling adjacency; rebuild with "
                "repro.index.build_index"
            )
        # per-query-loop hoists: the terminal test and the kernel-argument
        # dispatch are invariant across pops, so resolve them once here
        # instead of per pop inside _refine / _pair_bounds
        self._terminal = tree.terminal_mask(max_depth)
        self._dist_arg = kernel.argument == "dist_sq"
        self._scheme_bounds = self.scheme.node_bounds
        self.precision = str(precision).lower()
        if self.precision not in ("float64", "float32"):
            raise InvalidParameterError(
                f"precision must be 'float64' or 'float32'; got {precision!r}"
            )
        if self.precision == "float32":
            from repro.native.driver import NativeRefiner

            if not (NativeRefiner.supports(tree, kernel, self.scheme)
                    and NativeRefiner.supports_float32(kernel)):
                raise InvalidParameterError(
                    "precision='float32' requires the certified native path: "
                    "a Gaussian, Cauchy, or Epanechnikov distance kernel with "
                    "a stock karl/sota/hybrid scheme (the Laplacian's clamped "
                    "slope makes its float32 error bound useless)"
                )

    # ------------------------------------------------------------------
    # exact evaluation
    # ------------------------------------------------------------------

    def exact(self, q) -> float:
        """Exact ``F_P(q)`` by direct summation (no pruning)."""
        q = as_vector(q, self.tree.d)
        vals = self.kernel.pairwise(
            q, self.tree.points, self.tree.sq_norms, float(q @ q)
        )
        return float(self.tree.weights @ vals)

    def exact_many(self, queries) -> np.ndarray:
        """Exact ``F_P(q)`` for each row of ``queries``.

        Evaluated as blocked Gram-style matrix products (the same fused
        shape as the multiquery leaf path) rather than a per-query Python
        loop; query blocks are sized so the ``(block, n)`` kernel grid
        stays within :data:`_MAX_EXACT_ELEMENTS`.
        """
        Q = self._check_queries(queries)
        tree = self.tree
        out = np.empty(Q.shape[0])
        per = max(1, _MAX_EXACT_ELEMENTS // tree.n)
        dist_arg = self.kernel.argument == "dist_sq"
        for s in range(0, Q.shape[0], per):
            block = Q[s:s + per]
            if dist_arg:
                q_sq = np.einsum("ij,ij->i", block, block)
                arg = (
                    q_sq[:, None] - 2.0 * (block @ tree.points.T)
                    + tree.sq_norms[None, :]
                )
                np.maximum(arg, 0.0, out=arg)
            else:
                arg = block @ tree.points.T
            out[s:s + per] = self.kernel.profile.value(arg) @ tree.weights
        return out

    # ------------------------------------------------------------------
    # node helpers
    # ------------------------------------------------------------------

    def _node_bounds(self, q, q_sq, node, scheme=None) -> tuple[float, float]:
        lo, hi = self.kernel.node_interval(self.tree, q, node, q_sq)
        pos = self.kernel.node_moments(self.tree, q, node, q_sq, "pos")
        neg = (
            self.kernel.node_moments(self.tree, q, node, q_sq, "neg")
            if self._has_neg
            else None
        )
        if scheme is None:
            scheme = self.scheme
        return scheme.node_bounds(self.kernel.profile, lo, hi, pos, neg)

    def _pair_bounds(self, q, q_sq, first):
        """Bounds for the sibling pair ``(first, first+1)``, fused.

        Sibling nodes have consecutive ids (BFS allocation), so geometry and
        statistics for both are sliced as zero-copy views and the numpy work
        is shared — this is the hot path of the refinement loop.
        """
        tree = self.tree
        kern = self.kernel
        profile = kern.profile
        st = tree.stats
        sl = slice(first, first + 2)
        dist_arg = self._dist_arg
        node_bounds = self._scheme_bounds

        if dist_arg:
            lo_x, hi_x = tree.pair_dist_bounds(q, first)
        else:
            lo_x, hi_x = tree.pair_ip_bounds(q, first)
        pos_aq = st.pos_a[sl] @ q
        neg_aq = st.neg_a[sl] @ q if self._has_neg else None

        out = []
        for j in (0, 1):
            node = first + j
            w = float(st.pos_w[node])
            if dist_arg:
                s1 = w * q_sq - 2.0 * float(pos_aq[j]) + float(st.pos_b[node])
                pos = (w, s1 if s1 > 0.0 else 0.0)
            else:
                pos = (w, float(pos_aq[j]))
            neg = None
            if self._has_neg:
                wn = float(st.neg_w[node])
                if dist_arg:
                    s1n = wn * q_sq - 2.0 * float(neg_aq[j]) + float(st.neg_b[node])
                    neg = (wn, s1n if s1n > 0.0 else 0.0)
                else:
                    neg = (wn, float(neg_aq[j]))
            out.append(
                node_bounds(profile, float(lo_x[j]), float(hi_x[j]), pos, neg)
            )
        return out

    def _leaf_exact(self, q, q_sq, node) -> float:
        sl = self.tree.leaf_slice(node)
        vals = self.kernel.pairwise(
            q, self.tree.points[sl], self.tree.sq_norms[sl], q_sq
        )
        return float(self.tree.weights[sl] @ vals)

    def _is_terminal(self, node) -> bool:
        if self.tree.is_leaf(node):
            return True
        return self.max_depth is not None and self.tree.depth[node] >= self.max_depth

    # ------------------------------------------------------------------
    # the refinement loop
    # ------------------------------------------------------------------

    def _refine(self, q, stop, trace: BoundTrace | None,
                kind: str = "query", param: float | None = None,
                backend: str = "loop", stop_spec=None):
        """Run best-first refinement until ``stop(lb, ub)`` or exhaustion.

        Returns ``(lb, ub, stats)``; on exhaustion ``lb == ub`` is the exact
        aggregate.  When the observability layer is enabled (``repro.obs``)
        a :class:`~repro.obs.trace.QueryTrace` records one round per heap
        pop; disabled, the instrumentation costs one ``is None`` check per
        pop.  ``backend`` only labels the trace (the streaming wrapper runs
        this loop on its indexed part).

        ``stop_spec`` is the structured twin of the ``stop`` closure —
        ``(mode, p1, p2)`` with modes 0 TKAQ / 1 eKAQ / 2 pop budget / 3
        buffer-shifted eKAQ — and enables the native refinement path
        (:mod:`repro.native`), which is bitwise-identical in float64.
        Callers with a stop rule outside those four shapes pass ``None``
        and get the interpreted loop.
        """
        q = as_vector(q, self.tree.d)
        q_sq = float(q @ q)
        stats = QueryStats()
        native_ref = (
            self._native_refiner() if stop_spec is not None else None
        )
        if native_ref is None and self.precision == "float32":
            raise InvalidParameterError(
                "precision='float32' runs only on the native refinement "
                "path; it is disabled here (REPRO_NATIVE=0 or an "
                "unsupported stop rule)"
            )
        otrace = _obs.start_trace(
            kind, backend, self.scheme.name, self.tree.n, param=param
        )

        root_lb, root_ub = self._node_bounds(q, q_sq, 0)
        if native_ref is not None:
            return native_ref.run(
                q, q_sq, root_lb, root_ub, stop, stop_spec, trace, stats,
                otrace,
            )
        exact_sum = 0.0
        # frontier sums as compensated (sum, correction) pairs, maintained
        # incrementally on every push/pop — no periodic O(|heap|) resync
        frontier_lb, comp_lb = root_lb, 0.0
        frontier_ub, comp_ub = root_ub, 0.0
        tie = count()
        heap = [(-(root_ub - root_lb), next(tie), 0, root_lb, root_ub)]

        lb = exact_sum + (frontier_lb + comp_lb)
        ub = exact_sum + (frontier_ub + comp_ub)
        if trace is not None:
            trace.record(lb, ub)
        if otrace is not None:
            otrace.total_bound_evals += 1  # the root

        # satellite hoists: terminal test is one mask load, and the hot
        # attribute/method lookups are bound once outside the loop
        terminal = self._terminal
        tree_left = self.tree.left
        node_size = self.tree.node_size
        leaf_exact = self._leaf_exact
        pair_bounds = self._pair_bounds
        heappush, heappop = heapq.heappush, heapq.heappop

        while heap and not stop(lb, ub):
            stats.iterations += 1
            _, _, node, node_lb, node_ub = heappop(heap)
            frontier_lb, comp_lb = _acc_add(frontier_lb, comp_lb, -node_lb)
            frontier_ub, comp_ub = _acc_add(frontier_ub, comp_ub, -node_ub)
            if otrace is not None:
                pop_t0 = time.perf_counter()
                pop_expanded = pop_leaves = pop_points = 0

            if terminal[node]:
                exact_sum += leaf_exact(q, q_sq, node)
                stats.record_leaf(node_size(node))
                if otrace is not None:
                    pop_leaves = 1
                    pop_points = node_size(node)
                    otrace.add_phase("leaves", time.perf_counter() - pop_t0)
            else:
                stats.record_expansion()
                first = int(tree_left[node])
                for j, (c_lb, c_ub) in enumerate(pair_bounds(q, q_sq, first)):
                    frontier_lb, comp_lb = _acc_add(frontier_lb, comp_lb, c_lb)
                    frontier_ub, comp_ub = _acc_add(frontier_ub, comp_ub, c_ub)
                    heappush(
                        heap, (-(c_ub - c_lb), next(tie), first + j, c_lb, c_ub)
                    )
                if otrace is not None:
                    pop_expanded = 1
                    otrace.add_phase("bounds", time.perf_counter() - pop_t0)

            if _VERIFY_FRONTIER:
                self._verify_frontier(heap, frontier_lb + comp_lb,
                                      frontier_ub + comp_ub)

            lb = exact_sum + (frontier_lb + comp_lb)
            ub = exact_sum + (frontier_ub + comp_ub)
            if trace is not None:
                trace.record(lb, ub)
            if otrace is not None:
                otrace.record_round(
                    frontier=len(heap), expanded=pop_expanded,
                    leaves=pop_leaves, points=pop_points,
                    bound_evals=2 * pop_expanded, lb=lb, ub=ub,
                )

        if not heap:
            lb = ub = exact_sum
        if otrace is not None:
            self._finish_trace(
                otrace, q, q_sq, [item[2] for item in heap], stats, lb, ub
            )
        return lb, ub, stats

    def _native_refiner(self):
        """The native refinement driver, or ``None`` when unavailable.

        Checked per call because ``REPRO_NATIVE`` / ``native.set_mode``
        may be toggled between queries (the support decision itself is
        cached — it depends only on construction-time configuration).
        """
        from repro import native

        if not native.enabled():
            return None
        if self._native is None:
            from repro.native.driver import NativeRefiner

            self._native = (
                NativeRefiner(self)
                if NativeRefiner.supports(self.tree, self.kernel, self.scheme)
                else False
            )
        return self._native or None

    @staticmethod
    def _verify_frontier(heap, inc_lb: float, inc_ub: float) -> None:
        """Parity check (test hook): incremental sums vs full re-summation."""
        full_lb = sum(item[3] for item in heap)
        full_ub = sum(item[4] for item in heap)
        for inc, full in ((inc_lb, full_lb), (inc_ub, full_ub)):
            if abs(inc - full) > 1e-9 * max(1.0, abs(full)):
                raise AssertionError(
                    f"incremental frontier sum {inc!r} drifted from "
                    f"re-summed value {full!r}"
                )

    def _finish_trace(self, otrace, q, q_sq, frontier_nodes, stats, lb,
                      ub) -> None:
        """Terminal trace accounting: pruned frontier + scheme comparison.

        ``frontier_nodes`` is the node ids still on the heap.  Points under
        them at termination were *pruned* — their kernel values were never
        computed.  In compare mode each pruned node is re-bounded under
        both KARL and SOTA to attribute the pruning power (paper Figure
        13's tightness story).
        """
        pruned = 0
        karl_t = sota_t = tied = 0
        compare = _obs.compare_enabled()
        karl_scheme, sota_scheme = _COMPARE_SCHEMES
        for node in frontier_nodes:
            pruned += self.tree.node_size(node)
            if compare:
                klb, kub = self._node_bounds(q, q_sq, node, karl_scheme)
                slb, sub = self._node_bounds(q, q_sq, node, sota_scheme)
                if kub - klb < sub - slb:
                    karl_t += 1
                elif sub - slb < kub - klb:
                    sota_t += 1
                else:
                    tied += 1
        otrace.pruned_points += pruned
        otrace.total_retired += 1
        if compare:
            otrace.record_pruned_comparison(karl_t, sota_t, tied)
        otrace.extra["lb"] = lb
        otrace.extra["ub"] = ub
        _obs.finish_trace(otrace)

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------

    def tkaq(self, q, tau: float, trace: bool = False) -> TKAQResult:
        """Threshold query: is ``F_P(q) > tau``? (paper Problem 1)."""
        tau = float(tau)
        rec = BoundTrace() if trace else None
        lb, ub, stats = self._refine(
            q, lambda lo, hi: lo > tau or hi <= tau, rec, "tkaq", tau,
            stop_spec=(0, tau, 0.0),
        )
        return TKAQResult(
            answer=lb > tau, lower=lb, upper=ub, tau=tau, stats=stats, trace=rec
        )

    def ekaq(self, q, eps: float, trace: bool = False,
             warm=None) -> EKAQResult:
        """Approximate query with relative error ``eps`` (paper Problem 2).

        Terminates when ``ub <= (1+eps) * lb``; the midpoint of the terminal
        bounds then satisfies Equation 3 whenever ``lb > 0``.  If the bounds
        never certify (possible only with Type III weights, where the
        aggregate may be arbitrarily close to 0), refinement runs to
        exhaustion and the exact value is returned.

        ``warm`` is an optional sound ``(lower, upper)`` starting interval
        (a certified-cache transfer): refinement bounds are intersected
        with it inside the stop test and on the result, so a tight warm
        interval terminates early.  The warm stop rule has no structured
        ``stop_spec`` shape, so it runs on the interpreted loop (the
        native tiers only accelerate the four stock stop rules).
        """
        eps = float(eps)
        if eps < 0.0:
            raise InvalidParameterError(f"eps must be >= 0; got {eps}")
        rec = BoundTrace() if trace else None
        if warm is None:
            lb, ub, stats = self._refine(
                q, lambda lo, hi: hi <= (1.0 + eps) * lo, rec, "ekaq", eps,
                stop_spec=(1, eps, 0.0),
            )
        else:
            wlb_v, wub_v = as_warm_interval(warm, 1)
            wlb, wub = float(wlb_v[0]), float(wub_v[0])
            lb, ub, stats = self._refine(
                q,
                lambda lo, hi: min(hi, wub) <= (1.0 + eps) * max(lo, wlb),
                rec, "ekaq", eps, stop_spec=None,
            )
            lb, ub = max(lb, wlb), min(ub, wub)
        return EKAQResult(
            estimate=0.5 * (lb + ub), lower=lb, upper=ub, eps=eps,
            stats=stats, trace=rec,
        )

    def refine_bounds(self, q, max_iterations: int, trace: bool = False,
                      warm=None):
        """Anytime bounds: refine for at most ``max_iterations`` pops.

        Returns an :class:`EKAQResult` whose ``lower``/``upper`` certify
        ``lower <= F_P(q) <= upper`` regardless of where refinement stopped
        — useful when a caller has a fixed latency budget rather than a
        target precision.  ``eps`` on the result records the *achieved*
        relative half-width (``inf`` when the lower bound is not positive).

        ``warm`` (a sound ``(lower, upper)`` interval) intersects the
        result: the pop budget is unchanged, but the returned certificate
        is never wider than the warm interval the caller already held.
        """
        if max_iterations < 0:
            raise InvalidParameterError(
                f"max_iterations must be >= 0; got {max_iterations}"
            )
        checks = count()
        rec = BoundTrace() if trace else None
        # stop() runs once before each pop, so the k-th check permits k-1 pops
        lb, ub, stats = self._refine(
            q, lambda lo, hi: next(checks) >= max_iterations, rec,
            "refine", float(max_iterations),
            stop_spec=(2, float(max_iterations), 0.0),
        )
        if warm is not None:
            wlb_v, wub_v = as_warm_interval(warm, 1)
            lb, ub = max(lb, float(wlb_v[0])), min(ub, float(wub_v[0]))
        achieved = (ub - lb) / (2.0 * lb) if lb > 0.0 else float("inf")
        return EKAQResult(
            estimate=0.5 * (lb + ub), lower=lb, upper=ub, eps=achieved,
            stats=stats, trace=rec,
        )

    # ------------------------------------------------------------------
    # batch queries
    # ------------------------------------------------------------------

    def _check_queries(self, queries) -> np.ndarray:
        """Validate a query batch as an unambiguous ``(Q, d)`` matrix.

        ``np.atleast_2d`` (the old behaviour) silently turned a 1-d array
        of length ``d`` into one query *or* ``d`` one-dimensional queries
        depending on the tree — ``as_matrix`` rejects the ambiguity.
        """
        Q = as_matrix(queries, name="queries")
        if Q.shape[1] != self.tree.d:
            raise DataShapeError(
                f"queries have dimension {Q.shape[1]}, expected {self.tree.d}"
            )
        return Q

    def _multiquery_backend(self, backend: str):
        """Resolve the batch backend; ``None`` means the per-query loop."""
        from repro.core.multiquery import MultiQueryAggregator

        if backend == "loop":
            return None
        if backend not in ("auto", "multiquery"):
            raise InvalidParameterError(
                f"backend must be 'auto', 'multiquery', 'parallel', "
                f"'coreset', 'routed', 'exact', or 'loop'; got {backend!r}"
            )
        if self.precision == "float32":
            # the certified widening lives in the per-query native path
            if backend == "multiquery":
                raise InvalidParameterError(
                    "precision='float32' supports only the per-query loop "
                    "backend (auto routes there)"
                )
            return None
        supported = MultiQueryAggregator.supports(self.kernel, self.scheme)
        if not supported:
            if backend == "multiquery":
                raise InvalidParameterError(
                    "multiquery backend requires a convex-decreasing distance "
                    f"kernel and a matrix-capable scheme; got {self.kernel!r} "
                    f"with scheme {self.scheme.name!r}"
                )
            return None
        if self._multiquery is None:
            self._multiquery = MultiQueryAggregator(
                self.tree, self.kernel, self.scheme, max_depth=self.max_depth
            )
        return self._multiquery

    def _loop_batch_stats(self, per_query) -> BatchQueryStats:
        """Fold per-query ``QueryStats`` into one batch counter set."""
        return fold_query_stats(per_query)

    def _exact_batch_stats(self, n_queries: int) -> BatchQueryStats:
        """Counters for ``backend="exact"``: every point, no pruning."""
        return BatchQueryStats(
            n_queries=n_queries, rounds=1, leaves_evaluated=1,
            points_evaluated=n_queries * self.tree.n,
        )

    def _parallel_backend(self, n_workers, chunk_size):
        """Resolve (lazily build / reuse) the process-pool batch backend.

        The pool is keyed on ``(n_workers, chunk_size)``: repeated calls
        with the same shape reuse the warm pool and shared-memory index;
        changing either tears the old pool down first.
        """
        from repro.parallel.evaluator import ParallelEvaluator

        if self.precision == "float32":
            raise InvalidParameterError(
                "precision='float32' supports only the per-query loop "
                "backend; got backend='parallel'"
            )
        if self._closed:
            raise RuntimeError(
                "this KernelAggregator has been closed; backend='parallel' "
                "is no longer available (serial backends still work, or "
                "build a new aggregator)"
            )
        key = (n_workers, chunk_size)
        if self._parallel is not None and self._parallel_key != key:
            self._parallel.close()
            self._parallel = None
        if self._parallel is None:
            self._parallel = ParallelEvaluator(
                self.tree, self.kernel, scheme=self.scheme,
                max_depth=self.max_depth,
                n_workers=n_workers, chunk_size=chunk_size,
            )
            self._parallel_key = key
        return self._parallel

    def coreset_backend(self):
        """Resolve (lazily build / reuse) the coreset tier.

        Raises :class:`InvalidParameterError` when the kernel has no
        a-priori bounded values (dot-product kernels) — the exact
        backends remain available.
        """
        from repro.sketch.aggregator import CoresetAggregator, CoresetConfig

        if self.precision == "float32":
            raise InvalidParameterError(
                "precision='float32' supports only the per-query loop "
                "backend; got backend='coreset'"
            )
        if self._coreset is None:
            self._coreset = CoresetAggregator(
                self, CoresetConfig.coerce(self._coreset_config)
            )
        return self._coreset

    def router_backend(self):
        """Resolve (lazily build / reuse) the online backend router.

        Accepts the same shapes as the ``router`` constructor argument:
        a prebuilt :class:`~repro.core.router.BackendRouter` (shared
        learned state), a :class:`~repro.core.router.RouterConfig`, a
        kwargs dict, or ``True``/``None`` for defaults.  Unlike the
        coreset tier, ``backend="routed"`` needs no construction-time
        opt-in — the router only ever dispatches to backends that are
        themselves sound, so there is no contract change to opt into.
        """
        from repro.core.router import BackendRouter

        if self._router is None:
            cfg = self._router_config
            if isinstance(cfg, BackendRouter):
                self._router = cfg
            else:
                self._router = BackendRouter(cfg)
        return self._router

    @property
    def coreset_enabled(self) -> bool:
        """True when ``backend="auto"`` may route through the coreset tier.

        Requires an explicit opt-in (a ``coreset`` config at
        construction, or an externally attached/loaded coreset): the
        tier trades refinement work for certified-approximate answers
        with a different cost profile, so ``auto`` never springs it on
        callers who only asked for exact backends.
        """
        from repro.sketch.aggregator import CoresetAggregator

        if self._coreset is not None:
            return True
        return (
            self._coreset_config is not None
            and CoresetAggregator.supports(self.kernel)
        )

    def attach_coreset(self, pos, neg=None, config=None) -> None:
        """Install a persisted coreset tier (see ``repro.index.load_coreset``).

        Replaces any built tier; ``backend="coreset"`` (and ``auto``'s
        large-batch routing) then serve from the attached parts without
        re-sampling or re-calibrating.
        """
        from repro.sketch.aggregator import CoresetAggregator

        self._coreset = CoresetAggregator.from_parts(
            self, pos, neg, config=config
        )

    def _auto_coreset(self, n_queries: int) -> bool:
        """``auto`` routing: opted-in and batch large enough to amortise.

        Small batches stay on the exact backends — coreset evaluation
        has a fixed ``O(k d)`` cost per query that only wins once
        multiquery's shared-frontier refinement is the bottleneck.
        """
        return (
            n_queries >= _CORESET_AUTO_BATCH
            and self.precision != "float32"
            and self.coreset_enabled
        )

    def close(self) -> None:
        """Release the process pool and shared-memory blocks, if any.

        Only the ``backend="parallel"`` path holds OS resources; serial
        use never needs this.  Idempotent: calling it again is a no-op.
        After ``close()`` the serial backends keep working, but any
        ``*_many(backend="parallel")`` call raises :class:`RuntimeError`
        — a closed aggregator must not silently resurrect a worker pool
        its owner believes released (the serving layer relies on this
        during graceful drain).
        """
        self._closed = True
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None
            self._parallel_key = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    @staticmethod
    def _check_pool_kwargs(backend: str, n_workers, chunk_size) -> None:
        if backend != "parallel" and (n_workers is not None
                                      or chunk_size is not None):
            raise InvalidParameterError(
                "n_workers/chunk_size only apply to backend='parallel'; "
                f"got backend={backend!r}"
            )

    def tkaq_many_results(self, queries, tau, backend: str = "auto",
                          n_workers: int | None = None,
                          chunk_size: int | None = None) -> TKAQBatchResult:
        """Per-query TKAQ answers with terminal ``lower``/``upper`` arrays.

        ``tau`` is one shared threshold or a per-query ``(Q,)`` vector
        (heterogeneous batches — how the serving layer merges requests
        with different thresholds instead of fragmenting batches).

        ``backend="multiquery"`` runs the query-major vectorised evaluator
        (:class:`~repro.core.multiquery.MultiQueryAggregator`),
        ``"loop"`` the per-query heap loop, ``"parallel"`` shards the
        batch across a shared-memory process pool
        (:class:`~repro.parallel.evaluator.ParallelEvaluator`; tune with
        ``n_workers``/``chunk_size``), ``"exact"`` skips pruning
        entirely (blocked Gram-product summation — the right tier when
        thresholds sit so close to the aggregates that refinement runs
        to exhaustion anyway), ``"routed"`` lets the online
        :class:`~repro.core.router.BackendRouter` pick per batch from
        observed traces, and ``"auto"`` (default) picks
        multiquery whenever the kernel/scheme support it.  Answers are
        identical across backends; terminal bounds may differ (both bracket
        the exact aggregate) because the refinement schedules differ.
        """
        self._check_pool_kwargs(backend, n_workers, chunk_size)
        Q = self._check_queries(queries)
        tau = as_query_param(tau, Q.shape[0], "tau")
        if backend == "routed":
            return self.router_backend().tkaq_many_results(self, Q, tau)
        if backend == "exact":
            vals = self.exact_many(Q)
            return TKAQBatchResult(
                answers=vals > tau, lower=vals.copy(), upper=vals.copy(),
                tau=tau, stats=self._exact_batch_stats(Q.shape[0]),
            )
        if backend == "coreset" or (
            backend == "auto" and self._auto_coreset(Q.shape[0])
        ):
            return self.coreset_backend().tkaq_many_results(Q, tau)
        if backend == "parallel":
            return self._parallel_backend(
                n_workers, chunk_size).tkaq_many_results(Q, tau)
        impl = self._multiquery_backend(backend)
        if impl is not None:
            return impl.tkaq_many_results(Q, tau)
        taus = np.broadcast_to(tau, Q.shape[:1])
        results = [self.tkaq(q, t) for q, t in zip(Q, taus)]
        return TKAQBatchResult(
            answers=np.array([r.answer for r in results], dtype=bool),
            lower=np.array([r.lower for r in results]),
            upper=np.array([r.upper for r in results]),
            tau=tau,
            stats=self._loop_batch_stats([r.stats for r in results]),
        )

    def ekaq_many_results(self, queries, eps, backend: str = "auto",
                          n_workers: int | None = None,
                          chunk_size: int | None = None,
                          warm=None) -> EKAQBatchResult:
        """Per-query eKAQ estimates with terminal ``lower``/``upper`` arrays.

        Same backend semantics as :meth:`tkaq_many_results`; ``eps`` may
        likewise be scalar or per-query, and every estimate satisfies its
        own ``(1 +- eps_i)`` contract regardless of backend.

        ``warm`` is an optional ``(lower, upper)`` pair of sound per-query
        starting intervals (the certified cache's transferred bounds);
        refinement intersects with them, so tight warm rows terminate
        early.  Only the ``multiquery`` and ``loop`` backends refine, so
        only they accept it — the coreset tier estimates rather than
        refines, and the process pool's stop rules are fixed.
        """
        self._check_pool_kwargs(backend, n_workers, chunk_size)
        Q = self._check_queries(queries)
        eps = as_query_param(eps, Q.shape[0], "eps", minimum=0.0)
        if warm is not None and backend in ("coreset", "parallel", "exact"):
            raise InvalidParameterError(
                f"warm starting applies to the refining backends "
                f"('auto', 'multiquery', 'routed', 'loop'); "
                f"got backend={backend!r}"
            )
        if backend == "routed":
            return self.router_backend().ekaq_many_results(
                self, Q, eps, warm=warm)
        if backend == "exact":
            vals = self.exact_many(Q)
            return EKAQBatchResult(
                estimates=vals, lower=vals.copy(), upper=vals.copy(),
                eps=eps, stats=self._exact_batch_stats(Q.shape[0]),
            )
        if backend == "coreset" or (
            backend == "auto" and warm is None
            and self._auto_coreset(Q.shape[0])
        ):
            return self.coreset_backend().ekaq_many_results(Q, eps)
        if backend == "parallel":
            return self._parallel_backend(
                n_workers, chunk_size).ekaq_many_results(Q, eps)
        impl = self._multiquery_backend(backend)
        if impl is not None:
            return impl.ekaq_many_results(Q, eps, warm=warm)
        epss = np.broadcast_to(eps, Q.shape[:1])
        if warm is None:
            results = [self.ekaq(q, e) for q, e in zip(Q, epss)]
        else:
            wlb, wub = as_warm_interval(warm, Q.shape[0])
            results = [
                self.ekaq(q, e, warm=(lo, hi))
                for q, e, lo, hi in zip(Q, epss, wlb, wub)
            ]
        return EKAQBatchResult(
            estimates=np.array([r.estimate for r in results]),
            lower=np.array([r.lower for r in results]),
            upper=np.array([r.upper for r in results]),
            eps=eps,
            stats=self._loop_batch_stats([r.stats for r in results]),
        )

    def refine_many_results(self, queries, rounds, backend: str = "auto",
                            warm=None) -> EKAQBatchResult:
        """Anytime bounds for a batch: refine under a per-query round budget.

        The batch twin of :meth:`refine_bounds`: ``rounds`` is a shared
        scalar or per-query ``(Q,)`` vector of refinement-round budgets
        (heap pops on the ``loop`` backend, shared-frontier rounds on
        ``multiquery``).  Each returned ``[lower, upper]`` certifies
        ``lower <= F_P(q) <= upper`` wherever refinement stopped;
        ``rounds=0`` returns root bounds and a budget of at least the
        tree's node count refines to exhaustion (``lower == upper``).
        Only ``"auto"``, ``"multiquery"``, and ``"loop"`` backends apply
        — the coreset tier has no budget semantics and the process pool
        has no refine entry point.  ``warm`` (a sound ``(lower, upper)``
        pair, scalar or per-query per side) intersects the returned
        certificates with intervals the caller already holds.
        """
        if backend not in ("auto", "multiquery", "loop"):
            raise InvalidParameterError(
                "refine_many_results supports backend 'auto', 'multiquery', "
                f"or 'loop'; got {backend!r}"
            )
        Q = self._check_queries(queries)
        budget = as_query_param(rounds, Q.shape[0], "rounds", minimum=0.0)
        impl = self._multiquery_backend(backend)
        if impl is not None:
            return impl.refine_many_results(Q, budget, warm=warm)
        budgets = np.broadcast_to(budget, Q.shape[:1])
        if warm is None:
            results = [self.refine_bounds(q, int(b))
                       for q, b in zip(Q, budgets)]
        else:
            wlb, wub = as_warm_interval(warm, Q.shape[0])
            results = [
                self.refine_bounds(q, int(b), warm=(lo, hi))
                for q, b, lo, hi in zip(Q, budgets, wlb, wub)
            ]
        return EKAQBatchResult(
            estimates=np.array([r.estimate for r in results]),
            lower=np.array([r.lower for r in results]),
            upper=np.array([r.upper for r in results]),
            eps=np.array([r.eps for r in results]),
            stats=self._loop_batch_stats([r.stats for r in results]),
        )

    def tkaq_many(self, queries, tau, backend: str = "auto",
                  n_workers: int | None = None,
                  chunk_size: int | None = None) -> np.ndarray:
        """Vector of TKAQ answers for each row of ``queries``."""
        return self.tkaq_many_results(
            queries, tau, backend=backend,
            n_workers=n_workers, chunk_size=chunk_size,
        ).answers

    def ekaq_many(self, queries, eps, backend: str = "auto",
                  n_workers: int | None = None,
                  chunk_size: int | None = None) -> np.ndarray:
        """Vector of eKAQ estimates for each row of ``queries``."""
        return self.ekaq_many_results(
            queries, eps, backend=backend,
            n_workers=n_workers, chunk_size=chunk_size,
        ).estimates
