"""Dual-tree batch eKAQ: the Gray & Moore algorithm ([16] in the paper).

The paper's Scikit-learn baseline "is based on the algorithm in [16]" —
nonparametric density estimation by *simultaneous* traversal of a tree
over the queries and a tree over the data.  A node pair ``(Q, D)`` whose
kernel values are nearly constant across the pair is *approximated* for
every query in ``Q`` at once; only pairs near the diagonal recurse to
exact leaf-leaf computation.

The pruning rule here is the local relative rule, which gives a clean
global guarantee: a pair is approximated when

    k_max - k_min <= 2 * eps * k_min

(``k_min/k_max`` = kernel values at the pair's max/min distance).  The
midpoint approximation then errs by at most ``eps`` times the pair's true
contribution, and summing over all pairs bounds the total error by
``eps * F(q)`` per query — the same (1 +- eps) contract as eKAQ.

Supports convex-decreasing distance kernels with non-negative weights
(Type I/II) — the setting of the paper's Scikit rows.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.errors import InvalidParameterError, as_matrix
from repro.core.kernels import Kernel
from repro.index.builder import build_index
from repro.index.rectangle import rect_rect_dist_bounds
from repro.obs import runtime as _obs

__all__ = ["DualTreeEvaluator"]


class DualTreeEvaluator:
    """Batch approximate aggregation over a data tree and a query tree.

    Parameters
    ----------
    data_tree : SpatialIndex
        Tree over the weighted data points (non-negative weights).
    kernel : Kernel
        Convex-decreasing distance kernel (Gaussian, Laplacian, Cauchy,
        Epanechnikov).
    query_leaf_capacity : int
        Leaf capacity of the tree built over each query batch.
    """

    def __init__(self, data_tree, kernel: Kernel, query_leaf_capacity: int = 40):
        if kernel.argument != "dist_sq" or not kernel.profile.convex_decreasing:
            raise InvalidParameterError(
                "DualTreeEvaluator requires a convex-decreasing distance "
                f"kernel; got {kernel!r}"
            )
        if np.any(data_tree.weights < 0.0):
            raise InvalidParameterError(
                "DualTreeEvaluator requires non-negative weights (Type I/II)"
            )
        self.tree = data_tree
        self.kernel = kernel
        self.query_leaf_capacity = int(query_leaf_capacity)

    def ekaq_many(self, queries, eps: float) -> np.ndarray:
        """Estimates ``F(q)`` within ``(1 +- eps)`` for every query row.

        One simultaneous traversal serves the whole batch — the advantage
        over per-query evaluation when queries are themselves clustered.
        """
        eps = float(eps)
        if eps < 0.0:
            raise InvalidParameterError(f"eps must be >= 0; got {eps}")
        queries = as_matrix(queries, name="queries")
        if queries.shape[1] != self.tree.d:
            raise InvalidParameterError(
                f"queries have dimension {queries.shape[1]}, expected {self.tree.d}"
            )
        qtree = build_index(
            "kd", queries, leaf_capacity=self.query_leaf_capacity
        )
        estimates = np.zeros(qtree.n)

        dtree = self.tree
        profile = self.kernel.profile
        # per-data-node total weight (positive part only; weights validated)
        node_w = dtree.stats.pos_w
        otrace = _obs.start_trace(
            "ekaq", "dualtree", "midpoint", dtree.n,
            n_queries=qtree.n, param=eps,
        )
        if otrace is not None:
            t0 = time.perf_counter()
            pairs_approx = pairs_dropped = 0

        stack = [(0, 0)]
        while stack:
            qn, dn = stack.pop()
            dmin, dmax = rect_rect_dist_bounds(
                qtree.lo[qn], qtree.hi[qn], dtree.lo[dn], dtree.hi[dn]
            )
            k_max = float(profile.value(dmin))
            k_min = float(profile.value(dmax))
            w_d = float(node_w[dn])
            if otrace is not None:
                otrace.total_rounds += 1
                otrace.total_bound_evals += 1  # one pair distance bound
            if w_d <= 0.0 or k_max <= 0.0:
                # nothing to add (compact support / zero weight): the
                # whole (query, point) pair block is certified zero
                if otrace is not None:
                    pairs_dropped += 1
                    sl = qtree.leaf_slice(qn)
                    otrace.pruned_points += (
                        (sl.stop - sl.start) * dtree.node_size(dn)
                    )
                continue
            if k_max - k_min <= 2.0 * eps * k_min:
                sl = qtree.leaf_slice(qn)
                estimates[sl.start:sl.stop] += w_d * 0.5 * (k_min + k_max)
                if otrace is not None:
                    pairs_approx += 1
                    otrace.pruned_points += (
                        (sl.stop - sl.start) * dtree.node_size(dn)
                    )
                continue
            q_leaf = qtree.is_leaf(qn)
            d_leaf = dtree.is_leaf(dn)
            if q_leaf and d_leaf:
                self._exact_block(qtree, qn, dn, estimates)
                if otrace is not None:
                    q_sl = qtree.leaf_slice(qn)
                    otrace.total_leaves += 1
                    otrace.total_points += (
                        (q_sl.stop - q_sl.start) * dtree.node_size(dn)
                    )
                continue
            # recurse on the node with the larger spread
            if otrace is not None:
                otrace.total_expanded += 1
            if d_leaf or (not q_leaf and _extent(qtree, qn) >= _extent(dtree, dn)):
                l, r = qtree.children(qn)
                stack.append((l, dn))
                stack.append((r, dn))
            else:
                l, r = dtree.children(dn)
                stack.append((qn, l))
                stack.append((qn, r))

        if otrace is not None:
            otrace.add_phase("traverse", time.perf_counter() - t0)
            otrace.total_retired = qtree.n
            otrace.extra["pairs_visited"] = otrace.total_rounds
            otrace.extra["pairs_approximated"] = pairs_approx
            otrace.extra["pairs_dropped"] = pairs_dropped
            _obs.finish_trace(otrace)

        # undo the query permutation
        out = np.empty(qtree.n)
        out[qtree.perm] = estimates
        return out

    def _exact_block(self, qtree, qn, dn, estimates) -> None:
        """Exact kernel sums between a query leaf and a data leaf."""
        q_sl = qtree.leaf_slice(qn)
        d_sl = self.tree.leaf_slice(dn)
        block_q = qtree.points[q_sl]
        block_d = self.tree.points[d_sl]
        w = self.tree.weights[d_sl]
        k = self.kernel.matrix(block_q, block_d)
        estimates[q_sl.start:q_sl.stop] += k @ w


def _extent(tree, node) -> float:
    """Squared diameter proxy of a node's bounding rectangle."""
    diff = tree.hi[node] - tree.lo[node]
    return float(diff @ diff)
