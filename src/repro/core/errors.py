"""Exception hierarchy for the repro (KARL) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class.  Validation helpers used across modules live here too,
to keep error messages consistent.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "DataShapeError",
    "NotFittedError",
    "ParallelExecutionError",
    "ShardUnavailableError",
    "TransferUnsupportedError",
    "as_matrix",
    "as_query_param",
    "as_vector",
    "as_warm_interval",
    "check_positive",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter value is outside its documented domain."""


class DataShapeError(ReproError, ValueError):
    """An input array has the wrong shape, dtype, or contains non-finite values."""


class NotFittedError(ReproError, RuntimeError):
    """A model/estimator method was called before ``fit``/``build``."""


class ParallelExecutionError(ReproError, RuntimeError):
    """A parallel batch evaluation failed (worker crash, broken pool).

    Raised by the process-parallel backend instead of hanging or returning
    partial results; the batch can be retried (the evaluator rebuilds its
    worker pool) or re-run on a serial backend.
    """


class TransferUnsupportedError(ReproError, TypeError):
    """The kernel has no global Lipschitz constant in the query point.

    Raised by :func:`repro.core.lipschitz.global_lipschitz` (and hence by
    the certified answer cache) for dot-product kernels — whose values
    scale with point norms, so no data-independent transfer bound exists
    — and for distance profiles without a known closed-form constant.
    The exact and refinement backends remain fully available.
    """


class ShardUnavailableError(ReproError, RuntimeError):
    """A sharded scatter-gather batch could not be answered soundly.

    Raised by the shard router when no shard answered at all, when a
    shard failed and partial results are disabled, or when the missing
    shard's worst-case mass is unbounded (dot-product kernels) so no
    sound widened interval exists.  The router respawns dead shard
    workers before the next batch, so the error is retryable.
    """


def as_matrix(points, name: str = "points") -> np.ndarray:
    """Validate and return ``points`` as a C-contiguous float64 ``(n, d)`` matrix.

    Raises :class:`DataShapeError` for empty input, wrong rank, or
    non-finite entries.
    """
    arr = np.ascontiguousarray(points, dtype=np.float64)
    if arr.ndim != 2:
        raise DataShapeError(
            f"{name} must be a 2-d array of shape (n, d); got ndim={arr.ndim}"
        )
    if arr.shape[0] == 0:
        raise DataShapeError(f"{name} must contain at least one point")
    if arr.shape[1] == 0:
        raise DataShapeError(f"{name} must have at least one dimension")
    if not np.isfinite(arr).all():
        raise DataShapeError(f"{name} contains NaN or infinite values")
    return arr


def as_vector(vec, dim: int | None = None, name: str = "q") -> np.ndarray:
    """Validate and return ``vec`` as a float64 ``(d,)`` vector.

    If ``dim`` is given, the length must match it.
    """
    arr = np.ascontiguousarray(vec, dtype=np.float64)
    if arr.ndim != 1:
        raise DataShapeError(f"{name} must be a 1-d vector; got ndim={arr.ndim}")
    if dim is not None and arr.shape[0] != dim:
        raise DataShapeError(
            f"{name} has dimension {arr.shape[0]}, expected {dim}"
        )
    if not np.isfinite(arr).all():
        raise DataShapeError(f"{name} contains NaN or infinite values")
    return arr


def as_query_param(value, n_queries: int, name: str,
                   minimum: float | None = None):
    """Validate a per-query parameter: scalar float or ``(n_queries,)`` vector.

    The batch entry points (``tkaq_many``/``ekaq_many``) accept either one
    shared ``tau``/``eps`` for the whole batch or one value per query row
    (how the serving layer merges requests with different parameters into
    a single batch).  Returns a plain ``float`` for scalars — so the
    scalar path stays bitwise-identical to the historical behaviour — or
    a contiguous float64 vector.
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        scalar = float(arr)
        if not np.isfinite(scalar):
            raise InvalidParameterError(f"{name} must be finite; got {scalar}")
        if minimum is not None and scalar < minimum:
            raise InvalidParameterError(
                f"{name} must be >= {minimum}; got {scalar}"
            )
        return scalar
    if arr.ndim != 1 or arr.shape[0] != n_queries:
        raise DataShapeError(
            f"{name} must be a scalar or a ({n_queries},) vector matching "
            f"the query batch; got shape {arr.shape}"
        )
    if not np.isfinite(arr).all():
        raise DataShapeError(f"{name} contains NaN or infinite values")
    if minimum is not None and (arr < minimum).any():
        raise InvalidParameterError(
            f"every {name} must be >= {minimum}; "
            f"got min {float(arr.min())}"
        )
    return np.ascontiguousarray(arr)


def as_warm_interval(warm, n_queries: int, name: str = "warm"):
    """Validate a warm-start interval pair ``(lower, upper)``.

    Each side is a scalar or an ``(n_queries,)`` vector; infinities are
    fine (``(-inf, +inf)`` rows warm-start nothing), NaNs and inverted
    intervals are not.  Returns two contiguous float64 vectors.  The
    *soundness* of the interval — that it actually brackets each row's
    exact aggregate — is the caller's contract (the certified cache only
    ever passes transferred intervals, which are sound by construction);
    an unsound warm interval produces unsound clamped answers.
    """
    if not isinstance(warm, (tuple, list)) or len(warm) != 2:
        raise InvalidParameterError(
            f"{name} must be a (lower, upper) pair; got {warm!r}"
        )
    sides = []
    for value, side in zip(warm, ("lower", "upper")):
        arr = np.asarray(value, dtype=np.float64)
        if arr.ndim == 0:
            arr = np.full(n_queries, float(arr))
        elif arr.ndim != 1 or arr.shape[0] != n_queries:
            raise DataShapeError(
                f"{name} {side} must be a scalar or a ({n_queries},) "
                f"vector matching the query batch; got shape {arr.shape}"
            )
        if np.isnan(arr).any():
            raise DataShapeError(f"{name} {side} bounds contain NaN")
        sides.append(np.ascontiguousarray(arr))
    lo, hi = sides
    if (lo > hi).any():
        raise InvalidParameterError(
            f"{name} requires lower <= upper for every query"
        )
    return lo, hi


def check_positive(value: float, name: str) -> float:
    """Validate that a scalar parameter is finite and strictly positive."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise InvalidParameterError(f"{name} must be finite and > 0; got {value}")
    return value
