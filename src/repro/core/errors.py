"""Exception hierarchy for the repro (KARL) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class.  Validation helpers used across modules live here too,
to keep error messages consistent.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "DataShapeError",
    "NotFittedError",
    "ParallelExecutionError",
    "as_matrix",
    "as_vector",
    "check_positive",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter value is outside its documented domain."""


class DataShapeError(ReproError, ValueError):
    """An input array has the wrong shape, dtype, or contains non-finite values."""


class NotFittedError(ReproError, RuntimeError):
    """A model/estimator method was called before ``fit``/``build``."""


class ParallelExecutionError(ReproError, RuntimeError):
    """A parallel batch evaluation failed (worker crash, broken pool).

    Raised by the process-parallel backend instead of hanging or returning
    partial results; the batch can be retried (the evaluator rebuilds its
    worker pool) or re-run on a serial backend.
    """


def as_matrix(points, name: str = "points") -> np.ndarray:
    """Validate and return ``points`` as a C-contiguous float64 ``(n, d)`` matrix.

    Raises :class:`DataShapeError` for empty input, wrong rank, or
    non-finite entries.
    """
    arr = np.ascontiguousarray(points, dtype=np.float64)
    if arr.ndim != 2:
        raise DataShapeError(
            f"{name} must be a 2-d array of shape (n, d); got ndim={arr.ndim}"
        )
    if arr.shape[0] == 0:
        raise DataShapeError(f"{name} must contain at least one point")
    if arr.shape[1] == 0:
        raise DataShapeError(f"{name} must have at least one dimension")
    if not np.isfinite(arr).all():
        raise DataShapeError(f"{name} contains NaN or infinite values")
    return arr


def as_vector(vec, dim: int | None = None, name: str = "q") -> np.ndarray:
    """Validate and return ``vec`` as a float64 ``(d,)`` vector.

    If ``dim`` is given, the length must match it.
    """
    arr = np.ascontiguousarray(vec, dtype=np.float64)
    if arr.ndim != 1:
        raise DataShapeError(f"{name} must be a 1-d vector; got ndim={arr.ndim}")
    if dim is not None and arr.shape[0] != dim:
        raise DataShapeError(
            f"{name} has dimension {arr.shape[0]}, expected {dim}"
        )
    if not np.isfinite(arr).all():
        raise DataShapeError(f"{name} contains NaN or infinite values")
    return arr


def check_positive(value: float, name: str) -> float:
    """Validate that a scalar parameter is finite and strictly positive."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise InvalidParameterError(f"{name} must be finite and > 0; got {value}")
    return value
