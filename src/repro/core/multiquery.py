"""Query-major vectorised evaluator: a whole TKAQ/eKAQ batch per numpy round.

The sequential evaluator (:class:`~repro.core.aggregator.KernelAggregator`)
answers a batch by running the best-first heap loop once per query — optimal
in refinement *work* but bounded by per-pop interpreter overhead, so batch
throughput is whatever one Python loop can do.  Dual-tree methods (Gray &
Moore, the paper's Scikit baseline) show the batch win comes from sharing
traversal state across the query set.  :class:`MultiQueryAggregator` brings
that sharing to the KARL/SOTA bound framework:

1. all ``Q`` queries refine *simultaneously* against one **shared frontier**
   of index nodes, with a ``(Q, frontier)`` lower/upper bound matrix;
2. each round, KARL chord-and-tangent (or SOTA constant) bounds for every
   live (query, node) pair are computed in fused array ops
   (:meth:`~repro.core.bounds.BoundScheme.node_bounds_matrix`, including the
   batched Type III ``P+/P-`` split);
3. per-query TKAQ/eKAQ termination is applied to the row sums and
   **certified queries retire from the active set** — their rows drop out
   of every later round;
4. each remaining query nominates its worst-gap frontier node; the union of
   nominated nodes is split (leaves are evaluated exactly for every active
   query in one blocked kernel computation; internal nodes are replaced by
   their children, whose bounds arrive as new matrix columns).

Bounds and termination conditions are identical to the sequential
evaluator, so TKAQ answers match it exactly and eKAQ estimates satisfy the
same ``(1 +- eps)`` contract; only the refinement *schedule* differs (the
shared frontier does some extra per-query work in exchange for numpy-scale
vectorisation).  Supported for distance kernels with convex, non-increasing
profiles (Gaussian, Laplacian, Cauchy, Epanechnikov) under all three
weighting types and both index kinds.
"""

from __future__ import annotations

import time

import numpy as np

from repro import native
from repro.core.bounds import BoundScheme, KARLBounds, SOTABounds
from repro.core.errors import (
    DataShapeError,
    InvalidParameterError,
    as_matrix,
    as_query_param,
    as_warm_interval,
)
from repro.core.kernels import Kernel
from repro.core.results import BatchQueryStats, EKAQBatchResult, TKAQBatchResult
from repro.obs import runtime as _obs

__all__ = ["MultiQueryAggregator"]

#: scheme instances the tracer uses to attribute pruning power at the
#: frontier nodes a retiring query never had to open
_COMPARE_SCHEMES = (KARLBounds(), SOTABounds())

#: cap on the element count of one (queries x nodes x dim) geometry
#: broadcast; rounds that would exceed it are chunked over queries so the
#: temporaries stay cache-sized (~8 MB) regardless of batch size — large
#: unchunked grids are memory-bandwidth bound and measurably slower
_MAX_GRID_ELEMENTS = 1 << 20


def _worst_gap_rows_np(lb_mat: np.ndarray, ub_mat: np.ndarray) -> np.ndarray:
    """Per-row argmax of ``ub - lb`` with a full-matrix temporary.

    The ``REPRO_NATIVE=0`` selection path; the native tiers use the fused
    single-pass reduction in :mod:`repro.native.kernels` instead.
    """
    return np.argmax(ub_mat - lb_mat, axis=1)


def _scheme_has_matrix(scheme: BoundScheme) -> bool:
    """True when the scheme implements the batched bound evaluation."""
    return (
        type(scheme).part_bounds_matrix is not BoundScheme.part_bounds_matrix
    )


class MultiQueryAggregator:
    """Evaluates TKAQ/eKAQ for thousands of queries in shared numpy rounds.

    Parameters
    ----------
    tree : SpatialIndex
        kd-tree or ball-tree over the weighted point set.
    kernel : Kernel
        Distance kernel with a convex, non-increasing profile
        (``kernel.profile.convex_decreasing``).
    scheme : str or BoundScheme
        ``"karl"`` (default), ``"sota"``, or ``"hybrid"`` — must implement
        the matrix bound evaluation.
    max_depth : int, optional
        Treat nodes at this depth as leaves (same in-situ semantics as the
        sequential evaluator).
    """

    def __init__(self, tree, kernel: Kernel, scheme="karl",
                 max_depth: int | None = None):
        from repro.core.aggregator import resolve_scheme

        if kernel.argument != "dist_sq" or not kernel.profile.convex_decreasing:
            raise InvalidParameterError(
                "MultiQueryAggregator requires a convex-decreasing distance "
                f"kernel; got {kernel!r}"
            )
        scheme = resolve_scheme(scheme)
        if not _scheme_has_matrix(scheme):
            raise InvalidParameterError(
                f"bound scheme {scheme.name!r} has no matrix evaluation; "
                "use 'karl', 'sota', or 'hybrid'"
            )
        if max_depth is not None and max_depth < 0:
            raise InvalidParameterError(f"max_depth must be >= 0; got {max_depth}")
        self.tree = tree
        self.kernel = kernel
        self.scheme = scheme
        self.max_depth = max_depth
        self._has_neg = tree.stats.has_negative

    @staticmethod
    def supports(kernel: Kernel, scheme) -> bool:
        """True when (kernel, scheme) can run on the multiquery backend."""
        from repro.core.aggregator import resolve_scheme

        if kernel.argument != "dist_sq" or not kernel.profile.convex_decreasing:
            return False
        try:
            return _scheme_has_matrix(resolve_scheme(scheme))
        except InvalidParameterError:
            return False

    # ------------------------------------------------------------------
    # fused (query, node) bound grids
    # ------------------------------------------------------------------

    def _part_moments(self, Q, q_sq, nodes, w, a, b, shape):
        """Moment grids ``(S0, S1)`` for one sign part: each ``(Q, m)``."""
        wn = w[nodes]
        s0 = np.broadcast_to(wn, shape)
        s1 = wn[None, :] * q_sq[:, None] - 2.0 * (Q @ a[nodes].T) + b[nodes][None, :]
        np.maximum(s1, 0.0, out=s1)
        return s0, s1

    def _grid_bounds_block(self, Q, q_sq, nodes, scheme=None):
        st = self.tree.stats
        lo_x, hi_x = self.tree.nodes_dist_bounds_qm(Q, nodes)
        pos = self._part_moments(Q, q_sq, nodes, st.pos_w, st.pos_a, st.pos_b,
                                 lo_x.shape)
        neg = (
            self._part_moments(Q, q_sq, nodes, st.neg_w, st.neg_a, st.neg_b,
                               lo_x.shape)
            if self._has_neg
            else None
        )
        if scheme is None:
            scheme = self.scheme
        return scheme.node_bounds_matrix(
            self.kernel.profile, lo_x, hi_x, pos, neg
        )

    def _grid_bounds(self, Q, q_sq, nodes, scheme=None):
        """``(lower, upper)`` bound matrices for every (query, node) pair.

        Chunks the query axis so the intermediate ``(Q, m, d)`` geometry
        broadcast never exceeds ``_MAX_GRID_ELEMENTS`` elements.
        """
        nq, m = Q.shape[0], nodes.size
        per = max(1, _MAX_GRID_ELEMENTS // max(1, m * self.tree.d))
        if nq <= per:
            return self._grid_bounds_block(Q, q_sq, nodes, scheme)
        lbs, ubs = [], []
        for s in range(0, nq, per):
            lb, ub = self._grid_bounds_block(
                Q[s:s + per], q_sq[s:s + per], nodes, scheme
            )
            lbs.append(lb)
            ubs.append(ub)
        return np.vstack(lbs), np.vstack(ubs)

    # ------------------------------------------------------------------
    # exact leaf evaluation for the whole active set
    # ------------------------------------------------------------------

    def _leaves_exact(self, Q, q_sq, leaves):
        """Exact contribution of ``leaves`` for every query row, fused.

        Gathers the leaves' contiguous point slices into one block and
        computes the whole (queries x points) kernel grid with a single
        Gram-style matmul.  The gather builds the flat index vector with
        a repeat/cumsum ramp instead of one ``np.arange`` per leaf — same
        element order (leaves in the given order, each slice ascending),
        so results are bitwise-unchanged.  This is the serial evaluator
        the parallel backend (:mod:`repro.parallel`) runs per shard.
        """
        tree = self.tree
        starts = tree.start[leaves].astype(np.int64)
        counts = (tree.end[leaves] - tree.start[leaves]).astype(np.int64)
        # flat ramp: [s0, s0+1, ..., s0+c0-1, s1, ...] without Python loops
        offsets = np.repeat(starts - np.concatenate(
            ([0], np.cumsum(counts)[:-1])), counts)
        idx = offsets + np.arange(counts.sum(), dtype=np.int64)
        pts = tree.points[idx]
        d2 = q_sq[:, None] - 2.0 * (Q @ pts.T) + tree.sq_norms[idx][None, :]
        np.maximum(d2, 0.0, out=d2)
        return self.kernel.profile.value(d2) @ tree.weights[idx], idx.size

    # ------------------------------------------------------------------
    # the query-major round loop
    # ------------------------------------------------------------------

    def _is_terminal(self, nodes):
        term = self.tree.left[nodes] < 0
        if self.max_depth is not None:
            term = term | (self.tree.depth[nodes] >= self.max_depth)
        return term

    def _refine_many(self, Q, stop, kind: str = "query",
                     param: float | None = None):
        """Refine all rows of ``Q`` until each satisfies ``stop`` (or exhausts).

        ``stop(lb_vec, ub_vec, active)`` maps the active queries' global
        bound vectors (plus their original row indices, so per-query
        ``tau``/``eps`` vectors can be sliced) to a boolean retirement
        mask.  Returns per-query terminal
        ``(lower, upper)`` arrays plus aggregate stats.  With the
        observability layer enabled a :class:`~repro.obs.trace.QueryTrace`
        records one record per shared-frontier round; disabled, the
        instrumentation costs a few ``is None`` checks per round.
        """
        tree = self.tree
        nq = Q.shape[0]
        q_sq = np.einsum("ij,ij->i", Q, Q)

        lower = np.empty(nq)
        upper = np.empty(nq)
        exact = np.zeros(nq)
        active = np.arange(nq)
        stats = BatchQueryStats(n_queries=nq)
        otrace = _obs.start_trace(
            kind, "multiquery", self.scheme.name, tree.n,
            n_queries=nq, param=param,
        )

        if otrace is not None:
            t0 = time.perf_counter()
        # per-round worst-gap selection: a fused single-pass row reduction
        # when the native kernels are live, the equivalent two-pass numpy
        # expression otherwise (both share np.argmax first-max semantics)
        worst_gap_rows = (
            native.get_kernels().worst_gap_rows if native.enabled()
            else _worst_gap_rows_np
        )
        frontier = np.array([0], dtype=np.int64)
        lb_mat, ub_mat = self._grid_bounds(Q, q_sq, frontier)
        stats.bound_evaluations += nq
        if otrace is not None:
            otrace.add_phase("bounds", time.perf_counter() - t0)
            otrace.total_bound_evals += nq

        while active.size:
            if otrace is not None:
                t0 = time.perf_counter()
            lb_vec = exact[active] + lb_mat.sum(axis=1)
            ub_vec = exact[active] + ub_mat.sum(axis=1)
            if frontier.size:
                done = stop(lb_vec, ub_vec, active)
            else:  # exhaustion: bounds have collapsed to the exact aggregate
                done = np.ones(active.size, dtype=bool)

            n_retired = int(done.sum())
            stats.record_round(frontier.size, active.size, n_retired)
            if otrace is not None:
                otrace.add_phase("terminate", time.perf_counter() - t0)
                round_frontier = int(frontier.size)
                round_active = int(active.size)
                round_leaves = round_points = round_expanded = 0
                round_bound_evals = 0
                round_gap = float(np.mean(ub_vec - lb_vec))
                round_pruned = 0
                if n_retired and frontier.size:
                    frontier_pts = int(
                        (tree.end[frontier] - tree.start[frontier]).sum()
                    )
                    round_pruned = n_retired * frontier_pts
                    self._trace_retirement(
                        otrace, Q, q_sq, active[done], frontier
                    )
            if n_retired:
                retired = active[done]
                lower[retired] = lb_vec[done]
                upper[retired] = ub_vec[done]
                live = ~done
                active = active[live]
                lb_mat = lb_mat[live]
                ub_mat = ub_mat[live]
                if active.size == 0:
                    if otrace is not None:
                        otrace.record_round(
                            frontier=round_frontier, active=round_active,
                            retired=n_retired, pruned_points=round_pruned,
                            gap=round_gap,
                        )
                    break

            Qa = Q[active]
            q_sq_a = q_sq[active]

            # every remaining query nominates its worst-gap frontier node
            if otrace is not None:
                t0 = time.perf_counter()
            worst = worst_gap_rows(lb_mat, ub_mat)
            cols = np.unique(worst)
            split = frontier[cols]
            terminal = self._is_terminal(split)
            if otrace is not None:
                otrace.add_phase("select", time.perf_counter() - t0)

            leaves = split[terminal]
            if leaves.size:
                if otrace is not None:
                    t0 = time.perf_counter()
                contrib, n_pts = self._leaves_exact(Qa, q_sq_a, leaves)
                exact[active] += contrib
                stats.record_leaves(leaves.size, n_pts, active.size)
                if otrace is not None:
                    otrace.add_phase("leaves", time.perf_counter() - t0)
                    round_leaves = int(leaves.size)
                    round_points = int(active.size) * n_pts

            keep = np.ones(frontier.size, dtype=bool)
            keep[cols] = False
            internal = split[~terminal]
            if internal.size:
                children = np.concatenate(
                    [tree.left[internal], tree.right[internal]]
                )
                if otrace is not None:
                    t0 = time.perf_counter()
                c_lb, c_ub = self._grid_bounds(Qa, q_sq_a, children)
                stats.record_expansions(internal.size, children.size,
                                        active.size)
                if otrace is not None:
                    otrace.add_phase("bounds", time.perf_counter() - t0)
                    round_expanded = int(internal.size)
                    round_bound_evals = int(active.size) * int(children.size)
                frontier = np.concatenate([frontier[keep], children])
                lb_mat = np.concatenate([lb_mat[:, keep], c_lb], axis=1)
                ub_mat = np.concatenate([ub_mat[:, keep], c_ub], axis=1)
            else:
                frontier = frontier[keep]
                lb_mat = lb_mat[:, keep]
                ub_mat = ub_mat[:, keep]

            if otrace is not None:
                otrace.record_round(
                    frontier=round_frontier, active=round_active,
                    expanded=round_expanded, leaves=round_leaves,
                    points=round_points, retired=n_retired,
                    pruned_points=round_pruned,
                    bound_evals=round_bound_evals, gap=round_gap,
                )

        if otrace is not None:
            _obs.finish_trace(otrace)
        return lower, upper, stats

    def _trace_retirement(self, otrace, Q, q_sq, retired_idx, frontier) -> None:
        """Compare-mode accounting: which scheme bounds the frontier nodes a
        retiring query leaves unopened tighter (KARL vs SOTA)?"""
        if not _obs.compare_enabled():
            return
        karl_scheme, sota_scheme = _COMPARE_SCHEMES
        Qr = Q[retired_idx]
        q_sq_r = q_sq[retired_idx]
        klb, kub = self._grid_bounds(Qr, q_sq_r, frontier, karl_scheme)
        slb, sub = self._grid_bounds(Qr, q_sq_r, frontier, sota_scheme)
        k_gap = kub - klb
        s_gap = sub - slb
        otrace.record_pruned_comparison(
            int((k_gap < s_gap).sum()),
            int((s_gap < k_gap).sum()),
            int((k_gap == s_gap).sum()),
        )

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------

    def _check_queries(self, queries) -> np.ndarray:
        Q = as_matrix(queries, name="queries")
        if Q.shape[1] != self.tree.d:
            raise DataShapeError(
                f"queries have dimension {Q.shape[1]}, expected {self.tree.d}"
            )
        return Q

    def tkaq_many_results(self, queries, tau) -> TKAQBatchResult:
        """Per-query TKAQ answers and terminal bounds for a query matrix.

        ``tau`` may be one shared threshold or a per-query ``(Q,)`` vector
        (heterogeneous batches, as assembled by the serving layer's
        micro-batcher).
        """
        Q = self._check_queries(queries)
        tau = as_query_param(tau, Q.shape[0], "tau")
        if isinstance(tau, float):
            stop = lambda lo, hi, idx: (lo > tau) | (hi <= tau)  # noqa: E731
            param = tau
        else:
            stop = lambda lo, hi, idx: (lo > tau[idx]) | (hi <= tau[idx])  # noqa: E731
            param = None
        lower, upper, stats = self._refine_many(Q, stop, kind="tkaq",
                                                param=param)
        return TKAQBatchResult(
            answers=lower > tau, lower=lower, upper=upper, tau=tau, stats=stats
        )

    def ekaq_many_results(self, queries, eps, warm=None) -> EKAQBatchResult:
        """Per-query eKAQ estimates and terminal bounds for a query matrix.

        ``eps`` may be one shared tolerance or a per-query ``(Q,)`` vector;
        each estimate satisfies its own row's ``(1 +- eps_i)`` contract.

        ``warm`` is an optional ``(lower, upper)`` pair of sound per-query
        starting intervals (scalar or ``(Q,)`` each) — as transferred by
        the certified answer cache.  Refinement bounds are *intersected*
        with the warm interval inside the stop test and on the returned
        arrays, so rows whose warm interval is already tight retire in
        round one instead of refining from the root.  Intersecting two
        sound intervals is sound, and ``(-inf, +inf)`` rows reproduce the
        cold path's answers.
        """
        Q = self._check_queries(queries)
        eps = as_query_param(eps, Q.shape[0], "eps", minimum=0.0)
        param = eps if isinstance(eps, float) else None
        eps_vec = np.broadcast_to(eps, Q.shape[:1])
        if warm is None:
            if isinstance(eps, float):
                stop = lambda lo, hi, idx: hi <= (1.0 + eps) * lo  # noqa: E731
            else:
                stop = lambda lo, hi, idx: hi <= (1.0 + eps[idx]) * lo  # noqa: E731
        else:
            wlb, wub = as_warm_interval(warm, Q.shape[0])

            def stop(lo, hi, idx):
                return np.minimum(hi, wub[idx]) <= \
                    (1.0 + eps_vec[idx]) * np.maximum(lo, wlb[idx])
        lower, upper, stats = self._refine_many(Q, stop, kind="ekaq",
                                                param=param)
        if warm is not None:
            np.maximum(lower, wlb, out=lower)
            np.minimum(upper, wub, out=upper)
        return EKAQBatchResult(
            estimates=0.5 * (lower + upper), lower=lower, upper=upper,
            eps=eps, stats=stats,
        )

    def refine_many_results(self, queries, rounds, warm=None
                            ) -> EKAQBatchResult:
        """Anytime bounds: refine each row for at most ``rounds`` rounds.

        The batch twin of
        :meth:`~repro.core.aggregator.KernelAggregator.refine_bounds`:
        ``rounds`` (scalar or per-query ``(Q,)`` vector) caps how many
        shared-frontier rounds each query may participate in; whatever
        ``[lower, upper]`` it holds when its budget runs out is returned.
        The intervals certify ``lower <= F_P(q) <= upper`` regardless of
        where refinement stopped — ``rounds=0`` returns the root bounds,
        and a budget at least the tree's node count runs to exhaustion
        (``lower == upper``, the exact aggregate).  ``eps`` on the result
        records the *achieved* relative half-width per query (``inf``
        where the lower bound is not positive).  This is the primitive
        the shard router's cross-shard escalation is built on.

        ``warm`` (a sound ``(lower, upper)`` pair, scalar or ``(Q,)`` per
        side) intersects the returned intervals — the budget semantics
        are untouched, but the certified interval a caller gets back is
        never wider than the warm one it already held.
        """
        Q = self._check_queries(queries)
        budget = as_query_param(rounds, Q.shape[0], "rounds", minimum=0.0)
        wlb = wub = None
        if warm is not None:
            wlb, wub = as_warm_interval(warm, Q.shape[0])
        done_rounds = [0]  # rounds completed before the current stop check

        if isinstance(budget, float):
            def stop(lo, hi, idx):
                out = np.full(idx.shape[0], done_rounds[0] >= budget,
                              dtype=bool)
                done_rounds[0] += 1
                return out
            param = budget
        else:
            def stop(lo, hi, idx):
                out = done_rounds[0] >= budget[idx]
                done_rounds[0] += 1
                return out
            param = None
        lower, upper, stats = self._refine_many(Q, stop, kind="refine",
                                                param=param)
        if warm is not None:
            np.maximum(lower, wlb, out=lower)
            np.minimum(upper, wub, out=upper)
        with np.errstate(divide="ignore", invalid="ignore"):
            achieved = np.where(
                lower > 0.0, (upper - lower) / (2.0 * lower), np.inf
            )
        return EKAQBatchResult(
            estimates=0.5 * (lower + upper), lower=lower, upper=upper,
            eps=achieved, stats=stats,
        )

    def tkaq_many(self, queries, tau) -> np.ndarray:
        """Vector of TKAQ answers for each row of ``queries``."""
        return self.tkaq_many_results(queries, tau).answers

    def ekaq_many(self, queries, eps) -> np.ndarray:
        """Vector of eKAQ estimates for each row of ``queries``."""
        return self.ekaq_many_results(queries, eps).estimates
