"""Automatic index tuning (paper Section III-C).

Two scenarios:

* **Offline** (:class:`OfflineTuner`): the dataset is known in advance and
  tuning time is free.  Build an index per (kind, leaf-capacity) grid cell,
  measure throughput on a sampled query set, recommend the fastest.  The
  paper varies leaf capacity exponentially (10..640) over {kd, ball} and
  samples |Q| = 1000 queries.

* **In-situ / online** (:class:`OnlineTuner`): the dataset arrives with the
  queries and end-to-end time includes index construction and tuning.
  Build a *single* kd-tree, simulate the tree truncated at level ``i`` by
  capping the evaluator's refinement depth, spend a small fraction ``s`` of
  the workload probing candidate depths, then run the remaining queries at
  the best depth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.aggregator import KernelAggregator
from repro.core.errors import InvalidParameterError, as_matrix
from repro.core.kernels import Kernel
from repro.index.builder import build_index

__all__ = [
    "DEFAULT_LEAF_CAPACITIES",
    "TuningCandidate",
    "OfflineTuningReport",
    "OfflineTuner",
    "InSituReport",
    "OnlineTuner",
    "make_query_runner",
]

#: the paper's exponential leaf-capacity grid (Section III-C)
DEFAULT_LEAF_CAPACITIES = (10, 20, 40, 80, 160, 320, 640)


def make_query_runner(query_type: str, param: float):
    """Return ``runner(aggregator, q)`` for ``"tkaq"``/``"ekaq"`` workloads."""
    if query_type == "tkaq":
        return lambda agg, q: agg.tkaq(q, param).answer
    if query_type == "ekaq":
        return lambda agg, q: agg.ekaq(q, param).estimate
    raise InvalidParameterError(
        f"query_type must be 'tkaq' or 'ekaq'; got {query_type!r}"
    )


def _measure_throughput(aggregator, queries, runner) -> float:
    """Queries per second of ``runner`` over ``queries`` (single pass)."""
    start = time.perf_counter()
    for q in queries:
        runner(aggregator, q)
    elapsed = time.perf_counter() - start
    return len(queries) / elapsed if elapsed > 0 else float("inf")


@dataclass
class TuningCandidate:
    """One grid cell of the offline tuner."""

    kind: str
    leaf_capacity: int
    throughput: float
    build_seconds: float


@dataclass
class OfflineTuningReport:
    """Outcome of an offline tuning run."""

    candidates: list[TuningCandidate] = field(default_factory=list)

    @property
    def best(self) -> TuningCandidate:
        return max(self.candidates, key=lambda c: c.throughput)

    @property
    def worst(self) -> TuningCandidate:
        return min(self.candidates, key=lambda c: c.throughput)


class OfflineTuner:
    """Grid-search tuner over index kind and leaf capacity (KARL_auto).

    Parameters
    ----------
    kernel, scheme
        Forwarded to the aggregators being compared.
    kinds : sequence of str
        Index kinds to try (default: kd-tree and ball-tree).
    leaf_capacities : sequence of int
        Grid of leaf capacities (default: the paper's 10..640).
    sample_size : int
        Number of query points sampled for throughput measurement
        (paper: 1000).
    """

    def __init__(
        self,
        kernel: Kernel,
        scheme="karl",
        kinds=("kd", "ball"),
        leaf_capacities=DEFAULT_LEAF_CAPACITIES,
        sample_size: int = 1000,
        rng=None,
    ):
        self.kernel = kernel
        self.scheme = scheme
        self.kinds = tuple(kinds)
        self.leaf_capacities = tuple(int(c) for c in leaf_capacities)
        self.sample_size = int(sample_size)
        self.rng = np.random.default_rng(rng)

    def _sample(self, queries: np.ndarray) -> np.ndarray:
        if queries.shape[0] <= self.sample_size:
            return queries
        idx = self.rng.choice(queries.shape[0], self.sample_size, replace=False)
        return queries[idx]

    def tune(
        self, points, weights, queries, query_type: str, param: float
    ) -> tuple[KernelAggregator, OfflineTuningReport]:
        """Run the grid and return ``(best aggregator, report)``.

        ``queries`` is the pool the measurement sample is drawn from —
        typically points sampled from the same distribution as the workload.
        """
        points = as_matrix(points)
        sample = self._sample(as_matrix(queries, name="queries"))
        runner = make_query_runner(query_type, param)

        report = OfflineTuningReport()
        best_agg = None
        best_throughput = -1.0
        for kind in self.kinds:
            for cap in self.leaf_capacities:
                t0 = time.perf_counter()
                tree = build_index(kind, points, weights=weights, leaf_capacity=cap)
                build_s = time.perf_counter() - t0
                agg = KernelAggregator(tree, self.kernel, scheme=self.scheme)
                tput = _measure_throughput(agg, sample, runner)
                report.candidates.append(
                    TuningCandidate(kind, cap, tput, build_s)
                )
                if tput > best_throughput:
                    best_throughput = tput
                    best_agg = agg
        return best_agg, report


@dataclass
class InSituReport:
    """End-to-end outcome of an in-situ (online-tuned) run.

    ``throughput`` is computed over the *total* wall time — construction +
    tuning + query execution — matching the paper's Table IX metric.
    """

    answers: list
    best_depth: int
    build_seconds: float
    tune_seconds: float
    query_seconds: float
    depth_throughputs: dict[int, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.tune_seconds + self.query_seconds

    @property
    def throughput(self) -> float:
        return len(self.answers) / self.total_seconds if self.total_seconds else 0.0


class OnlineTuner:
    """In-situ evaluator: build one kd-tree, tune the depth online.

    The truncated tree ``T_i`` (top ``i`` levels) is simulated by capping
    the evaluator's refinement depth at ``i`` on the fully-built tree —
    exactly the paper's trick of "skipping lower/upper bound computations in
    the lowest levels".

    Parameters
    ----------
    sample_fraction : float
        Fraction ``s`` of the workload used for probing (paper: 1%).
    num_candidate_depths : int
        Number of evenly spaced candidate depths probed (the paper probes
        every level; an even subset keeps per-depth samples meaningful for
        small workloads).
    leaf_capacity : int
        Capacity of the base kd-tree ("all levels" in the paper; a small
        capacity here bounds leaf scan cost while depth capping recreates
        every coarser tree).
    """

    def __init__(
        self,
        kernel: Kernel,
        scheme="karl",
        sample_fraction: float = 0.01,
        num_candidate_depths: int = 8,
        leaf_capacity: int = 20,
        min_sample_per_depth: int = 3,
    ):
        if not 0.0 < sample_fraction < 1.0:
            raise InvalidParameterError(
                f"sample_fraction must be in (0, 1); got {sample_fraction}"
            )
        self.kernel = kernel
        self.scheme = scheme
        self.sample_fraction = float(sample_fraction)
        self.num_candidate_depths = int(num_candidate_depths)
        self.leaf_capacity = int(leaf_capacity)
        self.min_sample_per_depth = int(min_sample_per_depth)

    def _candidate_depths(self, max_depth: int) -> list[int]:
        if max_depth <= self.num_candidate_depths:
            return list(range(max_depth + 1))
        depths = np.linspace(0, max_depth, self.num_candidate_depths)
        return sorted({int(round(v)) for v in depths})

    def run(self, points, weights, queries, query_type: str, param: float) -> InSituReport:
        """Build, tune, and answer the whole workload; report timings."""
        points = as_matrix(points)
        queries = as_matrix(queries, name="queries")
        runner = make_query_runner(query_type, param)

        t0 = time.perf_counter()
        tree = build_index("kd", points, weights=weights, leaf_capacity=self.leaf_capacity)
        build_s = time.perf_counter() - t0

        depths = self._candidate_depths(tree.max_depth)
        n_queries = queries.shape[0]
        per_depth = max(
            self.min_sample_per_depth,
            int(self.sample_fraction * n_queries / max(len(depths), 1)),
        )
        n_sample = min(per_depth * len(depths), n_queries)

        t0 = time.perf_counter()
        answers: list = [None] * n_queries
        depth_tput: dict[int, float] = {}
        pos = 0
        for depth in depths:
            take = min(per_depth, n_sample - pos)
            if take <= 0:
                break
            agg = KernelAggregator(
                tree, self.kernel, scheme=self.scheme, max_depth=depth
            )
            t_depth = time.perf_counter()
            for j in range(pos, pos + take):
                answers[j] = runner(agg, queries[j])
            elapsed = time.perf_counter() - t_depth
            depth_tput[depth] = take / elapsed if elapsed > 0 else float("inf")
            pos += take
        best_depth = max(depth_tput, key=depth_tput.get) if depth_tput else tree.max_depth
        tune_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        agg = KernelAggregator(
            tree, self.kernel, scheme=self.scheme, max_depth=best_depth
        )
        for j in range(pos, n_queries):
            answers[j] = runner(agg, queries[j])
        query_s = time.perf_counter() - t0

        return InSituReport(
            answers=answers,
            best_depth=best_depth,
            build_seconds=build_s,
            tune_seconds=tune_s,
            query_seconds=query_s,
            depth_throughputs=depth_tput,
        )
