"""Bound schemes: KARL's linear envelopes vs. the SOTA constant bounds.

Given an index node with argument interval ``[lo, hi]`` and weighted
argument moments ``(S0, S1)``, a *bound scheme* returns a lower and an upper
bound on the node's contribution ``sum_i w_i g(x_i)``:

* :class:`SOTABounds` — the state-of-the-art constant bounds of
  Section II-B: ``S0 * min g`` and ``S0 * max g`` over the interval.
* :class:`KARLBounds` — the paper's contribution (Sections III-A/B, IV-B):
  linear functions ``m*x + c`` enveloping ``g`` on the interval, aggregated
  exactly in O(d) via the moment identity ``m*S1 + c*S0`` (Lemmas 2/5).

For KARL, the tightest valid linear bound with respect to the aggregation
objective is the supporting line of ``g``'s convex (resp. concave) envelope
at the weighted argument mean ``xbar = S1/S0``:

* convex ``g`` (Gaussian, even polynomial): lower = tangent at ``xbar``
  (this *is* the optimal tangent of Theorems 1-2 — ``t_opt = S1/S0`` — and
  its aggregate collapses to ``S0 * g(S1/S0)``, a Jensen bound), upper =
  chord (Lemma 3's construction);
* concave ``g``: mirrored;
* S-shaped ``g`` (odd polynomial, sigmoid — Section IV-B, Figure 8): the
  envelope on the far side of the inflection is an *anchored* line through
  an interval endpoint, tangent to the curve across the inflection — the
  paper's "rotate-down"/"rotate-up" lines.  When the weighted mean falls on
  the curve-following part of the envelope, the plain tangent at ``xbar``
  is tighter and is used instead (a strict refinement of the paper's single
  anchored line).

Anchored tangency points are found by a bracketed bisection that returns
the *conservative* end of its final bracket, so an inexact tangency always
yields a slightly looser — never an invalid — bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.linear import Line, chord, tangent
from repro.core.profiles import ScalarProfile

__all__ = [
    "BoundScheme",
    "KARLBounds",
    "SOTABounds",
    "HybridBounds",
    "envelope_lines",
]

#: intervals narrower than this are treated as a single point
_DEGENERATE_SPAN = 1e-13

#: iteration cap for the safeguarded-Newton tangency solver
_TANGENCY_ITERS = 12

#: relative bracket width at which the tangency solve stops.  Any stopping
#: point is *valid* (the conservative bracket endpoint is returned); extra
#: precision only tightens the bound by O(width^2), so a loose tolerance
#: trades negligible tightness for per-node speed.
_TANGENCY_RTOL = 1e-4


def _tangency(profile: ScalarProfile, anchor: float, a: float, b: float, safe_sign: int):
    """Bracket the tangency point of a line through ``(anchor, g(anchor))``.

    Solves ``gap(t) = g(t) + g'(t)*(anchor - t) - g(anchor) = 0`` over
    ``[a, b]`` by Newton iteration (``gap'(t) = g''(t)*(anchor - t)``)
    safeguarded by a bracket.  Returns ``(t_safe, t_lo, t_hi, 0)`` where
    ``[t_lo, t_hi]`` is the final bracket around the true tangency and
    ``t_safe`` is the endpoint whose ``gap`` has sign ``safe_sign`` — the
    side on which the anchored line built from its slope is a valid (if
    marginally suboptimal) bound.  The caller uses the *other* bracket data
    when it must know that a point lies beyond the true tangency.

    When the bracket carries no sign change it returns
    ``(None, a, b, sign)`` with the common gap sign; the caller picks
    between the chord and the pure tangent-at-mean fallback from it.
    """
    value = profile.value
    deriv = profile.deriv
    g_anchor = value(anchor)

    def gap(t: float) -> float:
        return value(t) + deriv(t) * (anchor - t) - g_anchor

    t_closed = profile.anchored_tangency(anchor)
    if t_closed is not None:
        if a <= t_closed <= b:
            return t_closed, t_closed, t_closed, 0
        # gap is monotone on a branch; no interior root -> constant sign
        return None, a, b, (1 if gap(0.5 * (a + b)) > 0.0 else -1)

    fa = gap(a)
    fb = gap(b)
    if fa == 0.0:
        return a, a, a, 0
    if fb == 0.0:
        return b, b, b, 0
    if (fa > 0.0) == (fb > 0.0):
        return None, a, b, (1 if fa > 0.0 else -1)

    width0 = b - a
    t = 0.5 * (a + b)
    for _ in range(_TANGENCY_ITERS):
        ft = gap(t)
        if ft == 0.0:
            return t, t, t, 0
        if (ft > 0.0) == (fa > 0.0):
            a, fa = t, ft
        else:
            b, fb = t, ft
        if b - a <= _TANGENCY_RTOL * width0:
            break
        slope = float(profile.deriv2(t)) * (anchor - t)
        if slope != 0.0:
            t_new = t - ft / slope
            if not a < t_new < b:
                t_new = 0.5 * (a + b)
        else:
            t_new = 0.5 * (a + b)
        t = t_new
    if safe_sign > 0:
        t_safe = a if fa > 0.0 else b
    else:
        t_safe = a if fa < 0.0 else b
    return t_safe, a, b, 0


def _clamp(x: float, lo: float, hi: float) -> float:
    return lo if x < lo else hi if x > hi else x


def _anchored_line(profile: ScalarProfile, anchor: float, t: float) -> Line:
    """Line through ``(anchor, g(anchor))`` with the curve's slope at ``t``."""
    m = float(profile.deriv(t))
    return Line(m, float(profile.value(anchor)) - m * anchor)


class _SShapeEnvelope:
    """Envelope data for an S-shaped profile on ``[lo, hi]``.

    The two anchored tangency points depend only on the interval — not on
    the weights — so a node with both positive and negative weight mass
    (Type III) computes them once and derives both parts' lines from them.

    ``s_convex_right`` (odd powers): the convex envelope follows an anchored
    line from ``(lo, g(lo))`` up to its tangency ``t_c`` in the convex
    branch, then the curve; the concave envelope mirrors from ``hi``.
    ``s_concave_right`` (tanh) swaps the roles.  The safe solver side is
    the one giving a shallower line through a left anchor for an upper
    bound etc. — encoded as the ``safe_sign`` arguments (see
    :func:`_tangency`).  With no tangency crossing, the common gap sign
    says whether the chord is valid or the inflection coincides numerically
    with the anchor (interval effectively one-sided -> tangent at the mean).
    """

    __slots__ = ("profile", "lo", "hi", "shape",
                 "t_c", "dec_c", "sign_c", "anchor_c", "mean_side_c",
                 "t_u", "dec_u", "sign_u", "anchor_u", "mean_side_u")

    @staticmethod
    def _decision(t_lo: float, t_hi: float, mean_side: str) -> float:
        """Bracket endpoint that provably over-covers the true tangency.

        The tangent at the weighted mean is only valid when the mean lies
        on the curve-following side of the *true* tangency, so the decision
        threshold must err outward: the high end for a right-side curve,
        the low end for a left-side curve.
        """
        return t_hi if mean_side == "right" else t_lo

    def __init__(self, profile: ScalarProfile, lo: float, hi: float, shape: str):
        self.profile = profile
        self.lo = lo
        self.hi = hi
        self.shape = shape
        xi = profile.inflection
        if shape == "s_convex_right":
            # lower anchored line through the LEFT endpoint: a smaller slope
            # keeps the line below the curve, so the conservative bracket
            # side is gap > 0 (t below the true tangency)
            self.anchor_c, self.mean_side_c = lo, "right"
            self.t_c, t_lo, t_hi, self.sign_c = _tangency(
                profile, lo, xi, hi, safe_sign=+1
            )
            self.dec_c = self._decision(t_lo, t_hi, self.mean_side_c)
            self.anchor_u, self.mean_side_u = hi, "left"
            self.t_u, t_lo, t_hi, self.sign_u = _tangency(
                profile, hi, lo, xi, safe_sign=-1
            )
            self.dec_u = self._decision(t_lo, t_hi, self.mean_side_u)
        else:  # s_concave_right
            self.anchor_c, self.mean_side_c = hi, "left"
            self.t_c, t_lo, t_hi, self.sign_c = _tangency(
                profile, hi, lo, xi, safe_sign=+1
            )
            self.dec_c = self._decision(t_lo, t_hi, self.mean_side_c)
            self.anchor_u, self.mean_side_u = lo, "right"
            self.t_u, t_lo, t_hi, self.sign_u = _tangency(
                profile, lo, xi, hi, safe_sign=-1
            )
            self.dec_u = self._decision(t_lo, t_hi, self.mean_side_u)

    # chord-fallback gap signs are the same for both S-shapes
    sign_c_chord = 1
    sign_u_chord = -1

    def _pick(self, t, dec, sign, anchor, mean_side, chord_sign, xbar) -> Line:
        if t is None:
            if sign == chord_sign:
                return chord(self.profile, self.lo, self.hi)
            return tangent(self.profile, xbar)
        on_curve = xbar <= dec if mean_side == "left" else xbar >= dec
        if on_curve:
            return tangent(self.profile, xbar)
        return _anchored_line(self.profile, anchor, t)

    def lines(self, xbar: float) -> tuple[Line, Line]:
        """``(lower, upper)`` supporting lines at the weighted mean."""
        lower = self._pick(
            self.t_c, self.dec_c, self.sign_c, self.anchor_c,
            self.mean_side_c, self.sign_c_chord, xbar,
        )
        upper = self._pick(
            self.t_u, self.dec_u, self.sign_u, self.anchor_u,
            self.mean_side_u, self.sign_u_chord, xbar,
        )
        return lower, upper


def _s_shape_lines(
    profile: ScalarProfile, lo: float, hi: float, xbar: float, shape: str
) -> tuple[Line, Line]:
    """Envelope supporting lines at ``xbar`` for S-shaped profiles."""
    return _SShapeEnvelope(profile, lo, hi, shape).lines(xbar)


def envelope_lines(
    profile: ScalarProfile, lo: float, hi: float, xbar: float
) -> tuple[Line, Line]:
    """``(lower, upper)`` linear envelope of ``g`` on ``[lo, hi]``.

    ``xbar`` is the weighted mean of the arguments (``S1/S0``), used to pick
    the tightest supporting line; it always lies inside ``[lo, hi]`` for
    positive weights, but is clamped defensively.
    """
    if hi - lo <= _DEGENERATE_SPAN:
        gmin, gmax = profile.range_on(lo, hi)
        return Line(0.0, gmin), Line(0.0, gmax)

    shape = profile.shape_on(lo, hi)
    xbar = profile.clamp_tangent(_clamp(xbar, lo, hi))

    if shape == "linear":
        line = chord(profile, lo, hi)
        return line, line
    if shape == "convex":
        return tangent(profile, xbar), chord(profile, lo, hi)
    if shape == "concave":
        return chord(profile, lo, hi), tangent(profile, xbar)
    return _s_shape_lines(profile, lo, hi, xbar, shape)


class BoundScheme:
    """Strategy object mapping (interval, moments) to node contribution bounds."""

    #: display name used by benchmarks/tuning reports
    name = "base"

    def part_bounds(
        self, profile: ScalarProfile, lo: float, hi: float, s0: float, s1: float
    ) -> tuple[float, float]:
        """``(lower, upper)`` for one positively-weighted part of a node."""
        raise NotImplementedError

    def node_bounds(self, profile, lo, hi, pos, neg=None):
        """Bounds for a node, combining positive and negative parts.

        ``pos``/``neg`` are ``(S0, S1)`` moment pairs; the Type III rule
        (Section IV-A2): ``LB = LB+ - UB-``, ``UB = UB+ - LB-``.
        """
        lb, ub = self.part_bounds(profile, lo, hi, pos[0], pos[1])
        if neg is not None and neg[0] > 0.0:
            nlb, nub = self.part_bounds(profile, lo, hi, neg[0], neg[1])
            return lb - nub, ub - nlb
        return lb, ub

    # -- matrix (batched) evaluation -----------------------------------------

    def part_bounds_matrix(self, profile, lo, hi, s0, s1):
        """Array-shaped :meth:`part_bounds`: all inputs share one shape.

        ``lo``/``hi``/``s0``/``s1`` are numpy arrays of identical shape
        (typically ``(Q, nodes)`` — one entry per live (query, node) pair);
        the return is an elementwise ``(lower, upper)`` array pair.  Only
        defined for profiles that are convex and non-increasing on their
        whole domain (``profile.convex_decreasing``) — exactly the shapes
        whose chord/tangent envelopes vectorise without branch logic.
        """
        raise NotImplementedError

    def node_bounds_matrix(self, profile, lo, hi, pos, neg=None):
        """Array-shaped :meth:`node_bounds` (batched Type III P+/P- rule).

        ``pos``/``neg`` are ``(S0, S1)`` array pairs matching ``lo``'s
        shape; ``LB = LB+ - UB-``, ``UB = UB+ - LB-`` applied elementwise.
        """
        lb, ub = self.part_bounds_matrix(profile, lo, hi, pos[0], pos[1])
        if neg is not None:
            nlb, nub = self.part_bounds_matrix(profile, lo, hi, neg[0], neg[1])
            return lb - nub, ub - nlb
        return lb, ub


class SOTABounds(BoundScheme):
    """Constant bounds of the state of the art ([15], [16]; Section II-B).

    Uses only the node's weight mass: ``S0 * g_min`` / ``S0 * g_max`` with
    the exact range of ``g`` over the argument interval.
    """

    name = "sota"

    def part_bounds(self, profile, lo, hi, s0, s1):
        gmin, gmax = profile.range_on(lo, hi)
        return s0 * gmin, s0 * gmax

    def part_bounds_matrix(self, profile, lo, hi, s0, s1):
        # convex-decreasing profile: range over [lo, hi] is [g(hi), g(lo)]
        return s0 * profile.value(hi), s0 * profile.value(lo)


class KARLBounds(BoundScheme):
    """KARL's linear bounds (Sections III-A/B, IV-B).

    The convex/concave cases are inlined without constructing
    :class:`~repro.core.linear.Line` objects — this method runs twice per
    expanded node in the refinement loop.  The identities used:

    * tangent at ``t``:  aggregate = ``S0*g(t) + g'(t)*(S1 - t*S0)``
      (equals ``S0*g(S1/S0)`` at the optimal ``t = S1/S0``);
    * chord:             aggregate = ``S0*g(lo) + m*(S1 - lo*S0)`` with
      ``m = (g(hi)-g(lo))/(hi-lo)``.
    """

    name = "karl"

    def part_bounds(self, profile, lo, hi, s0, s1):
        if s0 <= 0.0:
            return 0.0, 0.0
        span = hi - lo
        if span <= _DEGENERATE_SPAN:
            gmin, gmax = profile.range_on(lo, hi)
            return s0 * gmin, s0 * gmax
        xbar = profile.clamp_tangent(_clamp(s1 / s0, lo, hi))
        shape = profile.shape_on(lo, hi)

        if shape == "convex" or shape == "concave":
            glo = float(profile.value(lo))
            ghi = float(profile.value(hi))
            chord_val = glo * s0 + (ghi - glo) / span * (s1 - lo * s0)
            gx = float(profile.value(xbar))
            tangent_val = gx * s0 + float(profile.deriv(xbar)) * (s1 - xbar * s0)
            if shape == "convex":
                return tangent_val, chord_val
            return chord_val, tangent_val
        if shape == "linear":
            glo = float(profile.value(lo))
            ghi = float(profile.value(hi))
            val = glo * s0 + (ghi - glo) / span * (s1 - lo * s0)
            return val, val

        lower, upper = _s_shape_lines(profile, lo, hi, xbar, shape)
        return lower.aggregate(s0, s1), upper.aggregate(s0, s1)

    def part_bounds_matrix(self, profile, lo, hi, s0, s1):
        """Vectorised chord upper / tangent-at-mean lower (convex profiles).

        Identical formulas to the scalar convex branch of
        :meth:`part_bounds`, applied elementwise; degenerate intervals keep
        slope 0 so the chord collapses to the constant ``s0 * g(lo)``, and
        zero-mass parts are forced to exactly (0, 0) as in the scalar path.
        """
        span = hi - lo
        glo = profile.value(lo)
        slope = np.zeros_like(span)
        wide = span > _DEGENERATE_SPAN
        if wide.any():
            slope[wide] = (profile.value(hi[wide]) - glo[wide]) / span[wide]
        ub = glo * s0 + slope * (s1 - lo * s0)

        safe_s0 = np.where(s0 > 0.0, s0, 1.0)
        xbar = profile.clamp_tangent(np.clip(s1 / safe_s0, lo, hi))
        lb = profile.value(xbar) * s0 + profile.deriv(xbar) * (s1 - xbar * s0)

        empty = s0 <= 0.0
        if empty.any():
            lb[empty] = 0.0
            ub[empty] = 0.0
        return lb, ub

    def node_bounds(self, profile, lo, hi, pos, neg=None):
        """Type III fast path: S-shape tangencies are interval-only, so the
        positive and negative parts of a node share one envelope solve."""
        if (
            neg is None
            or neg[0] <= 0.0
            or hi - lo <= _DEGENERATE_SPAN
            or profile.shape_on(lo, hi) not in ("s_convex_right", "s_concave_right")
        ):
            return super().node_bounds(profile, lo, hi, pos, neg)
        env = _SShapeEnvelope(profile, lo, hi, profile.shape_on(lo, hi))
        bounds = []
        for s0, s1 in (pos, neg):
            if s0 <= 0.0:
                bounds.append((0.0, 0.0))
                continue
            xbar = profile.clamp_tangent(_clamp(s1 / s0, lo, hi))
            lower, upper = env.lines(xbar)
            bounds.append((lower.aggregate(s0, s1), upper.aggregate(s0, s1)))
        (plb, pub), (nlb, nub) = bounds
        return plb - nub, pub - nlb


class HybridBounds(BoundScheme):
    """Pointwise max/min of KARL and SOTA bounds (ablation helper).

    KARL's bounds are provably at least as tight (Lemmas 3-4), so this
    should coincide with KARL up to floating point; it exists to test that
    claim and to guard against pathological numerics.
    """

    name = "hybrid"

    def __init__(self):
        self._karl = KARLBounds()
        self._sota = SOTABounds()

    def part_bounds(self, profile, lo, hi, s0, s1):
        klb, kub = self._karl.part_bounds(profile, lo, hi, s0, s1)
        slb, sub = self._sota.part_bounds(profile, lo, hi, s0, s1)
        return max(klb, slb), min(kub, sub)

    def part_bounds_matrix(self, profile, lo, hi, s0, s1):
        klb, kub = self._karl.part_bounds_matrix(profile, lo, hi, s0, s1)
        slb, sub = self._sota.part_bounds_matrix(profile, lo, hi, s0, s1)
        return np.maximum(klb, slb), np.minimum(kub, sub)
