"""Kernel functions: exact evaluation plus node-level interval/moment hooks.

A :class:`Kernel` couples a scalar profile ``g`` (see
:mod:`repro.core.profiles`) with an *argument mapping* from point pairs to
the scalar ``x``:

* distance kernels (Gaussian, Laplacian): ``x = dist(q, p)^2``, node
  intervals come from min/max distance to the node geometry;
* dot-product kernels (polynomial, sigmoid): ``x = q . p``, node intervals
  come from min/max inner product (Section IV-B).

Each kernel exposes three operations the query evaluator needs:

``pairwise(q, pts, sq_norms)``
    exact kernel values against a block of points (vectorised — used on
    leaves and by the SCAN baseline);
``node_interval(tree, q, node, q_sq)``
    the argument interval ``[lo, hi]`` for a node;
``node_moments(tree, q, node, q_sq, part)``
    the weighted argument moments ``(S0, S1)`` of the node's positive
    (``part="pos"``) or negative (``part="neg"``) weight mass, in O(d)
    from the precomputed node statistics (Lemmas 2 and 5).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.linear import moments_dist_sq, moments_dot
from repro.core.profiles import (
    CauchyProfile,
    EpanechnikovProfile,
    GaussianProfile,
    LaplacianProfile,
    PolynomialProfile,
    ScalarProfile,
    SigmoidProfile,
)

__all__ = [
    "Kernel",
    "GaussianKernel",
    "LaplacianKernel",
    "CauchyKernel",
    "EpanechnikovKernel",
    "PolynomialKernel",
    "SigmoidKernel",
    "kernel_from_name",
]


def _block_dist_sq(q: np.ndarray, pts: np.ndarray, sq_norms, q_sq: float) -> np.ndarray:
    """Squared distances from ``q`` to each row of ``pts``."""
    if sq_norms is None:
        sq_norms = np.einsum("ij,ij->i", pts, pts)
    d2 = q_sq - 2.0 * (pts @ q) + sq_norms
    np.maximum(d2, 0.0, out=d2)
    return d2


class Kernel:
    """Base kernel; subclasses set :attr:`profile` and the argument mapping."""

    profile: ScalarProfile

    #: "dist_sq" or "dot" — which node statistic the argument uses
    argument: str = "dist_sq"

    # -- exact evaluation ----------------------------------------------------

    def arguments(self, q, pts, sq_norms=None, q_sq=None):
        """The argument values ``x_i`` for ``q`` against rows of ``pts``."""
        q = np.asarray(q, dtype=np.float64)
        pts = np.asarray(pts, dtype=np.float64)
        if self.argument == "dist_sq":
            if q_sq is None:
                q_sq = float(q @ q)
            return _block_dist_sq(q, pts, sq_norms, q_sq)
        return pts @ q

    def pairwise(self, q, pts, sq_norms=None, q_sq=None):
        """Exact kernel values ``K(q, p_i)`` for each row ``p_i`` of ``pts``."""
        return self.profile.value(self.arguments(q, pts, sq_norms, q_sq))

    def __call__(self, q, p):
        """Exact kernel value for a single pair."""
        return float(self.pairwise(q, np.asarray(p, dtype=np.float64)[None, :])[0])

    def matrix(self, X, Y=None) -> np.ndarray:
        """Full Gram matrix ``K[i, j] = K(X[i], Y[j])`` (``Y`` defaults to X).

        Used by the SVM trainers; O(|X| |Y| d) time and O(|X| |Y|) memory.
        """
        X = np.asarray(X, dtype=np.float64)
        Y = X if Y is None else np.asarray(Y, dtype=np.float64)
        if self.argument == "dist_sq":
            xx = np.einsum("ij,ij->i", X, X)
            yy = np.einsum("ij,ij->i", Y, Y)
            d2 = xx[:, None] - 2.0 * (X @ Y.T) + yy[None, :]
            np.maximum(d2, 0.0, out=d2)
            return self.profile.value(d2)
        return self.profile.value(X @ Y.T)

    # -- node-level hooks ------------------------------------------------------

    def node_interval(self, tree, q, node, q_sq):
        """Argument interval ``[lo, hi]`` covering all points of ``node``."""
        if self.argument == "dist_sq":
            return tree.node_dist_bounds(q, node)
        return tree.node_ip_bounds(q, node)

    def node_moments(self, tree, q, node, q_sq, part="pos"):
        """Weighted argument moments ``(S0, S1)`` for one sign part of a node."""
        st = tree.stats
        if part == "pos":
            w, a, b = st.pos_w[node], st.pos_a[node], st.pos_b[node]
        else:
            w, a, b = st.neg_w[node], st.neg_a[node], st.neg_b[node]
        if self.argument == "dist_sq":
            return moments_dist_sq(q_sq, q, float(w), a, float(b))
        return moments_dot(q, float(w), a)


class GaussianKernel(Kernel):
    """``K(q, p) = exp(-gamma * dist(q, p)^2)`` — the paper's primary kernel."""

    argument = "dist_sq"

    def __init__(self, gamma: float):
        self.profile = GaussianProfile(gamma)
        self.gamma = self.profile.gamma

    def __repr__(self):
        return f"GaussianKernel(gamma={self.gamma})"


class LaplacianKernel(Kernel):
    """``K(q, p) = exp(-gamma * dist(q, p))`` (extension kernel).

    Treated as a convex decreasing profile of ``dist^2``, so KARL's exact
    chord/tangent machinery applies unchanged.
    """

    argument = "dist_sq"

    def __init__(self, gamma: float):
        self.profile = LaplacianProfile(gamma)
        self.gamma = self.profile.gamma

    def __repr__(self):
        return f"LaplacianKernel(gamma={self.gamma})"


class CauchyKernel(Kernel):
    """``K(q, p) = 1 / (1 + gamma * dist(q, p)^2)`` (extension kernel)."""

    argument = "dist_sq"

    def __init__(self, gamma: float):
        self.profile = CauchyProfile(gamma)
        self.gamma = self.profile.gamma

    def __repr__(self):
        return f"CauchyKernel(gamma={self.gamma})"


class EpanechnikovKernel(Kernel):
    """``K(q, p) = max(0, 1 - gamma * dist(q, p)^2)`` (extension kernel).

    Compactly supported: nodes farther than ``1/sqrt(gamma)`` contribute
    exactly zero, which the bounds recognise immediately.
    """

    argument = "dist_sq"

    def __init__(self, gamma: float):
        self.profile = EpanechnikovProfile(gamma)
        self.gamma = self.profile.gamma

    def __repr__(self):
        return f"EpanechnikovKernel(gamma={self.gamma})"


class PolynomialKernel(Kernel):
    """``K(q, p) = (gamma * q.p + coef0)^degree`` (Section IV-B)."""

    argument = "dot"

    def __init__(self, gamma: float, coef0: float = 0.0, degree: int = 3):
        self.profile = PolynomialProfile(gamma, coef0, degree)
        self.gamma = self.profile.gamma
        self.coef0 = self.profile.coef0
        self.degree = self.profile.degree

    def __repr__(self):
        return (
            f"PolynomialKernel(gamma={self.gamma}, coef0={self.coef0}, "
            f"degree={self.degree})"
        )


class SigmoidKernel(Kernel):
    """``K(q, p) = tanh(gamma * q.p + coef0)`` (Section IV-B)."""

    argument = "dot"

    def __init__(self, gamma: float, coef0: float = 0.0):
        self.profile = SigmoidProfile(gamma, coef0)
        self.gamma = self.profile.gamma
        self.coef0 = self.profile.coef0

    def __repr__(self):
        return f"SigmoidKernel(gamma={self.gamma}, coef0={self.coef0})"


_KERNELS = {
    "gaussian": GaussianKernel,
    "rbf": GaussianKernel,
    "laplacian": LaplacianKernel,
    "cauchy": CauchyKernel,
    "epanechnikov": EpanechnikovKernel,
    "polynomial": PolynomialKernel,
    "poly": PolynomialKernel,
    "sigmoid": SigmoidKernel,
}


def kernel_from_name(name: str, **params) -> Kernel:
    """Construct a kernel by LibSVM-style name (``rbf``, ``poly``, ...)."""
    try:
        cls = _KERNELS[name.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown kernel {name!r}; expected one of {sorted(set(_KERNELS))}"
        ) from None
    return cls(**params)
