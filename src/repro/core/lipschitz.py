"""Global Lipschitz constants of distance kernels in the query point.

A distance kernel evaluates ``K(q, p) = g(d(q, p)^2)`` with a scalar
profile ``g`` (:mod:`repro.core.profiles`).  Seen as a function of the
*distance* ``r = d(q, p)``, the kernel is ``f(r) = g(r^2)``, and its
global Lipschitz constant over ``r >= 0`` is::

    L_K = sup_r |f'(r)| = sup_r 2 r |g'(r^2)|

Because the point-to-point distance itself is 1-Lipschitz in ``q``
(triangle inequality: ``|d(q, p) - d(q', p)| <= ||q - q'||``), every
kernel value — and hence the whole weighted aggregate — inherits the
same modulus::

    |F_P(q) - F_P(q')| <= (sum_i |w_i|) * L_K * ||q - q'||

which is exactly what lets a certified interval served at ``q`` be
widened into a sound interval at a nearby ``q'``
(:mod:`repro.cache.transfer`).

Closed forms (maximising ``2 r |g'(r^2)|`` analytically):

========================  =====================  ======================
kernel                    ``f(r)``               ``L_K``
========================  =====================  ======================
Gaussian                  ``exp(-gamma r^2)``    ``sqrt(2 gamma / e)``
                                                 (at ``r = 1/sqrt(2 gamma)``)
Laplacian                 ``exp(-gamma r)``      ``gamma`` (at ``r = 0``)
Cauchy                    ``1/(1 + gamma r^2)``  ``(3 sqrt(3) / 8) sqrt(gamma)``
                                                 (at ``r = 1/sqrt(3 gamma)``)
Epanechnikov              ``max(0, 1-gamma r^2)``  ``2 sqrt(gamma)``
                                                 (at the cutoff ``r = 1/sqrt(gamma)``)
========================  =====================  ======================

Dot-product kernels (polynomial, sigmoid) are *not* Lipschitz in the
query in any data-independent sense — their argument ``q . p`` scales
with the point norms, so no global constant exists.  They get a typed
rejection (:class:`~repro.core.errors.TransferUnsupportedError`), the
same way the shard tier's ``worst_case_mass`` refuses them.
"""

from __future__ import annotations

import math

from repro.core.errors import TransferUnsupportedError
from repro.core.kernels import Kernel
from repro.core.profiles import (
    CauchyProfile,
    EpanechnikovProfile,
    GaussianProfile,
    LaplacianProfile,
)

__all__ = ["global_lipschitz", "supports_transfer"]


def _gaussian(gamma: float) -> float:
    return math.sqrt(2.0 * gamma / math.e)


def _laplacian(gamma: float) -> float:
    return gamma


def _cauchy(gamma: float) -> float:
    return 0.375 * math.sqrt(3.0) * math.sqrt(gamma)


def _epanechnikov(gamma: float) -> float:
    return 2.0 * math.sqrt(gamma)


_CONSTANTS = {
    GaussianProfile: _gaussian,
    LaplacianProfile: _laplacian,
    CauchyProfile: _cauchy,
    EpanechnikovProfile: _epanechnikov,
}


def supports_transfer(kernel: Kernel) -> bool:
    """True when ``kernel`` has a global Lipschitz constant in the query."""
    return (
        kernel.argument == "dist_sq"
        and type(kernel.profile) in _CONSTANTS
    )


def global_lipschitz(kernel: Kernel) -> float:
    """``sup_q |d K(q, p) / d ||q - p||||`` for a distance kernel.

    Raises :class:`~repro.core.errors.TransferUnsupportedError` for
    kernels without a data-independent constant (dot-product kernels,
    or unknown distance profiles).
    """
    if kernel.argument != "dist_sq":
        raise TransferUnsupportedError(
            f"{type(kernel).__name__} is a dot-product kernel; its values "
            "depend on point norms, so no global Lipschitz constant in the "
            "query exists and certified bound transfer is unavailable"
        )
    fn = _CONSTANTS.get(type(kernel.profile))
    if fn is None:
        raise TransferUnsupportedError(
            f"no global Lipschitz constant is known for profile "
            f"{type(kernel.profile).__name__}; certified bound transfer "
            "requires one of: Gaussian, Laplacian, Cauchy, Epanechnikov"
        )
    return fn(float(kernel.profile.gamma))
