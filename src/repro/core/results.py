"""Result objects returned by the kernel aggregation evaluator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "QueryStats",
    "TKAQResult",
    "EKAQResult",
    "BoundTrace",
    "BatchQueryStats",
    "TKAQBatchResult",
    "EKAQBatchResult",
]


@dataclass
class QueryStats:
    """Work counters for a single query evaluation.

    ``iterations`` counts priority-queue pops; ``points_evaluated`` counts
    points whose kernel value was computed exactly (SCAN evaluates all
    ``n``; good pruning evaluates far fewer).
    """

    iterations: int = 0
    nodes_expanded: int = 0
    leaves_evaluated: int = 0
    points_evaluated: int = 0


@dataclass
class BoundTrace:
    """Per-iteration global bound values (paper Figure 6)."""

    lowers: list[float] = field(default_factory=list)
    uppers: list[float] = field(default_factory=list)

    def record(self, lower: float, upper: float) -> None:
        """Append one iteration's global lower/upper bound pair."""
        self.lowers.append(lower)
        self.uppers.append(upper)

    def __len__(self) -> int:
        return len(self.lowers)


@dataclass
class TKAQResult:
    """Answer to a threshold kernel aggregation query (Problem 1).

    ``answer`` is the truth value of ``F_P(q) > tau``; ``lower``/``upper``
    bracket ``F_P(q)`` at termination.
    """

    answer: bool
    lower: float
    upper: float
    tau: float
    stats: QueryStats
    trace: BoundTrace | None = None

    def __bool__(self) -> bool:
        return self.answer


@dataclass
class BatchQueryStats:
    """Aggregate work counters for a multi-query (batch) evaluation.

    One evaluation answers a whole query batch; counters are totals over
    the batch.  The per-round lists expose the query-major schedule of the
    multiquery backend: ``frontier_sizes[r]`` is the shared frontier width
    entering round ``r``, ``active_counts[r]`` the number of not-yet
    certified queries, and ``retired_per_round[r]`` how many queries were
    certified (and dropped from the active set) during that round.  The
    loop backend fills only the totals (rounds = summed heap pops).
    """

    n_queries: int = 0
    rounds: int = 0
    nodes_expanded: int = 0
    leaves_evaluated: int = 0
    #: query-weighted: a leaf of k points evaluated for m active queries
    #: adds m*k (comparable to per-query ``QueryStats.points_evaluated``
    #: summed over the batch)
    points_evaluated: int = 0
    #: number of (query, node) bound pairs computed in fused array ops
    bound_evaluations: int = 0
    frontier_sizes: list[int] = field(default_factory=list)
    active_counts: list[int] = field(default_factory=list)
    retired_per_round: list[int] = field(default_factory=list)


@dataclass
class TKAQBatchResult:
    """Per-query answers and terminal bounds for a TKAQ batch.

    ``answers[i]`` is the truth value of ``F_P(q_i) > tau``;
    ``lower[i]``/``upper[i]`` bracket ``F_P(q_i)`` at the moment query
    ``i`` was certified (or refined to exhaustion).
    """

    answers: "np.ndarray"  # (Q,) bool
    lower: "np.ndarray"    # (Q,) float64
    upper: "np.ndarray"    # (Q,) float64
    tau: float
    stats: BatchQueryStats | None = None

    def __len__(self) -> int:
        return len(self.answers)


@dataclass
class EKAQBatchResult:
    """Per-query estimates and terminal bounds for an eKAQ batch.

    Each ``estimates[i]`` satisfies the ``(1 +- eps)`` contract whenever
    its terminal lower bound is positive (always for Type I/II weights).
    """

    estimates: "np.ndarray"  # (Q,) float64
    lower: "np.ndarray"      # (Q,) float64
    upper: "np.ndarray"      # (Q,) float64
    eps: float
    stats: BatchQueryStats | None = None

    def __len__(self) -> int:
        return len(self.estimates)


@dataclass
class EKAQResult:
    """Answer to an approximate kernel aggregation query (Problem 2).

    ``estimate`` satisfies ``(1-eps) F <= estimate <= (1+eps) F`` for the
    exact aggregate ``F`` (guaranteed whenever the terminal lower bound is
    positive, which holds for Type I/II weightings).
    """

    estimate: float
    lower: float
    upper: float
    eps: float
    stats: QueryStats
    trace: BoundTrace | None = None

    def __float__(self) -> float:
        return self.estimate
