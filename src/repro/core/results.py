"""Result objects returned by the kernel aggregation evaluator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QueryStats", "TKAQResult", "EKAQResult", "BoundTrace"]


@dataclass
class QueryStats:
    """Work counters for a single query evaluation.

    ``iterations`` counts priority-queue pops; ``points_evaluated`` counts
    points whose kernel value was computed exactly (SCAN evaluates all
    ``n``; good pruning evaluates far fewer).
    """

    iterations: int = 0
    nodes_expanded: int = 0
    leaves_evaluated: int = 0
    points_evaluated: int = 0


@dataclass
class BoundTrace:
    """Per-iteration global bound values (paper Figure 6)."""

    lowers: list[float] = field(default_factory=list)
    uppers: list[float] = field(default_factory=list)

    def record(self, lower: float, upper: float) -> None:
        """Append one iteration's global lower/upper bound pair."""
        self.lowers.append(lower)
        self.uppers.append(upper)

    def __len__(self) -> int:
        return len(self.lowers)


@dataclass
class TKAQResult:
    """Answer to a threshold kernel aggregation query (Problem 1).

    ``answer`` is the truth value of ``F_P(q) > tau``; ``lower``/``upper``
    bracket ``F_P(q)`` at termination.
    """

    answer: bool
    lower: float
    upper: float
    tau: float
    stats: QueryStats
    trace: BoundTrace | None = None

    def __bool__(self) -> bool:
        return self.answer


@dataclass
class EKAQResult:
    """Answer to an approximate kernel aggregation query (Problem 2).

    ``estimate`` satisfies ``(1-eps) F <= estimate <= (1+eps) F`` for the
    exact aggregate ``F`` (guaranteed whenever the terminal lower bound is
    positive, which holds for Type I/II weightings).
    """

    estimate: float
    lower: float
    upper: float
    eps: float
    stats: QueryStats
    trace: BoundTrace | None = None

    def __float__(self) -> float:
        return self.estimate
