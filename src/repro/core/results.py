"""Result objects returned by the kernel aggregation evaluator.

Besides the result dataclasses this module owns the *one* place work
counters get updated: the ``record_*`` helpers on :class:`QueryStats` /
:class:`BatchQueryStats` and :func:`fold_query_stats`.  Both evaluators
(`core/aggregator.py` and `core/multiquery.py`) go through these, and
the ``from_trace`` constructors rebuild the same counters from a
:class:`repro.obs.trace.QueryTrace` — so the legacy counters and the
observability layer cannot drift apart without a test noticing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "QueryStats",
    "TKAQResult",
    "EKAQResult",
    "BoundTrace",
    "BatchQueryStats",
    "TKAQBatchResult",
    "EKAQBatchResult",
    "fold_query_stats",
]


@dataclass
class QueryStats:
    """Work counters for a single query evaluation.

    ``iterations`` counts priority-queue pops; ``points_evaluated`` counts
    points whose kernel value was computed exactly (SCAN evaluates all
    ``n``; good pruning evaluates far fewer).
    """

    iterations: int = 0
    nodes_expanded: int = 0
    leaves_evaluated: int = 0
    points_evaluated: int = 0

    def record_leaf(self, n_points: int) -> None:
        """Count one leaf evaluated exactly over ``n_points`` points."""
        self.leaves_evaluated += 1
        self.points_evaluated += n_points

    def record_expansion(self) -> None:
        """Count one internal node replaced by its children's bounds."""
        self.nodes_expanded += 1

    def bound_evaluations(self) -> int:
        """Node-bound computations implied by the refinement: the root
        plus two children per expansion."""
        return 1 + 2 * self.nodes_expanded

    @classmethod
    def from_trace(cls, trace) -> "QueryStats":
        """Rebuild the counters from a single-query ``QueryTrace``.

        Uses the trace's running totals (exact even when the stored round
        list was truncated); a refinement round maps 1:1 to a heap pop.
        """
        return cls(
            iterations=trace.total_rounds,
            nodes_expanded=trace.total_expanded,
            leaves_evaluated=trace.total_leaves,
            points_evaluated=trace.total_points,
        )


@dataclass
class BoundTrace:
    """Per-iteration global bound values (paper Figure 6)."""

    lowers: list[float] = field(default_factory=list)
    uppers: list[float] = field(default_factory=list)

    def record(self, lower: float, upper: float) -> None:
        """Append one iteration's global lower/upper bound pair."""
        self.lowers.append(lower)
        self.uppers.append(upper)

    def __len__(self) -> int:
        return len(self.lowers)


@dataclass
class TKAQResult:
    """Answer to a threshold kernel aggregation query (Problem 1).

    ``answer`` is the truth value of ``F_P(q) > tau``; ``lower``/``upper``
    bracket ``F_P(q)`` at termination.
    """

    answer: bool
    lower: float
    upper: float
    tau: float
    stats: QueryStats
    trace: BoundTrace | None = None

    def __bool__(self) -> bool:
        return self.answer


@dataclass
class BatchQueryStats:
    """Aggregate work counters for a multi-query (batch) evaluation.

    One evaluation answers a whole query batch; counters are totals over
    the batch.  The per-round lists expose the query-major schedule of the
    multiquery backend: ``frontier_sizes[r]`` is the shared frontier width
    entering round ``r``, ``active_counts[r]`` the number of not-yet
    certified queries, and ``retired_per_round[r]`` how many queries were
    certified (and dropped from the active set) during that round.  The
    loop backend fills only the totals (rounds = summed heap pops).
    """

    n_queries: int = 0
    rounds: int = 0
    nodes_expanded: int = 0
    leaves_evaluated: int = 0
    #: query-weighted: a leaf of k points evaluated for m active queries
    #: adds m*k (comparable to per-query ``QueryStats.points_evaluated``
    #: summed over the batch)
    points_evaluated: int = 0
    #: number of (query, node) bound pairs computed in fused array ops
    bound_evaluations: int = 0
    frontier_sizes: list[int] = field(default_factory=list)
    active_counts: list[int] = field(default_factory=list)
    retired_per_round: list[int] = field(default_factory=list)

    def record_round(self, frontier_size: int, n_active: int,
                     n_retired: int) -> None:
        """Count one shared-frontier round of the query-major schedule."""
        self.rounds += 1
        self.frontier_sizes.append(int(frontier_size))
        self.active_counts.append(int(n_active))
        self.retired_per_round.append(int(n_retired))

    def record_leaves(self, n_leaves: int, n_points: int,
                      n_active: int) -> None:
        """Count ``n_leaves`` leaves (``n_points`` points total) evaluated
        exactly for ``n_active`` live queries."""
        self.leaves_evaluated += int(n_leaves)
        self.points_evaluated += int(n_active) * int(n_points)

    def record_expansions(self, n_internal: int, n_children: int,
                          n_active: int) -> None:
        """Count internal-node splits and their fused bound evaluations."""
        self.nodes_expanded += int(n_internal)
        self.bound_evaluations += int(n_active) * int(n_children)

    def merge_batch(self, other: "BatchQueryStats") -> None:
        """Fold another batch's counters into this one.

        The parallel backend evaluates a batch as independent shards and
        merges the per-shard stats here: totals add exactly; the per-round
        schedule lists are concatenated in shard order (shards refine
        concurrently in wall time, but each shard's own round sequence is
        preserved).
        """
        self.n_queries += other.n_queries
        self.rounds += other.rounds
        self.nodes_expanded += other.nodes_expanded
        self.leaves_evaluated += other.leaves_evaluated
        self.points_evaluated += other.points_evaluated
        self.bound_evaluations += other.bound_evaluations
        self.frontier_sizes.extend(other.frontier_sizes)
        self.active_counts.extend(other.active_counts)
        self.retired_per_round.extend(other.retired_per_round)

    def merge_query(self, stats: QueryStats) -> None:
        """Fold one per-query ``QueryStats`` into the batch counters
        (the loop backend's accounting: rounds = summed heap pops)."""
        self.rounds += stats.iterations
        self.nodes_expanded += stats.nodes_expanded
        self.leaves_evaluated += stats.leaves_evaluated
        self.points_evaluated += stats.points_evaluated
        self.bound_evaluations += stats.bound_evaluations()

    @classmethod
    def from_trace(cls, trace) -> "BatchQueryStats":
        """Rebuild the batch counters from a multiquery ``QueryTrace``.

        Totals come from the trace's running counters; the per-round
        lists from its stored round records (complete whenever the trace
        was not truncated).
        """
        stats = cls(
            n_queries=trace.n_queries,
            rounds=trace.total_rounds,
            nodes_expanded=trace.total_expanded,
            leaves_evaluated=trace.total_leaves,
            points_evaluated=trace.total_points,
            bound_evaluations=trace.total_bound_evals,
        )
        stats.frontier_sizes = [r.frontier for r in trace.rounds]
        stats.active_counts = [r.active for r in trace.rounds]
        stats.retired_per_round = [r.retired for r in trace.rounds]
        return stats


@dataclass
class TKAQBatchResult:
    """Per-query answers and terminal bounds for a TKAQ batch.

    ``answers[i]`` is the truth value of ``F_P(q_i) > tau``;
    ``lower[i]``/``upper[i]`` bracket ``F_P(q_i)`` at the moment query
    ``i`` was certified (or refined to exhaustion).
    """

    answers: "np.ndarray"  # (Q,) bool
    lower: "np.ndarray"    # (Q,) float64
    upper: "np.ndarray"    # (Q,) float64
    tau: "float | np.ndarray"  # shared scalar or per-query (Q,) thresholds
    stats: BatchQueryStats | None = None

    def __len__(self) -> int:
        return len(self.answers)


@dataclass
class EKAQBatchResult:
    """Per-query estimates and terminal bounds for an eKAQ batch.

    Each ``estimates[i]`` satisfies the ``(1 +- eps)`` contract whenever
    its terminal lower bound is positive (always for Type I/II weights).
    """

    estimates: "np.ndarray"  # (Q,) float64
    lower: "np.ndarray"      # (Q,) float64
    upper: "np.ndarray"      # (Q,) float64
    eps: "float | np.ndarray"  # shared scalar or per-query (Q,) tolerances
    stats: BatchQueryStats | None = None

    def __len__(self) -> int:
        return len(self.estimates)


def fold_query_stats(per_query) -> BatchQueryStats:
    """Fold per-query ``QueryStats`` into one ``BatchQueryStats``.

    The shared accounting rule for every per-query-loop batch path (the
    aggregator's ``backend="loop"`` and anything else that answers a
    batch one query at a time).
    """
    per_query = list(per_query)
    stats = BatchQueryStats(n_queries=len(per_query))
    for st in per_query:
        stats.merge_query(st)
    return stats


@dataclass
class EKAQResult:
    """Answer to an approximate kernel aggregation query (Problem 2).

    ``estimate`` satisfies ``(1-eps) F <= estimate <= (1+eps) F`` for the
    exact aggregate ``F`` (guaranteed whenever the terminal lower bound is
    positive, which holds for Type I/II weightings).
    """

    estimate: float
    lower: float
    upper: float
    eps: float
    stats: QueryStats
    trace: BoundTrace | None = None

    def __float__(self) -> float:
        return self.estimate
