"""Scalar kernel profiles: the 1-d functions KARL's linear bounds envelope.

Every supported kernel ``K(q, p)`` factors as ``g(x)`` where ``x`` is a
cheap *argument statistic* of the pair:

* distance kernels — ``x = dist(q, p)^2``:
  Gaussian ``g(x) = exp(-gamma*x)``, Laplacian ``g(x) = exp(-gamma*sqrt(x))``;
* dot-product kernels — ``x = q . p``:
  polynomial ``g(x) = (gamma*x + coef0)^deg``, sigmoid ``g(x) = tanh(gamma*x + coef0)``.

KARL bounds ``g`` by linear functions of ``x`` over the node interval
``[lo, hi]`` (paper Sections III-A/B and IV-B).  Which envelope construction
applies depends only on the *shape* of ``g`` on the interval, which each
profile reports via :meth:`ScalarProfile.shape_on`:

===================  ===========================================================
shape                meaning on ``[lo, hi]``
===================  ===========================================================
``constant``         g'' = 0 and g' = 0 (degenerate)
``linear``           g'' = 0
``convex``           g'' >= 0 everywhere on the interval
``concave``          g'' <= 0 everywhere on the interval
``s_convex_right``   concave left of the inflection, convex right (odd powers)
``s_concave_right``  convex left of the inflection, concave right (tanh)
===================  ===========================================================

Profiles also report the exact min/max of ``g`` on an interval
(:meth:`range_on`), which is all the SOTA constant bounds need.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import InvalidParameterError, check_positive

#: Inner loops call profiles on Python floats; math.* beats numpy scalars ~20x.
_SCALARS = (float, int)

__all__ = [
    "ScalarProfile",
    "GaussianProfile",
    "LaplacianProfile",
    "CauchyProfile",
    "EpanechnikovProfile",
    "PolynomialProfile",
    "SigmoidProfile",
]

#: Profiles whose second derivative changes sign exactly once.
_S_SHAPES = ("s_convex_right", "s_concave_right")


class ScalarProfile:
    """Abstract 1-d kernel profile ``g`` with shape metadata.

    Subclasses implement ``value``/``deriv`` (vectorised over numpy arrays)
    and the shape queries.  ``inflection`` is the unique zero of ``g''`` for
    S-shaped profiles, else ``None``.
    """

    inflection: float | None = None

    #: True when g is convex and non-increasing on its whole domain — the
    #: property the vectorised batch evaluator relies on (all distance
    #: kernels qualify; dot-product kernels do not).
    convex_decreasing: bool = False

    def value(self, x):
        """``g(x)`` (scalar or elementwise)."""
        raise NotImplementedError

    def deriv(self, x):
        """``g'(x)`` (scalar or elementwise)."""
        raise NotImplementedError

    def deriv2(self, x):
        """``g''(x)`` — used by the Newton tangency solver for S-shapes."""
        raise NotImplementedError

    def shape_on(self, lo: float, hi: float) -> str:
        """Shape classification of ``g`` restricted to ``[lo, hi]``."""
        raise NotImplementedError

    def clamp_tangent(self, t: float) -> float:
        """Adjust a tangent point to where ``deriv`` is well-defined.

        A tangent taken at the *clamped* point is still a valid support
        line by convexity; profiles with singular derivatives (Laplacian at
        0) override this so value and slope always refer to the same point.
        """
        return t

    def anchored_tangency(self, anchor: float) -> float | None:
        """Closed-form solution of ``g(t) + g'(t)(anchor - t) = g(anchor)``.

        Returns the non-trivial tangency point when the profile knows one
        analytically (degree-3 polynomial), else ``None`` — the bound code
        then falls back to the safeguarded Newton solver.
        """
        return None

    def range_on(self, lo: float, hi: float) -> tuple[float, float]:
        """Exact ``(min, max)`` of ``g`` over ``[lo, hi]``."""
        raise NotImplementedError

    # -- helpers shared by monotone profiles --------------------------------

    def _endpoint_range(self, lo: float, hi: float) -> tuple[float, float]:
        a = float(self.value(lo))
        b = float(self.value(hi))
        return (a, b) if a <= b else (b, a)


class GaussianProfile(ScalarProfile):
    """``g(x) = exp(-gamma * x)`` over ``x = dist^2``.

    Strictly convex and decreasing on all of R — the paper's primary case
    (Section III): chord upper bound, optimal-tangent lower bound.
    """

    convex_decreasing = True

    def __init__(self, gamma: float):
        self.gamma = check_positive(gamma, "gamma")

    def value(self, x):
        if isinstance(x, _SCALARS):
            return math.exp(-self.gamma * x)
        return np.exp(-self.gamma * np.asarray(x, dtype=np.float64))

    def deriv(self, x):
        if isinstance(x, _SCALARS):
            return -self.gamma * math.exp(-self.gamma * x)
        return -self.gamma * np.exp(-self.gamma * np.asarray(x, dtype=np.float64))

    def deriv2(self, x):
        if isinstance(x, _SCALARS):
            return self.gamma**2 * math.exp(-self.gamma * x)
        return self.gamma**2 * np.exp(-self.gamma * np.asarray(x, dtype=np.float64))

    def shape_on(self, lo, hi):
        return "convex"

    def range_on(self, lo, hi):
        # decreasing: min at hi, max at lo
        return float(self.value(hi)), float(self.value(lo))

    def __repr__(self):
        return f"GaussianProfile(gamma={self.gamma})"


class LaplacianProfile(ScalarProfile):
    """``g(x) = exp(-gamma * sqrt(x))`` over ``x = dist^2`` (x >= 0).

    Extension kernel (not in the paper's evaluation, but its framework
    covers it): ``g`` is convex and decreasing in ``dist^2``, so the exact
    same chord/tangent machinery applies.  ``g'`` diverges at 0, so callers
    clamp tangent points away from 0 (see :func:`repro.core.bounds`).
    """

    #: tangent points below this are clamped (g' singular at 0)
    eps = 1e-12

    convex_decreasing = True

    def __init__(self, gamma: float):
        self.gamma = check_positive(gamma, "gamma")

    def value(self, x):
        if isinstance(x, _SCALARS):
            return math.exp(-self.gamma * math.sqrt(max(x, 0.0)))
        x = np.maximum(np.asarray(x, dtype=np.float64), 0.0)
        return np.exp(-self.gamma * np.sqrt(x))

    def deriv(self, x):
        if isinstance(x, _SCALARS):
            root = math.sqrt(max(x, self.eps))
            return -self.gamma / (2.0 * root) * math.exp(-self.gamma * root)
        x = np.maximum(np.asarray(x, dtype=np.float64), self.eps)
        root = np.sqrt(x)
        return -self.gamma / (2.0 * root) * np.exp(-self.gamma * root)

    def deriv2(self, x):
        if isinstance(x, _SCALARS):
            x = max(x, self.eps)
            root = math.sqrt(x)
            return (
                (self.gamma / (4.0 * x * root) + self.gamma**2 / (4.0 * x))
                * math.exp(-self.gamma * root)
            )
        x = np.maximum(np.asarray(x, dtype=np.float64), self.eps)
        root = np.sqrt(x)
        return (
            self.gamma / (4.0 * x * root) + self.gamma**2 / (4.0 * x)
        ) * np.exp(-self.gamma * root)

    def shape_on(self, lo, hi):
        return "convex"

    def clamp_tangent(self, t):
        if isinstance(t, _SCALARS):
            return t if t >= self.eps else self.eps
        return np.maximum(t, self.eps)

    def range_on(self, lo, hi):
        return float(self.value(hi)), float(self.value(lo))

    def __repr__(self):
        return f"LaplacianProfile(gamma={self.gamma})"


class CauchyProfile(ScalarProfile):
    """``g(x) = 1 / (1 + gamma*x)`` over ``x = dist^2`` (x >= 0).

    The Cauchy (rational-quadratic with beta=1) kernel — a heavy-tailed
    KDE kernel.  Convex and decreasing on ``x >= 0``, so the exact
    chord/tangent machinery of Section III applies unchanged.
    """

    convex_decreasing = True

    def __init__(self, gamma: float):
        self.gamma = check_positive(gamma, "gamma")

    def _den(self, x):
        return 1.0 + self.gamma * x

    def value(self, x):
        if isinstance(x, _SCALARS):
            return 1.0 / self._den(x)
        return 1.0 / self._den(np.asarray(x, dtype=np.float64))

    def deriv(self, x):
        if isinstance(x, _SCALARS):
            return -self.gamma / self._den(x) ** 2
        return -self.gamma / self._den(np.asarray(x, dtype=np.float64)) ** 2

    def deriv2(self, x):
        if isinstance(x, _SCALARS):
            return 2.0 * self.gamma**2 / self._den(x) ** 3
        return 2.0 * self.gamma**2 / self._den(np.asarray(x, dtype=np.float64)) ** 3

    def shape_on(self, lo, hi):
        return "convex"

    def range_on(self, lo, hi):
        return float(self.value(hi)), float(self.value(lo))

    def __repr__(self):
        return f"CauchyProfile(gamma={self.gamma})"


class EpanechnikovProfile(ScalarProfile):
    """``g(x) = max(0, 1 - gamma*x)`` over ``x = dist^2``.

    The Epanechnikov kernel (optimal AMISE in classical KDE theory).
    Piecewise-linear and convex with a kink at ``x = 1/gamma``; its
    compact support makes bounds *exact* for nodes entirely outside the
    kernel's reach.
    """

    convex_decreasing = True

    def __init__(self, gamma: float):
        self.gamma = check_positive(gamma, "gamma")
        self.cutoff = 1.0 / self.gamma

    def value(self, x):
        if isinstance(x, _SCALARS):
            v = 1.0 - self.gamma * x
            return v if v > 0.0 else 0.0
        return np.maximum(1.0 - self.gamma * np.asarray(x, dtype=np.float64), 0.0)

    def deriv(self, x):
        # subgradient: the kink takes the flat side, keeping tangents valid
        if isinstance(x, _SCALARS):
            return -self.gamma if x < self.cutoff else 0.0
        x = np.asarray(x, dtype=np.float64)
        return np.where(x < self.cutoff, -self.gamma, 0.0)

    def deriv2(self, x):
        if isinstance(x, _SCALARS):
            return 0.0
        return np.zeros_like(np.asarray(x, dtype=np.float64))

    def shape_on(self, lo, hi):
        # linear on either side of the kink; convex across it
        if hi <= self.cutoff or lo >= self.cutoff:
            return "linear"
        return "convex"

    def range_on(self, lo, hi):
        return float(self.value(hi)), float(self.value(lo))

    def __repr__(self):
        return f"EpanechnikovProfile(gamma={self.gamma})"


class PolynomialProfile(ScalarProfile):
    """``g(x) = (gamma*x + coef0)^degree`` over ``x = q . p``.

    * ``degree`` even  — convex on all of R (Section IV-B: chord/tangent).
    * ``degree`` odd>1 — monotone increasing, concave then convex with the
      inflection at ``gamma*x + coef0 = 0`` (Section IV-B, Figure 8:
      "rotate-down"/"rotate-up" anchored lines).
    * ``degree`` 1     — linear (bounds are exact).
    """

    def __init__(self, gamma: float, coef0: float = 0.0, degree: int = 3):
        self.gamma = check_positive(gamma, "gamma")
        self.coef0 = float(coef0)
        if int(degree) != degree or degree < 1:
            raise InvalidParameterError(f"degree must be an integer >= 1; got {degree}")
        self.degree = int(degree)
        if self.degree >= 2:
            # g'' = 0 at gamma*x + coef0 = 0; only a true inflection for odd deg
            self.inflection = -self.coef0 / self.gamma if self.degree % 2 == 1 else None

    def _inner(self, x):
        if isinstance(x, _SCALARS):
            return self.gamma * x + self.coef0
        return self.gamma * np.asarray(x, dtype=np.float64) + self.coef0

    def value(self, x):
        return self._inner(x) ** self.degree

    def deriv(self, x):
        return self.degree * self.gamma * self._inner(x) ** (self.degree - 1)

    def deriv2(self, x):
        if self.degree < 2:
            return 0.0 if isinstance(x, _SCALARS) else np.zeros_like(self._inner(x))
        return (
            self.degree * (self.degree - 1) * self.gamma**2
            * self._inner(x) ** (self.degree - 2)
        )

    def shape_on(self, lo, hi):
        if self.degree == 1:
            return "linear"
        if self.degree % 2 == 0:
            return "convex"
        xi = self.inflection
        if hi <= xi:
            return "concave"
        if lo >= xi:
            return "convex"
        return "s_convex_right"

    def anchored_tangency(self, anchor):
        # For degree 3 the tangency condition (1-d)u^d + d*uA*u^(d-1) = uA^d
        # factors as (u - uA)^2 (2u + uA) = 0 with u = gamma*t + coef0, so
        # the non-trivial tangency sits at u = -uA/2.
        if self.degree != 3:
            return None
        u_anchor = self.gamma * anchor + self.coef0
        return (-0.5 * u_anchor - self.coef0) / self.gamma

    def range_on(self, lo, hi):
        if self.degree % 2 == 1:
            # odd degree: monotone increasing
            return float(self.value(lo)), float(self.value(hi))
        # even degree: minimum 0 if the root of the inner affine lies inside
        root = -self.coef0 / self.gamma
        vals = [float(self.value(lo)), float(self.value(hi))]
        if lo <= root <= hi:
            vals.append(0.0)
        return min(vals), max(vals)

    def __repr__(self):
        return (
            f"PolynomialProfile(gamma={self.gamma}, coef0={self.coef0}, "
            f"degree={self.degree})"
        )


class SigmoidProfile(ScalarProfile):
    """``g(x) = tanh(gamma*x + coef0)`` over ``x = q . p``.

    Monotone increasing, convex left of the inflection
    ``gamma*x + coef0 = 0`` and concave right of it (Section IV-B notes the
    monotone-rotation construction "is also applicable to the sigmoid
    kernel").
    """

    def __init__(self, gamma: float, coef0: float = 0.0):
        self.gamma = check_positive(gamma, "gamma")
        self.coef0 = float(coef0)
        self.inflection = -self.coef0 / self.gamma

    def _inner(self, x):
        if isinstance(x, _SCALARS):
            return self.gamma * x + self.coef0
        return self.gamma * np.asarray(x, dtype=np.float64) + self.coef0

    def value(self, x):
        if isinstance(x, _SCALARS):
            return math.tanh(self._inner(x))
        return np.tanh(self._inner(x))

    def deriv(self, x):
        if isinstance(x, _SCALARS):
            u = self._inner(x)
            if abs(u) > 350.0:  # cosh overflows; sech^2 underflows to 0
                return 0.0
            return self.gamma / math.cosh(u) ** 2
        u = self._inner(x)
        out = np.zeros_like(u)
        safe = np.abs(u) <= 350.0
        out[safe] = self.gamma / np.cosh(u[safe]) ** 2
        return out

    def deriv2(self, x):
        # d/dx [gamma * sech^2(u)] = -2 gamma^2 tanh(u) sech^2(u)
        if isinstance(x, _SCALARS):
            u = self._inner(x)
            if abs(u) > 350.0:
                return 0.0
            return -2.0 * self.gamma**2 * math.tanh(u) / math.cosh(u) ** 2
        u = self._inner(x)
        out = np.zeros_like(u)
        safe = np.abs(u) <= 350.0
        out[safe] = (
            -2.0 * self.gamma**2 * np.tanh(u[safe]) / np.cosh(u[safe]) ** 2
        )
        return out

    def shape_on(self, lo, hi):
        xi = self.inflection
        if hi <= xi:
            return "convex"
        if lo >= xi:
            return "concave"
        return "s_concave_right"

    def range_on(self, lo, hi):
        return float(self.value(lo)), float(self.value(hi))

    def __repr__(self):
        return f"SigmoidProfile(gamma={self.gamma}, coef0={self.coef0})"
