"""Streaming kernel aggregation for online kernel learning.

The paper's in-situ scenario (Section III-C) motivates models whose point
set changes frequently — online kernel learning keeps inserting (and
sometimes removing) weighted points.  Rebuilding the index per update
would dominate; scanning everything would forfeit pruning.

:class:`StreamingAggregator` uses the standard main + delta design from
log-structured storage: the bulk of the points live in an immutable index
queried through the usual bound-based evaluator, recent updates accumulate
in a small unindexed *buffer* evaluated exactly, and the buffer is merged
into a rebuilt index once it exceeds a fraction of the main set.  Queries
remain exact at every moment:

    F(q) = F_indexed(q) + F_buffer(q)

and TKAQ/eKAQ bounds combine the indexed part's refinement bounds with the
buffer's exact contribution.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregator import KernelAggregator
from repro.core.errors import InvalidParameterError, as_matrix, as_vector
from repro.core.kernels import Kernel
from repro.core.results import EKAQResult, QueryStats, TKAQResult
from repro.index.builder import build_index
from repro.obs import runtime as _obs

__all__ = ["StreamingAggregator"]


class StreamingAggregator:
    """Exact kernel aggregation over a mutable weighted point set.

    Parameters
    ----------
    kernel : Kernel
    index : str
        Index kind for the main set (``"kd"`` or ``"ball"``).
    leaf_capacity : int
        Leaf capacity of the rebuilt index.
    scheme : str
        Bound scheme for the indexed part.
    rebuild_fraction : float
        Merge the buffer into a fresh index when
        ``len(buffer) > rebuild_fraction * len(main)`` (and at least
        ``min_buffer`` points have accumulated).
    coreset : dict or True, optional
        Also maintain a :class:`~repro.sketch.StreamingCoreset`
        (merge-and-reduce tower) over every insert; a dict passes
        construction kwargs (``m``, ``delta``, ``seed``) through.  The
        batch query methods can then serve from the coreset with
        per-query fallback to the exact streaming path.  Requires a
        distance kernel.
    """

    def __init__(
        self,
        kernel: Kernel,
        index: str = "kd",
        leaf_capacity: int = 40,
        scheme: str = "karl",
        rebuild_fraction: float = 0.25,
        min_buffer: int = 256,
        coreset=None,
    ):
        if rebuild_fraction <= 0.0:
            raise InvalidParameterError(
                f"rebuild_fraction must be > 0; got {rebuild_fraction}"
            )
        self.kernel = kernel
        self.index = index
        self.leaf_capacity = int(leaf_capacity)
        self.scheme = scheme
        self.rebuild_fraction = float(rebuild_fraction)
        self.min_buffer = int(min_buffer)

        self._agg: KernelAggregator | None = None
        self._buf_points: list[np.ndarray] = []
        self._buf_weights: list[float] = []
        self._d: int | None = None
        self._cache = None  # attached CertifiedAnswerCache (invalidation)
        self.rebuilds = 0
        self.coreset = None
        if coreset is not None and coreset is not False:
            from repro.sketch.aggregator import CoresetAggregator
            from repro.sketch.streaming import StreamingCoreset

            if not CoresetAggregator.supports(kernel):
                raise InvalidParameterError(
                    "streaming coreset maintenance requires a distance "
                    f"kernel with a convex, non-increasing profile; "
                    f"got {kernel!r}"
                )
            self.coreset = StreamingCoreset(
                **({} if coreset is True else dict(coreset))
            )

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Total number of live points (indexed + buffered)."""
        base = self._agg.tree.n if self._agg is not None else 0
        return base + len(self._buf_points)

    def attach_cache(self, cache) -> None:
        """Route insert invalidation into a certified answer cache.

        Every :meth:`insert` then calls ``cache.note_insert(weights)`` so
        cached intervals certified before the insert are widened by the
        inserted mass's worst-case contribution (or dropped, in the
        cache's ``"drop"`` mode) before being transferred again.
        :meth:`rebuild` needs no notification: merging the buffer into a
        fresh index re-indexes the *same* weighted point set, so ``F`` —
        and every cached interval — is unchanged.
        """
        self._cache = cache

    def insert(self, points, weights=None) -> None:
        """Append weighted points; triggers a rebuild when the buffer grows
        past ``rebuild_fraction`` of the indexed set."""
        points = as_matrix(points)
        if self._d is None:
            self._d = points.shape[1]
        elif points.shape[1] != self._d:
            raise InvalidParameterError(
                f"points have dimension {points.shape[1]}, expected {self._d}"
            )
        if weights is None:
            weights = np.ones(points.shape[0])
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.ndim == 0:
                weights = np.full(points.shape[0], float(weights))
        self._buf_points.extend(points)
        self._buf_weights.extend(weights.tolist())
        if self.coreset is not None:
            self.coreset.insert(points, weights)
        if self._cache is not None:
            self._cache.note_insert(weights)
        if _obs.is_enabled():
            _obs.registry().gauge("streaming.buffer_points").set(
                len(self._buf_points)
            )
        self._maybe_rebuild()

    def _maybe_rebuild(self) -> None:
        base = self._agg.tree.n if self._agg is not None else 0
        buffered = len(self._buf_points)
        if buffered >= self.min_buffer and buffered > self.rebuild_fraction * base:
            self.rebuild()

    def rebuild(self) -> None:
        """Merge the buffer into a freshly built index."""
        if not self._buf_points and self._agg is not None:
            return
        pts = [np.asarray(self._buf_points)] if self._buf_points else []
        wts = [np.asarray(self._buf_weights)] if self._buf_weights else []
        if self._agg is not None:
            pts.append(self._agg.tree.points)
            wts.append(self._agg.tree.weights)
        all_pts = np.vstack(pts)
        all_wts = np.concatenate(wts)
        tree = build_index(
            self.index, all_pts, weights=all_wts, leaf_capacity=self.leaf_capacity
        )
        self._agg = KernelAggregator(tree, self.kernel, scheme=self.scheme)
        self._buf_points = []
        self._buf_weights = []
        self.rebuilds += 1
        if _obs.is_enabled():
            reg = _obs.registry()
            reg.counter("streaming.rebuilds").inc()
            reg.gauge("streaming.indexed_points").set(tree.n)
            reg.gauge("streaming.buffer_points").set(0)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _buffer_contribution(self, q: np.ndarray) -> float:
        if not self._buf_points:
            return 0.0
        pts = np.asarray(self._buf_points)
        wts = np.asarray(self._buf_weights)
        return float(wts @ self.kernel.pairwise(q, pts))

    def exact(self, q) -> float:
        """Exact ``F(q)`` over indexed + buffered points."""
        q = as_vector(q, self._d, name="q") if self._d else as_vector(q)
        total = self._buffer_contribution(q)
        if self._agg is not None:
            total += self._agg.exact(q)
        return total

    def tkaq(self, q, tau: float) -> TKAQResult:
        """Threshold query; the buffer's exact value shifts the threshold
        seen by the indexed part, so pruning still applies."""
        q = as_vector(q, self._d, name="q") if self._d else as_vector(q)
        shift = self._buffer_contribution(q)
        if self._agg is None:
            answer = shift > tau
            return TKAQResult(
                answer=answer, lower=shift, upper=shift, tau=float(tau),
                stats=QueryStats(points_evaluated=len(self._buf_points)),
            )
        # refine the indexed part against the buffer-shifted threshold so
        # the trace is labelled with the streaming backend and true tau
        tau_eff = float(tau) - shift
        lb, ub, stats = self._agg._refine(
            q, lambda lo, hi: lo > tau_eff or hi <= tau_eff, None,
            "tkaq", float(tau), backend="streaming",
            stop_spec=(0, tau_eff, 0.0),
        )
        stats.points_evaluated += len(self._buf_points)
        return TKAQResult(
            answer=lb > tau_eff, lower=lb + shift, upper=ub + shift,
            tau=float(tau), stats=stats,
        )

    def ekaq(self, q, eps: float) -> EKAQResult:
        """Approximate query; exact when everything is still buffered."""
        q = as_vector(q, self._d, name="q") if self._d else as_vector(q)
        shift = self._buffer_contribution(q)
        if self._agg is None:
            return EKAQResult(
                estimate=shift, lower=shift, upper=shift, eps=float(eps),
                stats=QueryStats(points_evaluated=len(self._buf_points)),
            )
        # run refinement with the buffer folded into the certificate: the
        # termination test needs (ub+shift) <= (1+eps)(lb+shift), so we
        # cannot reuse the plain ekaq; refine with a shifted stop instead.
        lb, ub, stats = self._agg._refine(
            q,
            lambda lo, hi: hi + shift <= (1.0 + float(eps)) * (lo + shift),
            None,
            "ekaq", float(eps), backend="streaming",
            stop_spec=(3, float(eps), shift),
        )
        stats.points_evaluated += len(self._buf_points)
        return EKAQResult(
            estimate=0.5 * (lb + ub) + shift, lower=lb + shift,
            upper=ub + shift, eps=float(eps), stats=stats,
        )

    # ------------------------------------------------------------------
    # batch queries (optionally coreset-served)
    # ------------------------------------------------------------------

    def _check_batch_backend(self, backend: str) -> bool:
        """True when the coreset tier should answer this batch."""
        if backend not in ("auto", "coreset", "loop"):
            raise InvalidParameterError(
                f"backend must be 'auto', 'coreset', or 'loop'; "
                f"got {backend!r}"
            )
        if backend == "coreset" and self.coreset is None:
            raise InvalidParameterError(
                "backend='coreset' requires coreset maintenance; build the "
                "StreamingAggregator with coreset=True"
            )
        return backend == "coreset" or (
            backend == "auto" and self.coreset is not None
        )

    def _check_batch_queries(self, queries) -> np.ndarray:
        Q = as_matrix(queries, name="queries")
        if self._d is not None and Q.shape[1] != self._d:
            raise InvalidParameterError(
                f"queries have dimension {Q.shape[1]}, expected {self._d}"
            )
        return Q

    def ekaq_many(self, queries, eps: float, backend: str = "auto"
                  ) -> np.ndarray:
        """Batched eKAQ estimates, each meeting the ``(1 +- eps)`` contract.

        With coreset maintenance enabled (and ``backend`` ``"auto"`` or
        ``"coreset"``) the streaming coreset answers every query whose
        certified error meets the contract; the rest take the exact
        per-query path.  ``backend="loop"`` forces the exact path.
        """
        Q = self._check_batch_queries(queries)
        eps = float(eps)
        if not self._check_batch_backend(backend):
            return np.array([self.ekaq(q, eps).estimate for q in Q])
        est, err = self.coreset.estimate_with_error(self.kernel, Q)
        serve = err <= eps * (est - err)
        out = np.where(serve, est, 0.0)
        for i in np.flatnonzero(~serve):
            out[i] = self.ekaq(Q[i], eps).estimate
        return out

    def tkaq_many(self, queries, tau: float, backend: str = "auto"
                  ) -> np.ndarray:
        """Batched TKAQ answers (``F(q) > tau``), coreset-served when the
        certified interval clears the threshold, exact otherwise."""
        Q = self._check_batch_queries(queries)
        tau = float(tau)
        if not self._check_batch_backend(backend):
            return np.array([self.tkaq(q, tau).answer for q in Q])
        est, err = self.coreset.estimate_with_error(self.kernel, Q)
        serve = (est - err > tau) | (est + err <= tau)
        out = est - err > tau
        for i in np.flatnonzero(~serve):
            out[i] = self.tkaq(Q[i], tau).answer
        return out
