"""Online backend routing from observed execution traces.

KARL's §III-C tunes index parameters in situ from observed query
behaviour; this module extends the idea one level up, to the choice of
*execution tier*.  The repo has several batch backends whose relative
cost ranking depends on the workload — query-major ``multiquery`` wins
on hard near-threshold batches, the ``coreset`` tier wins on smooth
relative-error traffic (until its fallback rate spikes), the per-query
``loop`` wins on tiny batches, and the process pool only pays off on
large batches — and no static heuristic ranks them correctly across a
drifting traffic mix.

:class:`BackendRouter` is a contextual epsilon-greedy bandit.  Each
decision context is a coarse bucket of observable batch features:

* query ``kind`` (tkaq / ekaq) and batch-size bucket,
* a *hardness* bucket from an EWMA of per-query work — the fraction of
  the indexed points each query had to examine, which is comparable
  across backends because ``BatchQueryStats.points_evaluated`` is
  query-weighted,
* whether the batch carries heterogeneous per-query parameters.

Within a context, arms (backend + parameters: chunk size for the pool,
coreset use, the native-assisted loop inherits ``REPRO_NATIVE`` mode)
are first pulled ``min_pulls`` times each (warmup), then exploited
greedily with a decaying exploration probability.  The reward is
measured throughput (queries/second, EWMA-smoothed).  Per-batch trace
features the bandit does not bucket on — frontier growth, retirement
round mass, batch occupancy, coreset fallback rate — are folded into
EWMAs and exposed via :meth:`BackendRouter.snapshot` and ``router.*``
metrics in :func:`repro.obs.default_registry`.

Plug it in with ``KernelAggregator(..., router=True)`` and
``backend="routed"``, or ``BatchConfig(routed=True)`` on the serving
layer's :class:`~repro.serve.batcher.MicroBatcher`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = ["RouterConfig", "RouterArm", "BackendRouter"]


@dataclass(frozen=True)
class RouterConfig:
    """Explore/exploit schedule and arm-space knobs.

    Defaults favour fast convergence on short streams: one warmup pull
    per (context, arm), then mostly-greedy with a slowly decaying
    exploration tail so a drifting workload can still dethrone a stale
    winner.
    """

    epsilon: float = 0.05         # initial exploration probability
    epsilon_decay: float = 0.95   # per-decision multiplicative decay
    epsilon_min: float = 0.02     # exploration never fully stops
    min_pulls: int = 1            # warmup pulls per (kind, arm), *global*
    ewma: float = 0.4             # smoothing for reward/feature EWMAs
    seed: int = 0                 # exploration draws are deterministic
    use_parallel: bool = False    # offer process-pool arms
    parallel_min_batch: int = 512  # pool arms only at/above this size
    chunk_sizes: tuple = (64, 256)  # pool arm chunk-size parameters
    loop_max_batch: int = 128     # pure-python loop arm only below this
    explore_floor: float = 0.33   # explore only arms >= this x best qps
    switch_margin: float = 1.1    # challenger must beat incumbent by this
    probe_queries: int = 48       # slice size for exploratory sub-batches
    probe_min_batch: int = 96     # split batches at/above this size only
    size_edges: tuple = (64, 512)   # batch-size bucket boundaries
    hardness_edges: tuple = (0.02, 0.2)  # examined-fraction boundaries

    def __post_init__(self):
        if not 0.0 <= self.epsilon <= 1.0:
            raise InvalidParameterError(
                f"epsilon must be in [0, 1]; got {self.epsilon}")
        if not 0.0 < self.epsilon_decay <= 1.0:
            raise InvalidParameterError(
                f"epsilon_decay must be in (0, 1]; got {self.epsilon_decay}")
        if not 0.0 < self.ewma <= 1.0:
            raise InvalidParameterError(
                f"ewma must be in (0, 1]; got {self.ewma}")
        if self.min_pulls < 1:
            raise InvalidParameterError(
                f"min_pulls must be >= 1; got {self.min_pulls}")

    @classmethod
    def coerce(cls, value) -> "RouterConfig":
        """Accept a config, a mapping of kwargs, ``True``, or ``None``."""
        if isinstance(value, cls):
            return value
        if value is None or value is True:
            return cls()
        if isinstance(value, dict):
            return cls(**value)
        raise InvalidParameterError(
            f"router must be a RouterConfig, dict, True, or None; "
            f"got {value!r}")


@dataclass(frozen=True)
class RouterArm:
    """One routing choice: a concrete backend plus its parameters."""

    name: str
    backend: str
    n_workers: int | None = None
    chunk_size: int | None = None

    def call_kwargs(self) -> dict:
        if self.backend != "parallel":
            return {}
        return {"n_workers": self.n_workers, "chunk_size": self.chunk_size}


@dataclass
class _ArmState:
    pulls: int = 0
    qps: float = 0.0  # reward EWMA


@dataclass
class _ContextState:
    decisions: int = 0
    explore: int = 0
    incumbent: str | None = None  # sticky greedy choice (hysteresis)
    arms: dict = field(default_factory=dict)  # name -> _ArmState
    # trace-feature EWMAs (observability + hardness bucketing input)
    hardness: float = 0.0   # examined fraction of the point set per query
    occupancy: float = 1.0  # mean active fraction across rounds
    frontier_growth: float = 1.0  # terminal / initial frontier width
    fallback_rate: float = 0.0    # coreset per-query exact fallbacks


class BackendRouter:
    """Per-batch online backend selection (see module docstring).

    One router instance holds the learned state; it may serve several
    aggregators (the serving layer shares one across replicas of the
    same index), but its statistics assume comparable cost profiles —
    don't share across different datasets.
    """

    def __init__(self, config=None):
        self.config = RouterConfig.coerce(config)
        self._rng = np.random.default_rng(self.config.seed)
        self._contexts: dict[tuple, _ContextState] = {}
        # (kind, arm name) -> cross-context _ArmState: the hierarchical
        # prior.  Forced warmup is charged against these global pulls, so
        # the whole stream pays for each arm's first measurement once;
        # a fresh context then ranks its unpulled arms by the global
        # EWMA instead of re-running every backend from scratch
        self._global: dict[tuple, _ArmState] = {}
        # (kind, size bucket, hetero) -> hardness EWMA feeding the
        # hardness *bucket* of the decision context; keyed one level
        # coarser than the context to avoid self-reference
        self._hardness: dict[tuple, float] = {}
        self.decisions = 0
        self.explored = 0

    # ------------------------------------------------------------------
    # batch entry points (what backend="routed" dispatches to)
    # ------------------------------------------------------------------

    def tkaq_many_results(self, agg, queries, tau):
        """Route one TKAQ batch: pick an arm, run it, record the reward."""
        return self._run(agg, "tkaq", queries, tau, None)

    def ekaq_many_results(self, agg, queries, eps, warm=None):
        """Route one eKAQ batch: pick an arm, run it, record the reward."""
        return self._run(agg, "ekaq", queries, eps, warm)

    def _run(self, agg, kind, Q, param, warm):
        if agg.precision == "float32":
            raise InvalidParameterError(
                "precision='float32' supports only the per-query loop "
                "backend; got backend='routed'"
            )
        n = Q.shape[0]
        hetero = bool(np.ptp(param) > 0.0) if np.ndim(param) else False
        key, arms = self._context(agg, kind, n, hetero, warm)
        arm, explored, best = self._choose(key, arms)
        cfg = self.config
        if (explored and arm is not best and warm is None
                and n >= cfg.probe_min_batch):
            # exploratory sub-batch: measure the candidate on a slice,
            # serve the remainder with the incumbent — a mispriced arm
            # (stale cross-family prior, drifted regime) costs tens of
            # queries instead of a whole batch
            m = min(cfg.probe_queries, n // 2)
            vec = np.broadcast_to(param, (n,))
            probe = self._execute(agg, kind, Q[:m], vec[:m], None,
                                  arm, key, True)
            rest = self._execute(agg, kind, Q[m:], vec[m:], None,
                                 best, key, False)
            return self._merge(kind, probe, rest)
        return self._execute(agg, kind, Q, param, warm, arm, key, explored)

    def _execute(self, agg, kind, Q, param, warm, arm, key, explored):
        self._prepare(agg, arm)
        fallback_before = self._coreset_fallbacks(agg, arm)
        t0 = time.perf_counter()
        if kind == "tkaq":
            res = agg.tkaq_many_results(Q, param, backend=arm.backend,
                                        **arm.call_kwargs())
        else:
            res = agg.ekaq_many_results(Q, param, backend=arm.backend,
                                        warm=warm, **arm.call_kwargs())
        seconds = time.perf_counter() - t0
        self._observe(agg, key, arm, explored, Q.shape[0], seconds,
                      res.stats, fallback_before)
        return res

    @staticmethod
    def _merge(kind, first, second):
        """Stitch two batch-slice results back into one (order kept)."""
        from repro.core.results import (
            BatchQueryStats,
            EKAQBatchResult,
            TKAQBatchResult,
        )

        a, b = first.stats, second.stats
        stats = BatchQueryStats(
            n_queries=a.n_queries + b.n_queries,
            rounds=a.rounds + b.rounds,
            nodes_expanded=a.nodes_expanded + b.nodes_expanded,
            leaves_evaluated=a.leaves_evaluated + b.leaves_evaluated,
            points_evaluated=a.points_evaluated + b.points_evaluated,
            bound_evaluations=a.bound_evaluations + b.bound_evaluations,
            frontier_sizes=a.frontier_sizes + b.frontier_sizes,
            active_counts=a.active_counts + b.active_counts,
            retired_per_round=a.retired_per_round + b.retired_per_round,
        )
        cat = np.concatenate
        if kind == "tkaq":
            return TKAQBatchResult(
                answers=cat([first.answers, second.answers]),
                lower=cat([first.lower, second.lower]),
                upper=cat([first.upper, second.upper]),
                tau=cat([np.atleast_1d(first.tau),
                         np.atleast_1d(second.tau)]),
                stats=stats,
            )
        return EKAQBatchResult(
            estimates=cat([first.estimates, second.estimates]),
            lower=cat([first.lower, second.lower]),
            upper=cat([first.upper, second.upper]),
            eps=cat([np.atleast_1d(first.eps), np.atleast_1d(second.eps)]),
            stats=stats,
        )

    # ------------------------------------------------------------------
    # context + arm derivation
    # ------------------------------------------------------------------

    def _context(self, agg, kind, n, hetero, warm):
        cfg = self.config
        size_b = int(np.searchsorted(cfg.size_edges, n, side="right"))
        coarse = (kind, size_b, hetero)
        hardness = self._hardness.get(coarse, 0.0)
        hard_b = int(np.searchsorted(cfg.hardness_edges, hardness,
                                     side="right"))
        key = (kind, size_b, hard_b, hetero)
        return key, self._arms(agg, n, warm)

    def _arms(self, agg, n, warm) -> list[RouterArm]:
        from repro.core.multiquery import MultiQueryAggregator
        from repro.sketch.aggregator import CoresetAggregator

        from repro import native

        # the aggregator's own static heuristic is the first arm: the
        # router's floor is then "whatever auto would have done", and
        # learning only has to beat it where a specialist backend wins
        arms = [RouterArm("auto", "auto")]
        if MultiQueryAggregator.supports(agg.kernel, agg.scheme):
            arms.append(RouterArm("multiquery", "multiquery"))
        # the per-query loop (which the native tier accelerates in place)
        # is only a contender on small batches — unless native refinement
        # is actually engaged, in which case it competes at any size
        cfg = self.config
        if (n < cfg.loop_max_batch
                or (native.enabled() and native.numba_available())):
            arms.append(RouterArm("loop", "loop"))
        # warm intervals only transfer to the refining backends, and the
        # coreset tier only covers kernels with a-priori bounded values
        if warm is None and CoresetAggregator.supports(agg.kernel):
            arms.append(RouterArm("coreset", "coreset"))
        # unpruned Gram-product summation: wins when parameters force
        # refinement to (near) exhaustion, loses an index-sized factor
        # everywhere else — the bandit finds out which regime this is
        if warm is None:
            arms.append(RouterArm("exact", "exact"))
        if (cfg.use_parallel and warm is None and not agg._closed
                and n >= cfg.parallel_min_batch):
            for cs in cfg.chunk_sizes:
                arms.append(RouterArm(f"parallel-c{cs}", "parallel",
                                      chunk_size=int(cs)))
        return arms

    @staticmethod
    def _prepare(agg, arm) -> None:
        """Build one-time arm infrastructure outside the timed region.

        Coreset construction and pool spin-up are index-lifetime costs,
        not per-batch costs; charging them to the first pull would bury
        an arm whose steady-state throughput wins.
        """
        if arm.backend == "coreset" or (
                arm.backend == "auto" and agg.coreset_enabled):
            agg.coreset_backend()
        elif arm.backend == "parallel":
            agg._parallel_backend(arm.n_workers, arm.chunk_size)

    @staticmethod
    def _coreset_fallbacks(agg, arm) -> int:
        if arm.backend == "coreset" and agg._coreset is not None:
            return agg._coreset.fallback_queries
        return 0

    # ------------------------------------------------------------------
    # explore/exploit
    # ------------------------------------------------------------------

    def _state(self, key) -> _ContextState:
        st = self._contexts.get(key)
        if st is None:
            st = self._contexts[key] = _ContextState()
        return st

    def _choose(self, key, arms) -> tuple[RouterArm, bool, RouterArm]:
        """Pick ``(arm, explored, incumbent)`` for one batch.

        ``incumbent`` is the current greedy choice; when ``arm`` differs
        (a probe or an epsilon draw) the caller serves only a sub-batch
        slice with ``arm`` and the remainder with ``incumbent``.
        """
        cfg = self.config
        kind = key[0]
        st = self._state(key)
        for arm in arms:
            if arm.name not in st.arms:
                st.arms[arm.name] = _ArmState()
        # warmup: each (kind, arm) is force-pulled min_pulls times once,
        # *stream-wide*; a fresh context does not re-measure every arm
        # (that would spend most of a short stream on backends the rest
        # of the stream already ranked) — its unpulled arms compete on
        # the cross-context (kind, arm) EWMA prior instead
        for arm in arms:
            self._global.setdefault((kind, arm.name), _ArmState())
        for arm in arms:
            if self._global[(kind, arm.name)].pulls < cfg.min_pulls:
                # even forced warmup pulls ride a probe slice once any
                # arm for this kind has a measurement to serve the rest
                pulled = [a for a in arms if a is not arm
                          and self._global[(kind, a.name)].pulls > 0]
                if not pulled:
                    return arm, True, arm
                incumbent = max(
                    pulled, key=lambda a: self._global[(kind, a.name)].qps)
                return arm, True, incumbent

        def effective(arm):
            a = st.arms[arm.name]
            return a.qps if a.pulls else self._global[(kind, arm.name)].qps

        best = max(arms, key=effective)
        # sticky incumbent: one noisy slow measurement of the true best
        # arm must not dethrone it for the rest of the stream, so a
        # challenger takes the greedy slot only by a switch_margin
        # factor — regime contrasts here are 1.5-10x, well clear of it
        held = next((a for a in arms if a.name == st.incumbent), None)
        if (held is not None and best is not held
                and st.arms[held.name].pulls
                and effective(best) <
                cfg.switch_margin * effective(held)):
            best = held
        st.incumbent = best.name
        # every non-greedy action is capped to arms whose (measured or
        # prior) throughput is within explore_floor of the context best:
        # a dominated arm (exact summation on an easy smooth workload
        # can be 10x slower than the coreset) is never re-measured just
        # for curiosity, yet re-enters the pool the moment the best
        # arm's measured throughput degrades toward it
        floor = cfg.explore_floor * effective(best)
        candidates = [a for a in arms
                      if a is best or effective(a) >= floor]
        # sparse in-context probes: global priors carry cross-family
        # noise, so each *candidate* arm still gets measured in-context
        # once, at most every other decision, best prior first
        if st.decisions % 2 == 1:
            unpulled = [a for a in candidates if not st.arms[a.name].pulls]
            if unpulled:
                return max(unpulled, key=effective), True, best
        # sparse refresh of a *close* challenger (slice-priced): without
        # it, one noisy slow measurement of the true best arm locks the
        # ranking — probes only target unpulled arms and the hysteresis
        # protects whatever is incumbent.  Guarded to near-ties because
        # that is the only regime where lock-in costs anything, and the
        # only regime where the probe slice is nearly free
        if st.decisions % 8 == 6 and len(candidates) > 1:
            runner = max((a for a in candidates if a is not best),
                         key=effective)
            if effective(runner) >= 0.75 * effective(best):
                return runner, True, best
        eps = max(cfg.epsilon_min,
                  cfg.epsilon * cfg.epsilon_decay ** st.decisions)
        if self._rng.random() < eps:
            pick = candidates[int(self._rng.integers(len(candidates)))]
            return pick, pick is not best, best
        return best, False, best

    def _observe(self, agg, key, arm, explored, n, seconds, stats,
                 fallback_before) -> None:
        cfg = self.config
        st = self._state(key)
        qps = n / seconds if seconds > 0 else 0.0
        for a in (st.arms[arm.name],
                  self._global.setdefault((key[0], arm.name), _ArmState())):
            a.qps = qps if a.pulls == 0 else (
                (1 - cfg.ewma) * a.qps + cfg.ewma * qps)
            a.pulls += 1
        st.decisions += 1
        st.explore += int(explored)
        self.decisions += 1
        self.explored += int(explored)
        self._fold_features(agg, key, arm, st, n, stats, fallback_before)
        self._emit_metrics(key, arm, explored, qps, st)

    def _fold_features(self, agg, key, arm, st, n, stats,
                       fallback_before) -> None:
        w = self.config.ewma

        def fold(old, new):
            return new if st.decisions == 1 else (1 - w) * old + w * new

        tree_n = max(1, agg.tree.n)
        frac = stats.points_evaluated / (n * tree_n)
        st.hardness = fold(st.hardness, frac)
        coarse = (key[0], key[1], key[3])
        prev = self._hardness.get(coarse)
        self._hardness[coarse] = frac if prev is None else (
            (1 - w) * prev + w * frac)
        if stats.active_counts:
            st.occupancy = fold(
                st.occupancy, float(np.mean(stats.active_counts)) / n)
        if len(stats.frontier_sizes) >= 2 and stats.frontier_sizes[0] > 0:
            st.frontier_growth = fold(
                st.frontier_growth,
                stats.frontier_sizes[-1] / stats.frontier_sizes[0])
        if arm.backend == "coreset" and agg._coreset is not None:
            rate = (agg._coreset.fallback_queries - fallback_before) / n
            st.fallback_rate = fold(st.fallback_rate, rate)

    def _emit_metrics(self, key, arm, explored, qps, st) -> None:
        from repro import obs

        reg = obs.default_registry()
        reg.counter("router.decisions").inc()
        if explored:
            reg.counter("router.explore").inc()
        reg.counter(f"router.arm.{arm.name}").inc()
        reg.gauge("router.last_qps").set(qps)
        reg.gauge("router.contexts").set(len(self._contexts))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-friendly view of learned state (per context, per arm)."""
        out = {
            "decisions": self.decisions,
            "explored": self.explored,
            "contexts": {},
        }
        for key, st in sorted(self._contexts.items(), key=lambda kv: str(kv)):
            name = "|".join(str(p) for p in key)
            out["contexts"][name] = {
                "decisions": st.decisions,
                "explore": st.explore,
                "hardness": round(st.hardness, 6),
                "occupancy": round(st.occupancy, 4),
                "frontier_growth": round(st.frontier_growth, 4),
                "fallback_rate": round(st.fallback_rate, 4),
                "arms": {
                    n: {"pulls": a.pulls, "qps": round(a.qps, 2)}
                    for n, a in sorted(st.arms.items())
                },
            }
        return out

    def best_arms(self) -> dict:
        """Current greedy choice per context (for logs and docs)."""
        return {
            "|".join(str(p) for p in key): max(
                st.arms, key=lambda n: st.arms[n].qps)
            for key, st in self._contexts.items() if st.arms
        }
