"""KARL core: kernels, linear bound functions, the query evaluator, tuning."""

from repro.core.aggregator import KernelAggregator, resolve_scheme
from repro.core.batch import BatchKernelAggregator
from repro.core.dualtree import DualTreeEvaluator
from repro.core.multiquery import MultiQueryAggregator
from repro.core.bounds import (
    BoundScheme,
    HybridBounds,
    KARLBounds,
    SOTABounds,
    envelope_lines,
)
from repro.core.errors import (
    DataShapeError,
    InvalidParameterError,
    NotFittedError,
    ParallelExecutionError,
    ReproError,
    TransferUnsupportedError,
)
from repro.core.lipschitz import global_lipschitz, supports_transfer
from repro.core.kernels import (
    CauchyKernel,
    EpanechnikovKernel,
    GaussianKernel,
    Kernel,
    LaplacianKernel,
    PolynomialKernel,
    SigmoidKernel,
    kernel_from_name,
)
from repro.core.linear import Line, chord, tangent
from repro.core.profiles import (
    CauchyProfile,
    EpanechnikovProfile,
    GaussianProfile,
    LaplacianProfile,
    PolynomialProfile,
    ScalarProfile,
    SigmoidProfile,
)
from repro.core.router import BackendRouter, RouterArm, RouterConfig
from repro.core.results import (
    BatchQueryStats,
    BoundTrace,
    EKAQBatchResult,
    EKAQResult,
    QueryStats,
    TKAQBatchResult,
    TKAQResult,
)
from repro.core.streaming import StreamingAggregator
from repro.core.tuning import (
    DEFAULT_LEAF_CAPACITIES,
    InSituReport,
    OfflineTuner,
    OfflineTuningReport,
    OnlineTuner,
)

__all__ = [
    "KernelAggregator",
    "StreamingAggregator",
    "BatchKernelAggregator",
    "MultiQueryAggregator",
    "DualTreeEvaluator",
    "BackendRouter",
    "RouterArm",
    "RouterConfig",
    "resolve_scheme",
    "BoundScheme",
    "KARLBounds",
    "SOTABounds",
    "HybridBounds",
    "envelope_lines",
    "Line",
    "chord",
    "tangent",
    "Kernel",
    "GaussianKernel",
    "LaplacianKernel",
    "CauchyKernel",
    "EpanechnikovKernel",
    "PolynomialKernel",
    "SigmoidKernel",
    "kernel_from_name",
    "ScalarProfile",
    "GaussianProfile",
    "LaplacianProfile",
    "CauchyProfile",
    "EpanechnikovProfile",
    "PolynomialProfile",
    "SigmoidProfile",
    "QueryStats",
    "TKAQResult",
    "EKAQResult",
    "BatchQueryStats",
    "TKAQBatchResult",
    "EKAQBatchResult",
    "BoundTrace",
    "OfflineTuner",
    "OfflineTuningReport",
    "OnlineTuner",
    "InSituReport",
    "DEFAULT_LEAF_CAPACITIES",
    "ReproError",
    "InvalidParameterError",
    "DataShapeError",
    "NotFittedError",
    "ParallelExecutionError",
    "TransferUnsupportedError",
    "global_lipschitz",
    "supports_transfer",
]
