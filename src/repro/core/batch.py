"""Level-synchronous, numpy-vectorised query evaluator.

The paper's refinement loop (and :class:`KernelAggregator`) pops one node
per step — optimal in refinement *work*, but in Python each step costs
microseconds of interpreter time.  :class:`BatchKernelAggregator` trades a
little extra work for vectorisation: each round it

1. computes bounds for the **entire frontier** in fused numpy operations,
2. checks the same TKAQ/eKAQ termination conditions on the summed bounds,
3. replaces every frontier node whose gap is within ``split_fraction`` of
   the current maximum gap (leaves are evaluated exactly; internal nodes
   are swapped for their children).

Bounds, termination conditions, and answers are identical to the
sequential evaluator; only the work schedule differs.  Supported for
kernels whose profile is convex and non-increasing over the squared
distance (Gaussian, Laplacian, Cauchy, Epanechnikov) — exactly the shapes
whose chord/tangent envelopes vectorise without branch logic.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError, as_vector
from repro.core.kernels import Kernel
from repro.core.results import EKAQResult, QueryStats, TKAQResult

__all__ = ["BatchKernelAggregator"]

#: spans below this are treated as single points (mirrors bounds.py)
_DEGENERATE_SPAN = 1e-13


class BatchKernelAggregator:
    """Vectorised frontier evaluator for convex-decreasing distance kernels.

    Parameters
    ----------
    tree : SpatialIndex
    kernel : Kernel
        Must use the squared-distance argument with a convex, decreasing
        profile (``profile.convex_decreasing``).
    scheme : str
        ``"karl"`` (linear bounds) or ``"sota"`` (constant bounds).
    split_fraction : float
        A frontier node is refined when its gap exceeds this fraction of
        the round's maximum gap.  1.0 refines only the worst node(s) per
        round (closest to the sequential schedule); smaller values refine
        more per round (fewer, heavier rounds).  0.25 is a good default:
        ~1.5x faster than the sequential evaluator on Type I workloads.
    """

    def __init__(self, tree, kernel: Kernel, scheme: str = "karl",
                 split_fraction: float = 0.25):
        if kernel.argument != "dist_sq" or not kernel.profile.convex_decreasing:
            raise InvalidParameterError(
                "BatchKernelAggregator requires a convex-decreasing distance "
                f"kernel; got {kernel!r}"
            )
        if scheme not in ("karl", "sota"):
            raise InvalidParameterError(
                f"scheme must be 'karl' or 'sota'; got {scheme!r}"
            )
        if not 0.0 < split_fraction <= 1.0:
            raise InvalidParameterError(
                f"split_fraction must be in (0, 1]; got {split_fraction}"
            )
        self.tree = tree
        self.kernel = kernel
        self.scheme = scheme
        self.split_fraction = float(split_fraction)
        self._has_neg = tree.stats.has_negative

    # ------------------------------------------------------------------
    # vectorised bounds
    # ------------------------------------------------------------------

    def _interval(self, q, nodes):
        tree = self.tree
        if tree.kind == "kd":
            from repro.index.rectangle import rect_dist_bounds_many

            return rect_dist_bounds_many(q, tree.lo[nodes], tree.hi[nodes])
        from repro.index.ball import ball_dist_bounds_many

        return ball_dist_bounds_many(q, tree.center[nodes], tree.radius[nodes])

    def _part_bounds(self, q, q_sq, nodes, lo_x, hi_x, sign):
        """Vectorised (lb, ub) for one sign part over frontier ``nodes``."""
        st = self.tree.stats
        profile = self.kernel.profile
        if sign > 0:
            w, a, b = st.pos_w[nodes], st.pos_a[nodes], st.pos_b[nodes]
        else:
            w, a, b = st.neg_w[nodes], st.neg_a[nodes], st.neg_b[nodes]
        s0 = w
        s1 = np.maximum(s0 * q_sq - 2.0 * (a @ q) + b, 0.0)

        glo = profile.value(lo_x)
        if self.scheme == "sota":
            ghi = profile.value(hi_x)
            return s0 * ghi, s0 * glo  # decreasing: min at hi, max at lo

        span = hi_x - lo_x
        wide = span > _DEGENERATE_SPAN
        slope = np.zeros_like(span)
        if wide.any():
            ghi_w = profile.value(hi_x[wide])
            slope[wide] = (ghi_w - glo[wide]) / span[wide]
        ub = glo * s0 + slope * (s1 - lo_x * s0)

        safe_s0 = np.where(s0 > 0.0, s0, 1.0)
        xbar = np.clip(s1 / safe_s0, lo_x, hi_x)
        xbar = profile.clamp_tangent(xbar)
        lb = profile.value(xbar) * s0 + profile.deriv(xbar) * (s1 - xbar * s0)
        # zero-mass parts contribute exactly nothing
        empty = s0 <= 0.0
        if empty.any():
            lb[empty] = 0.0
            ub[empty] = 0.0
        return lb, ub

    def _frontier_bounds(self, q, q_sq, nodes):
        lo_x, hi_x = self._interval(q, nodes)
        lb, ub = self._part_bounds(q, q_sq, nodes, lo_x, hi_x, +1)
        if self._has_neg:
            nlb, nub = self._part_bounds(q, q_sq, nodes, lo_x, hi_x, -1)
            lb, ub = lb - nub, ub - nlb
        return lb, ub

    # ------------------------------------------------------------------
    # the round loop
    # ------------------------------------------------------------------

    def _leaf_exact(self, q, q_sq, node) -> float:
        sl = self.tree.leaf_slice(node)
        vals = self.kernel.pairwise(
            q, self.tree.points[sl], self.tree.sq_norms[sl], q_sq
        )
        return float(self.tree.weights[sl] @ vals)

    def _refine(self, q, stop):
        tree = self.tree
        q = as_vector(q, tree.d)
        q_sq = float(q @ q)
        stats = QueryStats()

        nodes = np.array([0], dtype=np.int64)
        lb_arr, ub_arr = self._frontier_bounds(q, q_sq, nodes)
        exact_sum = 0.0

        while True:
            lb = exact_sum + float(lb_arr.sum())
            ub = exact_sum + float(ub_arr.sum())
            if stop(lb, ub) or nodes.size == 0:
                return lb, ub, stats

            gaps = ub_arr - lb_arr
            threshold = self.split_fraction * float(gaps.max())
            refine = gaps >= max(threshold, 0.0)
            # guard: always refine at least the worst node
            if not refine.any():
                refine[int(np.argmax(gaps))] = True
            stats.iterations += 1

            picked = nodes[refine]
            is_leaf = tree.left[picked] < 0
            for node in picked[is_leaf]:
                exact_sum += self._leaf_exact(q, q_sq, int(node))
                stats.leaves_evaluated += 1
                stats.points_evaluated += tree.node_size(int(node))
            internal = picked[~is_leaf]
            stats.nodes_expanded += internal.size

            keep_nodes = nodes[~refine]
            keep_lb = lb_arr[~refine]
            keep_ub = ub_arr[~refine]
            if internal.size:
                children = np.concatenate(
                    [tree.left[internal], tree.right[internal]]
                )
                c_lb, c_ub = self._frontier_bounds(q, q_sq, children)
                nodes = np.concatenate([keep_nodes, children])
                lb_arr = np.concatenate([keep_lb, c_lb])
                ub_arr = np.concatenate([keep_ub, c_ub])
            else:
                nodes, lb_arr, ub_arr = keep_nodes, keep_lb, keep_ub

    # ------------------------------------------------------------------
    # public queries (same contracts as KernelAggregator)
    # ------------------------------------------------------------------

    def exact(self, q) -> float:
        """Exact ``F_P(q)`` by direct summation."""
        q = as_vector(q, self.tree.d)
        vals = self.kernel.pairwise(
            q, self.tree.points, self.tree.sq_norms, float(q @ q)
        )
        return float(self.tree.weights @ vals)

    def tkaq(self, q, tau: float) -> TKAQResult:
        """Threshold query (identical contract to the sequential evaluator)."""
        tau = float(tau)
        lb, ub, stats = self._refine(q, lambda lo, hi: lo > tau or hi <= tau)
        return TKAQResult(answer=lb > tau, lower=lb, upper=ub, tau=tau,
                          stats=stats)

    def ekaq(self, q, eps: float) -> EKAQResult:
        """Approximate query (identical contract to the sequential evaluator)."""
        eps = float(eps)
        if eps < 0.0:
            raise InvalidParameterError(f"eps must be >= 0; got {eps}")
        lb, ub, stats = self._refine(
            q, lambda lo, hi: hi <= (1.0 + eps) * lo
        )
        return EKAQResult(estimate=0.5 * (lb + ub), lower=lb, upper=ub,
                          eps=eps, stats=stats)
