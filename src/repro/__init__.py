"""repro — a full reproduction of KARL: Fast Kernel Aggregation Queries.

KARL (Chan, Yiu, U — ICDE 2019) accelerates kernel aggregation queries

    F_P(q) = sum_i w_i K(q, p_i)

with linear lower/upper bound functions over hierarchical indexes, for
threshold queries (TKAQ), approximate queries (eKAQ), all three weighting
types (kernel density, 1-class SVM, 2-class SVM), and Gaussian /
polynomial / sigmoid kernels.

Quickstart::

    import numpy as np
    from repro import GaussianKernel, KDTree, KernelAggregator

    points = np.random.default_rng(0).random((10_000, 8))
    tree = KDTree(points, leaf_capacity=80)
    agg = KernelAggregator(tree, GaussianKernel(gamma=10.0))
    agg.tkaq(points[0], tau=50.0)    # is F_P(q) > 50 ?
    agg.ekaq(points[0], eps=0.2)     # F_P(q) within +-20%

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

from repro import obs
from repro.baselines import ScanEvaluator
from repro.core import (
    DEFAULT_LEAF_CAPACITIES,
    BackendRouter,
    BatchKernelAggregator,
    BatchQueryStats,
    BoundScheme,
    BoundTrace,
    DualTreeEvaluator,
    CauchyKernel,
    EpanechnikovKernel,
    DataShapeError,
    EKAQBatchResult,
    EKAQResult,
    GaussianKernel,
    HybridBounds,
    InSituReport,
    InvalidParameterError,
    KARLBounds,
    Kernel,
    KernelAggregator,
    LaplacianKernel,
    MultiQueryAggregator,
    NotFittedError,
    ParallelExecutionError,
    OfflineTuner,
    OfflineTuningReport,
    OnlineTuner,
    PolynomialKernel,
    QueryStats,
    ReproError,
    SigmoidKernel,
    SOTABounds,
    StreamingAggregator,
    TKAQBatchResult,
    TKAQResult,
    kernel_from_name,
)
from repro.datasets import (
    DATASET_SPECS,
    PCA,
    Dataset,
    dataset_names,
    load_dataset,
    train_test_split,
)
from repro.index import (
    BallTree,
    KDTree,
    SpatialIndex,
    build_index,
    load_index,
    save_index,
)
from repro.kde import (
    KernelDensity,
    KernelDensityClassifier,
    MulticlassKernelDensityClassifier,
    scott_bandwidth,
    scott_gamma,
)
from repro.parallel import ParallelEvaluator
from repro.regression import NadarayaWatson
from repro.serve import KAQServer, ServeClient, ServeConfig
from repro.svm import (
    SVC,
    MinMaxScaler,
    OneClassSVM,
    OneVsOneSVC,
    select_one_class_nu,
    select_svc_params,
)

__version__ = "1.0.0"

__all__ = [
    # core engine
    "KernelAggregator",
    "StreamingAggregator",
    "BatchKernelAggregator",
    "MultiQueryAggregator",
    "DualTreeEvaluator",
    "BackendRouter",
    "ParallelEvaluator",
    "BoundScheme",
    "KARLBounds",
    "SOTABounds",
    "HybridBounds",
    "QueryStats",
    "TKAQResult",
    "EKAQResult",
    "BatchQueryStats",
    "TKAQBatchResult",
    "EKAQBatchResult",
    "BoundTrace",
    # kernels
    "Kernel",
    "GaussianKernel",
    "LaplacianKernel",
    "CauchyKernel",
    "EpanechnikovKernel",
    "PolynomialKernel",
    "SigmoidKernel",
    "kernel_from_name",
    # indexes
    "SpatialIndex",
    "KDTree",
    "BallTree",
    "build_index",
    "save_index",
    "load_index",
    # tuning
    "OfflineTuner",
    "OfflineTuningReport",
    "OnlineTuner",
    "InSituReport",
    "DEFAULT_LEAF_CAPACITIES",
    # baselines
    "ScanEvaluator",
    # applications
    "KernelDensity",
    "KernelDensityClassifier",
    "MulticlassKernelDensityClassifier",
    "scott_bandwidth",
    "scott_gamma",
    "SVC",
    "OneClassSVM",
    "OneVsOneSVC",
    "MinMaxScaler",
    "select_one_class_nu",
    "select_svc_params",
    "NadarayaWatson",
    # datasets
    "Dataset",
    "DATASET_SPECS",
    "dataset_names",
    "load_dataset",
    "train_test_split",
    "PCA",
    # observability
    "obs",
    # serving
    "KAQServer",
    "ServeConfig",
    "ServeClient",
    # errors
    "ReproError",
    "InvalidParameterError",
    "DataShapeError",
    "NotFittedError",
    "ParallelExecutionError",
    "__version__",
]
