"""Comparison baselines: the sequential scan (SCAN / LibSVM-style predict)."""

from repro.baselines.scan import ScanEvaluator

__all__ = ["ScanEvaluator"]
