"""Sequential-scan baseline (SCAN) and LibSVM-style exact prediction.

SCAN computes ``F_P(q)`` with no pruning — O(n d) per query.  It is both a
comparison method in every experiment (paper Section V-A2) and the ground
truth the tests verify bounds against.  LibSVM's predictor is the same
sequential scan applied to the support-vector expansion, so this module
serves for both baseline rows of Table VII.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import as_matrix, as_vector
from repro.core.kernels import Kernel
from repro.core.results import EKAQResult, QueryStats, TKAQResult
from repro.obs import runtime as _obs

__all__ = ["ScanEvaluator"]


class ScanEvaluator:
    """Exact evaluator over a raw weighted point set (no index).

    Mirrors :class:`~repro.core.aggregator.KernelAggregator`'s query API so
    benchmarks can swap methods freely.
    """

    def __init__(self, points, kernel: Kernel, weights=None):
        self.points = as_matrix(points)
        n = self.points.shape[0]
        if weights is None:
            self.weights = np.ones(n)
        else:
            self.weights = np.asarray(weights, dtype=np.float64)
            if self.weights.ndim == 0:
                self.weights = np.full(n, float(self.weights))
        self.kernel = kernel
        self.sq_norms = np.einsum("ij,ij->i", self.points, self.points)
        self.d = self.points.shape[1]

    def exact(self, q) -> float:
        """Exact ``F_P(q)``."""
        q = as_vector(q, self.d)
        vals = self.kernel.pairwise(q, self.points, self.sq_norms, float(q @ q))
        return float(self.weights @ vals)

    def exact_many(self, queries) -> np.ndarray:
        """Exact ``F_P(q)`` for each row of ``queries``."""
        return np.array([self.exact(q) for q in np.atleast_2d(queries)])

    def _stats(self) -> QueryStats:
        n = self.points.shape[0]
        return QueryStats(iterations=1, leaves_evaluated=1, points_evaluated=n)

    def _traced_exact(self, q, kind: str, param: float,
                      n_queries: int = 1) -> float | np.ndarray:
        """Exact value(s) with a one-round trace (all points, no pruning)."""
        otrace = _obs.start_trace(
            kind, "scan", "exact", self.points.shape[0],
            n_queries=n_queries, param=param,
        )
        value = self.exact(q) if n_queries == 1 else self.exact_many(q)
        if otrace is not None:
            n = self.points.shape[0]
            otrace.record_round(
                frontier=0, active=n_queries, retired=n_queries,
                leaves=n_queries, points=n_queries * n, gap=0.0,
            )
            _obs.finish_trace(otrace)
        return value

    def tkaq(self, q, tau: float, trace: bool = False) -> TKAQResult:
        """Threshold query answered by exact evaluation."""
        value = self._traced_exact(q, "tkaq", float(tau))
        return TKAQResult(
            answer=value > tau, lower=value, upper=value, tau=float(tau),
            stats=self._stats(),
        )

    def ekaq(self, q, eps: float, trace: bool = False) -> EKAQResult:
        """Approximate query answered by exact evaluation (error 0)."""
        value = self._traced_exact(q, "ekaq", float(eps))
        return EKAQResult(
            estimate=value, lower=value, upper=value, eps=float(eps),
            stats=self._stats(),
        )

    def tkaq_many(self, queries, tau: float) -> np.ndarray:
        """Vector of TKAQ answers."""
        Q = np.atleast_2d(queries)
        return self._traced_exact(Q, "tkaq", float(tau), Q.shape[0]) > tau

    def ekaq_many(self, queries, eps: float) -> np.ndarray:
        """Vector of eKAQ estimates (exact values)."""
        Q = np.atleast_2d(queries)
        return self._traced_exact(Q, "ekaq", float(eps), Q.shape[0])
