"""Merge-and-reduce coreset maintenance for streaming point sets.

:class:`StreamingCoreset` keeps a certified coreset of everything ever
inserted, in amortised ``O(m)`` work per ``m`` insertions, using the
classic merge-and-reduce bucket tower (Bentley & Saxe decomposition, the
standard composition scheme for mergeable summaries):

* fresh inserts accumulate in an exact buffer (zero error);
* a full buffer becomes a level-0 bucket — reduced to ``m`` draws if it
  is larger;
* two buckets at the same level **merge** (estimates add, certified
  errors add) and **reduce** back to ``m`` draws (one fresh sampling
  stage whose error composes with the inherited ``err_prior``), rising
  one level.

At any moment the structure holds at most one bucket per level — at most
``log2(n / m)`` buckets of at most ``m`` points each plus the buffer —
and a query folds all live parts: exact buffer contributions plus each
bucket's certified estimate, with additive error bounds summing across
parts.  Signed weights are maintained as separate positive/negative
towers (the paper's ``P+ / P-`` split), estimates subtracting and errors
adding, exactly as in :class:`~repro.sketch.aggregator.CoresetAggregator`.

Error growth is the scheme's known cost: every level adds a sampling
stage, so the certified error of a tower with ``L`` levels is roughly
``L`` times a single stage's — acceptable because ``L`` grows
logarithmically.  Certificates stay honest throughout: a query served
from a streaming coreset carries the full composed bound, and callers
(e.g. ``StreamingAggregator``'s batch methods) fall back to exact
evaluation whenever it cannot meet their contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DataShapeError, InvalidParameterError, as_matrix
from repro.sketch.aggregator import certified_estimate
from repro.sketch.coreset import (
    Coreset,
    exact_coreset,
    merge_coresets,
    reduce_coreset,
)

__all__ = ["StreamingCoreset"]


class _Tower:
    """One sign part's merge-and-reduce bucket tower."""

    def __init__(self, m: int, delta: float, rng):
        self.m = m
        self.delta = delta
        self.rng = rng
        self.buf_points: list[np.ndarray] = []
        self.buf_weights: list[float] = []
        self.buckets: list[Coreset | None] = []  # index == level

    @property
    def buffered(self) -> int:
        return len(self.buf_points)

    def insert(self, points, weights) -> None:
        self.buf_points.extend(points)
        self.buf_weights.extend(weights.tolist())
        if self.buffered >= self.m:
            self._flush()

    def _flush(self) -> None:
        if not self.buf_points:
            return
        level = exact_coreset(
            np.asarray(self.buf_points), np.asarray(self.buf_weights),
            delta=self.delta,
        )
        self.buf_points = []
        self.buf_weights = []
        i = 0
        while True:
            if i == len(self.buckets):
                self.buckets.append(None)
            if self.buckets[i] is None:
                self.buckets[i] = reduce_coreset(level, self.m, rng=self.rng)
                return
            level = merge_coresets(self.buckets[i], level)
            self.buckets[i] = None
            i += 1

    def parts(self) -> list[Coreset]:
        out = [b for b in self.buckets if b is not None]
        if self.buf_points:
            out.append(exact_coreset(
                np.asarray(self.buf_points), np.asarray(self.buf_weights),
                delta=self.delta,
            ))
        return out


class StreamingCoreset:
    """A certified coreset maintained under point insertions.

    Parameters
    ----------
    m : int
        Per-bucket draw budget — total stored points stay within
        ``O(m log(n / m))``.
    delta : float
        Per-stage certificate confidence.
    seed : int
        RNG seed for the reduce stages.
    """

    def __init__(self, m: int = 1024, delta: float = 1e-6, seed: int = 0):
        if m < 1:
            raise InvalidParameterError(f"m must be >= 1; got {m}")
        if not 0.0 < delta < 1.0:
            raise InvalidParameterError(f"delta must be in (0, 1); got {delta}")
        self.m = int(m)
        self.delta = float(delta)
        rng = np.random.default_rng(seed)
        self._pos = _Tower(self.m, self.delta, rng)
        self._neg = _Tower(self.m, self.delta, rng)
        self._d: int | None = None
        self.n_inserted = 0

    def insert(self, points, weights=None) -> None:
        """Fold weighted points into the tower (signed weights allowed)."""
        points = as_matrix(points, name="points")
        if self._d is None:
            self._d = points.shape[1]
        elif points.shape[1] != self._d:
            raise DataShapeError(
                f"points have dimension {points.shape[1]}, expected {self._d}"
            )
        if weights is None:
            weights = np.ones(points.shape[0])
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.ndim == 0:
                weights = np.full(points.shape[0], float(weights))
            elif weights.shape != (points.shape[0],):
                raise DataShapeError(
                    f"weights must have shape ({points.shape[0]},); "
                    f"got {weights.shape}"
                )
        pos = weights > 0
        neg = weights < 0
        if pos.any():
            self._pos.insert(points[pos], weights[pos])
        if neg.any():
            self._neg.insert(points[neg], -weights[neg])
        self.n_inserted += points.shape[0]

    @property
    def size(self) -> int:
        """Live stored points (all buckets + buffers, both signs)."""
        return sum(p.size for p in self._pos.parts()) + sum(
            p.size for p in self._neg.parts()
        )

    @property
    def levels(self) -> int:
        """Height of the tallest bucket tower."""
        return max(len(self._pos.buckets), len(self._neg.buckets))

    def estimate_with_error(self, kernel, Q, *,
                            certificate: str = "bernstein"):
        """Certified ``(est, err)`` for the inserted set's kernel sum.

        Buffers contribute exactly; each bucket contributes its
        certified estimate; errors add across parts and sign towers
        (confidences compose by union bound over live stages).
        """
        Q = as_matrix(Q, name="queries")
        est = np.zeros(Q.shape[0])
        err = np.zeros(Q.shape[0])
        value_max = float(kernel.profile.value(0.0))
        for sign, tower in ((1.0, self._pos), (-1.0, self._neg)):
            for part in tower.parts():
                e, r = certified_estimate(
                    kernel, part, Q,
                    certificate=certificate, value_max=value_max,
                )
                est += sign * e
                err += r
        return est, err
