"""Coreset construction for kernel aggregation: certified weighted samples.

Phillips & Tai ("Improved Coresets for Kernel Density Estimates",
"Near-Optimal Coresets of Kernel Density Estimates") show that a small
weighted subset ``C`` of a point set ``P`` approximates the full kernel
sum ``F_P(q) = sum_i w_i K(q, p_i)`` with bounded *additive* error.  This
module builds the sampling-based end of that spectrum:

* **uniform sampling** — the baseline: ``m`` indices drawn uniformly,
  estimator weight ``n * w_i / m`` per draw;
* **weighted (sensitivity) sampling** — draws proportional to ``w_i``,
  estimator weight ``W / m`` per draw.  Each draw's contribution
  ``W * K(q, p_i)`` then has the smallest possible a-priori range
  ``[0, W * K_max]`` independent of how skewed the weights are, so the
  concentration bound below is never worse than uniform sampling and is
  strictly better whenever weights vary (Type II workloads).

Both are unbiased: ``E[F_C(q)] = F_P(q)`` for every query.  The error is
certified two ways, per coreset *stage*:

* a **Hoeffding** bound — query-independent:
  ``err = K_max * A * sqrt(ln(2/delta) / (2m))`` where ``A`` is the
  per-draw scale (``W`` for weighted sampling);
* an **empirical Bernstein** bound (Audibert, Munos & Szepesvari) —
  query-dependent, computed from the sample variance of the draw values
  actually observed at query time; far tighter when kernel values
  concentrate (smooth kernels / median-heuristic bandwidths).

Coresets compose by **merge** (concatenate two coresets; estimates and
error bounds add) and **reduce** (resample a coreset down to ``m``
points; the resampling stage's own error adds to the inherited
``err_prior``) — the classic merge-and-reduce scheme the streaming
maintenance in :mod:`repro.sketch.streaming` builds its bucket tower on.

Everything here is kernel-agnostic: a coreset stores geometry, estimator
weights, and sampling metadata; the kernel-dependent scale ``K_max``
enters only when a bound is evaluated (``K_max = profile.value(0)`` for
the convex-decreasing distance kernels the aggregator supports).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import DataShapeError, InvalidParameterError, as_matrix

__all__ = [
    "Coreset",
    "build_coreset",
    "exact_coreset",
    "merge_coresets",
    "reduce_coreset",
    "hoeffding_error",
    "bernstein_error",
]

#: construction methods (also the codes used by index serialization)
METHODS = ("weighted", "uniform", "exact", "merged")


def hoeffding_error(range_scale: float, samples: int, delta: float,
                    value_max: float = 1.0) -> float:
    """Hoeffding additive error for one sampling stage.

    Each of the ``samples`` iid draws contributes a value in
    ``[0, range_scale * value_max]``; with probability at least
    ``1 - delta`` the estimate deviates from its mean by at most the
    returned amount.  Query-independent — usable before any query is
    seen (auto-sizing, persisted metadata).
    """
    if samples <= 0:
        return 0.0
    return float(
        value_max * range_scale * np.sqrt(np.log(2.0 / delta) / (2.0 * samples))
    )


def bernstein_error(variance, samples: int, delta: float,
                    value_range: float):
    """Empirical-Bernstein additive error from observed draw variance.

    ``variance`` is the (biased, ``1/m``) sample variance of the draw
    values; ``value_range`` bounds a single draw.  Vectorised over
    queries: ``variance`` may be an array.
    """
    if samples <= 0:
        return np.zeros_like(np.asarray(variance, dtype=np.float64))
    log3d = np.log(3.0 / delta)
    variance = np.maximum(np.asarray(variance, dtype=np.float64), 0.0)
    return (
        np.sqrt(2.0 * variance * log3d / samples)
        + 3.0 * value_range * log3d / samples
    )


@dataclass
class Coreset:
    """A certified weighted sample standing in for a larger point set.

    The estimator is ``F_C(q) = sum_j weights[j] * K(q, points[j])``;
    duplicated draws are folded into ``counts`` so the stored point set
    has no repeats.  ``draw_scale[j]`` is the value one draw of point
    ``j`` contributes to the sample mean before kernel evaluation
    (``W`` for weighted sampling, ``n * w_j`` for uniform), and
    ``range_scale`` bounds it a priori — what the Hoeffding certificate
    keys off.  ``err_prior`` carries additive error inherited from
    earlier merge/reduce stages (zero for a fresh build); the current
    stage's own sampling error comes from :func:`hoeffding_error` /
    :func:`bernstein_error` at certification time.
    """

    points: np.ndarray       # (k, d) unique sampled points
    weights: np.ndarray      # (k,) estimator weights u_j
    counts: np.ndarray       # (k,) draw multiplicities (sum == samples)
    draw_scale: np.ndarray   # (k,) per-draw value scale a_j
    samples: int             # number of iid draws m (0 for exact)
    range_scale: float       # a-priori bound on any a_j
    total_weight: float      # weight mass of the represented set
    delta: float             # confidence of this stage's certificate
    method: str              # "weighted" | "uniform" | "exact" | "merged"
    n_source: int            # points represented (for reporting)
    err_prior: float = 0.0   # inherited additive error (value_max = 1 scale)
    d: int = field(init=False)

    def __post_init__(self):
        self.points = np.asarray(self.points, dtype=np.float64)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        self.d = self.points.shape[1] if self.points.size else 0
        if self.method not in METHODS:
            raise InvalidParameterError(
                f"unknown coreset method {self.method!r}; "
                f"expected one of {METHODS}"
            )

    @property
    def size(self) -> int:
        """Stored (unique) point count."""
        return self.points.shape[0]

    def is_exact(self) -> bool:
        """True when the coreset reproduces its source sum exactly."""
        return self.samples == 0 and self.err_prior == 0.0

    def hoeffding_err(self, value_max: float = 1.0) -> float:
        """Total Hoeffding additive error (inherited + this stage)."""
        return value_max * self.err_prior + hoeffding_error(
            self.range_scale, self.samples, self.delta, value_max
        )


def _validate_build(points, weights, m: int, delta: float):
    points = as_matrix(points, name="points")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (points.shape[0],):
        raise DataShapeError(
            f"weights must have shape ({points.shape[0]},); "
            f"got {weights.shape}"
        )
    if (weights < 0).any():
        raise InvalidParameterError(
            "coresets are built per sign part; weights must be >= 0 "
            "(split signed weights before building)"
        )
    if m < 1:
        raise InvalidParameterError(f"coreset size m must be >= 1; got {m}")
    if not 0.0 < delta < 1.0:
        raise InvalidParameterError(f"delta must be in (0, 1); got {delta}")
    return points, weights


def exact_coreset(points, weights, err_prior: float = 0.0,
                  delta: float = 1e-6) -> Coreset:
    """The trivial zero-error coreset: the set itself.

    Used when the requested size is no smaller than the set (sampling
    would only add error) and as the buffer representation in the
    streaming merge-and-reduce tower.
    """
    points = as_matrix(points, name="points")
    weights = np.asarray(weights, dtype=np.float64)
    return Coreset(
        points=points, weights=weights,
        counts=np.ones(points.shape[0]), draw_scale=weights.copy(),
        samples=0, range_scale=0.0, total_weight=float(weights.sum()),
        delta=delta, method="exact", n_source=points.shape[0],
        err_prior=float(err_prior),
    )


def build_coreset(points, weights, m: int, *, delta: float = 1e-6,
                  method: str = "weighted", rng=None,
                  err_prior: float = 0.0, n_source: int | None = None,
                  ) -> Coreset:
    """Sample an ``m``-draw coreset of a nonnegatively weighted point set.

    ``method="weighted"`` draws indices with probability ``w_i / W``
    (sensitivity sampling for kernel sums: per-draw range ``W * K_max``
    regardless of weight skew); ``method="uniform"`` draws uniformly
    (range ``n * max(w) * K_max``).  When ``m >= n`` the exact coreset is
    returned instead — sampling can only lose.  Duplicate draws are
    folded into ``counts`` so evaluation cost is the number of *unique*
    points.
    """
    points, weights = _validate_build(points, weights, m, delta)
    n = points.shape[0]
    if n_source is None:
        n_source = n
    total = float(weights.sum())
    if m >= n or total == 0.0:
        return exact_coreset(points, weights, err_prior=err_prior, delta=delta)
    rng = np.random.default_rng(rng)
    if method == "weighted":
        probs = weights / total
        draws = rng.choice(n, size=m, replace=True, p=probs)
        idx, counts = np.unique(draws, return_counts=True)
        draw_scale = np.full(idx.shape[0], total)
        range_scale = total
    elif method == "uniform":
        draws = rng.integers(0, n, size=m)
        idx, counts = np.unique(draws, return_counts=True)
        draw_scale = n * weights[idx]
        range_scale = float(n * weights.max())
    else:
        raise InvalidParameterError(
            f"unknown sampling method {method!r}; "
            "expected 'weighted' or 'uniform'"
        )
    estimator_weights = counts * draw_scale / m
    return Coreset(
        points=points[idx], weights=estimator_weights,
        counts=counts.astype(np.float64), draw_scale=draw_scale,
        samples=m, range_scale=range_scale, total_weight=total,
        delta=delta, method=method, n_source=int(n_source),
        err_prior=float(err_prior),
    )


def merge_coresets(a: Coreset, b: Coreset) -> Coreset:
    """Concatenate two coresets representing disjoint point sets.

    Estimates add, so additive error bounds add too: the merged
    ``err_prior`` folds *both* inputs' full Hoeffding certificates (the
    per-query Bernstein refinement does not survive a merge — the draw
    populations differ — so a merged coreset certifies via Hoeffding
    until the next :func:`reduce_coreset` gives it a fresh single-stage
    sample).  Confidences compose by union bound.
    """
    if a.d and b.d and a.d != b.d:
        raise DataShapeError(
            f"cannot merge coresets of dimension {a.d} and {b.d}"
        )
    return Coreset(
        points=np.vstack([a.points, b.points]),
        weights=np.concatenate([a.weights, b.weights]),
        counts=np.concatenate([a.counts, b.counts]),
        draw_scale=np.concatenate([a.draw_scale, b.draw_scale]),
        samples=0, range_scale=0.0,
        total_weight=a.total_weight + b.total_weight,
        delta=a.delta + b.delta if (a.samples or b.samples) else min(
            a.delta, b.delta),
        method="exact" if a.is_exact() and b.is_exact() else "merged",
        n_source=a.n_source + b.n_source,
        err_prior=a.hoeffding_err() + b.hoeffding_err(),
    )


def reduce_coreset(c: Coreset, m: int, *, delta: float | None = None,
                   rng=None) -> Coreset:
    """Resample a coreset down to ``m`` draws (the *reduce* step).

    The input's total certified error becomes the output's
    ``err_prior``; the fresh weighted sample adds one new stage on top.
    A coreset already at or below ``m`` stored points is returned
    unchanged.
    """
    if c.size <= m:
        return c
    return build_coreset(
        c.points, c.weights, m,
        delta=c.delta if delta is None else delta,
        method="weighted", rng=rng,
        err_prior=c.hoeffding_err(), n_source=c.n_source,
    )
