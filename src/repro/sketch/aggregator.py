"""Coreset-backed approximate backend with unconditional contract fallback.

:class:`CoresetAggregator` answers eKAQ/TKAQ batches over a *reduced*
weighted sample (:mod:`repro.sketch.coreset`) instead of refining index
bounds.  Per query it certifies the coreset estimate with an additive
error bound (empirical Bernstein by default, Hoeffding optionally) and:

* **serves** the query from the coreset when the certificate meets the
  contract — ``err <= eps * (est - err)`` for eKAQ (which implies the
  ``(1 +- eps)`` contract against the true aggregate), or a certified
  interval strictly on one side of ``tau`` for TKAQ;
* **falls back** to the exact KARL refinement path (the parent
  :class:`~repro.core.aggregator.KernelAggregator`) for every query the
  certificate cannot cover — so the eKAQ and TKAQ contracts hold
  *unconditionally*: a coreset that is too small, a far-out query, a
  Type III aggregate near zero, all silently take the exact path.

The economics: coreset evaluation is one dense ``(batch, k)`` kernel
block — O(k d) per query, independent of ``n`` — while bound refinement
walks the index.  On workloads where kernel values concentrate (smooth /
median-heuristic bandwidths) the certificate covers almost every query
at ``k << n`` and the batch runs an order of magnitude faster than the
multiquery backend; on hard workloads the fallback rate climbs and the
coreset tier gracefully degrades to exact evaluation cost.

Observability: ``sketch.*`` metrics (served / fallback counters, coreset
size gauge, certified relative error histogram) and an umbrella
``backend="coreset"`` trace that keeps the point-conservation law
(coreset points evaluated + pruned == n per served query).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.kernels import Kernel
from repro.core.results import (
    BatchQueryStats,
    EKAQBatchResult,
    TKAQBatchResult,
)
from repro.obs import runtime as _obs
from repro.sketch.coreset import (
    Coreset,
    bernstein_error,
    build_coreset,
)

__all__ = ["CoresetConfig", "CoresetAggregator", "certified_estimate"]

#: cap on the element count of one (queries x coreset) kernel grid;
#: larger batches are evaluated in query blocks (same policy as
#: ``KernelAggregator.exact_many``)
_MAX_GRID_ELEMENTS = 1 << 22

#: calibration can never choose fewer draws than this — below it the
#: Bernstein linear term dominates and certificates are useless anyway
_MIN_SIZE = 256


def certified_estimate(kernel, part: Coreset, Q, *,
                       certificate: str = "bernstein",
                       value_max: float | None = None):
    """Estimate one coreset's kernel sum over a query batch, certified.

    Returns ``(est, err)``: the unbiased estimate of the represented
    set's ``F(q)`` per query and a certified additive error bound
    (``|est - F(q)| <= err`` per query at the coreset's confidence).
    ``certificate="bernstein"`` computes a per-query bound from the
    observed draw variance (one extra matmul); ``"hoeffding"`` uses the
    query-independent a-priori bound.  Requires a distance kernel
    (``kernel.argument == "dist_sq"``); evaluation is blocked so the
    ``(batch, size)`` kernel grid stays cache-friendly.

    Shared by :class:`CoresetAggregator` (per sign part) and the
    streaming merge-and-reduce tower (:mod:`repro.sketch.streaming`).
    """
    if kernel.argument != "dist_sq":
        raise InvalidParameterError(
            "coreset estimation requires a distance kernel; "
            f"got {kernel!r}"
        )
    if value_max is None:
        value_max = float(kernel.profile.value(0.0))
    nq = Q.shape[0]
    est = np.empty(nq)
    use_bernstein = certificate == "bernstein" and part.samples > 0
    e2 = np.empty(nq) if use_bernstein else None
    per = max(1, _MAX_GRID_ELEMENTS // max(1, part.size))
    sq_norms = np.einsum("ij,ij->i", part.points, part.points)
    ca2 = part.counts * np.square(part.draw_scale) / max(1, part.samples)
    for s in range(0, nq, per):
        block = Q[s:s + per]
        q_sq = np.einsum("ij,ij->i", block, block)
        arg = q_sq[:, None] - 2.0 * (block @ part.points.T) + sq_norms
        np.maximum(arg, 0.0, out=arg)
        vals = kernel.profile.value(arg)
        est[s:s + per] = vals @ part.weights
        if use_bernstein:
            e2[s:s + per] = np.square(vals) @ ca2
    if part.is_exact():
        return est, np.zeros(nq)
    if use_bernstein:
        var = np.maximum(e2 - np.square(est), 0.0)
        err = value_max * part.err_prior + bernstein_error(
            var, part.samples, part.delta, value_max * part.range_scale,
        )
    else:
        err = np.full(nq, part.hoeffding_err(value_max))
    return est, err


@dataclass
class CoresetConfig:
    """Construction and certification knobs for the coreset backend.

    Parameters
    ----------
    m : int or None
        Number of sample draws.  ``None`` auto-calibrates: the builder
        samples ``calibration_queries`` data points as probe queries,
        measures the kernel-value variance the Bernstein certificate
        will see, and solves for the ``m`` that certifies
        ``target_eps`` on a ``target_quantile`` fraction of probes
        (clamped to ``[256, n]``).
    delta : float
        Per-stage confidence of the additive error certificate.
    method : str
        ``"weighted"`` (sensitivity sampling, default) or ``"uniform"``.
    certificate : str
        ``"bernstein"`` (query-adaptive, default) or ``"hoeffding"``.
    seed : int
        Construction RNG seed (coresets are deterministic per seed).
    """

    m: int | None = None
    delta: float = 1e-6
    method: str = "weighted"
    certificate: str = "bernstein"
    seed: int = 0
    target_eps: float = 0.1
    target_quantile: float = 0.9
    calibration_queries: int = 32

    def __post_init__(self):
        if self.m is not None and self.m < 1:
            raise InvalidParameterError(f"m must be >= 1; got {self.m}")
        if not 0.0 < self.delta < 1.0:
            raise InvalidParameterError(
                f"delta must be in (0, 1); got {self.delta}")
        if self.certificate not in ("bernstein", "hoeffding"):
            raise InvalidParameterError(
                "certificate must be 'bernstein' or 'hoeffding'; "
                f"got {self.certificate!r}")
        if self.method not in ("weighted", "uniform"):
            raise InvalidParameterError(
                f"method must be 'weighted' or 'uniform'; got {self.method!r}")
        if not 0.0 < self.target_eps:
            raise InvalidParameterError(
                f"target_eps must be > 0; got {self.target_eps}")
        if not 0.0 < self.target_quantile <= 1.0:
            raise InvalidParameterError(
                f"target_quantile must be in (0, 1]; "
                f"got {self.target_quantile}")

    @classmethod
    def coerce(cls, value) -> "CoresetConfig":
        """Accept a config, a mapping of kwargs, ``True``, or ``None``."""
        if isinstance(value, cls):
            return value
        if value is None or value is True:
            return cls()
        if isinstance(value, dict):
            return cls(**value)
        raise InvalidParameterError(
            f"coreset must be a CoresetConfig, dict, True, or None; "
            f"got {value!r}")


class CoresetAggregator:
    """Coreset tier over a :class:`~repro.core.aggregator.KernelAggregator`.

    Built lazily by ``KernelAggregator`` when ``backend="coreset"`` is
    first requested; holds one coreset per weight sign part (the paper's
    ``P+ / P-`` split carries over: estimates subtract, error bounds
    add).  All fallback evaluation is delegated to the parent's
    multiquery backend when supported, its per-query loop otherwise.
    """

    def __init__(self, parent, config: CoresetConfig | None = None):
        self._common_init(parent, config)
        tree = parent.tree
        rng = np.random.default_rng(self.config.seed)
        w = tree.weights
        pos_mask = w > 0
        neg_mask = w < 0
        m = self.config.m
        if m is None:
            m = self._calibrate(tree, pos_mask, rng)
        self.m = int(m)
        self._pos = self._build_part(tree.points[pos_mask], w[pos_mask], rng)
        self._neg = (
            self._build_part(tree.points[neg_mask], -w[neg_mask], rng)
            if neg_mask.any() else None
        )

    @classmethod
    def from_parts(cls, parent, pos: Coreset | None, neg: Coreset | None = None,
                   config: CoresetConfig | None = None) -> "CoresetAggregator":
        """Rehydrate a tier from persisted sign parts (no construction).

        ``pos``/``neg`` are the parts :func:`repro.index.load_coreset`
        returns; calibration and sampling are skipped entirely — the
        persisted certificates (sizes, deltas, ``err_prior``) carry
        over as-is.
        """
        if pos is None and neg is None:
            raise InvalidParameterError(
                "from_parts needs at least one coreset part"
            )
        self = cls.__new__(cls)
        self._common_init(parent, config)
        part = pos if pos is not None else neg
        self.m = part.samples if part.samples else part.size
        self._pos = pos
        self._neg = neg
        return self

    def _common_init(self, parent, config: CoresetConfig | None) -> None:
        self.parent = parent
        self.config = config or CoresetConfig()
        kernel = parent.kernel
        if not self.supports(kernel):
            raise InvalidParameterError(
                "the coreset backend requires a distance kernel with a "
                f"convex, non-increasing profile; got {kernel!r}"
            )
        self.kernel = kernel
        #: a-priori bound on any single kernel value (profile max at 0)
        self.value_max = float(kernel.profile.value(0.0))
        from repro.core.multiquery import MultiQueryAggregator

        self._fallback_backend = (
            "multiquery"
            if MultiQueryAggregator.supports(kernel, parent.scheme)
            else "loop"
        )
        #: lifetime counters (also exported as sketch.* metrics)
        self.served_queries = 0
        self.fallback_queries = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @staticmethod
    def supports(kernel: Kernel) -> bool:
        """True when ``kernel`` admits coreset certificates.

        Needs kernel values a-priori bounded in ``[0, K(q, q)]`` —
        distance kernels with convex non-increasing profiles (Gaussian,
        Laplacian, Cauchy, Epanechnikov).  Dot-product kernels
        (polynomial, sigmoid) have data-dependent unbounded ranges and
        always take the exact path.
        """
        return kernel.argument == "dist_sq" and kernel.profile.convex_decreasing

    def _build_part(self, points, weights, rng) -> Coreset | None:
        if points.shape[0] == 0:
            return None
        return build_coreset(
            points, weights, self.m, delta=self.config.delta,
            method=self.config.method, rng=rng,
        )

    def _calibrate(self, tree, pos_mask, rng) -> int:
        """Solve for the draw count that certifies ``target_eps``.

        Probes the kernel-value variance with a sample of data points as
        queries (queries in KAQ workloads are data-distributed — paper
        Section V-A) and inverts the full Bernstein bound
        ``err/W = sqrt(2 v L / m) + 3 K_max L / m`` (``L = ln(3/delta)``)
        against the serve condition ``err <= eps/(1+eps) * F``, solving
        the quadratic in ``1/sqrt(m)``.  A 25% safety margin absorbs
        probe noise and the gap between probe variance and the sample
        variance observed at query time.
        """
        cfg = self.config
        pts, w = tree.points[pos_mask], tree.weights[pos_mask]
        n = pts.shape[0]
        if n == 0:
            return _MIN_SIZE
        total = float(w.sum())
        probes = pts[rng.choice(n, size=min(cfg.calibration_queries, n),
                                replace=False)]
        K = self.kernel.matrix(probes, pts)
        mean = (K @ w) / total
        var = (np.square(K - mean[:, None]) @ w) / total
        log3d = np.log(3.0 / cfg.delta)
        target = cfg.target_eps / (1.0 + cfg.target_eps) * (
            mean / self.value_max)
        # solve sqrt(2 v' L) s + 3 L s^2 = t for s = 1/sqrt(m)
        # (v' = var / K_max^2 normalises kernel values into [0, 1])
        a = np.sqrt(2.0 * var * log3d) / self.value_max
        b = 3.0 * log3d
        with np.errstate(divide="ignore", invalid="ignore"):
            s = (-a + np.sqrt(np.square(a) + 4.0 * b * target)) / (2.0 * b)
            need = 1.0 / np.square(s)
        need = need[np.isfinite(need)]
        if need.size == 0:
            return min(n, _MIN_SIZE)
        m = 1.25 * float(np.quantile(need, cfg.target_quantile))
        return int(np.clip(m, _MIN_SIZE, n))

    # ------------------------------------------------------------------
    # certified estimation
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Stored coreset points across both sign parts."""
        return (self._pos.size if self._pos is not None else 0) + (
            self._neg.size if self._neg is not None else 0
        )

    @property
    def fallback_rate(self) -> float:
        """Lifetime fraction of queries that took the exact path."""
        total = self.served_queries + self.fallback_queries
        return self.fallback_queries / total if total else 0.0

    def _part_estimate(self, Q, part: Coreset):
        return certified_estimate(
            self.kernel, part, Q,
            certificate=self.config.certificate, value_max=self.value_max,
        )

    def estimate_with_error(self, Q):
        """Certified coreset estimates: ``(est, err)`` arrays over ``Q``.

        ``|est - F_P(q)| <= err`` holds per query with probability at
        least ``1 - delta`` per coreset stage (sign parts and
        merge/reduce stages compose by union bound).
        """
        est = np.zeros(Q.shape[0])
        err = np.zeros(Q.shape[0])
        if self._pos is not None:
            e, r = self._part_estimate(Q, self._pos)
            est += e
            err += r
        if self._neg is not None:
            e, r = self._part_estimate(Q, self._neg)
            est -= e
            err += r
        return est, err

    # ------------------------------------------------------------------
    # batch queries (the backend="coreset" entry points)
    # ------------------------------------------------------------------

    def ekaq_many_results(self, Q, eps) -> EKAQBatchResult:
        """eKAQ batch: serve certified queries, fall back on the rest.

        The serve condition ``err <= eps * (est - err)`` implies
        ``(1-eps) F <= est <= (1+eps) F``: the true aggregate ``F`` lies
        in ``[est - err, est + err]``, so ``err <= eps * (est - err)
        <= eps * F`` bounds the deviation by ``eps * F`` from both
        sides.
        """
        est, err = self.estimate_with_error(Q)
        eps_vec = np.broadcast_to(np.asarray(eps, dtype=np.float64),
                                  (Q.shape[0],))
        lower = est - err
        serve = err <= eps_vec * lower
        estimates = np.where(serve, est, 0.0)
        upper = est + err
        stats = BatchQueryStats(n_queries=Q.shape[0])
        n_served = int(serve.sum())
        stats.points_evaluated += n_served * self.size
        lower = np.where(serve, lower, 0.0)
        upper = np.where(serve, upper, 0.0)
        if not serve.all():
            fb = ~serve
            fb_eps = eps if np.isscalar(eps) else np.asarray(eps)[fb]
            res = self.parent.ekaq_many_results(
                Q[fb], fb_eps, backend=self._fallback_backend)
            estimates[fb] = res.estimates
            lower[fb] = res.lower
            upper[fb] = res.upper
            if res.stats is not None:
                stats.merge_batch(res.stats)
                stats.n_queries = Q.shape[0]
        self._account("ekaq", serve, err, lower,
                      float(eps) if np.isscalar(eps) else None)
        return EKAQBatchResult(
            estimates=estimates, lower=lower, upper=upper, eps=eps,
            stats=stats,
        )

    def tkaq_many_results(self, Q, tau) -> TKAQBatchResult:
        """TKAQ batch: serve queries whose certified interval clears tau."""
        est, err = self.estimate_with_error(Q)
        tau_vec = np.broadcast_to(np.asarray(tau, dtype=np.float64),
                                  (Q.shape[0],))
        lower = est - err
        upper = est + err
        serve = (lower > tau_vec) | (upper <= tau_vec)
        answers = lower > tau_vec
        stats = BatchQueryStats(n_queries=Q.shape[0])
        n_served = int(serve.sum())
        stats.points_evaluated += n_served * self.size
        lower = np.where(serve, lower, 0.0)
        upper = np.where(serve, upper, 0.0)
        if not serve.all():
            fb = ~serve
            fb_tau = tau if np.isscalar(tau) else np.asarray(tau)[fb]
            res = self.parent.tkaq_many_results(
                Q[fb], fb_tau, backend=self._fallback_backend)
            answers[fb] = res.answers
            lower[fb] = res.lower
            upper[fb] = res.upper
            if res.stats is not None:
                stats.merge_batch(res.stats)
                stats.n_queries = Q.shape[0]
        self._account("tkaq", serve, err, est - err,
                      float(tau) if np.isscalar(tau) else None)
        return TKAQBatchResult(
            answers=answers, lower=lower, upper=upper, tau=tau, stats=stats,
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def _account(self, kind: str, serve, err, lower, param) -> None:
        """Lifetime counters, sketch.* metrics, umbrella trace."""
        n_served = int(serve.sum())
        n_fallback = serve.shape[0] - n_served
        self.served_queries += n_served
        self.fallback_queries += n_fallback
        if not _obs.is_enabled():
            return
        reg = _obs.registry()
        reg.counter("sketch.served_total").inc(n_served)
        reg.counter("sketch.fallback_total").inc(n_fallback)
        reg.gauge("sketch.coreset_points").set(self.size)
        hist = reg.histogram("sketch.certified_rel_err")
        errs = np.broadcast_to(err, serve.shape)[serve]
        lows = lower[serve]
        for e, lo in zip(errs, lows):
            if lo > 0.0:
                hist.observe(float(e / lo))
        if n_served:
            n = self.parent.tree.n
            trace = _obs.start_trace(
                kind, "coreset", self.parent.scheme.name, n,
                n_queries=n_served, param=param,
            )
            if trace is not None:
                trace.record_round(
                    frontier=0, points=n_served * self.size,
                    active=n_served, retired=n_served,
                    pruned_points=n_served * (n - self.size),
                )
                _obs.finish_trace(trace)
