"""Coreset-backed approximate kernel aggregation (``backend="coreset"``).

Certified data reduction as an execution tier: build a small weighted
sample whose kernel sum provably tracks the full set's
(:mod:`repro.sketch.coreset`), answer eKAQ/TKAQ batches over it with
per-query error certificates, and fall back to the exact KARL path for
every query the certificate cannot cover
(:mod:`repro.sketch.aggregator`) — so the ``(1 +- eps)`` and threshold
contracts hold unconditionally.  :mod:`repro.sketch.streaming` maintains
coresets under insertion via merge-and-reduce.
"""

from repro.sketch.aggregator import (
    CoresetAggregator,
    CoresetConfig,
    certified_estimate,
)
from repro.sketch.coreset import (
    Coreset,
    bernstein_error,
    build_coreset,
    exact_coreset,
    hoeffding_error,
    merge_coresets,
    reduce_coreset,
)
from repro.sketch.streaming import StreamingCoreset

__all__ = [
    "Coreset",
    "CoresetAggregator",
    "CoresetConfig",
    "StreamingCoreset",
    "bernstein_error",
    "build_coreset",
    "certified_estimate",
    "exact_coreset",
    "hoeffding_error",
    "merge_coresets",
    "reduce_coreset",
]
