"""The four workload families and their deterministic generators.

Every family builds a :class:`ReplayableWorkload`: an indexed point set
with a kernel, plus a ``batches()`` generator that re-derives the exact
same query stream on every call.  Determinism rules:

* all randomness flows from ``default_rng(SeedSequence([crc32(family),
  seed]))`` — one generator per replay, consumed in a fixed order;
* dataset synthesis goes through the (already deterministic) registry
  and :mod:`repro.datasets.synthetic` generators;
* the adversarial family's thresholds come from the refinement engine
  itself, which is deterministic in float64 across every execution tier
  (the native tiers are bitwise-identical by contract).

Builders are registered in :data:`FAMILIES`; :func:`build_workload`
dispatches a :class:`~repro.workloads.spec.WorkloadSpec` to its family.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.kernels import GaussianKernel
from repro.datasets.drift import DriftStream
from repro.datasets.pca import PCA
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import MixtureSpec, gaussian_mixture
from repro.kde.bandwidth import median_gamma
from repro.workloads.spec import WorkloadBatch, WorkloadSpec

__all__ = ["ReplayableWorkload", "FAMILIES", "build_workload"]

#: probe queries used to calibrate tau/eps scales (exact aggregates over
#: a deterministic data subsample)
_N_PROBE = 64

#: default per-family parameters; a spec may override any subset, and an
#: unknown key is rejected so replay never silently ignores a knob
_DEFAULTS: dict[str, dict] = {
    "drift": {
        "drift": 0.15,          # per-batch center random-walk std
        "clusters": 6,
        "cluster_scale": 0.05,
        "kinds": "alternate",   # "tkaq" | "ekaq" | "alternate"
        "eps": 0.1,
        "tau_quantile": 0.5,    # tau = this quantile of probe aggregates
    },
    "adversarial": {
        "probe_rounds": 64,     # refinement budget whose terminal gap
        "margin": 0.5,          # tau offset as a fraction of the gap
        "jitter": 0.01,         # query jitter (fraction of feature std)
    },
    "embedding": {
        "ambient_d": 64,        # synthetic ambient dimensionality
        "target_d": 16,         # PCA target dimensionality
        "clusters": 10,
        "cluster_scale": 0.08,
        "eps": 0.1,
        "jitter": 0.02,
    },
    "mixed_tenant": {
        # weighted tenant mix; tau tenants offset mu by tau_sigma sigmas,
        # eps tenants request their own tolerance
        "tenants": [
            {"name": "bulk", "weight": 3.0, "kind": "ekaq", "eps": 0.2},
            {"name": "precise", "weight": 1.0, "kind": "ekaq", "eps": 0.02},
            {"name": "alerting", "weight": 1.5, "kind": "tkaq",
             "tau_sigma": 0.25},
            {"name": "paging", "weight": 0.5, "kind": "tkaq",
             "tau_sigma": -0.25},
        ],
    },
}


@dataclass
class ReplayableWorkload:
    """A built workload: indexed points, kernel, and a replayable stream.

    ``batches()`` constructs a fresh generator chain from the spec on
    every call, so two iterations — in the same process or on different
    hosts — yield bitwise-identical :class:`WorkloadBatch` streams.
    """

    spec: WorkloadSpec
    points: np.ndarray
    weights: np.ndarray
    kernel: GaussianKernel
    #: probe statistics the generators calibrated against (mu, sigma)
    probe_mu: float = 0.0
    probe_sigma: float = 0.0
    _batch_fn: object = field(default=None, repr=False)
    _tree: object = field(default=None, repr=False)
    _agg: object = field(default=None, repr=False)

    @property
    def n(self) -> int:
        return self.points.shape[0]

    @property
    def d(self) -> int:
        return self.points.shape[1]

    def tree(self):
        """The kd-tree over the point set (built lazily, cached)."""
        if self._tree is None:
            from repro.index import KDTree

            self._tree = KDTree(self.points, weights=self.weights,
                                leaf_capacity=40)
        return self._tree

    def aggregator(self, coreset: bool = True, router=None):
        """A fresh :class:`~repro.core.KernelAggregator` over the tree.

        ``coreset=True`` opts the aggregator into the sketch tier so
        static-``coreset`` runs and router arms have it available; the
        exact backends are unaffected.  Not cached: callers measuring
        throughput want backend state (lazy tiers, router learning)
        isolated per run.
        """
        from repro.core import KernelAggregator

        return KernelAggregator(
            self.tree(), self.kernel,
            coreset=True if coreset else None, router=router,
        )

    def batches(self):
        """Yield the spec's query stream (deterministic on every call)."""
        return self._batch_fn(self)


def _rng(spec: WorkloadSpec, stream: str = "batches") -> np.random.Generator:
    """The spec's deterministic generator for one named draw stream."""
    return np.random.default_rng(np.random.SeedSequence([
        zlib.crc32(spec.family.encode()) & 0xFFFF,
        zlib.crc32(stream.encode()) & 0xFFFF,
        spec.seed,
    ]))


def _family_params(spec: WorkloadSpec) -> dict:
    defaults = _DEFAULTS[spec.family]
    unknown = set(spec.params) - set(defaults)
    if unknown:
        raise InvalidParameterError(
            f"unknown {spec.family} params: {sorted(unknown)}; "
            f"known: {sorted(defaults)}"
        )
    return {**defaults, **spec.params}


def _load_points(spec: WorkloadSpec) -> np.ndarray:
    ds = load_dataset(spec.dataset, size=spec.size, seed=spec.seed)
    return ds.points


def _probe_stats(wl: ReplayableWorkload) -> None:
    """Calibrate mu/sigma from exact aggregates over a data subsample.

    Deterministic (its own named rng stream), so thresholds derived from
    these statistics replay bitwise.
    """
    rng = _rng(wl.spec, "probe")
    idx = rng.choice(wl.n, size=min(_N_PROBE, wl.n), replace=False)
    from repro.baselines.scan import ScanEvaluator

    vals = ScanEvaluator(wl.points, wl.kernel, wl.weights).exact_many(
        wl.points[idx]
    )
    wl.probe_mu = float(vals.mean())
    wl.probe_sigma = float(vals.std())


# ----------------------------------------------------------------------
# drift: queries random-walk away from the indexed distribution
# ----------------------------------------------------------------------

def _build_drift(spec: WorkloadSpec) -> ReplayableWorkload:
    points = _load_points(spec)
    kernel = GaussianKernel(median_gamma(points, seed=spec.seed))
    wl = ReplayableWorkload(spec, points, np.ones(points.shape[0]), kernel,
                            _batch_fn=_drift_batches)
    _probe_stats(wl)
    return wl


def _drift_batches(wl: ReplayableWorkload):
    p = _family_params(wl.spec)
    spec = wl.spec
    stream = DriftStream(
        d=wl.d, batch_size=spec.batch_size, clusters=int(p["clusters"]),
        drift=float(p["drift"]), cluster_scale=float(p["cluster_scale"]),
        seed=spec.seed + 1,
    )
    # tau from the probe distribution: a mid-quantile threshold keeps the
    # early (on-distribution) batches split while drifted batches decay
    probe_vals = wl.probe_mu + wl.probe_sigma * np.array([-1.0, 0.0, 1.0])
    q = float(p["tau_quantile"])
    tau = float(np.quantile(probe_vals, q)) if 0 < q < 1 else wl.probe_mu
    kinds = p["kinds"]
    if kinds not in ("tkaq", "ekaq", "alternate"):
        raise InvalidParameterError(
            f"drift kinds must be 'tkaq', 'ekaq', or 'alternate'; "
            f"got {kinds!r}"
        )
    for i in range(spec.n_batches):
        queries = stream.next_batch()
        kind = kinds if kinds != "alternate" else ("tkaq", "ekaq")[i % 2]
        if kind == "tkaq":
            yield WorkloadBatch(i, "tkaq", queries,
                                tau=np.full(len(queries), tau))
        else:
            yield WorkloadBatch(i, "ekaq", queries,
                                eps=np.full(len(queries), float(p["eps"])))


# ----------------------------------------------------------------------
# adversarial: thresholds inside the post-budget refinement gap
# ----------------------------------------------------------------------

def _build_adversarial(spec: WorkloadSpec) -> ReplayableWorkload:
    points = _load_points(spec)
    kernel = GaussianKernel(median_gamma(points, seed=spec.seed))
    return ReplayableWorkload(spec, points, np.ones(points.shape[0]), kernel,
                              _batch_fn=_adversarial_batches)


def _adversarial_batches(wl: ReplayableWorkload):
    """TKAQ batches with per-query thresholds synthesized from node bounds.

    Each query is refined for ``probe_rounds`` shared-frontier rounds;
    the terminal ``[lower, upper]`` interval is exactly the sum of the
    index node bounds still on the frontier, so a threshold placed inside
    it cannot be decided without refining *past* the budget — every query
    is near-threshold by construction.  Queries the budget already
    resolved (``upper == lower``) get a multiplicative hair instead.
    """
    p = _family_params(wl.spec)
    spec = wl.spec
    rng = _rng(spec)
    rounds = int(p["probe_rounds"])
    margin = float(p["margin"])
    if not 0.0 < margin <= 1.0:
        raise InvalidParameterError(
            f"adversarial margin must be in (0, 1]; got {margin}"
        )
    agg = wl.aggregator(coreset=False)
    std = wl.points.std(axis=0)
    for i in range(spec.n_batches):
        idx = rng.integers(0, wl.n, spec.batch_size)
        queries = wl.points[idx] + (
            float(p["jitter"]) * std * rng.standard_normal(
                (spec.batch_size, wl.d))
        )
        probe = agg.refine_many_results(queries, rounds,
                                        backend="multiquery")
        mid = 0.5 * (probe.lower + probe.upper)
        gap = probe.upper - probe.lower
        u = rng.uniform(-margin, margin, spec.batch_size)
        tau = mid + 0.5 * u * gap
        resolved = gap <= 0.0
        if np.any(resolved):
            tau[resolved] = mid[resolved] * (1.0 + 1e-9 * u[resolved])
        yield WorkloadBatch(i, "tkaq", queries, tau=tau)


# ----------------------------------------------------------------------
# embedding: high-dimensional data through PCA (smooth-kernel regime)
# ----------------------------------------------------------------------

def _build_embedding(spec: WorkloadSpec) -> ReplayableWorkload:
    p = _family_params(spec)
    target_d = int(p["target_d"])
    if spec.dataset == "synthetic":
        mix = MixtureSpec(
            n=spec.size, d=int(p["ambient_d"]), clusters=int(p["clusters"]),
            cluster_scale=float(p["cluster_scale"]),
        )
        ambient = gaussian_mixture(mix, _rng(spec, "dataset"))
    else:
        ambient = _load_points(spec)
    if target_d > ambient.shape[1]:
        raise InvalidParameterError(
            f"target_d={target_d} exceeds ambient dimension "
            f"{ambient.shape[1]}"
        )
    points = PCA(target_d).fit_transform(ambient)
    kernel = GaussianKernel(median_gamma(points, seed=spec.seed))
    return ReplayableWorkload(spec, points, np.ones(points.shape[0]), kernel,
                              _batch_fn=_embedding_batches)


def _embedding_batches(wl: ReplayableWorkload):
    p = _family_params(wl.spec)
    spec = wl.spec
    rng = _rng(spec)
    std = wl.points.std(axis=0)
    eps = float(p["eps"])
    for i in range(spec.n_batches):
        idx = rng.integers(0, wl.n, spec.batch_size)
        queries = wl.points[idx] + (
            float(p["jitter"]) * std * rng.standard_normal(
                (spec.batch_size, wl.d))
        )
        yield WorkloadBatch(i, "ekaq", queries,
                            eps=np.full(spec.batch_size, eps))


# ----------------------------------------------------------------------
# mixed_tenant: heterogeneous per-query tau/eps vectors
# ----------------------------------------------------------------------

def _build_mixed_tenant(spec: WorkloadSpec) -> ReplayableWorkload:
    points = _load_points(spec)
    kernel = GaussianKernel(median_gamma(points, seed=spec.seed))
    wl = ReplayableWorkload(spec, points, np.ones(points.shape[0]), kernel,
                            _batch_fn=_mixed_tenant_batches)
    _probe_stats(wl)
    return wl


def _mixed_tenant_batches(wl: ReplayableWorkload):
    p = _family_params(wl.spec)
    spec = wl.spec
    tenants = p["tenants"]
    if not tenants:
        raise InvalidParameterError("mixed_tenant needs >= 1 tenant")
    for t in tenants:
        if t.get("kind") not in ("tkaq", "ekaq"):
            raise InvalidParameterError(
                f"tenant kind must be 'tkaq' or 'ekaq'; got {t!r}"
            )
    rng = _rng(spec)
    kinds = ("tkaq", "ekaq")
    by_kind = {k: [t for t in tenants if t["kind"] == k] for k in kinds}
    kind_mass = np.array(
        [sum(float(t.get("weight", 1.0)) for t in by_kind[k]) for k in kinds]
    )
    if kind_mass.sum() <= 0:
        raise InvalidParameterError("tenant weights must have positive mass")
    kind_prob = kind_mass / kind_mass.sum()
    for i in range(spec.n_batches):
        # batches are single-kind (the batcher's coalescing unit); the
        # tenant mix decides both the batch kind and each query's params
        kind = kinds[int(rng.choice(2, p=kind_prob))]
        members = by_kind[kind]
        w = np.array([float(t.get("weight", 1.0)) for t in members])
        which = rng.choice(len(members), size=spec.batch_size, p=w / w.sum())
        idx = rng.integers(0, wl.n, spec.batch_size)
        queries = wl.points[idx] + 0.01 * wl.points.std(axis=0) * (
            rng.standard_normal((spec.batch_size, wl.d))
        )
        if kind == "tkaq":
            sig = np.array([float(t.get("tau_sigma", 0.0)) for t in members])
            param = wl.probe_mu + sig[which] * wl.probe_sigma
            yield WorkloadBatch(i, "tkaq", queries, tau=param,
                                tenants=which)
        else:
            eps = np.array([float(t.get("eps", 0.1)) for t in members])
            yield WorkloadBatch(i, "ekaq", queries, eps=eps[which],
                                tenants=which)


FAMILIES: dict[str, object] = {
    "drift": _build_drift,
    "adversarial": _build_adversarial,
    "embedding": _build_embedding,
    "mixed_tenant": _build_mixed_tenant,
}


def build_workload(spec: WorkloadSpec) -> ReplayableWorkload:
    """Materialise a spec: build the point set, kernel, and stream."""
    try:
        builder = FAMILIES[spec.family]
    except KeyError:
        raise InvalidParameterError(
            f"unknown workload family {spec.family!r}; "
            f"available: {sorted(FAMILIES)}"
        ) from None
    _family_params(spec)  # reject unknown keys before any expensive work
    return builder(spec)
