"""The standard suite, the replay executor, and the stream digest.

:func:`standard_suite` pins the four specs the benchmark and CI gate
run; :func:`run_workload` replays one workload through a
:class:`~repro.core.KernelAggregator` backend and measures query-side
throughput; :func:`stream_digest` hashes the replayed stream so two
hosts (or two runs) can assert bitwise-identical generation with a
one-line comparison.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.workloads.families import ReplayableWorkload, build_workload
from repro.workloads.spec import WorkloadSpec

__all__ = ["standard_suite", "run_workload", "WorkloadRun", "stream_digest"]


def standard_suite(scale: float = 1.0) -> list[WorkloadSpec]:
    """The four specs the benchmark suite and CI gate replay.

    ``scale`` shrinks sizes/batches for smoke runs (the same knob as
    ``REPRO_BENCH_SCALE``); generation stays deterministic at every
    scale, but digests are only comparable at equal scale.
    """
    def sz(n: int, lo: int = 512) -> int:
        return max(lo, int(round(n * scale)))

    def nb(n: int) -> int:
        return max(2, int(round(n * scale)))

    def bs(n: int) -> int:
        return max(32, int(round(n * scale)))

    return [
        WorkloadSpec("drift", dataset="home", size=sz(12000),
                     n_batches=nb(14), batch_size=bs(256), seed=7),
        WorkloadSpec("adversarial", dataset="susy", size=sz(12000),
                     n_batches=nb(14), batch_size=bs(192), seed=11),
        WorkloadSpec("embedding", dataset="synthetic", size=sz(24000),
                     n_batches=nb(12), batch_size=bs(256), seed=13),
        WorkloadSpec("mixed_tenant", dataset="covtype", size=sz(16000),
                     n_batches=nb(14), batch_size=bs(256), seed=17),
    ]


@dataclass
class WorkloadRun:
    """Measured replay of one workload under one backend."""

    family: str
    backend: str
    n_queries: int = 0
    n_batches: int = 0
    seconds: float = 0.0
    kind_counts: dict = field(default_factory=dict)
    results: list | None = None

    @property
    def qps(self) -> float:
        return self.n_queries / self.seconds if self.seconds > 0 else 0.0


def run_workload(workload: ReplayableWorkload | WorkloadSpec,
                 backend: str = "auto", *, n_workers: int | None = None,
                 chunk_size: int | None = None, agg=None,
                 router=None, collect: bool = False) -> WorkloadRun:
    """Replay a workload through one backend, timing the query side only.

    Accepts a built :class:`ReplayableWorkload` or a bare spec.  ``agg``
    reuses a caller-held aggregator (so lazy tiers and router state
    persist across runs); otherwise a fresh one is built, with
    ``router`` attached when ``backend="routed"``.  ``collect=True``
    keeps every batch result (contract tests); benchmarks leave it off.
    """
    wl = build_workload(workload) if isinstance(workload, WorkloadSpec) \
        else workload
    if agg is None:
        agg = wl.aggregator(router=router)
    run = WorkloadRun(wl.spec.family, backend,
                      results=[] if collect else None)
    for batch in wl.batches():
        t0 = time.perf_counter()
        if batch.kind == "tkaq":
            res = agg.tkaq_many_results(
                batch.queries, batch.tau, backend=backend,
                n_workers=n_workers, chunk_size=chunk_size,
            )
        else:
            res = agg.ekaq_many_results(
                batch.queries, batch.eps, backend=backend,
                n_workers=n_workers, chunk_size=chunk_size,
            )
        run.seconds += time.perf_counter() - t0
        run.n_queries += len(batch)
        run.n_batches += 1
        run.kind_counts[batch.kind] = run.kind_counts.get(batch.kind, 0) + 1
        if collect:
            run.results.append(res)
    return run


def stream_digest(workload: ReplayableWorkload | WorkloadSpec) -> str:
    """SHA-256 over the replayed stream's bytes (order-sensitive).

    Hashes every batch's index, kind, query matrix, parameter vector,
    and tenant vector as raw little-endian float64/int64 bytes, so equal
    digests mean *bitwise* equal streams — the replay contract the spec
    format promises.
    """
    wl = build_workload(workload) if isinstance(workload, WorkloadSpec) \
        else workload
    h = hashlib.sha256()
    for batch in wl.batches():
        h.update(np.int64(batch.index).tobytes())
        h.update(batch.kind.encode())
        h.update(np.ascontiguousarray(batch.queries, dtype="<f8").tobytes())
        h.update(np.ascontiguousarray(batch.param, dtype="<f8").tobytes())
        if batch.tenants is not None:
            h.update(np.ascontiguousarray(
                batch.tenants, dtype="<i8").tobytes())
    return h.hexdigest()
