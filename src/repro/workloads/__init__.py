"""Replayable, seeded query workloads over the KAQ engine.

A :class:`WorkloadSpec` is a small serializable description — family,
dataset, sizes, seed, family parameters — from which
:func:`build_workload` reconstructs the *exact* query stream, bitwise,
on any host: every random draw flows from the spec's seed through
deterministic generators, and the adversarial family's thresholds are
synthesized from the (deterministic) index refinement itself.

Four families cover the traffic shapes production tuning cares about:

* ``drift`` — queries follow a :class:`~repro.datasets.drift.DriftStream`
  whose cluster centers random-walk away from the indexed data;
* ``adversarial`` — TKAQ batches whose per-query thresholds are placed
  *inside* the bound gap left after a fixed refinement budget, so every
  query is near-threshold by construction;
* ``embedding`` — high-dimensional synthetic (or registry) data reduced
  by PCA, the smooth-kernel regime quasi-Monte-Carlo sketches target;
* ``mixed_tenant`` — heterogeneous per-query ``tau``/``eps`` vectors
  drawn from a weighted tenant mix.

``python -m repro.workloads`` replays a spec file and prints the stream
digest; :mod:`benchmarks.bench_workloads` runs the standard suite under
every backend (including the online :class:`~repro.core.router.
BackendRouter`) and emits ``BENCH_workloads.json`` for the CI gate.
"""

from repro.workloads.families import (
    FAMILIES,
    ReplayableWorkload,
    build_workload,
)
from repro.workloads.spec import WorkloadBatch, WorkloadSpec
from repro.workloads.suite import (
    WorkloadRun,
    run_workload,
    standard_suite,
    stream_digest,
)

__all__ = [
    "WorkloadSpec",
    "WorkloadBatch",
    "ReplayableWorkload",
    "FAMILIES",
    "build_workload",
    "standard_suite",
    "run_workload",
    "WorkloadRun",
    "stream_digest",
]
