"""Serializable workload specifications and the batches they replay into.

A :class:`WorkloadSpec` carries *only* plain JSON values, so a spec file
checked into a repo (or attached to a bug report) reproduces the exact
query stream anywhere: identical numpy generator algorithms seeded from
the spec, identical dataset synthesis, identical threshold placement.
The bitwise-replay contract is pinned by ``tests/test_workloads.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = ["WorkloadSpec", "WorkloadBatch", "SPEC_VERSION"]

#: bumped whenever generation semantics change; replay refuses a newer
#: spec instead of silently producing a different stream
SPEC_VERSION = 1


@dataclass(frozen=True)
class WorkloadSpec:
    """Recipe for one replayable query stream.

    Parameters
    ----------
    family : str
        One of :data:`repro.workloads.FAMILIES`
        (``drift`` / ``adversarial`` / ``embedding`` / ``mixed_tenant``).
    dataset : str
        Registry dataset name, or ``"synthetic"`` for the embedding
        family's parameterized high-dimensional mixture.
    size : int
        Indexed point-set cardinality.
    n_batches, batch_size : int
        Stream shape: ``n_batches`` batches of ``batch_size`` queries.
    seed : int
        Root seed; every random draw in generation descends from it.
    params : dict
        Family-specific knobs (validated against the family's defaults —
        an unknown key is an error, so a typo cannot silently replay a
        different workload).
    """

    family: str
    dataset: str = "home"
    size: int = 6000
    n_batches: int = 6
    batch_size: int = 256
    seed: int = 0
    params: dict = field(default_factory=dict)
    version: int = SPEC_VERSION

    def __post_init__(self):
        if self.version > SPEC_VERSION:
            raise InvalidParameterError(
                f"spec version {self.version} is newer than this build's "
                f"{SPEC_VERSION}; refusing to replay a stream whose "
                "generation semantics are unknown"
            )
        for name in ("size", "n_batches", "batch_size"):
            if int(getattr(self, name)) < 1:
                raise InvalidParameterError(
                    f"{name} must be >= 1; got {getattr(self, name)}"
                )
        if not isinstance(self.params, dict):
            raise InvalidParameterError(
                f"params must be a dict; got {type(self.params).__name__}"
            )

    # ------------------------------------------------------------------
    # serialization (plain JSON; floats survive via repr round-trip)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "family": self.family,
            "dataset": self.dataset,
            "size": self.size,
            "n_batches": self.n_batches,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WorkloadSpec":
        if not isinstance(d, dict):
            raise InvalidParameterError(
                f"workload spec must be a JSON object; got {type(d).__name__}"
            )
        unknown = set(d) - {
            "version", "family", "dataset", "size", "n_batches",
            "batch_size", "seed", "params",
        }
        if unknown:
            raise InvalidParameterError(
                f"unknown workload spec fields: {sorted(unknown)}"
            )
        try:
            family = d["family"]
        except KeyError:
            raise InvalidParameterError(
                "workload spec is missing the 'family' field"
            ) from None
        return cls(
            family=str(family),
            dataset=str(d.get("dataset", "home")),
            size=int(d.get("size", 6000)),
            n_batches=int(d.get("n_batches", 6)),
            batch_size=int(d.get("batch_size", 256)),
            seed=int(d.get("seed", 0)),
            params=dict(d.get("params", {})),
            version=int(d.get("version", SPEC_VERSION)),
        )

    def save(self, path) -> Path:
        """Write the spec as an indented JSON file; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "WorkloadSpec":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise InvalidParameterError(
                f"cannot read workload spec {path}: {exc}"
            ) from exc
        return cls.from_dict(payload)


@dataclass
class WorkloadBatch:
    """One replayed batch: queries plus their per-query parameters.

    ``kind`` is the query type the batch is served as (a batch is always
    one kind — that is the serving layer's coalescing unit too).  The
    inactive parameter vector is ``None``; ``param`` returns the active
    one, always as a ``(B,)`` float64 vector (heterogeneous per-query
    values are first-class: the mixed-tenant family emits non-constant
    vectors on purpose).
    """

    index: int
    kind: str  # "tkaq" | "ekaq"
    queries: np.ndarray            # (B, d) float64
    tau: np.ndarray | None = None  # (B,) for tkaq batches
    eps: np.ndarray | None = None  # (B,) for ekaq batches
    tenants: np.ndarray | None = None  # (B,) tenant ids (mixed_tenant)

    def __post_init__(self):
        if self.kind not in ("tkaq", "ekaq"):
            raise InvalidParameterError(
                f"batch kind must be 'tkaq' or 'ekaq'; got {self.kind!r}"
            )

    @property
    def param(self) -> np.ndarray:
        """The active per-query parameter vector (tau or eps)."""
        vec = self.tau if self.kind == "tkaq" else self.eps
        assert vec is not None, f"{self.kind} batch missing its parameter"
        return vec

    def __len__(self) -> int:
        return self.queries.shape[0]
