"""Replay CLI: ``python -m repro.workloads {emit,replay}``.

``emit`` writes the standard suite's spec files; ``replay`` rebuilds a
stream from a spec file and prints its digest (optionally timing it
under a backend).  Two hosts printing the same digest have replayed
bitwise-identical query streams.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.errors import InvalidParameterError
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import run_workload, standard_suite, stream_digest


def _cmd_emit(args) -> int:
    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for spec in standard_suite(scale=args.scale):
        path = spec.save(out / f"{spec.family}.json")
        print(f"wrote {path}")
    return 0


def _cmd_replay(args) -> int:
    spec = WorkloadSpec.load(args.spec)
    digest = stream_digest(spec)
    payload = {
        "family": spec.family,
        "spec": spec.to_dict(),
        "digest": digest,
    }
    if args.backend is not None:
        run = run_workload(spec, backend=args.backend)
        payload["backend"] = args.backend
        payload["n_queries"] = run.n_queries
        payload["seconds"] = round(run.seconds, 6)
        payload["qps"] = round(run.qps, 2)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"{spec.family}: digest {digest}")
        if args.backend is not None:
            print(f"  {run.n_queries} queries via backend={args.backend!r}: "
                  f"{run.qps:.0f} q/s")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Emit and replay seeded workload specs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    emit = sub.add_parser("emit", help="write the standard suite's specs")
    emit.add_argument("--out-dir", default="workload-specs",
                      help="directory for <family>.json spec files")
    emit.add_argument("--scale", type=float, default=1.0,
                      help="suite size multiplier (default 1.0)")
    emit.set_defaults(fn=_cmd_emit)

    replay = sub.add_parser(
        "replay", help="rebuild a stream from a spec file; print its digest")
    replay.add_argument("--spec", required=True, help="spec JSON file")
    replay.add_argument("--backend", default=None,
                        help="also execute the stream under this backend "
                             "and report throughput")
    replay.add_argument("--json", action="store_true",
                        help="machine-readable output")
    replay.set_defaults(fn=_cmd_replay)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
