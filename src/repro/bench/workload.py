"""Benchmark workload builders mirroring the paper's Section V-A setup.

A :class:`KAQWorkload` bundles everything one experiment row needs: the KAQ
point set ``P`` with weights, the kernel with its trained/derived
parameters, the query set ``Q``, and the query parameter (``tau`` for TKAQ,
``eps`` for eKAQ).

* **Type I** (kernel density): ``P`` is the dataset, identical unit
  weights, gamma from Scott's rule, ``tau = mu`` (the mean aggregate over
  the query sample, Section V-B) and ``eps = 0.2``.
* **Type II** (1-class SVM): a nu-one-class SVM is trained on a subsample;
  ``P`` = support vectors, ``w`` = positive dual coefficients,
  ``tau = rho``.
* **Type III** (2-class SVM): a C-SVM is trained on a labelled subsample;
  ``P`` = support vectors, ``w = alpha_i y_i`` (mixed signs),
  ``tau = rho``.

Training sizes are capped so the Python SMO finishes quickly; the induced
support-vector geometry (points near the decision boundary, normalised
features) is what drives the paper's Type II/III results, and is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.scan import ScanEvaluator
from repro.core.errors import InvalidParameterError
from repro.core.kernels import GaussianKernel, Kernel, PolynomialKernel
from repro.datasets.registry import Dataset, load_dataset
from repro.kde.bandwidth import median_gamma, scott_gamma
from repro.svm.one_class import OneClassSVM
from repro.svm.scaling import MinMaxScaler
from repro.svm.svc import SVC

__all__ = ["KAQWorkload", "type1_workload", "type2_workload", "type3_workload",
           "workload_for"]

#: cap on SMO training subsample size (keeps Python training in seconds
#: while producing support-vector sets deep enough for meaningful trees)
_MAX_TRAIN = 8000


@dataclass
class KAQWorkload:
    """Everything one benchmark row needs."""

    name: str
    weighting: str  # "I" | "II" | "III"
    points: np.ndarray  # the KAQ point set P
    weights: np.ndarray
    kernel: Kernel
    queries: np.ndarray
    tau: float
    eps: float = 0.2
    exact_values: np.ndarray | None = field(default=None, repr=False)

    @property
    def n(self) -> int:
        return self.points.shape[0]

    @property
    def d(self) -> int:
        return self.points.shape[1]

    def ensure_exact(self) -> np.ndarray:
        """Exact aggregates for the whole query set (cached)."""
        if self.exact_values is None:
            scan = ScanEvaluator(self.points, self.kernel, self.weights)
            self.exact_values = scan.exact_many(self.queries)
        return self.exact_values

    def sigma(self) -> float:
        """Std-dev of the exact aggregates (for the paper's tau sweeps)."""
        vals = self.ensure_exact()
        return float(vals.std())


def _query_sample(ds: Dataset, n_queries: int, rng) -> np.ndarray:
    return ds.sample_queries(n_queries, rng)


def type1_workload(
    name: str, n_queries: int = 200, size: int | None = None, seed: int = 0,
    eps: float = 0.2, bandwidth: str = "scott",
) -> KAQWorkload:
    """Kernel-density workload: unit weights, ``tau = mu``.

    ``bandwidth`` selects the Gaussian gamma rule: ``"scott"`` (the
    paper's Section V-A choice) or ``"median"`` (the median heuristic —
    the smooth regime the coreset benchmarks measure).
    """
    ds = load_dataset(name, size=size, seed=seed)
    rng = np.random.default_rng(seed + 1)
    queries = _query_sample(ds, n_queries, rng)
    if bandwidth == "scott":
        kernel = GaussianKernel(scott_gamma(ds.points))
    elif bandwidth == "median":
        kernel = GaussianKernel(median_gamma(ds.points, seed=seed))
    else:
        raise InvalidParameterError(
            f"bandwidth must be 'scott' or 'median'; got {bandwidth!r}"
        )
    wl = KAQWorkload(
        name=name, weighting="I", points=ds.points,
        weights=np.ones(ds.n), kernel=kernel, queries=queries,
        tau=0.0, eps=eps,
    )
    wl.tau = float(wl.ensure_exact().mean())  # the paper's mu threshold
    return wl


def type2_workload(
    name: str, n_queries: int = 200, size: int | None = None, seed: int = 0,
    nu: float = 0.2, kernel: Kernel | None = None, eps: float = 0.2,
) -> KAQWorkload:
    """1-class SVM workload: support vectors, positive weights, ``tau = rho``."""
    ds = load_dataset(name, size=size, seed=seed)
    rng = np.random.default_rng(seed + 1)
    n_train = min(ds.n, _MAX_TRAIN)
    train = ds.points[rng.choice(ds.n, n_train, replace=False)]
    if kernel is None:
        kernel = GaussianKernel(gamma=1.0 / ds.d)  # LibSVM default
    model = OneClassSVM(nu=nu, kernel=kernel).fit(train)
    sv, w, rho = model.to_kaq()
    return KAQWorkload(
        name=name, weighting="II", points=sv, weights=w, kernel=kernel,
        queries=_query_sample(ds, n_queries, rng), tau=rho, eps=eps,
    )


def type3_workload(
    name: str, n_queries: int = 200, size: int | None = None, seed: int = 0,
    C: float = 0.3, kernel: Kernel | None = None, eps: float = 0.2,
    polynomial: bool = False, degree: int = 3,
) -> KAQWorkload:
    """2-class SVM workload: support vectors, signed weights, ``tau = rho``.

    With ``polynomial=True`` the dataset is rescaled to ``[-1, 1]^d`` and a
    degree-``degree`` polynomial kernel is trained, as in Section V-F.

    The default ``C`` is deliberately small: our synthetic classes are
    cleaner than the paper's real data, and a soft margin keeps the
    support-vector *fraction* in the paper's range (19%-56% of the
    training set, Table VI) — the SV set size is what drives the online
    phase the benchmarks measure.
    """
    ds = load_dataset(name, size=size, seed=seed)
    if ds.labels is None:
        raise InvalidParameterError(f"dataset {name!r} has no labels")
    points = ds.points
    if polynomial:
        points = MinMaxScaler((-1.0, 1.0)).fit_transform(points)
        if kernel is None:
            kernel = PolynomialKernel(gamma=1.0 / ds.d, coef0=0.0, degree=degree)
    elif kernel is None:
        kernel = GaussianKernel(gamma=1.0 / ds.d)
    rng = np.random.default_rng(seed + 1)
    n_train = min(ds.n, _MAX_TRAIN)
    idx = rng.choice(ds.n, n_train, replace=False)
    model = SVC(C=C, kernel=kernel).fit(points[idx], ds.labels[idx])
    sv, w, rho = model.to_kaq()
    all_idx = rng.choice(ds.n, min(n_queries, ds.n), replace=False)
    return KAQWorkload(
        name=name, weighting="III", points=sv, weights=w, kernel=kernel,
        queries=points[all_idx], tau=rho, eps=eps,
    )


def workload_for(
    name: str, n_queries: int = 200, size: int | None = None, seed: int = 0,
    **kwargs,
) -> KAQWorkload:
    """Dispatch on the dataset's registered weighting type."""
    from repro.datasets.registry import DATASET_SPECS

    try:
        model = DATASET_SPECS[name].model
    except KeyError:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}"
        ) from None
    if model == "kde":
        return type1_workload(name, n_queries, size, seed, **kwargs)
    if model == "ocsvm":
        return type2_workload(name, n_queries, size, seed, **kwargs)
    return type3_workload(name, n_queries, size, seed, **kwargs)
