"""Throughput measurement helpers (queries per second, as the paper reports)."""

from __future__ import annotations

import time

import numpy as np

__all__ = ["throughput_tkaq", "throughput_ekaq", "Throughput"]


class Throughput(float):
    """Queries/second with a pretty repr for benchmark tables."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{float(self):.3g} q/s"


def _measure(fn, queries, min_seconds: float) -> Throughput:
    """Run ``fn(q)`` over ``queries`` (cycling) for at least ``min_seconds``."""
    queries = np.atleast_2d(queries)
    n = queries.shape[0]
    done = 0
    start = time.perf_counter()
    while True:
        fn(queries[done % n])
        done += 1
        elapsed = time.perf_counter() - start
        if done >= n and elapsed >= min_seconds:
            break
        if elapsed >= 4.0 * min_seconds and done >= 3:
            break  # slow method: stop early with at least a few samples
    return Throughput(done / elapsed)


def throughput_tkaq(method, queries, tau: float, min_seconds: float = 0.2) -> Throughput:
    """TKAQ queries/second of ``method`` over the query set."""
    return _measure(lambda q: method.tkaq(q, tau), queries, min_seconds)


def throughput_ekaq(method, queries, eps: float, min_seconds: float = 0.2) -> Throughput:
    """eKAQ queries/second of ``method`` over the query set."""
    return _measure(lambda q: method.ekaq(q, eps), queries, min_seconds)
