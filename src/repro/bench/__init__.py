"""Benchmark harness: workload builders, method registry, timing, tables."""

from repro.bench.methods import METHOD_NAMES, make_method, tune_method
from repro.bench.reporting import emit, emit_json, host_metadata, render_table
from repro.bench.timers import Throughput, throughput_ekaq, throughput_tkaq
from repro.bench.workload import (
    KAQWorkload,
    type1_workload,
    type2_workload,
    type3_workload,
    workload_for,
)

__all__ = [
    "KAQWorkload",
    "type1_workload",
    "type2_workload",
    "type3_workload",
    "workload_for",
    "make_method",
    "tune_method",
    "METHOD_NAMES",
    "throughput_tkaq",
    "throughput_ekaq",
    "Throughput",
    "render_table",
    "emit",
    "emit_json",
    "host_metadata",
]
