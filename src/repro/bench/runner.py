"""Command-line entry point to regenerate individual paper experiments.

Usage::

    python -m repro.bench.runner --list
    python -m repro.bench.runner table7 fig6
    python -m repro.bench.runner all
    python -m repro.bench.runner table7 --trace traces.jsonl

Each experiment prints its table (and persists it under
``benchmarks/results/``).  ``--trace PATH`` turns on the observability
layer (``repro.obs``) for the run: every query executed by the selected
experiments appends a JSONL trace to PATH, each result file embeds a
trace summary, and ``python -m repro.obs.report PATH`` replays the full
report afterwards.  This is a thin dispatcher over the
``benchmarks/bench_*.py`` modules so they stay runnable without pytest.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path

__all__ = ["main", "EXPERIMENTS"]

#: experiment id -> (bench module file, builder function names)
EXPERIMENTS = {
    "table7": ("bench_table7_throughput.py", ["build_table7"]),
    "table8": ("bench_table8_offline_tuning.py", ["build_table8"]),
    "table9": ("bench_table9_insitu.py", ["build_table9"]),
    "table10": ("bench_table10_polynomial.py", ["build_table10"]),
    "fig6": ("bench_fig6_convergence.py", ["build_fig6"]),
    "fig7": ("bench_fig7_leaf_capacity.py", ["build_fig7"]),
    "fig9": ("bench_fig9_threshold_sweep.py", ["build_fig9"]),
    "fig10": ("bench_fig10_epsilon_sweep.py", ["build_fig10"]),
    "fig11": ("bench_fig11_size_sweep.py", ["build_fig11"]),
    "fig12": ("bench_fig12_dimensionality.py", ["build_fig12"]),
    "fig13": ("bench_fig13_tightness.py", ["build_fig13"]),
    "ablation": ("bench_ablation_bounds.py",
                 ["build_bound_ablation", "build_stats_ablation"]),
    "ablation-batch": ("bench_ablation_batch.py", ["build_batch_ablation"]),
    "streaming": ("bench_streaming.py", ["build_streaming_bench"]),
    "kdc": ("bench_kdc.py", ["build_kdc"]),
    "dualtree": ("bench_dualtree.py", ["build_dualtree_bench"]),
}


def _benchmarks_dir() -> Path:
    """Locate the benchmarks/ directory relative to the repo root."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        cand = parent / "benchmarks"
        if (cand / "conftest.py").exists():
            return cand
    raise FileNotFoundError(
        "benchmarks/ directory not found; run from a source checkout"
    )


def _load_module(path: Path):
    # bench modules import their shared helpers as `from conftest import ...`
    bench_dir = str(path.parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_experiment(name: str) -> None:
    """Run one experiment's builder(s) and print its table(s)."""
    filename, builders = EXPERIMENTS[name]
    module = _load_module(_benchmarks_dir() / filename)
    for builder in builders:
        getattr(module, builder)()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="enable repro.obs tracing; append JSONL traces to PATH",
    )
    parser.add_argument(
        "--trace-compare", action="store_true",
        help="with --trace: also attribute pruned nodes to KARL vs SOTA "
             "bound tightness (slower)",
    )
    args = parser.parse_args(argv)

    if args.trace:
        from repro.obs import runtime as _obs

        _obs.enable(jsonl=args.trace, compare=args.trace_compare)

    if args.list or not args.experiments:
        for name, (filename, _) in EXPERIMENTS.items():
            print(f"{name:10s} {filename}")
        return 0

    wanted = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; use --list")
    for name in wanted:
        print(f"\n### {name} ###")
        run_experiment(name)
    if args.trace:
        if Path(args.trace).exists():
            print(
                f"\ntraces written to {args.trace}; summarize with: "
                f"python -m repro.obs.report {args.trace}"
            )
        else:
            print(
                f"\nno traces recorded (selected experiments issued no "
                f"queries through the engine); {args.trace} not created"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
