"""Fixed-width table rendering and JSON persistence for benchmark output.

Every benchmark prints a table in the same row/column layout as the
corresponding paper table or figure series, so EXPERIMENTS.md can compare
shapes side by side.  Results are also appended to
``benchmarks/results/<name>.txt`` for the record; machine-readable curves
go through :func:`emit_json`, which stamps host metadata (core count,
platform, python version) into every ``BENCH_<name>.json`` so core-count-
gated results stay interpretable after the fact.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

__all__ = ["render_table", "emit", "emit_json", "host_metadata"]

#: directory the emit() helper persists tables to (created lazily)
RESULTS_DIR = Path(os.environ.get("REPRO_BENCH_RESULTS", "benchmarks/results"))


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def render_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Render an aligned fixed-width table with a title rule."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        title,
        "=" * max(len(title), len(sep)),
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def emit(name: str, table: str) -> str:
    """Print a table and persist it under the results directory.

    When the observability layer is enabled, the traces recorded while
    the benchmark ran are summarized and embedded in the persisted result
    file (and the ring cleared, so each result file carries only its own
    traces).  The printed/returned table stays unchanged.
    """
    print("\n" + table + "\n")
    persisted = table
    trace_summary = _drain_trace_summary()
    if trace_summary:
        persisted = table + "\n\n" + trace_summary
    try:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(persisted + "\n")
    except OSError:
        pass  # read-only checkout: stdout still has the table
    return table


def host_metadata() -> dict:
    """Hardware/runtime facts that gate how a result file is read.

    ``schedulable_cpus`` (the CPUs this process may actually run on) is
    what parallel speedup gates key off; ``cpu_count`` is the machine
    total.  Both are recorded because containers routinely differ.
    """
    try:
        schedulable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        schedulable = os.cpu_count() or 1
    from repro import native

    native_st = native.native_status()
    return {
        "cpu_count": os.cpu_count(),
        "schedulable_cpus": schedulable,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        # native-vs-interpreted results must never be diffed silently:
        # repro.bench.compare keys its host-class check off this block
        "repro_native": native_st["mode"],
        "numba": native_st["numba_version"],
        "native_jit": native_st["jit_compiled"],
    }


def emit_json(name: str, payload: dict) -> dict:
    """Persist a benchmark's raw results as ``BENCH_<name>.json``.

    Returns the payload with a ``host`` metadata block injected (the
    caller's dict is updated in place).  Like :func:`emit`, a read-only
    checkout downgrades persistence to a no-op.
    """
    payload["host"] = host_metadata()
    try:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
    except OSError:
        pass
    return payload


def _drain_trace_summary() -> str | None:
    """Summarize and clear the obs trace ring; ``None`` when disabled.

    Imported lazily: ``repro.obs.report`` renders with this module's
    :func:`render_table`, so a top-level import would be circular.
    """
    from repro.obs import runtime as _obs

    if not _obs.is_enabled():
        return None
    traces = _obs.recent_traces()
    if not traces:
        return None
    from repro.obs.report import summarize

    _obs.clear_recent()
    return summarize(traces)
