"""Fixed-width table rendering for benchmark output.

Every benchmark prints a table in the same row/column layout as the
corresponding paper table or figure series, so EXPERIMENTS.md can compare
shapes side by side.  Results are also appended to
``benchmarks/results/<name>.txt`` for the record.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["render_table", "emit"]

#: directory the emit() helper persists tables to (created lazily)
RESULTS_DIR = Path(os.environ.get("REPRO_BENCH_RESULTS", "benchmarks/results"))


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def render_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Render an aligned fixed-width table with a title rule."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        title,
        "=" * max(len(title), len(sep)),
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def emit(name: str, table: str) -> str:
    """Print a table and persist it under the results directory."""
    print("\n" + table + "\n")
    try:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    except OSError:
        pass  # read-only checkout: stdout still has the table
    return table
