"""Benchmark method registry: SCAN, SOTA_best, KARL_auto, and variants.

The paper compares (Section V-A2):

* **SCAN** — sequential scan, no pruning (also stands in for LibSVM's
  predictor, which scans the support vectors).
* **Scikit_best** — the Gray & Moore style algorithm, i.e. SOTA bounds over
  the better of {kd, ball}; in this reproduction SOTA and Scikit share an
  implementation, so Scikit's rows are the SOTA rows for query type I-eps.
* **SOTA_best** — SOTA bounds with the best (index, leaf capacity) found by
  grid search.
* **KARL_auto** — KARL bounds with the automatically tuned index.

``make_method`` builds an evaluator with a query API shared by all of them
(``tkaq``/``ekaq``/``exact``), so benchmark loops are method-agnostic.
"""

from __future__ import annotations

from repro.baselines.scan import ScanEvaluator
from repro.core.aggregator import KernelAggregator
from repro.core.errors import InvalidParameterError
from repro.core.tuning import OfflineTuner
from repro.bench.workload import KAQWorkload
from repro.index.builder import build_index

__all__ = ["make_method", "tune_method", "METHOD_NAMES"]

METHOD_NAMES = ("scan", "sota", "karl", "hybrid")


def make_method(
    name: str,
    workload: KAQWorkload,
    index: str = "kd",
    leaf_capacity: int = 80,
):
    """Build an evaluator for ``name`` over the workload's point set."""
    if name == "scan":
        return ScanEvaluator(workload.points, workload.kernel, workload.weights)
    if name in ("sota", "karl", "hybrid"):
        tree = build_index(
            index, workload.points, weights=workload.weights,
            leaf_capacity=leaf_capacity,
        )
        return KernelAggregator(tree, workload.kernel, scheme=name)
    raise InvalidParameterError(
        f"unknown method {name!r}; expected one of {METHOD_NAMES}"
    )


def tune_method(
    scheme: str,
    workload: KAQWorkload,
    query_type: str,
    kinds=("kd", "ball"),
    leaf_capacities=(20, 80, 320),
    sample_size: int = 50,
    rng=None,
):
    """Grid-tuned evaluator (``SOTA_best`` / ``KARL_auto``) plus its report.

    A compact version of the paper's offline tuner: same grid structure,
    smaller sample so benchmark setup stays fast.
    """
    param = workload.tau if query_type == "tkaq" else workload.eps
    tuner = OfflineTuner(
        workload.kernel, scheme=scheme, kinds=kinds,
        leaf_capacities=leaf_capacities, sample_size=sample_size, rng=rng,
    )
    agg, report = tuner.tune(
        workload.points, workload.weights, workload.queries, query_type, param
    )
    return agg, report
