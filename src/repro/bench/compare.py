"""Throughput regression gate over ``BENCH_*.json`` result files.

``python -m repro.bench.compare BASELINE CURRENT`` reads two benchmark
result files (as written by :func:`repro.bench.reporting.emit_json`),
matches every throughput metric they share — any numeric field whose
name ends in ``_qps``, located recursively so nested per-dataset /
per-worker result lists are covered — and fails (exit 1) when any
metric regressed by more than ``--threshold`` (default 30%).

The gate is deliberately forgiving about *comparability* and strict
only about *regressions*:

* a missing or malformed **baseline** skips the comparison (exit 0) —
  a brand-new benchmark has no committed baseline yet, and that must
  not block the first CI run that would create one;
* a **host-class mismatch** (different machine architecture or
  schedulable CPU count, or a baseline predating host stamping) also
  skips — throughput measured on two core counts is not comparable,
  and a laptop baseline must not fail a CI runner;
* a missing or malformed **current** file is an error (exit 2): the
  benchmark that was supposed to produce it just ran, so something is
  actually broken.

Every run prints a delta table so the numbers are in the CI log even
when nothing fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.reporting import render_table

__all__ = [
    "throughput_metrics",
    "host_class",
    "compare_payloads",
    "main",
]

#: list-element keys used (first match wins) to label nested results
_LABEL_KEYS = ("dataset", "n_workers", "name", "label")

#: exit codes
OK = 0          # no regression, or comparison skipped
REGRESSED = 1   # at least one metric regressed beyond the threshold
ERROR = 2       # unusable current file / bad invocation


def throughput_metrics(payload) -> dict[str, float]:
    """Every throughput metric in a result payload, keyed by path.

    A throughput metric is a numeric field whose name ends in ``_qps``.
    Nested dicts contribute their key to the path; list elements are
    labelled by the first of ``dataset``/``n_workers``/``name``/
    ``label`` they carry (falling back to the index), so
    ``workers.n_workers=2.ekaq_qps`` stays stable when list order
    changes.
    """
    out: dict[str, float] = {}

    def walk(node, path):
        if isinstance(node, dict):
            for key, value in sorted(node.items()):
                if isinstance(value, bool):
                    continue
                if isinstance(value, (int, float)) and key.endswith("_qps"):
                    out[".".join((*path, key))] = float(value)
                elif isinstance(value, (dict, list)):
                    walk(value, (*path, key))
        elif isinstance(node, list):
            for i, value in enumerate(node):
                label = str(i)
                if isinstance(value, dict):
                    for lk in _LABEL_KEYS:
                        if lk in value:
                            label = f"{lk}={value[lk]}"
                            break
                walk(value, (*path, label))

    walk(payload, ())
    return out


def host_class(payload) -> tuple | None:
    """The comparability class of a result file, or ``None`` if unstamped.

    Two results are throughput-comparable when they ran on the same
    machine architecture with the same number of schedulable CPUs (the
    two fields :func:`~repro.bench.reporting.host_metadata` records
    precisely so this gate can exist).
    """
    host = payload.get("host") if isinstance(payload, dict) else None
    if not isinstance(host, dict):
        return None
    machine = host.get("machine")
    cpus = host.get("schedulable_cpus")
    if machine is None or cpus is None:
        return None
    # native execution state is part of the class: a JIT-compiled run must
    # never be diffed against an interpreted one.  Files predating the
    # stamps read as interpreted/numba-free (what they actually were).
    native_mode = host.get("repro_native") or "auto"
    return (machine, cpus, native_mode, host.get("numba"))


def compare_payloads(baseline, current, threshold: float = 0.30):
    """Compare two result payloads' shared throughput metrics.

    Returns ``(rows, regressions)``: one table row
    ``[metric, baseline, current, delta_fraction]`` per shared metric,
    and the subset of metric names whose current throughput fell more
    than ``threshold`` below baseline.  Metrics present in only one
    file are ignored (renames and new benchmarks are not regressions).
    """
    base = throughput_metrics(baseline)
    cur = throughput_metrics(current)
    rows = []
    regressions = []
    for name in sorted(base.keys() & cur.keys()):
        b, c = base[name], cur[name]
        delta = (c - b) / b if b > 0 else 0.0
        rows.append([name, b, c, delta])
        if b > 0 and c < (1.0 - threshold) * b:
            regressions.append(name)
    return rows, regressions


def _load(path: Path):
    """Parsed JSON payload, or ``None`` when missing/malformed."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _render(rows) -> str:
    shown = [
        [name, f"{b:,.1f}", f"{c:,.1f}", f"{100.0 * delta:+.1f}%"]
        for name, b, c, delta in rows
    ]
    return render_table(
        "throughput delta (current vs baseline)",
        ["metric", "baseline qps", "current qps", "delta"],
        shown,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Fail when BENCH_*.json throughput regressed "
                    "vs a committed baseline.",
    )
    parser.add_argument("baseline", type=Path,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("current", type=Path,
                        help="freshly generated BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="relative throughput drop that fails the gate "
                             "(default 0.30)")
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        parser.error(f"--threshold must be in (0, 1); got {args.threshold}")

    current = _load(args.current)
    if current is None:
        print(f"error: cannot read current results {args.current}",
              file=sys.stderr)
        return ERROR
    baseline = _load(args.baseline)
    if baseline is None:
        print(f"skip: no usable baseline at {args.baseline} "
              "(first run for this benchmark?)")
        return OK

    base_host, cur_host = host_class(baseline), host_class(current)
    if base_host is None or cur_host is None or base_host != cur_host:
        print("skip: host classes differ or are unstamped "
              f"(baseline={base_host}, current={cur_host}); "
              "throughput is not comparable")
        return OK

    rows, regressions = compare_payloads(baseline, current, args.threshold)
    if not rows:
        print("skip: no shared *_qps metrics between the two files")
        return OK
    print(_render(rows))
    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) regressed more than "
              f"{100.0 * args.threshold:.0f}%:")
        for name in regressions:
            print(f"  - {name}")
        return REGRESSED
    print(f"\nOK: no metric regressed more than "
          f"{100.0 * args.threshold:.0f}% "
          f"({len(rows)} compared)")
    return OK


if __name__ == "__main__":
    sys.exit(main())
