"""Throughput regression gate over ``BENCH_*.json`` result files.

``python -m repro.bench.compare BASELINE CURRENT`` reads two benchmark
result files (as written by :func:`repro.bench.reporting.emit_json`),
matches every throughput metric they share — any numeric field whose
name ends in ``_qps``, located recursively so nested per-dataset /
per-worker result lists are covered — and fails (exit 1) when any
metric regressed by more than ``--threshold`` (default 30%).

The gate is deliberately forgiving about *comparability* and strict
only about *regressions*:

* a missing or malformed **baseline** skips the comparison (exit 0) —
  a brand-new benchmark has no committed baseline yet, and that must
  not block the first CI run that would create one;
* a **host-class mismatch** (different machine architecture or
  schedulable CPU count, or a baseline predating host stamping) also
  skips — throughput measured on two core counts is not comparable,
  and a laptop baseline must not fail a CI runner;
* a missing or malformed **current** file is an error (exit 2): the
  benchmark that was supposed to produce it just ran, so something is
  actually broken.

``--all BASELINE_DIR CURRENT_DIR`` compares every ``BENCH_*.json``
pair the two directories share, in one invocation — the union of both
directories' result files is discovered automatically, so adding a
benchmark never requires a new CI step.  Per-file semantics match the
single-pair mode: a current-only file skips (new benchmark, its first
committed baseline is this run's artifact), a baseline-only file is an
error (the benchmark that was supposed to regenerate it produced
nothing).  The process exit code is the worst per-file outcome
(error > regressed > ok).

Both modes also enforce any **recorded gate**: a payload carrying
``{"gate": {"passed": false, "binding": true}}`` (a benchmark's own
self-check, e.g. the workload suite's router-beats-every-static claim)
fails the run even when no throughput metric regressed.

Every run prints a delta table so the numbers are in the CI log even
when nothing fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.reporting import render_table

__all__ = [
    "throughput_metrics",
    "host_class",
    "compare_payloads",
    "check_gate",
    "compare_files",
    "compare_dirs",
    "main",
]

#: list-element keys used (first match wins) to label nested results
_LABEL_KEYS = ("dataset", "n_workers", "name", "label")

#: exit codes
OK = 0          # no regression, or comparison skipped
REGRESSED = 1   # at least one metric regressed beyond the threshold
ERROR = 2       # unusable current file / bad invocation


def throughput_metrics(payload) -> dict[str, float]:
    """Every throughput metric in a result payload, keyed by path.

    A throughput metric is a numeric field whose name ends in ``_qps``.
    Nested dicts contribute their key to the path; list elements are
    labelled by the first of ``dataset``/``n_workers``/``name``/
    ``label`` they carry (falling back to the index), so
    ``workers.n_workers=2.ekaq_qps`` stays stable when list order
    changes.
    """
    out: dict[str, float] = {}

    def walk(node, path):
        if isinstance(node, dict):
            for key, value in sorted(node.items()):
                if isinstance(value, bool):
                    continue
                if isinstance(value, (int, float)) and key.endswith("_qps"):
                    out[".".join((*path, key))] = float(value)
                elif isinstance(value, (dict, list)):
                    walk(value, (*path, key))
        elif isinstance(node, list):
            for i, value in enumerate(node):
                label = str(i)
                if isinstance(value, dict):
                    for lk in _LABEL_KEYS:
                        if lk in value:
                            label = f"{lk}={value[lk]}"
                            break
                walk(value, (*path, label))

    walk(payload, ())
    return out


def host_class(payload) -> tuple | None:
    """The comparability class of a result file, or ``None`` if unstamped.

    Two results are throughput-comparable when they ran on the same
    machine architecture with the same number of schedulable CPUs (the
    two fields :func:`~repro.bench.reporting.host_metadata` records
    precisely so this gate can exist).
    """
    host = payload.get("host") if isinstance(payload, dict) else None
    if not isinstance(host, dict):
        return None
    machine = host.get("machine")
    cpus = host.get("schedulable_cpus")
    if machine is None or cpus is None:
        return None
    # native execution state is part of the class: a JIT-compiled run must
    # never be diffed against an interpreted one.  Files predating the
    # stamps read as interpreted/numba-free (what they actually were).
    native_mode = host.get("repro_native") or "auto"
    return (machine, cpus, native_mode, host.get("numba"))


def compare_payloads(baseline, current, threshold: float = 0.30):
    """Compare two result payloads' shared throughput metrics.

    Returns ``(rows, regressions)``: one table row
    ``[metric, baseline, current, delta_fraction]`` per shared metric,
    and the subset of metric names whose current throughput fell more
    than ``threshold`` below baseline.  Metrics present in only one
    file are ignored (renames and new benchmarks are not regressions).
    """
    base = throughput_metrics(baseline)
    cur = throughput_metrics(current)
    rows = []
    regressions = []
    for name in sorted(base.keys() & cur.keys()):
        b, c = base[name], cur[name]
        delta = (c - b) / b if b > 0 else 0.0
        rows.append([name, b, c, delta])
        if b > 0 and c < (1.0 - threshold) * b:
            regressions.append(name)
    return rows, regressions


def check_gate(payload) -> str | None:
    """Failure message when the payload's own recorded gate failed.

    Benchmarks with an internal acceptance claim (the workload suite's
    "router beats every static backend") record it as
    ``{"gate": {"passed": bool, "binding": bool, ...}}``.  A failed
    *binding* gate fails the comparison run regardless of deltas; a
    non-binding gate (smoke scale) is informational only.
    """
    gate = payload.get("gate") if isinstance(payload, dict) else None
    if not isinstance(gate, dict):
        return None
    if gate.get("binding") and gate.get("passed") is False:
        detail = {k: v for k, v in sorted(gate.items())
                  if k not in ("passed", "binding")}
        return f"recorded gate failed: {detail}"
    return None


def _load(path: Path):
    """Parsed JSON payload, or ``None`` when missing/malformed."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _render(rows) -> str:
    shown = [
        [name, f"{b:,.1f}", f"{c:,.1f}", f"{100.0 * delta:+.1f}%"]
        for name, b, c, delta in rows
    ]
    return render_table(
        "throughput delta (current vs baseline)",
        ["metric", "baseline qps", "current qps", "delta"],
        shown,
    )


def compare_files(baseline_path: Path, current_path: Path,
                  threshold: float = 0.30) -> int:
    """One baseline/current pair: delta table, recorded gate, exit code."""
    current = _load(current_path)
    if current is None:
        print(f"error: cannot read current results {current_path}",
              file=sys.stderr)
        return ERROR
    # the recorded gate is self-contained in the current file, so it is
    # enforced even when no baseline exists to diff against
    code = OK
    gate_msg = check_gate(current)
    if gate_msg:
        print(f"FAIL: {current_path.name}: {gate_msg}")
        code = REGRESSED
    baseline = _load(baseline_path)
    if baseline is None:
        print(f"skip: no usable baseline at {baseline_path} "
              "(first run for this benchmark?)")
        return code

    base_host, cur_host = host_class(baseline), host_class(current)
    if base_host is None or cur_host is None or base_host != cur_host:
        print("skip: host classes differ or are unstamped "
              f"(baseline={base_host}, current={cur_host}); "
              "throughput is not comparable")
        return code

    rows, regressions = compare_payloads(baseline, current, threshold)
    if not rows:
        print("skip: no shared *_qps metrics between the two files")
        return code
    print(_render(rows))
    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) regressed more than "
              f"{100.0 * threshold:.0f}%:")
        for name in regressions:
            print(f"  - {name}")
        return REGRESSED
    print(f"\nOK: no metric regressed more than "
          f"{100.0 * threshold:.0f}% "
          f"({len(rows)} compared)")
    return code


def compare_dirs(baseline_dir: Path, current_dir: Path,
                 threshold: float = 0.30) -> int:
    """Every ``BENCH_*.json`` pair across two directories; worst exit code.

    The file set is the union of both directories, so a benchmark added
    (or removed) on either side is always accounted for: current-only
    files skip (their first baseline is this run's artifact),
    baseline-only files are an error (the run that should have
    regenerated them produced nothing).
    """
    names = sorted({
        p.name
        for d in (baseline_dir, current_dir) if d.is_dir()
        for p in d.glob("BENCH_*.json")
    })
    if not names:
        print(f"skip: no BENCH_*.json under {baseline_dir} or {current_dir}")
        return OK
    worst = OK
    for name in names:
        print(f"\n=== {name} ===")
        if not (current_dir / name).is_file():
            print(f"error: baseline {name} exists but the current run "
                  "produced no matching results", file=sys.stderr)
            worst = max(worst, ERROR)
            continue
        if not (baseline_dir / name).is_file():
            print(f"skip: {name} has no committed baseline yet")
            continue
        worst = max(worst,
                    compare_files(baseline_dir / name, current_dir / name,
                                  threshold))
    print(f"\n{len(names)} benchmark(s) checked; exit {worst}")
    return worst


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Fail when BENCH_*.json throughput regressed "
                    "vs a committed baseline.",
    )
    parser.add_argument("baseline", type=Path,
                        help="committed baseline BENCH_*.json "
                             "(directory with --all)")
    parser.add_argument("current", type=Path,
                        help="freshly generated BENCH_*.json "
                             "(directory with --all)")
    parser.add_argument("--all", action="store_true", dest="all_pairs",
                        help="treat the two paths as directories and "
                             "compare every BENCH_*.json pair they hold")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="relative throughput drop that fails the gate "
                             "(default 0.30)")
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        parser.error(f"--threshold must be in (0, 1); got {args.threshold}")
    if args.all_pairs:
        return compare_dirs(args.baseline, args.current, args.threshold)
    return compare_files(args.baseline, args.current, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
