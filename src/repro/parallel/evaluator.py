"""Process-parallel batch TKAQ/eKAQ over a shared-memory index.

A query batch is embarrassingly parallel: each query's answer depends only
on the (immutable) index.  :class:`ParallelEvaluator` shards a batch
across a persistent pool of worker processes; the dataset and the
flattened tree live in :class:`~repro.parallel.shared.SharedIndex` blocks
that every worker attaches zero-copy, so the per-task payload is just a
query shard and the merged result arrays come back.

Semantics: each worker runs the *existing* serial evaluators
(:class:`~repro.core.aggregator.KernelAggregator`, which dispatches to the
query-major :class:`~repro.core.multiquery.MultiQueryAggregator` whenever
the kernel/scheme support it) on its shard.  A parallel batch is therefore
bitwise-identical to evaluating the same shards serially — and, because
the per-query loop backend refines each query independently, loop-backend
results are bitwise-identical to serial *regardless* of sharding.  For the
multiquery backend the shared-frontier schedule couples the queries of a
shard, so terminal bounds match serial whenever the chunking matches (a
batch at most one chunk wide is always bitwise-identical to
``backend="multiquery"``).

Failure model: a worker that dies mid-batch (OOM-kill, segfault) breaks
the pool; the batch fails fast with
:class:`~repro.core.errors.ParallelExecutionError` — never a hang, never a
partial result — and the next batch transparently rebuilds the pool over
the still-live shared blocks.  Platforms without
``multiprocessing.shared_memory`` degrade to the serial backend with a
warning.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro import native as _native
from repro.core.errors import (
    DataShapeError,
    InvalidParameterError,
    ParallelExecutionError,
    as_matrix,
    as_query_param,
)
from repro.core.results import BatchQueryStats, EKAQBatchResult, TKAQBatchResult
from repro.obs import runtime as _obs
from repro.obs.metrics import SECONDS_BUCKETS
from repro.obs.trace import QueryTrace
from repro.parallel.shared import SharedIndex, shared_memory_available

__all__ = ["ParallelEvaluator", "auto_chunk_size", "default_workers"]

#: smallest chunk the auto heuristic will dispatch: below this the pickle/
#: IPC round-trip dominates the numpy work a shard amortises it over
_MIN_CHUNK = 64

#: target number of chunks per worker: >1 so a slow shard (dense query
#: region) back-fills idle workers instead of setting the batch tail
#: latency, small enough that dispatch overhead stays negligible
_CHUNKS_PER_WORKER = 4

_WORKER_BACKENDS = ("auto", "multiquery", "loop")

#: per-process worker state, built once by the pool initializer
_WORKER_STATE = None


def default_workers() -> int:
    """Worker-count default: the CPUs this process may actually run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def auto_chunk_size(n_queries: int, n_workers: int) -> int:
    """Chunk-size heuristic balancing dispatch overhead vs tail latency.

    Aims for :data:`_CHUNKS_PER_WORKER` chunks per worker (so stragglers
    rebalance) but never dispatches fewer than :data:`_MIN_CHUNK` queries
    per task (so per-task IPC overhead stays amortised).  Batches at most
    :data:`_MIN_CHUNK` wide stay a single chunk — their results are then
    bitwise-identical to the serial multiquery backend.
    """
    if n_queries <= _MIN_CHUNK:
        return max(1, n_queries)
    target = -(-n_queries // (n_workers * _CHUNKS_PER_WORKER))  # ceil
    return max(_MIN_CHUNK, target)


# ----------------------------------------------------------------------
# worker side (runs in the pool processes)
# ----------------------------------------------------------------------


def _init_worker(handle, kernel, scheme, max_depth, backend,
                 native_mode="auto") -> None:
    """Pool initializer: attach the shared index, build the evaluator once.

    Spawn-safe: everything arrives pickled (the handle is names+metadata,
    the kernel/scheme are small parameter objects); the tree itself is
    rebuilt over zero-copy shared-memory views.  Any tracing sink the
    worker inherited from the environment is disabled — the parent owns
    persistence; workers trace into their in-memory ring only.  The
    parent's native execution mode is forwarded explicitly because a
    spawned worker would otherwise re-read ``REPRO_NATIVE`` and miss any
    programmatic ``set_mode`` override.
    """
    global _WORKER_STATE
    from repro import native
    from repro.core.aggregator import KernelAggregator
    from repro.parallel.shared import AttachedIndex

    _obs.disable()
    native.set_mode(native_mode)
    attached = AttachedIndex(handle)
    agg = KernelAggregator(
        attached.tree, kernel, scheme=scheme, max_depth=max_depth
    )
    _WORKER_STATE = (agg, attached, backend)


def _run_chunk(kind, chunk_id, Q, param, submit_t, trace_on, compare):
    """Evaluate one query shard on this worker's cached evaluator."""
    agg, _, backend = _WORKER_STATE
    if trace_on:
        if not _obs.is_enabled() or _obs.compare_enabled() != bool(compare):
            _obs.enable(compare=compare)
        _obs.clear_recent()
    elif _obs.is_enabled():  # pragma: no cover - defensive
        _obs.disable()

    start = time.monotonic()
    if kind == "tkaq":
        res = agg.tkaq_many_results(Q, param, backend=backend)
        payload = {"answers": res.answers}
    else:
        res = agg.ekaq_many_results(Q, param, backend=backend)
        payload = {"estimates": res.estimates}
    busy = time.monotonic() - start

    traces = []
    if trace_on:
        traces = [t.to_dict() for t in _obs.recent_traces()]
        _obs.clear_recent()
    payload.update(
        chunk_id=chunk_id,
        lower=res.lower,
        upper=res.upper,
        stats=res.stats,
        pid=os.getpid(),
        queue_delay=start - submit_t,
        busy=busy,
        traces=traces,
    )
    return payload


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


class ParallelEvaluator:
    """Shards TKAQ/eKAQ batches across a persistent worker-process pool.

    Parameters
    ----------
    tree : SpatialIndex
        Built kd-tree or ball-tree (the serialisable kinds).
    kernel : Kernel
        Any supported kernel; shards run ``worker_backend`` per worker.
    scheme : str or BoundScheme
        Bound scheme, as for :class:`~repro.core.aggregator.KernelAggregator`.
    max_depth : int, optional
        Depth cap forwarded to the worker evaluators.
    n_workers : int, optional
        Pool size; defaults to the schedulable CPU count.
    chunk_size : int, optional
        Queries per dispatched task; default: :func:`auto_chunk_size`.
    worker_backend : str
        Serial backend each worker runs on its shard (``"auto"`` |
        ``"multiquery"`` | ``"loop"``).
    start_method : str
        ``multiprocessing`` start method for the pool (default ``"spawn"``
        — safe with threaded BLAS; ``"fork"``/``"forkserver"`` where
        supported).

    The pool and the shared-memory export are created lazily on the first
    batch and persist across batches; call :meth:`close` (or use the
    evaluator as a context manager) to release both.  A dead worker fails
    the in-flight batch with :class:`ParallelExecutionError`; the pool is
    rebuilt on the next call.
    """

    def __init__(self, tree, kernel, scheme="karl", max_depth=None,
                 n_workers: int | None = None, chunk_size: int | None = None,
                 worker_backend: str = "auto", start_method: str = "spawn"):
        from repro.core.aggregator import resolve_scheme

        self.tree = tree
        self.kernel = kernel
        self.scheme = resolve_scheme(scheme)
        if max_depth is not None and max_depth < 0:
            raise InvalidParameterError(f"max_depth must be >= 0; got {max_depth}")
        self.max_depth = max_depth
        if worker_backend not in _WORKER_BACKENDS:
            raise InvalidParameterError(
                f"worker_backend must be one of {_WORKER_BACKENDS}; "
                f"got {worker_backend!r}"
            )
        self.worker_backend = worker_backend
        self.n_workers = int(n_workers) if n_workers is not None else default_workers()
        if self.n_workers < 1:
            raise InvalidParameterError(
                f"n_workers must be >= 1; got {self.n_workers}"
            )
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        if self.chunk_size is not None and self.chunk_size < 1:
            raise InvalidParameterError(
                f"chunk_size must be >= 1; got {self.chunk_size}"
            )
        if start_method not in mp.get_all_start_methods():
            raise InvalidParameterError(
                f"start method {start_method!r} not supported here; "
                f"available: {mp.get_all_start_methods()}"
            )
        self._start_method = start_method
        self._shared: SharedIndex | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._serial = None
        self._finalizer = None
        self.serial_fallback = False
        if not shared_memory_available():
            warnings.warn(
                "multiprocessing.shared_memory unavailable; "
                "ParallelEvaluator falls back to serial execution",
                RuntimeWarning, stacklevel=2,
            )
            self.serial_fallback = True
        # fail fast on trees the shared exporter cannot ship
        from repro.index.serialize import tree_arrays

        tree_arrays(tree)

    # -- pool / shared-memory lifecycle --------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self.serial_fallback:
            return None
        if self._pool is None:
            if self._shared is None or self._shared.closed:
                self._shared = SharedIndex(self.tree)
                # unlink at GC/interpreter exit even without an explicit
                # close(), so crashed sessions do not leak /dev/shm blocks
                self._finalizer = weakref.finalize(self, self._shared.close)
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=mp.get_context(self._start_method),
                    initializer=_init_worker,
                    initargs=(self._shared.handle, self.kernel, self.scheme,
                              self.max_depth, self.worker_backend,
                              _native.get_mode()),
                )
            except Exception as exc:
                warnings.warn(
                    f"could not start worker pool ({exc!r}); "
                    "falling back to serial execution",
                    RuntimeWarning, stacklevel=3,
                )
                self.serial_fallback = True
                return None
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a (broken) pool; shared memory stays live for the next one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the pool down and unlink every shared-memory block."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        shared, self._shared = self._shared, None
        if shared is not None:
            shared.close()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- serial fallback ------------------------------------------------

    def _serial_aggregator(self):
        if self._serial is None:
            from repro.core.aggregator import KernelAggregator

            self._serial = KernelAggregator(
                self.tree, self.kernel, scheme=self.scheme,
                max_depth=self.max_depth,
            )
        return self._serial

    # -- batch execution ------------------------------------------------

    def _check_queries(self, queries) -> np.ndarray:
        Q = as_matrix(queries, name="queries")
        if Q.shape[1] != self.tree.d:
            raise DataShapeError(
                f"queries have dimension {Q.shape[1]}, expected {self.tree.d}"
            )
        return Q

    def _run(self, kind: str, Q: np.ndarray, param):
        """``param`` is a scalar or a per-query vector, sharded with ``Q``."""
        pool = self._ensure_pool()
        if pool is None:
            agg = self._serial_aggregator()
            if kind == "tkaq":
                return agg.tkaq_many_results(Q, param, backend=self.worker_backend)
            return agg.ekaq_many_results(Q, param, backend=self.worker_backend)

        nq = Q.shape[0]
        chunk = self.chunk_size or auto_chunk_size(nq, self.n_workers)
        starts = range(0, nq, chunk)
        scalar_param = isinstance(param, float)
        trace_on = _obs.is_enabled()
        compare = _obs.compare_enabled()
        otrace = _obs.start_trace(
            kind, "parallel", self.scheme.name, self.tree.n,
            n_queries=nq, param=param if scalar_param else None,
        )

        t_dispatch = time.monotonic()
        futures = []
        chunks = []
        try:
            # submit itself raises BrokenProcessPool when workers died
            # between batches, so it sits inside the same failure mapping
            futures = [
                pool.submit(_run_chunk, kind, i, Q[s:s + chunk],
                            param if scalar_param else param[s:s + chunk],
                            t_dispatch, trace_on, compare)
                for i, s in enumerate(starts)
            ]
            if otrace is not None:
                otrace.add_phase("dispatch", time.monotonic() - t_dispatch)
            t_wait = time.monotonic()
            for fut in futures:
                chunks.append(fut.result())
        except BrokenProcessPool as exc:
            self._discard_pool()
            raise ParallelExecutionError(
                f"a worker process died while evaluating a {kind} batch of "
                f"{nq} queries ({len(chunks)}/{len(futures)} chunks had "
                "completed); the pool will be rebuilt on the next call"
            ) from exc
        except ParallelExecutionError:
            raise
        except Exception as exc:
            for f in futures:
                f.cancel()
            raise ParallelExecutionError(
                f"worker failed while evaluating a {kind} batch: {exc}"
            ) from exc
        if otrace is not None:
            otrace.add_phase("wait", time.monotonic() - t_wait)

        return self._merge(kind, Q, param, chunk, chunks, otrace)

    def _merge(self, kind, Q, param, chunk, chunks, otrace):
        nq = Q.shape[0]
        lower = np.empty(nq)
        upper = np.empty(nq)
        primary = np.empty(nq, dtype=bool if kind == "tkaq" else np.float64)
        key = "answers" if kind == "tkaq" else "estimates"
        stats = BatchQueryStats()
        reg = _obs.registry()
        delay_max = busy_max = 0.0

        for res in chunks:
            s = res["chunk_id"] * chunk
            sl = slice(s, s + len(res["lower"]))
            lower[sl] = res["lower"]
            upper[sl] = res["upper"]
            primary[sl] = res[key]
            stats.merge_batch(res["stats"])
            reg.histogram("parallel.worker_seconds", SECONDS_BUCKETS).observe(
                res["busy"]
            )
            reg.histogram(
                "parallel.queue_delay_seconds", SECONDS_BUCKETS
            ).observe(res["queue_delay"])
            delay_max = max(delay_max, res["queue_delay"])
            busy_max = max(busy_max, res["busy"])
            if otrace is not None:
                self._ingest_chunk_traces(res)
                st = res["stats"]
                otrace.record_round(
                    frontier=0, active=st.n_queries, retired=st.n_queries,
                    expanded=st.nodes_expanded, leaves=st.leaves_evaluated,
                    points=st.points_evaluated,
                    bound_evals=st.bound_evaluations,
                    pruned_points=st.n_queries * self.tree.n
                    - st.points_evaluated,
                )

        reg.counter("parallel.batches_total").inc()
        reg.counter("parallel.chunks_total").inc(len(chunks))
        reg.counter("parallel.queries_total").inc(nq)
        reg.gauge("parallel.n_workers").set(self.n_workers)
        reg.gauge("parallel.last_batch_chunks").set(len(chunks))
        reg.gauge("parallel.last_batch_chunk_size").set(chunk)
        reg.gauge("parallel.last_batch_queue_delay_max").set(delay_max)
        reg.gauge("parallel.last_batch_worker_seconds_max").set(busy_max)

        if otrace is not None:
            otrace.extra["n_chunks"] = len(chunks)
            otrace.extra["chunk_size"] = chunk
            otrace.extra["n_workers"] = self.n_workers
            _obs.finish_trace(otrace)

        if kind == "tkaq":
            return TKAQBatchResult(
                answers=primary, lower=lower, upper=upper, tau=param,
                stats=stats,
            )
        return EKAQBatchResult(
            estimates=primary, lower=lower, upper=upper, eps=param,
            stats=stats,
        )

    @staticmethod
    def _ingest_chunk_traces(res) -> None:
        """Round worker-side traces through the parent's ring/sink/metrics."""
        for d in res["traces"]:
            trace = QueryTrace.from_dict(d)
            trace.extra["worker_pid"] = res["pid"]
            trace.extra["chunk"] = res["chunk_id"]
            _obs.ingest_trace(trace)

    # -- public queries --------------------------------------------------

    def tkaq_many_results(self, queries, tau) -> TKAQBatchResult:
        """Per-query TKAQ answers and terminal bounds, computed in parallel.

        ``tau`` may be scalar or a per-query ``(Q,)`` vector; vectors are
        sharded alongside the query rows.
        """
        Q = self._check_queries(queries)
        return self._run("tkaq", Q, as_query_param(tau, Q.shape[0], "tau"))

    def ekaq_many_results(self, queries, eps) -> EKAQBatchResult:
        """Per-query eKAQ estimates and terminal bounds, computed in parallel."""
        Q = self._check_queries(queries)
        return self._run(
            "ekaq", Q, as_query_param(eps, Q.shape[0], "eps", minimum=0.0)
        )

    def tkaq_many(self, queries, tau) -> np.ndarray:
        """Vector of TKAQ answers for each row of ``queries``."""
        return self.tkaq_many_results(queries, tau).answers

    def ekaq_many(self, queries, eps) -> np.ndarray:
        """Vector of eKAQ estimates for each row of ``queries``."""
        return self.ekaq_many_results(queries, eps).estimates
