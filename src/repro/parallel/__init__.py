"""Process-parallel batch query execution over shared-memory indexes.

The serial evaluators saturate exactly one core; this package shards a
TKAQ/eKAQ batch across a persistent worker-process pool with the dataset
and flattened tree placed *once* in ``multiprocessing.shared_memory``
(:class:`SharedIndex`), so workers attach zero-copy instead of pickling
the ``(n, d)`` points per task.  See ``docs/parallel.md`` for the
architecture, chunking heuristic, and shared-memory lifecycle.
"""

from repro.core.errors import ParallelExecutionError
from repro.parallel.evaluator import (
    ParallelEvaluator,
    auto_chunk_size,
    default_workers,
)
from repro.parallel.shared import (
    AttachedIndex,
    SharedIndex,
    SharedIndexHandle,
    shared_memory_available,
)

__all__ = [
    "ParallelEvaluator",
    "ParallelExecutionError",
    "SharedIndex",
    "SharedIndexHandle",
    "AttachedIndex",
    "auto_chunk_size",
    "default_workers",
    "shared_memory_available",
]
