"""Zero-copy index sharing across processes via named shared memory.

The parallel batch engine pays the dataset cost **once**: every array of
the flattened tree (:func:`repro.index.serialize.tree_arrays` — points,
weights, topology, geometry, signed statistics) is exported into a named
``multiprocessing.shared_memory`` block, and each worker attaches those
blocks by name and rebuilds a read-only :class:`~repro.index.base.SpatialIndex`
over them.  Nothing about the ``(n, d)`` point set is ever pickled per
task; the only per-task payload is the query shard itself.

Lifecycle contract:

* the **owner** (the process that built the tree) creates a
  :class:`SharedIndex` and must eventually :meth:`SharedIndex.close` it —
  that closes *and unlinks* every block, releasing the OS-level memory;
* **workers** attach through :class:`AttachedIndex` using the picklable
  :class:`SharedIndexHandle`; closing an attachment only detaches, it
  never unlinks (the owner's blocks survive worker churn);
* attaching processes suppress ``resource_tracker`` registration while
  opening blocks, so a worker exiting does not tear down (or warn about)
  memory it does not own — before 3.13's ``track=False`` the Python
  tracker otherwise assumes every opened block is owned by the opener.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.index.base import SpatialIndex
from repro.index.serialize import rebuild_tree, tree_arrays

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _shm = None

__all__ = [
    "SharedIndex",
    "SharedIndexHandle",
    "AttachedIndex",
    "shared_memory_available",
]


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` is usable here."""
    return _shm is not None


@contextmanager
def _attach_untracked():
    """Suppress resource-tracker registration while attaching blocks.

    Attachers must not let their tracker unlink blocks the owner is still
    serving (the tracker cannot tell owners from attachers before 3.13's
    ``track=False``).  Post-hoc ``unregister`` is not enough: the tracker
    cache is a set shared by all children, so two workers registering the
    same block collapse to one entry and the second unregister raises
    ``KeyError`` inside the tracker process.  Best-effort: tracker
    internals are not a stable API.
    """
    try:
        from multiprocessing import resource_tracker
    except Exception:  # pragma: no cover - tracker always importable here
        yield
        return
    orig = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        yield
    finally:
        resource_tracker.register = orig


@dataclass(frozen=True)
class SharedIndexHandle:
    """Picklable attachment recipe: block names plus array metadata.

    ``blocks`` maps each canonical array name to the shared-memory block
    holding it, with the shape/dtype needed to wrap the raw buffer back
    into an ndarray.  Small enough to ship in pool-initializer args.
    """

    kind: str
    leaf_capacity: int
    blocks: tuple  # of (array_name, block_name, shape, dtype_str)


class SharedIndex:
    """Owner-side export of a built index into named shared-memory blocks.

    Parameters
    ----------
    tree : SpatialIndex
        A built kd-tree or ball-tree (the kinds the serializer supports).

    The exporter copies each array once into its block; after that the
    owner and any number of attached workers read the same physical pages.
    Usable as a context manager; :meth:`close` unlinks every block.
    """

    def __init__(self, tree: SpatialIndex):
        if _shm is None:
            raise InvalidParameterError(
                "multiprocessing.shared_memory is not available on this "
                "platform; use the serial backends instead"
            )
        self._segments = []
        blocks = []
        try:
            for name, arr in tree_arrays(tree).items():
                arr = np.ascontiguousarray(arr)
                seg = _shm.SharedMemory(create=True, size=max(1, arr.nbytes))
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[...] = arr
                del view  # release the buffer export before any close()
                self._segments.append(seg)
                blocks.append((name, seg.name, arr.shape, arr.dtype.str))
        except BaseException:
            self.close()
            raise
        self.handle = SharedIndexHandle(
            kind=tree.kind,
            leaf_capacity=tree.leaf_capacity,
            blocks=tuple(blocks),
        )
        self._closed = False

    @property
    def block_names(self) -> list[str]:
        """OS-level names of the exported blocks (for leak checks)."""
        return [seg.name for seg in self._segments]

    @property
    def nbytes(self) -> int:
        """Total shared payload size in bytes."""
        return sum(seg.size for seg in self._segments)

    def close(self) -> None:
        """Close and unlink every block (idempotent).

        After this no new worker can attach and the memory is released
        once the last attached worker detaches.
        """
        segments, self._segments = self._segments, []
        self._closed = True
        for seg in segments:
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SharedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent
        self.close()


class AttachedIndex:
    """Worker-side attachment: a read-only tree over shared blocks.

    Rebuilds a fully functional :class:`SpatialIndex` whose arrays are
    zero-copy read-only views into the owner's shared-memory blocks.
    Closing detaches the views; it never unlinks the owner's blocks.
    """

    def __init__(self, handle: SharedIndexHandle):
        if _shm is None:
            raise InvalidParameterError(
                "multiprocessing.shared_memory is not available on this platform"
            )
        self._segments = []
        arrays = {}
        try:
            for name, block_name, shape, dtype in handle.blocks:
                with _attach_untracked():
                    seg = _shm.SharedMemory(name=block_name)
                self._segments.append(seg)
                view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
                view.flags.writeable = False
                arrays[name] = view
        except BaseException:
            self.close()
            raise
        self.tree: SpatialIndex = rebuild_tree(
            handle.kind, handle.leaf_capacity, arrays
        )

    def close(self) -> None:
        """Drop the array views and detach from every block (idempotent)."""
        self.tree = None
        segments, self._segments = self._segments, []
        for seg in segments:
            try:
                seg.close()
            except Exception:
                pass

    def __enter__(self) -> "AttachedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
