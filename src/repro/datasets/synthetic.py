"""Synthetic dataset generators standing in for the paper's real datasets.

The paper evaluates on ten UCI / LibSVM datasets (Table VI).  Those files
are not available offline, so this module generates seeded synthetic
equivalents with the properties KARL's pruning behaviour actually depends
on:

* **clusteredness** — real feature data concentrates around modes; the
  generators draw from Gaussian mixtures with per-cluster anisotropic
  scales (a uniform cloud would make *every* tree-based method useless and
  misrepresent the paper);
* **dimensionality** — matched to Table VI per dataset;
* **normalisation** — features scaled to ``[0, 1]^d`` as LibSVM does (the
  paper notes this is why Type II/III bounds are so tight);
* **label structure** — two overlapping class-conditional mixtures for the
  SVM datasets, so trained support vectors hug the decision boundary as in
  the paper's discussion of Figure 13.

Cardinalities are scaled down (Python evaluator vs. the authors' C++), but
relative method ordering — the paper's claim — is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = [
    "MixtureSpec",
    "gaussian_mixture",
    "labeled_mixture",
    "grid_queries",
]


@dataclass(frozen=True)
class MixtureSpec:
    """Shape parameters of a synthetic Gaussian-mixture dataset."""

    n: int
    d: int
    clusters: int = 12
    cluster_scale: float = 0.06
    scale_jitter: float = 0.5
    uniform_fraction: float = 0.02  # background noise points
    zipf_exponent: float = 1.0  # cluster mass ~ k^-a (0 = equal clusters)


def _anisotropic_scales(spec: MixtureSpec, rng: np.random.Generator) -> np.ndarray:
    """Per-(cluster, dimension) scales spanning ~1.5 orders of magnitude.

    Real tabular features have wildly unequal variances even after min-max
    normalisation; this anisotropy is what lets spatial trees shrink node
    extents quickly along the dominant dimensions — isotropic synthetic
    clouds would understate every indexed method.
    """
    exponents = rng.uniform(-1.3, 0.2, size=(spec.clusters, spec.d))
    jitter = 1.0 + spec.scale_jitter * rng.uniform(
        -1.0, 1.0, size=(spec.clusters, spec.d)
    )
    return spec.cluster_scale * jitter * 10.0**exponents


def _cluster_probs(clusters: int, exponent: float) -> np.ndarray:
    """Zipf-like cluster weights — real density data is dominated by a few
    heavy modes, which skews the aggregate distribution the way the paper's
    datasets do (most queries land far from the mean threshold)."""
    ranks = np.arange(1, clusters + 1, dtype=np.float64)
    probs = ranks ** (-exponent)
    return probs / probs.sum()


def gaussian_mixture(spec: MixtureSpec, rng: np.random.Generator) -> np.ndarray:
    """Draw ``spec.n`` points in ``[0, 1]^spec.d`` from a random mixture.

    Cluster centers are uniform in the unit cube; each cluster has its own
    per-dimension scale (anisotropy makes kd-tree vs ball-tree tuning
    non-trivial, as in the paper's Figure 7).  A small uniform background
    fraction plays the role of outliers in real data.
    """
    if spec.n < 1 or spec.d < 1 or spec.clusters < 1:
        raise InvalidParameterError(f"invalid mixture spec {spec}")
    centers = rng.uniform(0.15, 0.85, size=(spec.clusters, spec.d))
    scales = _anisotropic_scales(spec, rng)
    n_noise = int(spec.uniform_fraction * spec.n)
    n_clustered = spec.n - n_noise
    which = rng.choice(
        spec.clusters, size=n_clustered,
        p=_cluster_probs(spec.clusters, spec.zipf_exponent),
    )
    pts = centers[which] + scales[which] * rng.standard_normal((n_clustered, spec.d))
    if n_noise:
        pts = np.vstack([pts, rng.uniform(0.0, 1.0, size=(n_noise, spec.d))])
    np.clip(pts, 0.0, 1.0, out=pts)
    return pts[rng.permutation(spec.n)]


def labeled_mixture(
    spec: MixtureSpec, rng: np.random.Generator, overlap: float = 0.5
) -> tuple[np.ndarray, np.ndarray]:
    """Two-class mixture for SVM training: ``(points, labels in {-1, +1})``.

    Each class gets half the clusters; ``overlap`` shifts the negative
    class's centers toward the positive class's so the classes interleave
    and SVM training produces a meaningful margin (support vectors near the
    boundary, as the paper observes for its Type III datasets).
    """
    half = max(spec.clusters // 2, 1)
    pos_centers = rng.uniform(0.15, 0.85, size=(half, spec.d))
    neg_centers = rng.uniform(0.15, 0.85, size=(half, spec.d))
    neg_centers = (1.0 - overlap) * neg_centers + overlap * (
        pos_centers[rng.integers(0, half, half)]
        + 0.12 * rng.standard_normal((half, spec.d))
    )
    paired = MixtureSpec(
        n=spec.n, d=spec.d, clusters=2 * half,
        cluster_scale=spec.cluster_scale, scale_jitter=spec.scale_jitter,
    )
    scales = _anisotropic_scales(paired, rng)
    centers = np.vstack([pos_centers, neg_centers])

    which = rng.integers(0, 2 * half, size=spec.n)
    pts = centers[which] + scales[which] * rng.standard_normal((spec.n, spec.d))
    np.clip(pts, 0.0, 1.0, out=pts)
    labels = np.where(which < half, 1.0, -1.0)
    order = rng.permutation(spec.n)
    return pts[order], labels[order]


def grid_queries(lo, hi, per_dim: int, dims: int = 2) -> np.ndarray:
    """Regular evaluation grid (used by the KDE density-surface example)."""
    axes = [np.linspace(lo, hi, per_dim) for _ in range(dims)]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=1)
