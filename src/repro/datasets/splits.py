"""Train / query split helpers for benchmark workloads."""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = ["train_test_split"]


def train_test_split(points, labels=None, test_fraction: float = 0.2, rng=None):
    """Shuffle and split into train/test partitions.

    Returns ``(train_pts, test_pts)`` or, with labels,
    ``(train_pts, train_labels, test_pts, test_labels)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise InvalidParameterError(
            f"test_fraction must be in (0, 1); got {test_fraction}"
        )
    rng = np.random.default_rng(rng)
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    order = rng.permutation(n)
    n_test = max(1, int(round(test_fraction * n)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    if labels is None:
        return points[train_idx], points[test_idx]
    labels = np.asarray(labels)
    return points[train_idx], labels[train_idx], points[test_idx], labels[test_idx]
