"""Synthetic dataset registry mirroring the paper's Table VI, plus PCA."""

from repro.datasets.drift import DriftStream
from repro.datasets.pca import PCA
from repro.datasets.registry import (
    DATASET_SPECS,
    Dataset,
    DatasetSpec,
    dataset_names,
    load_dataset,
)
from repro.datasets.splits import train_test_split
from repro.datasets.synthetic import (
    MixtureSpec,
    gaussian_mixture,
    grid_queries,
    labeled_mixture,
)

__all__ = [
    "PCA",
    "DriftStream",
    "DATASET_SPECS",
    "Dataset",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "train_test_split",
    "MixtureSpec",
    "gaussian_mixture",
    "labeled_mixture",
    "grid_queries",
]
