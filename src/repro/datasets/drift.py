"""Streaming dataset generator with concept drift.

Supports the online-learning scenario the paper's in-situ section
motivates: batches of points arrive over time, and the underlying mixture
slowly drifts (cluster centers random-walk), so early and late batches
differ in distribution.  Used by the streaming benchmark and example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = ["DriftStream"]


@dataclass
class DriftStream:
    """Iterator over drifting point batches.

    Parameters
    ----------
    d : int
        Dimensionality.
    batch_size : int
        Points per batch.
    clusters : int
    drift : float
        Per-batch standard deviation of the cluster-center random walk.
    cluster_scale : float
        Within-cluster spread.
    seed : int
    """

    d: int
    batch_size: int = 500
    clusters: int = 6
    drift: float = 0.02
    cluster_scale: float = 0.05
    seed: int = 0

    def __post_init__(self):
        if self.d < 1 or self.batch_size < 1 or self.clusters < 1:
            raise InvalidParameterError(f"invalid stream spec {self}")
        if self.drift < 0:
            raise InvalidParameterError("drift must be >= 0")
        self._rng = np.random.default_rng(self.seed)
        self._centers = self._rng.uniform(0.2, 0.8, size=(self.clusters, self.d))

    def next_batch(self) -> np.ndarray:
        """Draw one batch, then advance the drift."""
        which = self._rng.integers(0, self.clusters, self.batch_size)
        pts = self._centers[which] + self.cluster_scale * self._rng.standard_normal(
            (self.batch_size, self.d)
        )
        np.clip(pts, 0.0, 1.0, out=pts)
        self._centers += self.drift * self._rng.standard_normal(
            self._centers.shape
        )
        np.clip(self._centers, 0.05, 0.95, out=self._centers)
        return pts

    def batches(self, count: int):
        """Yield ``count`` successive batches."""
        for _ in range(count):
            yield self.next_batch()
