"""Principal component analysis (dimensionality-reduction substrate).

The paper's Figure 12 varies the dimensionality of the mnist dataset via
PCA before running type I-tau queries.  This is a from-scratch PCA over
numpy's SVD — no external ML library.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError, NotFittedError, as_matrix

__all__ = ["PCA"]


class PCA:
    """Linear PCA fitted by singular value decomposition.

    Parameters
    ----------
    n_components : int
        Target dimensionality.
    """

    def __init__(self, n_components: int):
        if n_components < 1:
            raise InvalidParameterError(
                f"n_components must be >= 1; got {n_components}"
            )
        self.n_components = int(n_components)
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None

    def fit(self, points) -> "PCA":
        """Fit principal axes on ``points`` (rows are observations)."""
        points = as_matrix(points)
        n, d = points.shape
        if self.n_components > d:
            raise InvalidParameterError(
                f"n_components={self.n_components} exceeds data dimension {d}"
            )
        self.mean_ = points.mean(axis=0)
        centered = points - self.mean_
        # full_matrices=False keeps Vt at (min(n,d), d)
        _, s, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[: self.n_components]
        denom = max(n - 1, 1)
        self.explained_variance_ = (s[: self.n_components] ** 2) / denom
        return self

    def transform(self, points) -> np.ndarray:
        """Project ``points`` onto the fitted principal axes."""
        if self.components_ is None:
            raise NotFittedError("PCA.transform called before fit")
        points = as_matrix(points)
        return (points - self.mean_) @ self.components_.T

    def fit_transform(self, points) -> np.ndarray:
        """Fit and project in one call."""
        return self.fit(points).transform(points)

    def inverse_transform(self, projected) -> np.ndarray:
        """Map projected coordinates back to the original space."""
        if self.components_ is None:
            raise NotFittedError("PCA.inverse_transform called before fit")
        projected = np.asarray(projected, dtype=np.float64)
        return projected @ self.components_ + self.mean_
