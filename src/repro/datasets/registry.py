"""Named dataset registry mirroring the paper's Table VI.

Each entry reproduces a real dataset's *shape*: dimensionality, relative
cardinality, weighting type, and application model.  Cardinalities are the
paper's scaled by roughly 1/20-1/30 so the pure-Python evaluator finishes;
``load_dataset(name, size=...)`` lets benchmarks rescale further.

=============  =======  ====  =====  ==========================
name           n (ours)  d    type   application model
=============  =======  ====  =====  ==========================
mnist            6000    784   I     kernel density
miniboone       12000     50   I     kernel density
home            60000     10   I     kernel density
susy           150000     18   I     kernel density
nsl-kdd          8000     41   II    1-class SVM
kdd99           40000     41   II    1-class SVM
covtype         30000     54   II    1-class SVM
ijcnn1          10000     22   III   2-class SVM
a9a              8000    123   III   2-class SVM
covtype-b       30000     54   III   2-class SVM
=============  =======  ====  =====  ==========================
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.datasets.synthetic import MixtureSpec, gaussian_mixture, labeled_mixture

__all__ = ["DatasetSpec", "Dataset", "DATASET_SPECS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: generation recipe for one named dataset."""

    name: str
    n: int
    d: int
    model: str  # "kde" | "ocsvm" | "svc"
    weighting: str  # "I" | "II" | "III"
    clusters: int = 12
    cluster_scale: float = 0.06
    overlap: float = 0.5  # only for labelled (svc) datasets
    paper_n: int = 0  # the raw cardinality reported in Table VI


@dataclass
class Dataset:
    """A materialised dataset: points in ``[0, 1]^d`` plus optional labels."""

    name: str
    points: np.ndarray
    model: str
    weighting: str
    labels: np.ndarray | None = None
    spec: DatasetSpec = field(default=None, repr=False)  # type: ignore[assignment]

    @property
    def n(self) -> int:
        return self.points.shape[0]

    @property
    def d(self) -> int:
        return self.points.shape[1]

    def sample_queries(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Query workload: points sampled from the dataset (paper Section V-A)."""
        idx = rng.choice(self.n, size=min(count, self.n), replace=False)
        return self.points[idx]


DATASET_SPECS: dict[str, DatasetSpec] = {
    s.name: s
    for s in [
        DatasetSpec("mnist", 6000, 784, "kde", "I", clusters=10,
                    cluster_scale=0.035, paper_n=60000),
        DatasetSpec("miniboone", 12000, 50, "kde", "I", clusters=8,
                    cluster_scale=0.05, paper_n=119596),
        DatasetSpec("home", 60000, 10, "kde", "I", clusters=16,
                    cluster_scale=0.05, paper_n=918991),
        DatasetSpec("susy", 150000, 18, "kde", "I", clusters=14,
                    cluster_scale=0.07, paper_n=4990000),
        DatasetSpec("nsl-kdd", 8000, 41, "ocsvm", "II", clusters=10,
                    cluster_scale=0.04, paper_n=67343),
        DatasetSpec("kdd99", 40000, 41, "ocsvm", "II", clusters=10,
                    cluster_scale=0.04, paper_n=972780),
        DatasetSpec("covtype", 30000, 54, "ocsvm", "II", clusters=12,
                    cluster_scale=0.05, paper_n=581012),
        DatasetSpec("ijcnn1", 10000, 22, "svc", "III", clusters=12,
                    cluster_scale=0.05, overlap=0.55, paper_n=49990),
        DatasetSpec("a9a", 8000, 123, "svc", "III", clusters=10,
                    cluster_scale=0.04, overlap=0.6, paper_n=32561),
        DatasetSpec("covtype-b", 30000, 54, "svc", "III", clusters=12,
                    cluster_scale=0.05, overlap=0.6, paper_n=581012),
    ]
}


def dataset_names(weighting: str | None = None) -> list[str]:
    """Registered dataset names, optionally filtered by weighting type."""
    return [
        name
        for name, spec in DATASET_SPECS.items()
        if weighting is None or spec.weighting == weighting
    ]


def load_dataset(name: str, size: int | None = None, seed: int = 0) -> Dataset:
    """Materialise a registered dataset deterministically.

    Parameters
    ----------
    name : str
        Registry key (see :data:`DATASET_SPECS`).
    size : int, optional
        Override the default cardinality (benchmarks use this for size
        sweeps and quick runs).
    seed : int
        Seed for the generator; the same (name, size, seed) always yields
        the same data.
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}"
        ) from None
    n = int(size) if size is not None else spec.n
    if n < 1:
        raise InvalidParameterError(f"size must be >= 1; got {n}")
    # crc32 is stable across processes (str hash() is randomised per run)
    rng = np.random.default_rng(
        np.random.SeedSequence([zlib.crc32(name.encode()) & 0xFFFF, seed])
    )
    mix = MixtureSpec(
        n=n, d=spec.d, clusters=spec.clusters, cluster_scale=spec.cluster_scale
    )
    if spec.model == "svc":
        pts, labels = labeled_mixture(mix, rng, overlap=spec.overlap)
        return Dataset(name, pts, spec.model, spec.weighting, labels, spec)
    pts = gaussian_mixture(mix, rng)
    return Dataset(name, pts, spec.model, spec.weighting, None, spec)
