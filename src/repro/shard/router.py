"""Scatter-gather shard router: global certified answers over K shards.

The router owns no points.  It holds K shard workers — each a disjoint
partition of the dataset behind the small shard transport surface (see
``worker.py``) — and turns per-shard certified intervals into global
ones by summing them in fixed shard order (``merge.py``).  Batch entry
points mirror the aggregator's (``tkaq_many_results`` /
``ekaq_many_results`` / ``refine_many_results`` / ``exact_many``) so the
serving layer can point a micro-batcher at a router exactly as it points
one at a local aggregator.

**Iterative cross-shard refinement.**  Per-shard certificates at the
client tolerance usually suffice in one round: if every shard certifies
``ub_s - lb_s <= eps * lb_s`` then the sums obey the global ``(1 +-
eps)`` contract (the slack is additive).  TKAQ, and eKAQ batches where
some shard exhausts with a non-positive lower bound, need iteration: the
router re-scatters the still-undecided queries with an escalating
per-shard refinement budget (iterative deepening, ``initial_rounds`` ×
``round_growth``) until the summed lower bound clears ``tau``, the
summed upper bound cannot, or every shard is refined to exhaustion —
where per-shard intervals collapse to points and the decision is forced.
Re-answers are *intersected* into the stored per-shard intervals, so a
cheap early certificate is never loosened by a later restart.

**Failure semantics** — nothing is ever silently dropped:

* A shard that misses its sub-deadline, dies mid-batch, or returns a
  response that fails validation is *missing* for that gather.
* Missing shard(s) + partial results enabled → the surviving per-shard
  intervals are summed with the missing shard's stored interval — its
  a-priori worst-case mass if it never answered this batch — and the
  batch finalises immediately with ``partial=True``.  Still a sound
  bracket, just wider.
* Partial disabled, every shard missing, or the missing shard's mass
  interval is unbounded (dot-product kernels, remote shards without a
  declared mass) → typed :class:`ShardUnavailableError`; the serving
  layer maps it to an ``internal`` error response and stays up.
* Dead workers are respawned lazily before the *next* batch
  (``_ensure_live``), so one crash costs one widened batch, not the
  server.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.errors import (
    DataShapeError,
    InvalidParameterError,
    ShardUnavailableError,
    as_matrix,
    as_query_param,
    check_positive,
)
from repro.core.results import BatchQueryStats
from repro.index import build_index
from repro.obs import runtime as obs
from repro.obs.trace import QueryTrace
from repro.shard.merge import (
    ShardEKAQBatchResult,
    ShardTKAQBatchResult,
    intersect_rows,
    merged_bounds,
    validate_payload,
)
from repro.shard.partition import partition_indices
from repro.shard.worker import LocalShard, ProcessShard

__all__ = ["ShardConfig", "ShardRouter", "build_router"]


@dataclass
class ShardConfig:
    """Routing knobs: sub-deadlines and the refinement escalation ladder."""

    #: per-gather shard budget (seconds); a shard silent past this is
    #: missing for the batch (the partial-result rung, or a typed error)
    sub_deadline_s: float = 5.0
    #: round-0 per-shard certificate tolerance for TKAQ probes
    tkaq_probe_eps: float = 0.05
    #: per-shard refinement rounds granted in the first escalation
    initial_rounds: float = 32.0
    #: budget multiplier between escalations (iterative deepening)
    round_growth: float = 4.0
    #: False turns every missing-shard event into ShardUnavailableError
    allow_partial: bool = True

    def __post_init__(self):
        check_positive(self.sub_deadline_s, "sub_deadline_s")
        check_positive(self.tkaq_probe_eps, "tkaq_probe_eps")
        check_positive(self.initial_rounds, "initial_rounds")
        if self.round_growth <= 1.0:
            raise InvalidParameterError(
                f"round_growth must be > 1; got {self.round_growth}")


class ShardRouter:
    """Scatter micro-batches over K shards, merge certified answers."""

    def __init__(self, shards, config: ShardConfig | None = None):
        if not shards:
            raise InvalidParameterError("at least one shard is required")
        dims = {int(s.d) for s in shards}
        if len(dims) != 1:
            raise InvalidParameterError(
                f"shards disagree on dimensionality: {sorted(dims)}")
        self.shards = list(shards)
        self.config = config or ShardConfig()
        self.allow_partial = self.config.allow_partial
        self.n = int(sum(s.n for s in self.shards))
        self.d = dims.pop()
        first = self.shards[0]
        kernel = getattr(first, "kernel", None)
        self.kernel_name = type(kernel).__name__ if kernel is not None \
            else "remote"
        scheme = getattr(first, "scheme", None)
        self.scheme_name = scheme.name if scheme is not None else "remote"
        self._closed = False
        reg = obs.registry()
        self._m_scatter = reg.counter("shard.scatter_total")
        self._m_missing = reg.counter("shard.missing_total")
        self._m_partial = reg.counter("shard.partial_total")
        self._m_respawn = reg.counter("shard.respawn_total")
        self._g_live = reg.gauge("shard.live")
        self._g_live.set(len(self.shards))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def live_shards(self) -> int:
        return sum(1 for s in self.shards if s.alive())

    # ------------------------------------------------------------------
    # batch entry points (aggregator-shaped)
    # ------------------------------------------------------------------

    def tkaq_many_results(self, queries, tau) -> ShardTKAQBatchResult:
        """Batch threshold queries ``F_P(q_i) > tau_i`` over all shards."""
        Q = self._check_queries(queries)
        tau_p = as_query_param(tau, Q.shape[0], "tau")
        lower, upper, stats, partial, wall = self._iterate(Q, tau_p, "tkaq")
        tau_vec = np.broadcast_to(np.asarray(tau_p), (Q.shape[0],))
        self._trace("tkaq", Q.shape[0], stats, wall, partial)
        return ShardTKAQBatchResult(
            answers=lower > tau_vec, lower=lower, upper=upper, tau=tau_p,
            stats=stats, partial=partial)

    def ekaq_many_results(self, queries, eps) -> ShardEKAQBatchResult:
        """Batch ``(1 +- eps)`` estimates of ``F_P(q_i)`` over all shards."""
        Q = self._check_queries(queries)
        eps_p = as_query_param(eps, Q.shape[0], "eps", minimum=0.0)
        lower, upper, stats, partial, wall = self._iterate(Q, eps_p, "ekaq")
        self._trace("ekaq", Q.shape[0], stats, wall, partial)
        return ShardEKAQBatchResult(
            estimates=0.5 * (lower + upper), lower=lower, upper=upper,
            eps=self._achieved_eps(lower, upper), stats=stats,
            partial=partial)

    def refine_many_results(self, queries, rounds) -> ShardEKAQBatchResult:
        """One fixed-budget refinement pass per shard, summed.

        Single scatter (no iteration): each shard runs ``rounds`` shared
        refinement rounds and the certified intervals are summed.  This
        is the serve-layer ``refine`` op and the primitive the soundness
        property tests exercise directly.
        """
        Q = self._check_queries(queries)
        budget = as_query_param(rounds, Q.shape[0], "rounds", minimum=0.0)
        nq = Q.shape[0]
        t0 = time.perf_counter()
        self._ensure_live()
        lb_sh, ub_sh = self._mass_matrices(nq)
        stats = BatchQueryStats()
        responses, missing = self._scatter("refine", Q, budget)
        if not responses:
            raise ShardUnavailableError(
                f"no shard answered within {self.config.sub_deadline_s}s "
                f"(0/{self.n_shards} responses)")
        for si, payload in responses.items():
            lb_sh[si], ub_sh[si] = intersect_rows(
                lb_sh[si], ub_sh[si], payload["lower"], payload["upper"])
            if payload.get("stats") is not None:
                stats.merge_batch(payload["stats"])
        partial = np.zeros(nq, dtype=bool)
        if missing:
            self._require_partial_allowed(missing)
            self._require_bounded(lb_sh, ub_sh, missing)
            partial[:] = True
            self._m_partial.inc(nq)
        lower, upper = merged_bounds(lb_sh, ub_sh)
        stats.n_queries = nq
        wall = time.perf_counter() - t0
        self._trace("refine", nq, stats, wall, partial)
        return ShardEKAQBatchResult(
            estimates=0.5 * (lower + upper), lower=lower, upper=upper,
            eps=self._achieved_eps(lower, upper), stats=stats,
            partial=partial)

    def exact_many(self, queries) -> np.ndarray:
        """Exact ``F_P(q_i)``: every shard must answer (no partial tier)."""
        Q = self._check_queries(queries)
        self._ensure_live()
        responses, missing = self._scatter("exact", Q, None)
        if missing:
            raise ShardUnavailableError(
                f"exact evaluation needs every shard; shard(s) "
                f"{sorted(missing)} did not answer within "
                f"{self.config.sub_deadline_s}s")
        total = np.zeros(Q.shape[0], dtype=np.float64)
        for si in range(self.n_shards):  # fixed order: deterministic sums
            total += responses[si]["estimate"]
        return total

    def close(self) -> None:
        """Shut down every shard worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for s in self.shards:
            s.close()
        self._g_live.set(0)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    # scatter-gather core
    # ------------------------------------------------------------------

    def _iterate(self, Q, param, kind: str):
        """Escalating scatter-gather until every query decides.

        Round 0 scatters a per-shard eKAQ certificate request (client
        ``eps`` for eKAQ; ``tkaq_probe_eps`` for TKAQ — cheap enough to
        be speculative, tight enough to decide most thresholds).  Each
        later round re-scatters only the undecided queries as a budgeted
        ``refine`` with a ×``round_growth`` deeper budget, capped at the
        largest shard's node count — at that cap every shard refines to
        exhaustion, per-shard intervals collapse, and the merged decision
        is forced.  Returns ``(lower, upper, stats, partial, wall)``.
        """
        t0 = time.perf_counter()
        nq = Q.shape[0]
        param_vec = np.broadcast_to(np.asarray(param, dtype=np.float64),
                                    (nq,))
        self._ensure_live()
        lb_sh, ub_sh = self._mass_matrices(nq)
        stats = BatchQueryStats()
        partial = np.zeros(nq, dtype=bool)
        active = np.arange(nq)
        exhaust_at = float(max(
            (s.n_nodes if s.n_nodes else 2 * s.n) for s in self.shards))
        budget = float(self.config.initial_rounds)
        round_idx = 0
        while active.size:
            Qa = Q[active] if active.size < nq else Q
            if round_idx == 0:
                op = "ekaq"
                arg = (float(self.config.tkaq_probe_eps) if kind == "tkaq"
                       else np.ascontiguousarray(param_vec[active]))
                exhausted = False
            else:
                op = "refine"
                arg = min(budget, exhaust_at)
                exhausted = budget >= exhaust_at
            responses, missing = self._scatter(op, Qa, arg)
            if not responses:
                raise ShardUnavailableError(
                    f"no shard answered within {self.config.sub_deadline_s}s"
                    f" (0/{self.n_shards} responses, round {round_idx})")
            for si, payload in responses.items():
                lb_sh[si, active], ub_sh[si, active] = intersect_rows(
                    lb_sh[si, active], ub_sh[si, active],
                    payload["lower"], payload["upper"])
                if payload.get("stats") is not None:
                    stats.merge_batch(payload["stats"])
            if missing:
                # Partial-result rung: answer now from what we hold — the
                # missing shard contributes its stored interval (worst-case
                # mass if it never answered this batch).
                self._require_partial_allowed(missing)
                self._require_bounded(lb_sh, ub_sh, missing)
                partial[active] = True
                self._m_partial.inc(active.size)
                break
            lb_a = lb_sh[:, active].sum(axis=0)
            ub_a = ub_sh[:, active].sum(axis=0)
            if kind == "tkaq":
                tau_a = param_vec[active]
                done = (lb_a > tau_a) | (ub_a <= tau_a)
            else:
                done = ub_a <= (1.0 + param_vec[active]) * lb_a
            if exhausted:
                done = np.ones_like(done)
            active = active[~done]
            if round_idx > 0:
                budget *= self.config.round_growth
            round_idx += 1
        lower, upper = merged_bounds(lb_sh, ub_sh)
        stats.n_queries = nq
        return lower, upper, stats, partial, time.perf_counter() - t0

    def _scatter(self, op: str, Q, arg):
        """One fan-out: send to every shard, gather within the sub-deadline.

        Every shard is sent the block first (the scatter), then gathered
        against one shared absolute deadline, so a slow shard's wait
        overlaps its siblings' work.  Responses failing validation are
        counted missing — corrupted data never reaches the merge.
        Returns ``(responses: {shard_idx: payload}, missing: [idx])``.
        """
        nq = len(Q)
        seqs = [s.send(op, Q, arg) for s in self.shards]
        self._m_scatter.inc(len(self.shards))
        deadline = time.monotonic() + self.config.sub_deadline_s
        responses, missing = {}, []
        for si, (shard, seq) in enumerate(zip(self.shards, seqs)):
            payload = shard.collect(seq, deadline)
            if validate_payload(payload, nq):
                responses[si] = payload
            else:
                missing.append(si)
        if missing:
            self._m_missing.inc(len(missing))
        self._g_live.set(self.live_shards)
        return responses, missing

    def _ensure_live(self) -> None:
        """Respawn dead workers before a batch (lazy crash recovery)."""
        if self._closed:
            raise ShardUnavailableError("router has been closed")
        for s in self.shards:
            if not s.alive():
                s.start()
                self._m_respawn.inc()
        self._g_live.set(self.live_shards)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _check_queries(self, queries) -> np.ndarray:
        Q = as_matrix(queries, "queries")
        if Q.shape[1] != self.d:
            raise DataShapeError(
                f"queries have dimension {Q.shape[1]}, expected {self.d}")
        return Q

    def _mass_matrices(self, nq: int):
        """(K, nq) interval state seeded with each shard's a-priori mass."""
        k = self.n_shards
        lb_sh = np.empty((k, nq), dtype=np.float64)
        ub_sh = np.empty((k, nq), dtype=np.float64)
        for si, s in enumerate(self.shards):
            lb_sh[si] = s.mass_interval[0]
            ub_sh[si] = s.mass_interval[1]
        return lb_sh, ub_sh

    def _require_partial_allowed(self, missing) -> None:
        if not self.allow_partial:
            raise ShardUnavailableError(
                f"shard(s) {sorted(missing)} did not answer within "
                f"{self.config.sub_deadline_s}s and partial results are "
                "disabled")

    def _require_bounded(self, lb_sh, ub_sh, missing) -> None:
        if not (np.isfinite(lb_sh).all() and np.isfinite(ub_sh).all()):
            raise ShardUnavailableError(
                f"shard(s) {sorted(missing)} did not answer and their "
                "worst-case mass is unbounded for this kernel; no sound "
                "partial result exists")

    @staticmethod
    def _achieved_eps(lower, upper) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(lower > 0.0,
                            (upper - lower) / (2.0 * lower), np.inf)

    def _trace(self, kind: str, nq: int, stats, wall: float,
               partial) -> None:
        """Umbrella per-batch trace, mirroring the serve batcher's.

        ``pruned_points`` is the signed complement of the evaluated total
        so the conservation law (evaluated + pruned == n_queries * n)
        holds for shard traces exactly as for engine and serve traces —
        escalation rounds that re-evaluate leaves make it smaller, never
        break the identity.
        """
        if not obs.is_enabled():
            return
        trace = QueryTrace(kind=kind, backend="shard",
                           scheme=self.scheme_name,
                           n_points=self.n, n_queries=nq)
        trace.wall_time = wall
        trace.record_round(
            frontier=0, expanded=stats.nodes_expanded,
            leaves=stats.leaves_evaluated,
            points=stats.points_evaluated,
            active=nq, retired=nq,
            pruned_points=nq * self.n - stats.points_evaluated,
            bound_evals=stats.bound_evaluations)
        trace.extra["n_shards"] = self.n_shards
        trace.extra["live_shards"] = self.live_shards
        trace.extra["partial_queries"] = int(np.count_nonzero(partial))
        obs.ingest_trace(trace)


def build_router(points, weights, kernel, k: int, scheme="karl",
                 mode: str = "process", partition: str = "stride",
                 index: str = "kd", leaf_capacity: int = 80,
                 max_depth=None,
                 config: ShardConfig | None = None) -> ShardRouter:
    """Partition a dataset into ``k`` shards and stand up a router.

    ``mode="process"`` spawns one shared-memory worker process per shard
    (the performance topology); ``mode="inprocess"`` builds synchronous
    :class:`LocalShard` workers — deterministic and fork-free, used by
    the golden contract and CI.  Remote topologies are assembled by hand
    from :class:`~repro.shard.worker.RemoteShard` instances.
    """
    if mode not in ("process", "inprocess"):
        raise InvalidParameterError(
            f"shard mode must be 'process' or 'inprocess'; got {mode!r}")
    pts = as_matrix(points, "points")
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (pts.shape[0],):
        raise DataShapeError(
            f"weights must have shape ({pts.shape[0]},); got {w.shape}")
    parts = partition_indices(pts.shape[0], k, mode=partition)
    shards = []
    try:
        for sid, idx in enumerate(parts):
            tree = build_index(index, pts[idx], w[idx],
                               leaf_capacity=leaf_capacity)
            cls = ProcessShard if mode == "process" else LocalShard
            shards.append(cls(sid, tree, kernel, scheme=scheme,
                              max_depth=max_depth))
    except BaseException:
        for s in shards:
            s.close()
        raise
    return ShardRouter(shards, config=config)
