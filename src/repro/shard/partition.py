"""Disjoint dataset partitions and a-priori per-shard mass intervals.

KARL's certified bounds are *additive* across disjoint partitions of the
point set: if ``P = P_1 ∪ ... ∪ P_K`` (disjoint) then

    F_P(q) = sum_s F_{P_s}(q)

and summing per-shard certified ``[lb_s, ub_s]`` intervals yields a
sound global interval.  This module owns the two pure pieces of that
story: how the point set splits into shards, and the worst-case mass
interval a shard's contribution can occupy *for any query* — the
a-priori interval the router substitutes when a shard is missing past
its sub-deadline (the partial-result degradation rung).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = ["PARTITION_MODES", "partition_indices", "worst_case_mass"]

#: supported assignment strategies
PARTITION_MODES = ("stride", "block")


def partition_indices(n: int, k: int, mode: str = "stride") -> list:
    """Split ``range(n)`` into ``k`` disjoint, covering index arrays.

    ``"stride"`` (default) deals points round-robin (``idx % k``) — on
    clustered data every shard sees a thinned copy of the whole
    distribution, so per-shard refinement work stays balanced.
    ``"block"`` assigns contiguous runs (``np.array_split``) — cheaper
    locality story when the input order is already meaningful.  Every
    shard is non-empty; ``k`` may not exceed ``n``.
    """
    n = int(n)
    k = int(k)
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1; got {n}")
    if not 1 <= k <= n:
        raise InvalidParameterError(
            f"shard count must be in [1, {n}]; got {k}")
    if mode not in PARTITION_MODES:
        raise InvalidParameterError(
            f"partition mode must be one of {PARTITION_MODES}; got {mode!r}")
    all_idx = np.arange(n, dtype=np.int64)
    if mode == "stride":
        return [all_idx[s::k] for s in range(k)]
    return [np.ascontiguousarray(part) for part in np.array_split(all_idx, k)]


def worst_case_mass(weights, kernel) -> tuple:
    """A-priori ``(lo, hi)`` bracketing one shard's contribution, any query.

    For distance kernels with convex non-increasing profiles every kernel
    value lies in ``[0, K_max]`` with ``K_max = profile.value(0)`` (the
    same a-priori bound the coreset certificates use), so a shard with
    weights ``w`` contributes at least ``-K_max * sum(max(-w, 0))`` and
    at most ``K_max * sum(max(w, 0))`` no matter where the query lands.
    Dot-product kernels have no such bound: the interval is
    ``(-inf, inf)``, which the router treats as "no sound partial result
    exists for this shard" (:class:`~repro.core.errors.ShardUnavailableError`).
    """
    if kernel.argument != "dist_sq" or not kernel.profile.convex_decreasing:
        return (-np.inf, np.inf)
    value_max = float(kernel.profile.value(0.0))
    w = np.asarray(weights, dtype=np.float64)
    hi = value_max * float(np.clip(w, 0.0, None).sum())
    lo = -value_max * float(np.clip(-w, 0.0, None).sum())
    return (lo, hi)
