"""Sharded scatter-gather evaluation: partition, route, merge.

Splits the point set across K shard workers (in-process, one process
each over shared memory, or remote ``repro.serve`` instances), scatters
each micro-batch, and merges per-shard certified intervals into global
answers — including iterative cross-shard refinement for TKAQ and a
sound partial-result tier when a shard dies or misses its sub-deadline.
See ``docs/sharding.md`` for topology, merge rules, and the failure
contract.
"""

from repro.shard.merge import (
    ShardEKAQBatchResult,
    ShardTKAQBatchResult,
    intersect_rows,
    merged_bounds,
    validate_payload,
)
from repro.shard.partition import (
    PARTITION_MODES,
    partition_indices,
    worst_case_mass,
)
from repro.shard.router import ShardConfig, ShardRouter, build_router
from repro.shard.worker import LocalShard, ProcessShard, RemoteShard

__all__ = [
    "ShardRouter",
    "ShardConfig",
    "build_router",
    "ProcessShard",
    "LocalShard",
    "RemoteShard",
    "ShardTKAQBatchResult",
    "ShardEKAQBatchResult",
    "PARTITION_MODES",
    "partition_indices",
    "worst_case_mass",
    "validate_payload",
    "intersect_rows",
    "merged_bounds",
]
