"""Shard workers: one index partition each, three transports.

A *shard* owns one disjoint partition of the point set and answers
scatter requests with certified ``[lower, upper]`` interval vectors (and
estimates) for a query block.  The router speaks one small duck-typed
surface — ``send(op, Q, arg) -> seq``, ``collect(seq, deadline) ->
payload | None``, ``alive()``, ``start()``, ``inject(**fault)``,
``close()`` — implemented three ways:

:class:`ProcessShard`
    The performance path: the shard's tree is exported once into named
    shared memory (:class:`~repro.parallel.shared.SharedIndex`) and a
    dedicated spawned process attaches it and evaluates.  One process
    per shard (not a pool) so a crashed or wedged shard never poisons
    its siblings, and the parent keeps the shared blocks alive so a dead
    worker respawns without re-exporting the dataset.
:class:`LocalShard`
    In-process and synchronous — deterministic by construction, so it
    backs the golden contract, the merge-soundness property tests, and
    the ``tests-shard`` CI job.  Evaluation happens at ``collect`` time,
    which is what lets the fault harness simulate a missing response
    without any process machinery.
:class:`RemoteShard`
    A ``repro.serve`` instance on another port/host speaking the
    existing NDJSON protocol (``ekaq`` / ``refine`` / ``exact`` ops) —
    the horizontal-scale-out topology.

Workers answer every request or die trying: a response either validates
(finite, ordered, right shape — checked by the router) or the shard is
counted *missing* for the batch.  Nothing is silently dropped.

Fault injection (the test harness's deterministic knobs) rides the same
pipe as work: a ``("fault", spec)`` control message arms the worker to
SIGKILL itself on the next evaluation request (mid-batch death), sleep
before answering, or return corrupted (non-finite) bounds.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time

import numpy as np

from repro.core.aggregator import KernelAggregator, resolve_scheme
from repro.parallel.shared import AttachedIndex, SharedIndex
from repro.shard.partition import worst_case_mass

__all__ = ["ProcessShard", "LocalShard", "RemoteShard", "shard_worker_main"]

#: default per-attempt pipe poll slice (collect loops on the deadline)
_FAULT_SPEC_KEYS = ("die_next", "delay_s", "delay_n", "corrupt_n")


def _shard_eval(agg: KernelAggregator, op: str, Q, arg) -> dict:
    """One scatter request against a shard-local aggregator.

    Returns ``lower``/``upper``/``estimate`` vectors (for ``exact`` all
    three collapse to the exact values) plus the evaluation's
    :class:`~repro.core.results.BatchQueryStats` so the router can keep
    the global work accounting (and the point-conservation law) honest.
    """
    if op == "exact":
        values = agg.exact_many(Q)
        return {"lower": values, "upper": values, "estimate": values,
                "stats": None}
    if op == "ekaq":
        res = agg.ekaq_many_results(Q, arg)
    elif op == "refine":
        res = agg.refine_many_results(Q, arg)
    else:
        raise ValueError(f"unknown shard op {op!r}")
    return {"lower": res.lower, "upper": res.upper,
            "estimate": res.estimates, "stats": res.stats}


def shard_worker_main(conn, handle, kernel, scheme_name, max_depth,
                      native_mode) -> None:
    """Entry point of one spawned shard worker process.

    Attaches the shared-memory tree, builds a shard-local aggregator,
    and answers ``(op, seq, Q, arg)`` requests over the pipe until
    ``("close",)`` or EOF.  Tracing is disabled (the parent records the
    umbrella trace); the parent's native mode is forwarded explicitly,
    same as the parallel pool workers.

    Fault state is armed by ``("fault", spec)`` control messages:
    ``die_next`` SIGKILLs the process on the next evaluation request
    (after consuming it — a deterministic mid-batch crash), ``delay_s``/
    ``delay_n`` sleep before the next ``delay_n`` answers, and
    ``corrupt_n`` replaces the next ``corrupt_n`` responses with
    non-finite garbage (which the router's validation must catch).
    """
    from repro import native
    from repro.obs import runtime as _obs

    _obs.disable()
    native.set_mode(native_mode)
    attached = AttachedIndex(handle)
    agg = KernelAggregator(attached.tree, kernel, scheme=scheme_name,
                           max_depth=max_depth)
    fault = {key: 0 for key in _FAULT_SPEC_KEYS}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg[0]
            if op == "close":
                break
            if op == "fault":
                fault.update(msg[1])
                continue
            seq = msg[1]
            if fault["die_next"]:
                os.kill(os.getpid(), signal.SIGKILL)
            if fault["delay_n"] > 0:
                fault["delay_n"] -= 1
                time.sleep(float(fault["delay_s"]))
            try:
                if fault["corrupt_n"] > 0:
                    fault["corrupt_n"] -= 1
                    bad = np.full(len(msg[2]), np.nan)
                    payload = {"seq": seq, "lower": bad, "upper": bad,
                               "estimate": bad, "stats": None}
                else:
                    payload = _shard_eval(agg, op, msg[2], msg[3])
                    payload["seq"] = seq
                payload["pid"] = os.getpid()
                conn.send(payload)
            except Exception as exc:  # noqa: BLE001 - report, don't wedge
                try:
                    conn.send({"seq": seq, "pid": os.getpid(),
                               "error": f"{type(exc).__name__}: {exc}"})
                except (BrokenPipeError, OSError):
                    break
    finally:
        attached.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class ProcessShard:
    """One shard worker in its own spawned process over shared memory.

    The parent owns the shared-memory export for the shard's tree; the
    worker attaches it zero-copy.  Because the blocks outlive the
    worker, :meth:`start` can respawn a dead worker without touching the
    dataset — the router does this lazily before each batch.
    """

    mode = "process"

    def __init__(self, shard_id: int, tree, kernel, scheme="karl",
                 max_depth=None, start_method: str = "spawn"):
        self.shard_id = int(shard_id)
        self.kernel = kernel
        self.scheme = resolve_scheme(scheme)
        self.n = int(tree.n)
        self.d = int(tree.d)
        self.n_nodes = int(tree.num_nodes)
        self.mass_interval = worst_case_mass(tree.weights, kernel)
        self.respawns = -1  # the initial start() brings this to 0
        self._max_depth = max_depth
        self._ctx = mp.get_context(start_method)
        self._shared = SharedIndex(tree)
        self._conn = None
        self._proc = None
        self._seq = 0
        self._broken = False  # pipe EOF/error seen: worker is gone
        self._closed = False
        self.start()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """(Re)spawn the worker over the existing shared blocks."""
        from repro import native

        if self._closed:
            raise RuntimeError("shard has been closed")
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self._proc = self._ctx.Process(
            target=shard_worker_main,
            args=(child_conn, self._shared.handle, self.kernel,
                  self.scheme.name, self._max_depth, native.get_mode()),
            daemon=True,
            name=f"repro-shard-{self.shard_id}",
        )
        self._proc.start()
        child_conn.close()
        self._conn = parent_conn
        self._broken = False
        self.respawns += 1

    def alive(self) -> bool:
        # _broken is authoritative: a pipe EOF during send/collect proves
        # the worker is gone even while is_alive() races process reaping.
        return (not self._closed and not self._broken
                and self._proc is not None and self._proc.is_alive())

    @property
    def pid(self):
        """Worker process id (for the fault harness's real SIGKILL)."""
        return self._proc.pid if self._proc is not None else None

    def close(self) -> None:
        """Stop the worker and unlink the shared blocks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._conn is not None:
            try:
                self._conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        if self._proc is not None:
            self._proc.join(timeout=5)
            if self._proc.is_alive():  # pragma: no cover - wedged worker
                self._proc.terminate()
                self._proc.join(timeout=5)
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        self._shared.close()

    # -- scatter/gather ------------------------------------------------

    def send(self, op: str, Q, arg=None):
        """Ship one request; returns its ``seq`` or ``None`` when dead."""
        self._seq += 1
        try:
            self._conn.send((op, self._seq, Q, arg))
        except (BrokenPipeError, OSError):
            self._broken = True
            return None
        return self._seq

    def collect(self, seq, deadline: float):
        """Block for the ``seq`` response until ``deadline`` (monotonic).

        Returns the payload dict, or ``None`` on timeout / worker death
        / a worker-side error report.  Stale responses (from a request
        that already timed out in an earlier batch) are discarded by the
        ``seq`` match, so a slow-but-alive worker resynchronises instead
        of poisoning later batches with old answers.
        """
        if seq is None:
            return None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                if not self._conn.poll(remaining):
                    return None
                payload = self._conn.recv()
            except (EOFError, OSError):
                self._broken = True
                return None
            if isinstance(payload, dict) and payload.get("seq") == seq:
                if "error" in payload:
                    return None
                return payload
            # stale answer from a timed-out earlier request: discard

    def inject(self, **fault) -> None:
        """Arm worker-side fault state (test harness hook)."""
        unknown = set(fault) - set(_FAULT_SPEC_KEYS)
        if unknown:
            raise ValueError(f"unknown fault keys {sorted(unknown)}")
        try:
            self._conn.send(("fault", fault))
        except (BrokenPipeError, OSError):
            pass


class LocalShard:
    """An in-process shard: synchronous, deterministic, fault-mockable.

    ``send`` only records the request; evaluation happens inside
    ``collect`` on the caller's thread.  ``inject(fail_n=k)`` makes the
    next ``k`` collects return ``None`` — the missing-shard path without
    processes, which is how the partial-result contract is unit-tested
    deterministically.
    """

    mode = "inprocess"

    def __init__(self, shard_id: int, tree, kernel, scheme="karl",
                 max_depth=None):
        self.shard_id = int(shard_id)
        self.kernel = kernel
        self.scheme = resolve_scheme(scheme)
        self.n = int(tree.n)
        self.d = int(tree.d)
        self.n_nodes = int(tree.num_nodes)
        self.mass_interval = worst_case_mass(tree.weights, kernel)
        self.respawns = 0
        self._agg = KernelAggregator(tree, kernel, scheme=self.scheme,
                                     max_depth=max_depth)
        self._pending: dict = {}
        self._seq = 0
        self._fail_next = 0

    def start(self) -> None:
        pass

    def alive(self) -> bool:
        return True

    @property
    def pid(self):
        return None

    def send(self, op: str, Q, arg=None):
        self._seq += 1
        self._pending[self._seq] = (op, Q, arg)
        return self._seq

    def collect(self, seq, deadline: float):
        if seq is None:
            return None
        op, Q, arg = self._pending.pop(seq)
        if self._fail_next > 0:
            self._fail_next -= 1
            return None
        payload = _shard_eval(self._agg, op, Q, arg)
        payload["seq"] = seq
        return payload

    def inject(self, fail_n: int = 0, **_ignored) -> None:
        """Make the next ``fail_n`` collects report the shard missing."""
        self._fail_next += int(fail_n)

    def close(self) -> None:
        self._agg.close()


class RemoteShard:
    """A shard served by a remote ``repro.serve`` instance (NDJSON).

    Scatters one protocol line per query (``ekaq``/``refine``/``exact``
    ops — the remote server's own micro-batcher coalesces them) and
    gathers the interval fields back.  No a-priori mass interval is
    known for a remote dataset unless the caller provides one, so a
    missing remote shard only supports partial results when
    ``mass_interval`` was passed.
    """

    mode = "remote"

    def __init__(self, shard_id: int, host: str, port: int,
                 timeout: float = 30.0, mass_interval=None):
        from repro.serve.client import ServeClient

        self.shard_id = int(shard_id)
        self.host = host
        self.port = int(port)
        self._client = ServeClient(host, port, timeout=timeout)
        info = self._client.check(self._client.health())
        self.n = int(info["n_points"])
        self.d = int(info["d"])
        self.n_nodes = None  # unknown; the router uses a safe 2n bound
        self.mass_interval = (
            tuple(mass_interval) if mass_interval is not None
            else (-np.inf, np.inf))
        self.respawns = 0
        self._seq = 0
        self._pending: dict = {}

    def start(self) -> None:
        pass

    def alive(self) -> bool:
        return True  # liveness is discovered at collect time

    @property
    def pid(self):
        return None

    def send(self, op: str, Q, arg=None):
        self._seq += 1
        arg_vec = None
        if arg is not None:
            arg_vec = np.broadcast_to(np.asarray(arg, dtype=np.float64),
                                      (len(Q),))
        ids = []
        try:
            for i, q in enumerate(np.asarray(Q, dtype=np.float64)):
                payload = {"op": op, "id": f"s{self._seq}.{i}",
                           "q": q.tolist()}
                if op == "ekaq":
                    payload["eps"] = float(arg_vec[i])
                elif op == "refine":
                    payload["rounds"] = float(arg_vec[i])
                self._client._send(payload)
                ids.append(payload["id"])
        except (OSError, ConnectionError):
            return None
        self._pending[self._seq] = ids
        return self._seq

    def collect(self, seq, deadline: float):
        if seq is None:
            return None
        ids = self._pending.pop(seq, None)
        if ids is None:
            return None
        lower, upper, estimate = [], [], []
        try:
            for rid in ids:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._client._sock.settimeout(remaining)
                resp = self._client._recv_for(rid)
                if not resp.get("ok"):
                    return None
                if "value" in resp:  # exact: the interval is a point
                    lower.append(resp["value"])
                    upper.append(resp["value"])
                    estimate.append(resp["value"])
                else:
                    lower.append(resp["lower"])
                    upper.append(resp["upper"])
                    estimate.append(resp.get("estimate", resp["lower"]))
        except (OSError, ConnectionError, ValueError):
            return None
        return {"seq": seq, "lower": np.asarray(lower, dtype=np.float64),
                "upper": np.asarray(upper, dtype=np.float64),
                "estimate": np.asarray(estimate, dtype=np.float64),
                "stats": None}

    def inject(self, **_fault) -> None:
        raise NotImplementedError(
            "fault injection targets local shard workers; stop the remote "
            "server instead")

    def close(self) -> None:
        self._client.close()
