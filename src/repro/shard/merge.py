"""Pure merge rules for cross-shard scatter-gather answers.

Everything here is a function of arrays — no processes, no pipes — so
the soundness properties the router depends on can be checked directly
by property-based tests:

* **Additivity**: for a disjoint partition, summing per-shard certified
  intervals in a fixed shard order yields a sound (and deterministic)
  global interval.
* **Intersection**: a shard re-answering the same queries in a later
  refinement round may return a *looser* certified interval than an
  earlier round (refinement restarts from the root); intersecting the
  old and new intervals keeps the per-shard state sound *and* monotone.
* **Validation**: a shard response is used only if it has the right
  shape, finite values, and ordered bounds — anything else is treated
  exactly like a missing shard, never silently merged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import EKAQBatchResult, TKAQBatchResult

__all__ = [
    "ShardTKAQBatchResult",
    "ShardEKAQBatchResult",
    "validate_payload",
    "intersect_rows",
    "merged_bounds",
]


@dataclass
class ShardTKAQBatchResult(TKAQBatchResult):
    """A TKAQ batch answered by the shard router.

    ``partial[i]`` is True when query ``i``'s interval includes a missing
    shard's a-priori worst-case mass instead of a live answer — still a
    sound bracket of ``F_P(q_i)``, but wider than a full-fleet answer,
    and the decision is only reported when that widened interval still
    clears (or cannot clear) ``tau``.
    """

    partial: "np.ndarray | None" = None  # (Q,) bool


@dataclass
class ShardEKAQBatchResult(EKAQBatchResult):
    """An eKAQ batch answered by the shard router.

    ``partial`` marks queries whose interval was widened by a missing
    shard's worst-case mass; ``eps`` holds the *achieved* relative
    half-width, which for partial answers may exceed the requested one.
    """

    partial: "np.ndarray | None" = None  # (Q,) bool


def validate_payload(payload, n_queries: int) -> bool:
    """True when a shard response is safe to merge.

    Checks shape ``(n_queries,)`` for the three vectors, finiteness, and
    ``lower <= upper``.  A corrupted worker (fault-injected or real)
    fails here and the shard is counted missing for the batch — the
    merge never ingests garbage.
    """
    if payload is None:
        return False
    try:
        lower = np.asarray(payload["lower"], dtype=np.float64)
        upper = np.asarray(payload["upper"], dtype=np.float64)
        estimate = np.asarray(payload["estimate"], dtype=np.float64)
    except (KeyError, TypeError, ValueError):
        return False
    if lower.shape != (n_queries,) or upper.shape != (n_queries,) \
            or estimate.shape != (n_queries,):
        return False
    if not (np.isfinite(lower).all() and np.isfinite(upper).all()
            and np.isfinite(estimate).all()):
        return False
    return bool((lower <= upper).all())


def intersect_rows(lb_row, ub_row, new_lower, new_upper) -> tuple:
    """Tighten one shard's per-query interval row with a fresh response.

    Both the stored row and the new response are sound brackets of the
    same per-shard sums, so their intersection is too; taking
    ``max``/``min`` makes per-shard state monotone across refinement
    rounds even though each round's certification restarts from the
    root.  Returns the tightened ``(lower, upper)`` pair.
    """
    return np.maximum(lb_row, new_lower), np.minimum(ub_row, new_upper)


def merged_bounds(lb_sh, ub_sh) -> tuple:
    """Sum per-shard interval matrices ``(K, Q)`` into global ``(Q,)`` bounds.

    Summation runs in fixed shard order (axis 0 of the stacked matrix),
    so merged values are deterministic for a given shard layout.
    """
    return lb_sh.sum(axis=0), ub_sh.sum(axis=0)
