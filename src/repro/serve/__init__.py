"""repro.serve — async query service with adaptive micro-batching.

Turns the batch evaluators into an online service: an asyncio TCP
server speaking newline-delimited JSON, coalescing concurrent TKAQ /
eKAQ / exact requests into ``*_many`` calls (heterogeneous tau/eps
batches merge freely), with admission control, per-request deadlines,
explicit load shedding, and graceful drain.  Run one with::

    python -m repro.serve --dataset home --index kd --port 0

and talk to it with :class:`~repro.serve.client.ServeClient`.
"""

from repro.serve.batcher import BatchConfig, MicroBatcher, PendingRequest
from repro.serve.client import ServeClient, ServeError
from repro.serve.hosting import ServerThread
from repro.serve.policy import RUNG_ORDER, AdmissionPolicy
from repro.serve.protocol import (
    ERROR_CODES,
    ProtocolError,
    Request,
    decode_request,
    encode,
    error_response,
    ok_response,
)
from repro.serve.server import KAQServer, ServeConfig

__all__ = [
    "KAQServer",
    "ServeConfig",
    "BatchConfig",
    "MicroBatcher",
    "PendingRequest",
    "AdmissionPolicy",
    "RUNG_ORDER",
    "ServeClient",
    "ServeError",
    "ServerThread",
    "Request",
    "ProtocolError",
    "ERROR_CODES",
    "decode_request",
    "encode",
    "ok_response",
    "error_response",
]
