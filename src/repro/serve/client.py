"""Blocking client for the query service.

A thin socket wrapper over the newline-JSON protocol: assign ids, send
lines, match responses back by id (the server answers out of order as
micro-batches complete).  ``request_many`` pipelines a whole list before
reading anything — that is how a single client generates the concurrency
the micro-batcher coalesces, and what the benchmark uses to measure
batched throughput.

Responses are returned as plain dicts (``ok``/``error`` checked by the
caller); :meth:`ServeClient.check` converts an error response into a
:class:`ServeError` for callers who prefer exceptions.
"""

from __future__ import annotations

import json
import socket

import numpy as np

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """An error response, raised on demand by :meth:`ServeClient.check`."""

    def __init__(self, response: dict):
        super().__init__(
            f"{response.get('error')}: {response.get('message')}")
        self.code = response.get("error")
        self.response = response


class ServeClient:
    """One TCP connection to a :class:`~repro.serve.server.KAQServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7207,
                 timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0
        self._unclaimed: dict = {}  # out-of-order responses by id

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _send(self, payload: dict) -> object:
        if payload.get("id") is None:
            payload["id"] = self._next_id
            self._next_id += 1
        self._sock.sendall(
            json.dumps(payload, separators=(",", ":")).encode() + b"\n")
        return payload["id"]

    def _recv_for(self, request_id) -> dict:
        while request_id not in self._unclaimed:
            line = self._rfile.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            resp = json.loads(line)
            self._unclaimed[resp.get("id")] = resp
        return self._unclaimed.pop(request_id)

    def request(self, payload: dict) -> dict:
        """Send one request dict and block for its response."""
        return self._recv_for(self._send(payload))

    def request_many(self, payloads: list[dict]) -> list[dict]:
        """Pipeline every request, then collect responses in input order.

        All lines are written before any response is read, so the whole
        list is concurrently pending on the server — one client is
        enough to fill micro-batches.
        """
        ids = [self._send(p) for p in payloads]
        return [self._recv_for(i) for i in ids]

    # ------------------------------------------------------------------
    # convenience ops
    # ------------------------------------------------------------------

    @staticmethod
    def _q(q) -> list:
        return np.asarray(q, dtype=np.float64).tolist()

    def tkaq(self, q, tau: float, deadline_ms: float | None = None) -> dict:
        """Threshold query: is ``F_P(q) > tau``?  Returns the response."""
        return self.request({"op": "tkaq", "q": self._q(q), "tau": tau,
                             "deadline_ms": deadline_ms})

    def ekaq(self, q, eps: float, deadline_ms: float | None = None) -> dict:
        """Relative-error estimate of ``F_P(q)``.  Returns the response."""
        return self.request({"op": "ekaq", "q": self._q(q), "eps": eps,
                             "deadline_ms": deadline_ms})

    def refine(self, q, rounds: float,
               deadline_ms: float | None = None) -> dict:
        """Certified ``[lower, upper]`` after a fixed refinement budget."""
        return self.request({"op": "refine", "q": self._q(q),
                             "rounds": rounds, "deadline_ms": deadline_ms})

    def exact(self, q, deadline_ms: float | None = None) -> dict:
        """The exact aggregate ``F_P(q)``.  Returns the response."""
        return self.request({"op": "exact", "q": self._q(q),
                             "deadline_ms": deadline_ms})

    def health(self) -> dict:
        """Liveness probe: status, dataset shape, kernel, scheme."""
        return self.request({"op": "health"})

    def stats(self) -> dict:
        """Server metrics snapshot (queue depth, windows, counters)."""
        return self.request({"op": "stats"})

    @staticmethod
    def check(response: dict) -> dict:
        """Return an ok response unchanged; raise ServeError otherwise."""
        if not response.get("ok"):
            raise ServeError(response)
        return response

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the connection (safe to call more than once)."""
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
