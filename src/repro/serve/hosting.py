"""Run a :class:`KAQServer` on a background thread, for blocking callers.

The server is a single-event-loop asyncio application; tests, benchmarks
and notebook users are blocking code.  :class:`ServerThread` bridges the
two: it owns a private event loop on a daemon thread, starts the server
there, exposes the bound port, and performs the graceful drain from
:meth:`shutdown` (or context-manager exit) via
``run_coroutine_threadsafe``.
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.server import KAQServer, ServeConfig

__all__ = ["ServerThread"]


class ServerThread:
    """A KAQServer hosted on its own event-loop thread."""

    def __init__(self, aggregator, config: ServeConfig | None = None,
                 *, router=None):
        self.server = KAQServer(aggregator, config, router=router)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-host", daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surfaced to start() below
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        self._loop.run_forever()

    def start(self) -> "ServerThread":
        """Start the thread; returns once the server is listening."""
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (stable once :meth:`start` returned)."""
        return self.server.port

    def shutdown(self, timeout: float = 60.0) -> None:
        """Drain the server gracefully and stop the hosting thread."""
        fut = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop)
        fut.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
