"""Wire protocol for the query service: newline-delimited JSON.

One request per line, one response per line; responses carry the
request's ``id`` and may arrive out of order (the server interleaves
micro-batches), so clients match on ``id``.  Five operations:

``tkaq``
    ``{"op": "tkaq", "id": 1, "q": [...], "tau": 0.5}`` — threshold
    query; answer is the truth value of ``F_P(q) > tau``.
``ekaq``
    ``{"op": "ekaq", "id": 2, "q": [...], "eps": 0.1}`` — relative-error
    estimate.  Under overload the server may serve a relaxed tolerance
    (response carries ``served_eps`` and ``degraded``).
``exact``
    ``{"op": "exact", "q": [...]}`` — the exact aggregate (no pruning).
``refine``
    ``{"op": "refine", "q": [...], "rounds": 32}`` — run a fixed budget
    of refinement rounds and return the certified ``[lower, upper]``
    interval as-is (``rounds=0`` is the root bound).  The raw primitive
    under iterative clients and cross-shard escalation.
``health`` / ``stats``
    Liveness probe / metrics snapshot; answered inline, never batched.

Sharded servers additionally mark responses answered without every
shard: ``partial=true`` means the interval includes a missing shard's
worst-case mass — still a sound bracket, but wider than a full-fleet
answer (see ``docs/sharding.md``).

Query operations accept an optional ``deadline_ms`` (a per-request
latency budget, measured from admission): requests whose deadline has
already passed when their micro-batch flushes are dropped *before*
evaluation with ``error="deadline_exceeded"``.

Successful query responses embed replay provenance — ``batch`` (server-
assigned micro-batch id), ``batch_index`` (the request's row inside that
batch), ``backend``, and the served parameter — enough to reconstruct
every served batch offline and reproduce each answer bit for bit.
Cache-served answers instead carry ``backend="cache"``, ``cached=true``
and *no* batch id (they never joined a batch; replay cross-checks their
interval against the exact aggregate).  Single-flight followers carry
``single_flight=true`` plus the leader's batch coordinates; rows that
were warm-started from an uncertified cache transfer carry ``warm=true``
with the ``warm_lower``/``warm_upper`` interval used.

Error responses are ``{"id": ..., "ok": false, "error": <code>,
"message": ...}`` with ``error`` one of :data:`ERROR_CODES`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

__all__ = [
    "ERROR_CODES",
    "BAD_REQUEST",
    "OVERLOADED",
    "DEADLINE_EXCEEDED",
    "SHUTTING_DOWN",
    "INTERNAL",
    "QUERY_OPS",
    "ADMIN_OPS",
    "ProtocolError",
    "Request",
    "decode_request",
    "ok_response",
    "error_response",
    "encode",
]

#: typed error codes a response's ``error`` field may carry
BAD_REQUEST = "bad_request"
OVERLOADED = "overloaded"
DEADLINE_EXCEEDED = "deadline_exceeded"
SHUTTING_DOWN = "shutting_down"
INTERNAL = "internal"
ERROR_CODES = (BAD_REQUEST, OVERLOADED, DEADLINE_EXCEEDED,
               SHUTTING_DOWN, INTERNAL)

#: operations that enter the micro-batcher vs. answered inline
QUERY_OPS = ("tkaq", "ekaq", "exact", "refine")
ADMIN_OPS = ("health", "stats")

#: request size guard: one line must stay shy of this many bytes
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A request line that cannot be admitted; carries a typed code."""

    def __init__(self, message: str, code: str = BAD_REQUEST,
                 request_id=None):
        super().__init__(message)
        self.code = code
        self.request_id = request_id


@dataclass
class Request:
    """A validated query/admin request.

    ``q`` stays a plain list of floats — the batcher assembles the
    batch matrix itself, so per-request numpy conversion is deferred
    until flush time.  ``deadline_ms`` is relative to admission; the
    server stamps the absolute deadline on its own clock.
    """

    op: str
    id: object = None
    q: list = field(default_factory=list)
    tau: float | None = None
    eps: float | None = None
    rounds: float | None = None
    deadline_ms: float | None = None

    @property
    def param(self) -> float:
        """The query parameter for the op (tau/eps/rounds; exact has none)."""
        if self.op == "tkaq":
            return self.tau
        if self.op == "refine":
            return self.rounds
        return self.eps


def _require_float(obj: dict, key: str, request_id, minimum=None) -> float:
    if key not in obj:
        raise ProtocolError(f"op requires {key!r}", request_id=request_id)
    value = obj[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{key!r} must be a number; got {value!r}",
                            request_id=request_id)
    value = float(value)
    if not math.isfinite(value):
        raise ProtocolError(f"{key!r} must be finite; got {value}",
                            request_id=request_id)
    if minimum is not None and value < minimum:
        raise ProtocolError(f"{key!r} must be >= {minimum}; got {value}",
                            request_id=request_id)
    return value


def _require_query(obj: dict, dim: int | None, request_id) -> list:
    q = obj.get("q")
    if not isinstance(q, list) or not q:
        raise ProtocolError("query ops require 'q': a non-empty list of "
                            "numbers", request_id=request_id)
    out = []
    for x in q:
        if isinstance(x, bool) or not isinstance(x, (int, float)):
            raise ProtocolError(f"'q' entries must be numbers; got {x!r}",
                                request_id=request_id)
        x = float(x)
        if not math.isfinite(x):
            raise ProtocolError("'q' entries must be finite",
                                request_id=request_id)
        out.append(x)
    if dim is not None and len(out) != dim:
        raise ProtocolError(f"'q' must have {dim} coordinates; got "
                            f"{len(out)}", request_id=request_id)
    return out


def decode_request(line: bytes, dim: int | None = None) -> Request:
    """Parse and validate one request line.

    ``dim`` (when known) enforces the served dataset's dimensionality so
    shape mistakes fail at admission, not inside a flushed batch.
    Raises :class:`ProtocolError` (code ``bad_request``) on any defect;
    the error carries the request ``id`` whenever one could be parsed.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    request_id = obj.get("id")
    op = obj.get("op")
    if op not in QUERY_OPS and op not in ADMIN_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of "
            f"{QUERY_OPS + ADMIN_OPS}", request_id=request_id)
    req = Request(op=op, id=request_id)
    if op in ADMIN_OPS:
        return req
    req.q = _require_query(obj, dim, request_id)
    if op == "tkaq":
        req.tau = _require_float(obj, "tau", request_id)
    elif op == "ekaq":
        req.eps = _require_float(obj, "eps", request_id, minimum=0.0)
    elif op == "refine":
        req.rounds = _require_float(obj, "rounds", request_id, minimum=0.0)
    if "deadline_ms" in obj and obj["deadline_ms"] is not None:
        req.deadline_ms = _require_float(obj, "deadline_ms", request_id,
                                         minimum=0.0)
    return req


def ok_response(request_id, op: str, **fields) -> dict:
    """A success payload; query-op callers add result + replay fields."""
    return {"id": request_id, "ok": True, "op": op, **fields}


def error_response(request_id, code: str, message: str) -> dict:
    """A typed failure payload (``code`` must be in :data:`ERROR_CODES`)."""
    assert code in ERROR_CODES, code
    return {"id": request_id, "ok": False, "error": code, "message": message}


def encode(payload: dict) -> bytes:
    """Serialise one response (or request) as a JSON line.

    ``repr``-based float serialisation round-trips every finite float64
    exactly, which is what makes the offline bitwise-replay check
    possible over a text protocol.
    """
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"
