"""Admission control and load shedding for the query service.

The service holds at most ``max_queue`` admitted-but-unanswered query
requests.  Beyond that it *sheds*: the client gets an explicit
``overloaded`` response immediately instead of unbounded queueing (the
p99 of admitted requests is the latency contract; shed requests cost
one JSON line each).

Between "comfortable" and "full" there is a degraded band with two
rungs, cheapest first:

* once queue depth crosses ``coreset_at * max_queue`` (and the server
  has a coreset tier), batches are routed to ``backend="coreset"`` —
  answers keep the client's *exact* contract (certified-or-fallback),
  only the cost profile changes, so this rung is tried before any
  contract is loosened;
* once depth crosses ``degrade_at * max_queue``, eKAQ requests are
  served with a relaxed tolerance that ramps linearly from the client's
  ``eps`` up to ``eps_ceiling`` as the queue approaches capacity.
  Relaxed responses are marked ``degraded=true`` and carry the tolerance
  actually served (``served_eps``) so clients — and the offline replay —
  know exactly what contract the estimate satisfies.  TKAQ answers are
  never degraded (a threshold answer is correct or it is not).

Deadlines are enforced at flush time: a request whose budget expired
while queued is dropped *before* evaluation (``deadline_exceeded``), so
an overloaded server spends its cycles only on answers somebody is
still waiting for.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionPolicy"]


@dataclass
class AdmissionPolicy:
    """Queue bound + degradation schedule for one server instance.

    Parameters
    ----------
    max_queue : int
        Maximum admitted-but-unanswered query requests; admissions beyond
        this are shed with an ``overloaded`` response.
    degrade_at : float
        Queue-depth fraction of ``max_queue`` where eKAQ degradation
        starts.  ``1.0`` (or an unset ceiling) disables degradation.
    eps_ceiling : float or None
        The largest tolerance overload may relax an eKAQ request to.
        ``None`` disables degradation.
    coreset_at : float or None
        Queue-depth fraction of ``max_queue`` where batches switch to
        the coreset tier (contract-preserving, cheaper per batch) —
        positioned *below* ``degrade_at`` so load sheds work before it
        sheds accuracy.  ``None`` disables the rung; it also has no
        effect on servers without a coreset-capable aggregator.
    """

    max_queue: int = 1024
    degrade_at: float = 0.5
    eps_ceiling: float | None = None
    coreset_at: float | None = None

    def __post_init__(self):
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1; got {self.max_queue}")
        if not 0.0 <= self.degrade_at <= 1.0:
            raise ValueError(
                f"degrade_at must be in [0, 1]; got {self.degrade_at}")
        if self.eps_ceiling is not None and self.eps_ceiling <= 0:
            raise ValueError(
                f"eps_ceiling must be > 0; got {self.eps_ceiling}")
        if self.coreset_at is not None and not 0.0 <= self.coreset_at <= 1.0:
            raise ValueError(
                f"coreset_at must be in [0, 1]; got {self.coreset_at}")

    def admit(self, queue_depth: int) -> bool:
        """Whether a new query request may join the queue."""
        return queue_depth < self.max_queue

    def prefer_coreset(self, queue_depth: int) -> bool:
        """Whether load is high enough to route batches to the coreset tier.

        The first (contract-preserving) rung of the degradation ramp:
        answers stay certified-or-exact, only the evaluation strategy
        changes.
        """
        return (
            self.coreset_at is not None
            and queue_depth >= self.coreset_at * self.max_queue
        )

    def effective_eps(self, eps: float, queue_depth: int) -> tuple[float, bool]:
        """The tolerance to actually serve, and whether it was relaxed.

        Below the degradation threshold (or with no ceiling configured)
        the client's ``eps`` passes through untouched.  Above it, the
        served tolerance ramps linearly with queue depth toward
        ``eps_ceiling``; a client already asking for a looser tolerance
        than the ceiling is never tightened.
        """
        if self.eps_ceiling is None or eps >= self.eps_ceiling:
            return eps, False
        start = self.degrade_at * self.max_queue
        if queue_depth <= start:
            return eps, False
        span = max(1.0, self.max_queue - start)
        severity = min(1.0, (queue_depth - start) / span)
        return eps + severity * (self.eps_ceiling - eps), True

    @staticmethod
    def expired(deadline: float | None, now: float) -> bool:
        """Whether an absolute deadline (server clock) has passed."""
        return deadline is not None and now > deadline
