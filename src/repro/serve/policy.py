"""Admission control and load shedding for the query service.

The service holds at most ``max_queue`` admitted-but-unanswered query
requests.  Beyond that it *sheds*: the client gets an explicit
``overloaded`` response immediately instead of unbounded queueing (the
p99 of admitted requests is the latency contract; shed requests cost
one JSON line each).

Between "comfortable" and "full" there is a degraded band with three
rungs.  Their precedence is pinned by :data:`RUNG_ORDER` — cheapest
contract damage first — and enforced at construction: a policy whose
thresholds would engage a more damaging rung before a cheaper one is
rejected.

* ``coreset`` — once queue depth crosses ``coreset_at * max_queue``
  (and the server has a coreset tier), batches are routed to
  ``backend="coreset"``.  Answers keep the client's *exact* contract
  (certified-or-fallback), only the cost profile changes, so this rung
  always engages before any contract is loosened.
* ``eps_inflation`` — once depth crosses ``degrade_at * max_queue``,
  eKAQ requests are served with a relaxed tolerance that ramps linearly
  from the client's ``eps`` up to ``eps_ceiling`` as the queue
  approaches capacity.  Relaxed responses are marked ``degraded=true``
  and carry the tolerance actually served (``served_eps``) so clients —
  and the offline replay — know exactly what contract the estimate
  satisfies.  TKAQ answers are never degraded (a threshold answer is
  correct or it is not).
* ``partial`` — on a *sharded* server, a shard that dies or misses its
  sub-deadline no longer fails the batch: the surviving shards' summed
  interval is widened by the missing shard's precomputed worst-case
  mass and the response is flagged ``partial=true``.  Unlike the other
  rungs this one is failure-driven, not load-driven — it has no queue
  threshold and ranks last because it is the only rung that widens an
  already-served interval.  ``partial_results=False`` turns the same
  event into a typed ``internal`` error instead.

Deadlines are enforced at flush time: a request whose budget expired
while queued is dropped *before* evaluation (``deadline_exceeded``), so
an overloaded server spends its cycles only on answers somebody is
still waiting for.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionPolicy", "RUNG_ORDER"]

#: pinned degradation precedence, cheapest contract damage first:
#: reroute to a contract-preserving tier, then loosen tolerances, and
#: only ever widen served intervals when a shard has actually failed.
RUNG_ORDER = ("coreset", "eps_inflation", "partial")


@dataclass
class AdmissionPolicy:
    """Queue bound + degradation schedule for one server instance.

    Parameters
    ----------
    max_queue : int
        Maximum admitted-but-unanswered query requests; admissions beyond
        this are shed with an ``overloaded`` response.
    degrade_at : float
        Queue-depth fraction of ``max_queue`` where eKAQ degradation
        starts.  ``1.0`` (or an unset ceiling) disables degradation.
    eps_ceiling : float or None
        The largest tolerance overload may relax an eKAQ request to.
        ``None`` disables degradation.
    coreset_at : float or None
        Queue-depth fraction of ``max_queue`` where batches switch to
        the coreset tier (contract-preserving, cheaper per batch) —
        positioned *below* ``degrade_at`` so load sheds work before it
        sheds accuracy.  ``None`` disables the rung; it also has no
        effect on servers without a coreset-capable aggregator.
    partial_results : bool
        Whether a sharded server may answer a batch without every shard
        (interval widened by the missing shard's worst-case mass,
        flagged ``partial=true``).  ``False`` converts shard failures
        into typed ``internal`` errors.  No effect on unsharded servers.
    """

    max_queue: int = 1024
    degrade_at: float = 0.5
    eps_ceiling: float | None = None
    coreset_at: float | None = None
    partial_results: bool = True

    def __post_init__(self):
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1; got {self.max_queue}")
        if not 0.0 <= self.degrade_at <= 1.0:
            raise ValueError(
                f"degrade_at must be in [0, 1]; got {self.degrade_at}")
        if self.eps_ceiling is not None and self.eps_ceiling <= 0:
            raise ValueError(
                f"eps_ceiling must be > 0; got {self.eps_ceiling}")
        if self.coreset_at is not None and not 0.0 <= self.coreset_at <= 1.0:
            raise ValueError(
                f"coreset_at must be in [0, 1]; got {self.coreset_at}")
        if (self.coreset_at is not None and self.eps_ceiling is not None
                and self.coreset_at > self.degrade_at):
            raise ValueError(
                "coreset_at must be <= degrade_at when both rungs are "
                f"configured (RUNG_ORDER pins the contract-preserving "
                f"rung first); got coreset_at={self.coreset_at} > "
                f"degrade_at={self.degrade_at}")

    def admit(self, queue_depth: int) -> bool:
        """Whether a new query request may join the queue."""
        return queue_depth < self.max_queue

    def prefer_coreset(self, queue_depth: int) -> bool:
        """Whether load is high enough to route batches to the coreset tier.

        The first (contract-preserving) rung of the degradation ramp:
        answers stay certified-or-exact, only the evaluation strategy
        changes.
        """
        return (
            self.coreset_at is not None
            and queue_depth >= self.coreset_at * self.max_queue
        )

    def effective_eps(self, eps: float, queue_depth: int) -> tuple[float, bool]:
        """The tolerance to actually serve, and whether it was relaxed.

        Below the degradation threshold (or with no ceiling configured)
        the client's ``eps`` passes through untouched.  Above it, the
        served tolerance ramps linearly with queue depth toward
        ``eps_ceiling``; a client already asking for a looser tolerance
        than the ceiling is never tightened.
        """
        if self.eps_ceiling is None or eps >= self.eps_ceiling:
            return eps, False
        start = self.degrade_at * self.max_queue
        if queue_depth <= start:
            return eps, False
        span = max(1.0, self.max_queue - start)
        severity = min(1.0, (queue_depth - start) / span)
        return eps + severity * (self.eps_ceiling - eps), True

    def active_rungs(self, queue_depth: int) -> tuple:
        """The degradation rungs engaged at ``queue_depth``, in precedence.

        Always a subsequence of :data:`RUNG_ORDER`: the load-driven
        rungs appear once their thresholds are crossed; ``partial``
        appears whenever enabled, because shard failure can strike at
        any load (it is an availability rung, not a load rung).
        """
        rungs = []
        if self.prefer_coreset(queue_depth):
            rungs.append("coreset")
        if (self.eps_ceiling is not None
                and queue_depth > self.degrade_at * self.max_queue):
            rungs.append("eps_inflation")
        if self.partial_results:
            rungs.append("partial")
        return tuple(rungs)

    @staticmethod
    def expired(deadline: float | None, now: float) -> bool:
        """Whether an absolute deadline (server clock) has passed."""
        return deadline is not None and now > deadline
