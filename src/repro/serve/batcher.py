"""Adaptive micro-batching: coalesce concurrent requests into ``*_many``.

The economics this exploits: the batch evaluators amortise per-call
overhead (dispatch, tracing, and — on the multiquery backend — shared
frontier refinement over the whole batch), so ``tkaq_many`` over B
coalesced requests is far cheaper than B singleton calls.  The batcher
buys that batching with a small, bounded, *adaptive* wait.

One :class:`MicroBatcher` per query kind (``tkaq`` / ``ekaq`` /
``exact``) — requests only batch with their own kind, but within a kind
heterogeneous parameters merge freely: the flush path always passes the
per-request ``tau``/``eps`` *vector* to the evaluator, so mixed-τ and
mixed-ε traffic shares one batch instead of fragmenting (see
``as_query_param``; a constant vector takes the identical refinement
schedule as the scalar, so batching never changes any answer).

Flush triggers, whichever comes first:

* **size** — the pending set reached ``max_batch``;
* **timer** — the oldest pending request waited ``window_us``.

The window self-tunes toward ``target_fill`` (the desired typical batch
occupancy): a timer flush below target grows the window by 25% (waiting
longer would have coalesced more), a size flush shrinks it by 20%
(traffic is heavy enough that waiting only adds latency), clamped to
``[min_wait_us, max_wait_us]``.  Under sustained load the window
converges to roughly the arrival time of ``target_fill * max_batch``
requests; under trickle traffic it rides ``max_wait_us`` so singleton
latency stays bounded.

Batches of at least ``parallel_threshold`` queries dispatch to
``backend="parallel"`` (the shared-memory process pool) when the server
was configured with workers; smaller batches take the serial
``multiquery`` backend — pool dispatch overhead only pays for itself at
width.  Evaluation runs on a single-thread executor so the event loop
keeps accepting and coalescing while a batch computes, and so the
aggregator only ever sees one thread.

Two stages sit *ahead* of batching on the submit path:

* **certified answer cache** (``cache=``, see :mod:`repro.cache`): a
  probe transfers the nearest cached certified interval to the query;
  if the widened interval still certifies, the request is answered
  immediately (``backend="cache"``, ``cached=true``) without occupying
  a batch slot.  An uncertified transfer rides along as a *warm-start*
  interval for eKAQ/refine batches, and every deterministic batch
  result (not coreset certificates, not partial shard rows) is inserted
  back into the cache.
* **single-flight dedup** (``single_flight``): identical concurrent
  ``(kind, q, served-param)`` requests in one window evaluate once; the
  leader's answer fans out to the followers (their responses carry
  ``single_flight=true`` and their own request ids).  The group's
  effective deadline is the *latest* member deadline — one member's
  expiry never drops another member's answer.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.obs import runtime as obs
from repro.obs.metrics import SECONDS_BUCKETS
from repro.obs.trace import QueryTrace
from repro.serve.protocol import (
    DEADLINE_EXCEEDED,
    INTERNAL,
    QUERY_OPS,
    Request,
    error_response,
    ok_response,
)

__all__ = ["BatchConfig", "PendingRequest", "MicroBatcher"]


@dataclass
class BatchConfig:
    """Micro-batching knobs shared by every per-kind batcher."""

    max_batch: int = 64          # size-flush trigger
    min_wait_us: float = 50.0    # adaptive window clamp (lower)
    max_wait_us: float = 5000.0  # adaptive window clamp (upper)
    initial_wait_us: float = 500.0
    target_fill: float = 0.5     # desired typical occupancy (of max_batch)
    parallel_threshold: int | None = None  # batch size that earns the pool
    n_workers: int | None = None           # pool width for parallel flushes
    chunk_size: int | None = None
    #: zero-arg callable consulted at flush time; True routes the batch to
    #: ``backend="coreset"`` (the server passes the admission policy's
    #: ``prefer_coreset`` over live queue depth).  Takes precedence over
    #: the parallel pool — under load the cheap tier wins.
    coreset_hint: Callable[[], bool] | None = None
    #: route tkaq/ekaq batches through ``backend="routed"`` — the
    #: aggregator's online :class:`~repro.core.BackendRouter` picks the
    #: execution tier per batch from observed traces.  The load-shedding
    #: ``coreset_hint`` still takes precedence: degradation under
    #: pressure is an admission decision, not a performance one.
    routed: bool = False
    #: dedup identical concurrent (kind, q, served-param) requests: one
    #: evaluation, fanned out.  Answers are unchanged (identical rows
    #: refine identically); only provenance marks the followers.
    single_flight: bool = True

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1; got {self.max_batch}")
        if not 0.0 < self.target_fill <= 1.0:
            raise ValueError(
                f"target_fill must be in (0, 1]; got {self.target_fill}")
        if self.min_wait_us > self.max_wait_us:
            raise ValueError("min_wait_us must be <= max_wait_us")


@dataclass
class PendingRequest:
    """One admitted query waiting in a batcher's pending set."""

    request: Request
    future: asyncio.Future
    enqueued_at: float          # server monotonic clock
    deadline: float | None      # absolute, server monotonic clock
    served_param: float | None  # policy-adjusted tau/eps actually served
    degraded: bool = False
    #: sound (lower, upper) starting interval from an uncertified cache
    #: transfer; threaded into the batch evaluator's ``warm`` vector
    warm: tuple | None = None
    #: single-flight followers resolved with this request's answer
    followers: list = field(default_factory=list)
    #: single-flight registry key while this request leads a group
    sf_key: tuple | None = None


class MicroBatcher:
    """Coalesces one query kind's requests into batch evaluator calls."""

    def __init__(self, kind: str, aggregator, config: BatchConfig,
                 executor, loop: asyncio.AbstractEventLoop,
                 on_done=None, sharded: bool = False, cache=None):
        assert kind in QUERY_OPS, kind
        self.kind = kind
        self.sharded = sharded  # target is a ShardRouter, not an aggregator
        self._agg = aggregator
        self._cfg = config
        self._cache = cache  # CertifiedAnswerCache or None (server-owned)
        self._executor = executor
        self._loop = loop
        self._on_done = on_done  # server callback: request left the queue
        self._pending: list[PendingRequest] = []
        self._sf: dict[tuple, PendingRequest] = {}  # single-flight leaders
        self._timer: asyncio.TimerHandle | None = None
        self._window_us = float(config.initial_wait_us)
        self._batch_seq = 0
        self._inflight = 0
        reg = obs.registry()
        self._m_batch_size = reg.histogram("serve.batch_size")
        self._m_queue_delay = reg.histogram(
            "serve.queue_delay_seconds", SECONDS_BUCKETS)
        self._m_batches = reg.counter(f"serve.batches.{kind}")
        self._m_deadline = reg.counter("serve.deadline_miss_total")
        self._m_internal = reg.counter("serve.internal_error_total")
        self._m_singleflight = reg.counter("serve.singleflight_total")
        self._m_warm = reg.counter("cache.warm_start_total")
        self._g_inflight = reg.gauge("serve.inflight_batches")

    # ------------------------------------------------------------------
    # event-loop side
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def window_us(self) -> float:
        """Current adaptive wait window (exposed via the stats op)."""
        return self._window_us

    def submit(self, pending: PendingRequest) -> None:
        """Add one admitted request; flush if the batch filled.

        Runs the pre-batch stages first: a certified-cache probe (a hit
        answers immediately without a batch slot; an uncertified eKAQ /
        refine transfer becomes a warm-start interval), then
        single-flight dedup (identical concurrent requests attach to the
        in-window leader instead of occupying their own slots).
        """
        if self._cache is not None and self._try_cache(pending):
            return
        if self._cfg.single_flight and self._attach_single_flight(pending):
            return
        self._pending.append(pending)
        if len(self._pending) >= self._cfg.max_batch:
            self.flush("size")
        elif self._timer is None:
            self._timer = self._loop.call_later(
                self._window_us / 1e6, self.flush, "timer")

    # ------------------------------------------------------------------
    # pre-batch stages: cache probe, single-flight dedup
    # ------------------------------------------------------------------

    def _try_cache(self, p: PendingRequest) -> bool:
        """Serve ``p`` from the certified cache; True when answered."""
        if self.kind == "exact":
            return False  # exact answers have zero width; transfers never do
        q = np.asarray(p.request.q, dtype=np.float64)
        if self.kind == "refine":
            # no certification semantics for a round budget — but the
            # transferred interval still tightens the returned bounds
            tb = self._cache.lookup(q)
            if tb is not None:
                p.warm = (tb.lower, tb.upper)
            return False
        tb, served = self._cache.probe(q, self.kind, p.served_param)
        if not served:
            if tb is not None and self.kind == "ekaq":
                p.warm = (tb.lower, tb.upper)
            return False
        self._ingest_cache_trace()
        self._resolve(p, self._cache_response(p, tb))
        return True

    def _cache_response(self, p: PendingRequest, tb) -> dict:
        """A cache-served payload: certified numbers, ``cached`` provenance.

        No batch id — the answer never joined a batch; offline replay
        recognises ``cached=true`` and cross-checks the interval against
        the exact aggregate instead of re-deriving a batch.
        """
        req = p.request
        common = dict(backend="cache", cached=True,
                      transfer_width=float(tb.width))
        if self.kind == "tkaq":
            return ok_response(
                req.id, "tkaq", answer=bool(tb.decides_tkaq(p.served_param)),
                lower=float(tb.lower), upper=float(tb.upper),
                served_tau=float(p.served_param), **common)
        return ok_response(
            req.id, "ekaq", estimate=float(tb.estimate),
            lower=float(tb.lower), upper=float(tb.upper),
            served_eps=float(p.served_param), degraded=p.degraded, **common)

    def _ingest_cache_trace(self) -> None:
        """A cache hit prunes the *entire* dataset: record it that way.

        The umbrella trace keeps the point conservation law (evaluated +
        pruned == n_points * n_queries) intact for cache-served queries.
        """
        if not obs.is_enabled():
            return
        n = self._agg.n if self.sharded else self._agg.tree.n
        scheme = (self._agg.scheme_name if self.sharded
                  else self._agg.scheme.name)
        trace = QueryTrace(kind=self.kind, backend="cache", scheme=scheme,
                           n_points=n, n_queries=1)
        trace.record_round(frontier=0, points=0, active=1, retired=1,
                           pruned_points=n)
        obs.ingest_trace(trace)

    def _attach_single_flight(self, p: PendingRequest) -> bool:
        """Join an identical in-flight request's group; True when attached."""
        key = (tuple(p.request.q), p.served_param)
        leader = self._sf.get(key)
        if leader is None:
            p.sf_key = key
            self._sf[key] = p
            return False
        leader.followers.append(p)
        # the group answers when the *last* member could still want it
        if leader.deadline is not None:
            leader.deadline = (None if p.deadline is None
                               else max(leader.deadline, p.deadline))
        self._m_singleflight.inc()
        return True

    def flush(self, reason: str = "drain") -> None:
        """Dispatch the pending set as one batch (no-op when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self._tune_window(reason, len(batch))
        self._inflight += 1
        self._g_inflight.set(self._inflight)
        self._loop.create_task(self._run_batch(batch))

    def _tune_window(self, reason: str, batch_size: int) -> None:
        if reason == "timer" and batch_size < self._cfg.target_fill * \
                self._cfg.max_batch:
            self._window_us *= 1.25
        elif reason == "size":
            self._window_us *= 0.8
        self._window_us = min(self._cfg.max_wait_us,
                              max(self._cfg.min_wait_us, self._window_us))

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------

    async def _run_batch(self, batch: list[PendingRequest]) -> None:
        try:
            now = self._loop.time()
            live = []
            for p in batch:
                if p.deadline is not None and now > p.deadline:
                    self._m_deadline.inc()
                    self._resolve(p, error_response(
                        p.request.id, DEADLINE_EXCEEDED,
                        f"deadline expired {1e3 * (now - p.deadline):.1f}ms "
                        "before evaluation"))
                else:
                    live.append(p)
            if not live:
                return
            for p in live:
                self._m_queue_delay.observe(now - p.enqueued_at)
            self._m_batch_size.observe(len(live))
            self._m_batches.inc()
            backend = self._pick_backend(len(live))
            t0 = time.perf_counter()
            try:
                result = await self._loop.run_in_executor(
                    self._executor, self._evaluate, live, backend)
            except Exception as exc:  # noqa: BLE001 - must answer the batch
                self._m_internal.inc(len(live))
                for p in live:
                    self._resolve(p, error_response(
                        p.request.id, INTERNAL,
                        f"{type(exc).__name__}: {exc}"))
                return
            wall = time.perf_counter() - t0
            batch_id = self._batch_seq
            self._batch_seq += 1
            self._ingest_trace(result, len(live), wall)
            # routed batches may have been served (wholly or as a probe
            # slice) by the coreset arm, whose probabilistic certificates
            # are not cache-transferable — skip fill for those too
            if self._cache is not None and backend not in (
                    "coreset", "routed"):
                self._cache_fill(live, result)
            for i, p in enumerate(live):
                self._resolve(p, self._response(p, result, batch_id, i,
                                                len(live), backend))
        finally:
            self._inflight -= 1
            self._g_inflight.set(self._inflight)

    def _pick_backend(self, batch_size: int) -> str:
        if self.sharded:
            return "shard"  # the router picks its own per-shard strategy
        cfg = self._cfg
        # refine returns the raw certified interval and exact the true sum:
        # neither has a coreset/parallel variant, so both stay multiquery.
        degradable = self.kind in ("tkaq", "ekaq")
        if (degradable and cfg.coreset_hint is not None
                and cfg.coreset_hint()):
            return "coreset"
        if degradable and cfg.routed:
            return "routed"
        if (degradable and cfg.parallel_threshold is not None
                and cfg.n_workers and batch_size >= cfg.parallel_threshold):
            return "parallel"
        return "multiquery"

    def _evaluate(self, live: list[PendingRequest], backend: str):
        """Executor-thread entry: one batch evaluator call.

        Parameters are always passed as per-request vectors — that is
        what lets mixed tau/eps traffic share a batch, and (because a
        constant vector refines identically to the scalar) it costs
        uniform traffic nothing.
        """
        Q = np.array([p.request.q for p in live], dtype=np.float64)
        if self.kind == "exact":
            return self._agg.exact_many(Q)
        param = np.array([p.served_param for p in live], dtype=np.float64)
        if self.sharded:
            # the router owns backend selection (per-shard evaluation)
            kwargs = {}
        else:
            kwargs = {"backend": backend}
            if backend == "parallel":
                kwargs["n_workers"] = self._cfg.n_workers
                kwargs["chunk_size"] = self._cfg.chunk_size
        if (not self.sharded and backend in ("multiquery", "routed")
                and self.kind in ("ekaq", "refine")
                and any(p.warm is not None for p in live)):
            # warm-start the batch from the cache-transferred intervals;
            # rows without a transfer get the no-op (-inf, +inf) interval
            wlb = np.full(len(live), -np.inf)
            wub = np.full(len(live), np.inf)
            n_warm = 0
            for i, p in enumerate(live):
                if p.warm is not None:
                    wlb[i], wub[i] = p.warm
                    n_warm += 1
            kwargs["warm"] = (wlb, wub)
            self._m_warm.inc(n_warm)
        if self.kind == "tkaq":
            return self._agg.tkaq_many_results(Q, param, **kwargs)
        if self.kind == "refine":
            return self._agg.refine_many_results(Q, param, **kwargs)
        return self._agg.ekaq_many_results(Q, param, **kwargs)

    def _cache_fill(self, live: list[PendingRequest], result) -> None:
        """Insert this batch's deterministic certified answers into the cache.

        Coreset batches never reach here (probabilistic certificates are
        not transferable) and partial shard rows are skipped — only
        unconditionally sound intervals may seed future transfers.
        Exact values insert as degenerate ``lb == ub`` intervals.
        """
        partial = getattr(result, "partial", None)
        for i, p in enumerate(live):
            if partial is not None and partial[i]:
                continue
            q = np.asarray(p.request.q, dtype=np.float64)
            if self.kind == "exact":
                v = float(result[i])
                self._cache.insert(q, v, v)
            else:
                self._cache.insert(q, float(result.lower[i]),
                                   float(result.upper[i]))

    def _response(self, p: PendingRequest, result, batch_id: int,
                  index: int, n_batch: int, backend: str) -> dict:
        req = p.request
        common = dict(batch=batch_id, batch_index=index, n_batch=n_batch)
        if self.kind == "exact":
            return ok_response(req.id, "exact",
                               value=float(result[index]), **common)
        common["backend"] = backend
        if p.warm is not None:
            # provenance for bitwise replay: the warm interval this row
            # was evaluated under (repr-floats survive the JSON round
            # trip, so replay reconstructs the identical warm vector)
            common["warm"] = True
            common["warm_lower"] = float(p.warm[0])
            common["warm_upper"] = float(p.warm[1])
        partial = getattr(result, "partial", None)
        if partial is not None:
            common["partial"] = bool(partial[index])
        if self.kind == "tkaq":
            return ok_response(
                req.id, "tkaq",
                answer=bool(result.answers[index]),
                lower=float(result.lower[index]),
                upper=float(result.upper[index]),
                served_tau=float(p.served_param), **common)
        if self.kind == "refine":
            return ok_response(
                req.id, "refine",
                estimate=float(result.estimates[index]),
                lower=float(result.lower[index]),
                upper=float(result.upper[index]),
                served_rounds=float(p.served_param), **common)
        return ok_response(
            req.id, "ekaq",
            estimate=float(result.estimates[index]),
            lower=float(result.lower[index]),
            upper=float(result.upper[index]),
            served_eps=float(p.served_param),
            degraded=p.degraded, **common)

    def _resolve(self, p: PendingRequest, payload: dict) -> None:
        if p.sf_key is not None:
            # group closes: later identical requests start a fresh leader
            self._sf.pop(p.sf_key, None)
            p.sf_key = None
        if not p.future.done():
            p.future.set_result(payload)
        if self._on_done is not None:
            self._on_done(p)
        if p.followers:
            followers, p.followers = p.followers, []
            for f in followers:
                self._resolve(f, self._follower_payload(f, payload))

    def _follower_payload(self, f: PendingRequest, payload: dict) -> dict:
        """The leader's answer re-addressed to a single-flight follower."""
        out = dict(payload)
        out["id"] = f.request.id
        out["single_flight"] = True
        if out.get("ok") and self.kind == "ekaq":
            # identical rows, but each member keeps its own admission
            # provenance (the policy may have degraded them differently)
            out["served_eps"] = float(f.served_param)
            out["degraded"] = f.degraded
        return out

    def _ingest_trace(self, result, n_batch: int, wall: float) -> None:
        """Record an umbrella per-batch trace into the obs ring.

        The inner evaluator already traces its own refinement when obs is
        enabled; this adds the serving-layer view (kind, batch width,
        wall time) with totals copied from the batch stats so the point
        conservation law — evaluated + pruned == n_queries * n — holds
        for serve traces exactly as for engine traces.
        """
        if not obs.is_enabled():
            return
        if self.sharded:  # routers carry totals directly, not a tree
            n = self._agg.n
            scheme = self._agg.scheme_name
        else:
            n = self._agg.tree.n
            scheme = self._agg.scheme.name
        trace = QueryTrace(kind=self.kind, backend="serve",
                           scheme=scheme, n_points=n, n_queries=n_batch)
        trace.wall_time = wall
        stats = getattr(result, "stats", None)
        if stats is not None:
            trace.record_round(
                frontier=0, expanded=stats.nodes_expanded,
                leaves=stats.leaves_evaluated,
                points=stats.points_evaluated,
                active=n_batch, retired=n_batch,
                pruned_points=n_batch * n - stats.points_evaluated,
                bound_evals=stats.bound_evaluations)
        else:  # exact_many: every point of every query evaluated
            trace.record_round(frontier=0, points=n_batch * n,
                               active=n_batch, retired=n_batch)
        obs.ingest_trace(trace)
