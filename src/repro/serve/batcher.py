"""Adaptive micro-batching: coalesce concurrent requests into ``*_many``.

The economics this exploits: the batch evaluators amortise per-call
overhead (dispatch, tracing, and — on the multiquery backend — shared
frontier refinement over the whole batch), so ``tkaq_many`` over B
coalesced requests is far cheaper than B singleton calls.  The batcher
buys that batching with a small, bounded, *adaptive* wait.

One :class:`MicroBatcher` per query kind (``tkaq`` / ``ekaq`` /
``exact``) — requests only batch with their own kind, but within a kind
heterogeneous parameters merge freely: the flush path always passes the
per-request ``tau``/``eps`` *vector* to the evaluator, so mixed-τ and
mixed-ε traffic shares one batch instead of fragmenting (see
``as_query_param``; a constant vector takes the identical refinement
schedule as the scalar, so batching never changes any answer).

Flush triggers, whichever comes first:

* **size** — the pending set reached ``max_batch``;
* **timer** — the oldest pending request waited ``window_us``.

The window self-tunes toward ``target_fill`` (the desired typical batch
occupancy): a timer flush below target grows the window by 25% (waiting
longer would have coalesced more), a size flush shrinks it by 20%
(traffic is heavy enough that waiting only adds latency), clamped to
``[min_wait_us, max_wait_us]``.  Under sustained load the window
converges to roughly the arrival time of ``target_fill * max_batch``
requests; under trickle traffic it rides ``max_wait_us`` so singleton
latency stays bounded.

Batches of at least ``parallel_threshold`` queries dispatch to
``backend="parallel"`` (the shared-memory process pool) when the server
was configured with workers; smaller batches take the serial
``multiquery`` backend — pool dispatch overhead only pays for itself at
width.  Evaluation runs on a single-thread executor so the event loop
keeps accepting and coalescing while a batch computes, and so the
aggregator only ever sees one thread.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.obs import runtime as obs
from repro.obs.metrics import SECONDS_BUCKETS
from repro.obs.trace import QueryTrace
from repro.serve.protocol import (
    DEADLINE_EXCEEDED,
    INTERNAL,
    QUERY_OPS,
    Request,
    error_response,
    ok_response,
)

__all__ = ["BatchConfig", "PendingRequest", "MicroBatcher"]


@dataclass
class BatchConfig:
    """Micro-batching knobs shared by every per-kind batcher."""

    max_batch: int = 64          # size-flush trigger
    min_wait_us: float = 50.0    # adaptive window clamp (lower)
    max_wait_us: float = 5000.0  # adaptive window clamp (upper)
    initial_wait_us: float = 500.0
    target_fill: float = 0.5     # desired typical occupancy (of max_batch)
    parallel_threshold: int | None = None  # batch size that earns the pool
    n_workers: int | None = None           # pool width for parallel flushes
    chunk_size: int | None = None
    #: zero-arg callable consulted at flush time; True routes the batch to
    #: ``backend="coreset"`` (the server passes the admission policy's
    #: ``prefer_coreset`` over live queue depth).  Takes precedence over
    #: the parallel pool — under load the cheap tier wins.
    coreset_hint: Callable[[], bool] | None = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1; got {self.max_batch}")
        if not 0.0 < self.target_fill <= 1.0:
            raise ValueError(
                f"target_fill must be in (0, 1]; got {self.target_fill}")
        if self.min_wait_us > self.max_wait_us:
            raise ValueError("min_wait_us must be <= max_wait_us")


@dataclass
class PendingRequest:
    """One admitted query waiting in a batcher's pending set."""

    request: Request
    future: asyncio.Future
    enqueued_at: float          # server monotonic clock
    deadline: float | None      # absolute, server monotonic clock
    served_param: float | None  # policy-adjusted tau/eps actually served
    degraded: bool = False


class MicroBatcher:
    """Coalesces one query kind's requests into batch evaluator calls."""

    def __init__(self, kind: str, aggregator, config: BatchConfig,
                 executor, loop: asyncio.AbstractEventLoop,
                 on_done=None, sharded: bool = False):
        assert kind in QUERY_OPS, kind
        self.kind = kind
        self.sharded = sharded  # target is a ShardRouter, not an aggregator
        self._agg = aggregator
        self._cfg = config
        self._executor = executor
        self._loop = loop
        self._on_done = on_done  # server callback: request left the queue
        self._pending: list[PendingRequest] = []
        self._timer: asyncio.TimerHandle | None = None
        self._window_us = float(config.initial_wait_us)
        self._batch_seq = 0
        self._inflight = 0
        reg = obs.registry()
        self._m_batch_size = reg.histogram("serve.batch_size")
        self._m_queue_delay = reg.histogram(
            "serve.queue_delay_seconds", SECONDS_BUCKETS)
        self._m_batches = reg.counter(f"serve.batches.{kind}")
        self._m_deadline = reg.counter("serve.deadline_miss_total")
        self._m_internal = reg.counter("serve.internal_error_total")
        self._g_inflight = reg.gauge("serve.inflight_batches")

    # ------------------------------------------------------------------
    # event-loop side
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def window_us(self) -> float:
        """Current adaptive wait window (exposed via the stats op)."""
        return self._window_us

    def submit(self, pending: PendingRequest) -> None:
        """Add one admitted request; flush if the batch filled."""
        self._pending.append(pending)
        if len(self._pending) >= self._cfg.max_batch:
            self.flush("size")
        elif self._timer is None:
            self._timer = self._loop.call_later(
                self._window_us / 1e6, self.flush, "timer")

    def flush(self, reason: str = "drain") -> None:
        """Dispatch the pending set as one batch (no-op when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self._tune_window(reason, len(batch))
        self._inflight += 1
        self._g_inflight.set(self._inflight)
        self._loop.create_task(self._run_batch(batch))

    def _tune_window(self, reason: str, batch_size: int) -> None:
        if reason == "timer" and batch_size < self._cfg.target_fill * \
                self._cfg.max_batch:
            self._window_us *= 1.25
        elif reason == "size":
            self._window_us *= 0.8
        self._window_us = min(self._cfg.max_wait_us,
                              max(self._cfg.min_wait_us, self._window_us))

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------

    async def _run_batch(self, batch: list[PendingRequest]) -> None:
        try:
            now = self._loop.time()
            live = []
            for p in batch:
                if p.deadline is not None and now > p.deadline:
                    self._m_deadline.inc()
                    self._resolve(p, error_response(
                        p.request.id, DEADLINE_EXCEEDED,
                        f"deadline expired {1e3 * (now - p.deadline):.1f}ms "
                        "before evaluation"))
                else:
                    live.append(p)
            if not live:
                return
            for p in live:
                self._m_queue_delay.observe(now - p.enqueued_at)
            self._m_batch_size.observe(len(live))
            self._m_batches.inc()
            backend = self._pick_backend(len(live))
            t0 = time.perf_counter()
            try:
                result = await self._loop.run_in_executor(
                    self._executor, self._evaluate, live, backend)
            except Exception as exc:  # noqa: BLE001 - must answer the batch
                self._m_internal.inc(len(live))
                for p in live:
                    self._resolve(p, error_response(
                        p.request.id, INTERNAL,
                        f"{type(exc).__name__}: {exc}"))
                return
            wall = time.perf_counter() - t0
            batch_id = self._batch_seq
            self._batch_seq += 1
            self._ingest_trace(result, len(live), wall)
            for i, p in enumerate(live):
                self._resolve(p, self._response(p, result, batch_id, i,
                                                len(live), backend))
        finally:
            self._inflight -= 1
            self._g_inflight.set(self._inflight)

    def _pick_backend(self, batch_size: int) -> str:
        if self.sharded:
            return "shard"  # the router picks its own per-shard strategy
        cfg = self._cfg
        # refine returns the raw certified interval and exact the true sum:
        # neither has a coreset/parallel variant, so both stay multiquery.
        degradable = self.kind in ("tkaq", "ekaq")
        if (degradable and cfg.coreset_hint is not None
                and cfg.coreset_hint()):
            return "coreset"
        if (degradable and cfg.parallel_threshold is not None
                and cfg.n_workers and batch_size >= cfg.parallel_threshold):
            return "parallel"
        return "multiquery"

    def _evaluate(self, live: list[PendingRequest], backend: str):
        """Executor-thread entry: one batch evaluator call.

        Parameters are always passed as per-request vectors — that is
        what lets mixed tau/eps traffic share a batch, and (because a
        constant vector refines identically to the scalar) it costs
        uniform traffic nothing.
        """
        Q = np.array([p.request.q for p in live], dtype=np.float64)
        if self.kind == "exact":
            return self._agg.exact_many(Q)
        param = np.array([p.served_param for p in live], dtype=np.float64)
        if self.sharded:
            # the router owns backend selection (per-shard evaluation)
            kwargs = {}
        else:
            kwargs = {"backend": backend}
            if backend == "parallel":
                kwargs["n_workers"] = self._cfg.n_workers
                kwargs["chunk_size"] = self._cfg.chunk_size
        if self.kind == "tkaq":
            return self._agg.tkaq_many_results(Q, param, **kwargs)
        if self.kind == "refine":
            return self._agg.refine_many_results(Q, param, **kwargs)
        return self._agg.ekaq_many_results(Q, param, **kwargs)

    def _response(self, p: PendingRequest, result, batch_id: int,
                  index: int, n_batch: int, backend: str) -> dict:
        req = p.request
        common = dict(batch=batch_id, batch_index=index, n_batch=n_batch)
        if self.kind == "exact":
            return ok_response(req.id, "exact",
                               value=float(result[index]), **common)
        common["backend"] = backend
        partial = getattr(result, "partial", None)
        if partial is not None:
            common["partial"] = bool(partial[index])
        if self.kind == "tkaq":
            return ok_response(
                req.id, "tkaq",
                answer=bool(result.answers[index]),
                lower=float(result.lower[index]),
                upper=float(result.upper[index]),
                served_tau=float(p.served_param), **common)
        if self.kind == "refine":
            return ok_response(
                req.id, "refine",
                estimate=float(result.estimates[index]),
                lower=float(result.lower[index]),
                upper=float(result.upper[index]),
                served_rounds=float(p.served_param), **common)
        return ok_response(
            req.id, "ekaq",
            estimate=float(result.estimates[index]),
            lower=float(result.lower[index]),
            upper=float(result.upper[index]),
            served_eps=float(p.served_param),
            degraded=p.degraded, **common)

    def _resolve(self, p: PendingRequest, payload: dict) -> None:
        if not p.future.done():
            p.future.set_result(payload)
        if self._on_done is not None:
            self._on_done(p)

    def _ingest_trace(self, result, n_batch: int, wall: float) -> None:
        """Record an umbrella per-batch trace into the obs ring.

        The inner evaluator already traces its own refinement when obs is
        enabled; this adds the serving-layer view (kind, batch width,
        wall time) with totals copied from the batch stats so the point
        conservation law — evaluated + pruned == n_queries * n — holds
        for serve traces exactly as for engine traces.
        """
        if not obs.is_enabled():
            return
        if self.sharded:  # routers carry totals directly, not a tree
            n = self._agg.n
            scheme = self._agg.scheme_name
        else:
            n = self._agg.tree.n
            scheme = self._agg.scheme.name
        trace = QueryTrace(kind=self.kind, backend="serve",
                           scheme=scheme, n_points=n, n_queries=n_batch)
        trace.wall_time = wall
        stats = getattr(result, "stats", None)
        if stats is not None:
            trace.record_round(
                frontier=0, expanded=stats.nodes_expanded,
                leaves=stats.leaves_evaluated,
                points=stats.points_evaluated,
                active=n_batch, retired=n_batch,
                pruned_points=n_batch * n - stats.points_evaluated,
                bound_evals=stats.bound_evaluations)
        else:  # exact_many: every point of every query evaluated
            trace.record_round(frontier=0, points=n_batch * n,
                               active=n_batch, retired=n_batch)
        obs.ingest_trace(trace)
