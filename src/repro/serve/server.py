"""The asyncio query server: admission → micro-batch → evaluate → reply.

Single event loop, single evaluation thread: connections are cheap
asyncio tasks; every query request flows admission control
(:class:`~repro.serve.policy.AdmissionPolicy`), joins its kind's
micro-batcher (:class:`~repro.serve.batcher.MicroBatcher`), and is
answered when its batch evaluates on the one executor thread that owns
the :class:`~repro.core.aggregator.KernelAggregator`.  Responses are
written per-request as their batches complete, so one connection can
pipeline many requests and receive answers out of order (matched by
``id``).

Graceful shutdown (SIGTERM/SIGINT or :meth:`KAQServer.shutdown`):

1. stop accepting connections; new query requests on live connections
   get ``shutting_down`` responses;
2. flush every batcher immediately and wait (bounded by
   ``drain_grace_s``) for admitted requests to be answered;
3. close the aggregator — tears down the shared-memory process pool
   (``close()`` is idempotent, and the serial backends stay usable, so
   a straggler batch that flushes late still evaluates).
"""

from __future__ import annotations

import asyncio
import signal
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.core.errors import InvalidParameterError
from repro.obs import runtime as obs
from repro.obs.metrics import GEOMETRIC_BUCKETS, SECONDS_BUCKETS
from repro.serve.batcher import BatchConfig, MicroBatcher, PendingRequest
from repro.serve.policy import AdmissionPolicy
from repro.serve.protocol import (
    OVERLOADED,
    QUERY_OPS,
    SHUTTING_DOWN,
    ProtocolError,
    Request,
    decode_request,
    encode,
    error_response,
    ok_response,
)

__all__ = ["ServeConfig", "KAQServer"]


@dataclass
class ServeConfig:
    """Everything one server instance needs besides the aggregator."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: let the OS pick (the bound port is on the server)
    batch: BatchConfig = field(default_factory=BatchConfig)
    policy: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    drain_grace_s: float = 10.0
    #: a :class:`repro.cache.CacheConfig` enables the certified answer
    #: cache ahead of batching (unsharded servers with a distance kernel
    #: only; see ``docs/serving.md``).  ``None`` — the default — leaves
    #: serving bitwise-identical to a cacheless server.
    cache: object | None = None


class KAQServer:
    """Serves TKAQ/eKAQ/exact/refine queries over newline-delimited JSON.

    The evaluation target is either a local
    :class:`~repro.core.aggregator.KernelAggregator` or a
    :class:`~repro.shard.ShardRouter` (``router=``); both expose the same
    ``*_many_results``/``exact_many`` batch surface, so the batching,
    admission, and drain machinery is identical.  On a sharded server the
    admission policy's ``partial_results`` switch is pushed down to the
    router at start, and shard failures surface either as ``partial=true``
    responses or typed ``internal`` errors — never silent drops.
    """

    def __init__(self, aggregator, config: ServeConfig | None = None,
                 *, router=None):
        if aggregator is None and router is None:
            raise ValueError("KAQServer needs an aggregator or a router")
        if aggregator is not None and router is not None:
            raise ValueError(
                "pass either an aggregator or a router, not both")
        self._agg = aggregator
        self._router = router
        self._target = router if router is not None else aggregator
        self._dim = (int(router.d) if router is not None
                     else int(aggregator.tree.points.shape[1]))
        self.config = config or ServeConfig()
        self.cache = None
        if self.config.cache is not None:
            if router is not None:
                raise InvalidParameterError(
                    "the certified answer cache requires a local aggregator; "
                    "sharded servers expose no kernel/weight surface to "
                    "transfer bounds against")
            # constructed here so a non-transferable kernel fails fast
            # (TransferUnsupportedError) instead of at first query
            from repro.cache import CertifiedAnswerCache

            self.cache = CertifiedAnswerCache.for_aggregator(
                aggregator, self.config.cache)
            attach = getattr(aggregator, "attach_cache", None)
            if callable(attach):  # StreamingAggregator wires invalidation
                attach(self.cache)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-eval")
        self._batchers: dict[str, MicroBatcher] = {}
        self._queue_depth = 0
        self._draining = False
        self._drained = None  # asyncio.Event set when the queue empties
        self._conn_tasks: set[asyncio.Task] = set()
        reg = obs.registry()
        self._m_requests = reg.counter("serve.requests_total")
        self._m_shed = reg.counter("serve.shed_total")
        self._m_degraded = reg.counter("serve.degraded_total")
        self._m_rejected_drain = reg.counter("serve.rejected_draining_total")
        self._g_depth = reg.gauge("serve.queue_depth")
        self._m_latency = reg.histogram(
            "serve.request_seconds", SECONDS_BUCKETS)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind and start accepting; returns once listening."""
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        if self._router is not None:
            # the partial-result degradation rung is a policy decision;
            # the router enforces it at merge time
            self._router.allow_partial = self.config.policy.partial_results
        batch_cfg = self._batch_config()
        for kind in QUERY_OPS:
            self._batchers[kind] = MicroBatcher(
                kind, self._target, batch_cfg, self._executor,
                self._loop, on_done=self._request_done,
                sharded=self._router is not None, cache=self.cache)
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)

    def _batch_config(self) -> BatchConfig:
        """The batch config the batchers actually run with.

        When the admission policy has a ``coreset_at`` rung, the
        aggregator's kernel supports the coreset tier, and the caller
        did not install their own hint, wire the policy's
        ``prefer_coreset`` over the live queue depth as the batchers'
        ``coreset_hint`` — that is the whole degradation-ramp hookup.
        The user's config object is never mutated.
        """
        cfg = self.config.batch
        policy = self.config.policy
        if self._router is not None:
            return cfg  # routers pick per-shard strategies themselves
        if cfg.coreset_hint is not None or policy.coreset_at is None:
            return cfg
        from repro.sketch.aggregator import CoresetAggregator

        kernel = getattr(self._agg, "kernel", None)
        if kernel is None or not CoresetAggregator.supports(kernel):
            return cfg
        return replace(
            cfg,
            coreset_hint=lambda: policy.prefer_coreset(self._queue_depth),
        )

    async def serve_forever(self) -> None:
        """Run until cancelled or :meth:`shutdown` completes."""
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, answer the queue, close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for b in self._batchers.values():
            b.flush("drain")
        if self._queue_depth > 0:
            try:
                await asyncio.wait_for(self._drained.wait(),
                                       self.config.drain_grace_s)
            except asyncio.TimeoutError:
                pass  # close anyway; stragglers get connection resets
        # connections may sit idle in readline() forever (clients that
        # never hang up) — the queue is drained, so cut them loose
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
        self._target.close()

    def install_signal_handlers(self, stop_event: asyncio.Event) -> None:
        """SIGTERM/SIGINT set ``stop_event`` (the CLI awaits it, then
        drains); missing loop support (non-Unix) degrades silently."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop_event.set)
            except NotImplementedError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                t = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock))
                inflight.add(t)
                t.add_done_callback(inflight.discard)
            if inflight:
                # client half-closed after pipelining: finish the answers
                await asyncio.gather(*inflight, return_exceptions=True)
        except asyncio.CancelledError:
            # shutdown cuts idle connections loose after the drain; exit
            # cleanly so stream teardown doesn't log the cancellation
            if not self._draining:
                raise
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(self, line: bytes, writer, write_lock) -> None:
        t0 = self._loop.time()
        self._m_requests.inc()
        try:
            req = decode_request(line, dim=self._dim)
        except ProtocolError as exc:
            await self._write(writer, write_lock, error_response(
                exc.request_id, exc.code, str(exc)))
            return
        if req.op == "health":
            payload = self._health(req)
        elif req.op == "stats":
            payload = self._stats(req)
        else:
            payload = await self._enqueue_query(req, t0)
        self._m_latency.observe(self._loop.time() - t0)
        await self._write(writer, write_lock, payload)

    async def _write(self, writer, write_lock, payload: dict) -> None:
        data = encode(payload)
        async with write_lock:
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away; the answer has no audience

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------

    async def _enqueue_query(self, req: Request, t0: float) -> dict:
        if self._draining:
            self._m_rejected_drain.inc()
            return error_response(req.id, SHUTTING_DOWN,
                                  "server is draining; resubmit elsewhere")
        policy = self.config.policy
        if not policy.admit(self._queue_depth):
            self._m_shed.inc()
            return error_response(
                req.id, OVERLOADED,
                f"queue full ({self._queue_depth}/{policy.max_queue}); "
                "retry with backoff")
        served = req.param
        degraded = False
        if req.op == "ekaq":
            served, degraded = policy.effective_eps(
                req.eps, self._queue_depth)
            if degraded:
                self._m_degraded.inc()
        deadline = None
        if req.deadline_ms is not None:
            deadline = t0 + req.deadline_ms / 1e3
        pending = PendingRequest(
            request=req, future=self._loop.create_future(),
            enqueued_at=t0, deadline=deadline,
            served_param=served, degraded=degraded)
        self._queue_depth += 1
        self._g_depth.set(self._queue_depth)
        self._batchers[req.op].submit(pending)
        return await pending.future

    def _request_done(self, pending: PendingRequest) -> None:
        self._queue_depth -= 1
        self._g_depth.set(self._queue_depth)
        if self._queue_depth == 0 and self._drained is not None:
            self._drained.set()

    # ------------------------------------------------------------------
    # admin ops (answered inline, never batched)
    # ------------------------------------------------------------------

    def _health(self, req: Request) -> dict:
        status = "draining" if self._draining else "serving"
        if self._router is not None:
            return ok_response(
                req.id, "health", status=status,
                n_points=self._router.n, d=self._router.d,
                kernel=self._router.kernel_name,
                scheme=self._router.scheme_name,
                shards=self._router.n_shards,
                live_shards=self._router.live_shards)
        tree = self._agg.tree
        return ok_response(
            req.id, "health", status=status,
            n_points=int(tree.n), d=int(tree.points.shape[1]),
            kernel=type(self._agg.kernel).__name__,
            scheme=self._agg.scheme.name)

    def _stats(self, req: Request) -> dict:
        reg = obs.registry()
        snap = reg.snapshot()
        serve_counters = {
            name: value for name, value in snap["counters"].items()
            if name.startswith(("serve.", "cache."))
        }
        histograms = {}
        hist_names = ["serve.batch_size", "serve.queue_delay_seconds",
                      "serve.request_seconds"]
        if self.cache is not None:
            hist_names.append("cache.transfer_width")
        for name in hist_names:
            h = reg.histogram(
                name, SECONDS_BUCKETS if name.endswith("seconds")
                else GEOMETRIC_BUCKETS)
            histograms[name] = {
                "count": h.count, "mean": h.mean() if h.count else None,
                "p50": h.quantile(0.5) if h.count else None,
                "p99": h.quantile(0.99) if h.count else None,
            }
        extra = {}
        if self.cache is not None:
            extra["cache"] = {
                "entries": self.cache.size,
                "epoch": self.cache.epoch,
                "cell_size": self.cache.cell_size,
                "lipschitz": self.cache.lipschitz,
            }
        return ok_response(
            req.id, "stats",
            queue_depth=self._queue_depth,
            draining=self._draining,
            windows_us={k: b.window_us for k, b in self._batchers.items()},
            counters=serve_counters,
            histograms=histograms, **extra)
