"""CLI entry point: ``python -m repro.serve --dataset home --index kd``.

Builds the served workload exactly the way the benchmarks do
(:func:`repro.bench.workload.workload_for`: registered dataset, its
weighting type's kernel/weights), indexes it, and serves until SIGTERM
or SIGINT, then drains gracefully.  Once listening it prints::

    REPRO_SERVE_LISTENING host=127.0.0.1 port=41873

so harnesses using ``--port 0`` can discover the bound port.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.bench.workload import workload_for
from repro.core import KernelAggregator
from repro.index import BallTree, KDTree
from repro.serve.batcher import BatchConfig
from repro.serve.policy import AdmissionPolicy
from repro.serve.server import KAQServer, ServeConfig

_INDEXES = {"kd": KDTree, "ball": BallTree}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve TKAQ/eKAQ queries over newline-delimited JSON.")
    p.add_argument("--dataset", required=True,
                   help="registered dataset name (see repro.datasets)")
    p.add_argument("--size", type=int, default=None,
                   help="override the dataset's default cardinality")
    p.add_argument("--index", choices=sorted(_INDEXES), default="kd")
    p.add_argument("--leaf-capacity", type=int, default=40)
    p.add_argument("--scheme", default="karl",
                   help="bound scheme: karl | sota | hybrid")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7207,
                   help="TCP port (0 = OS-assigned; printed on startup)")
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--min-wait-us", type=float, default=50.0)
    p.add_argument("--max-wait-us", type=float, default=5000.0)
    p.add_argument("--target-fill", type=float, default=0.5)
    p.add_argument("--max-queue", type=int, default=1024)
    p.add_argument("--degrade-at", type=float, default=0.5,
                   help="queue fraction where eKAQ degradation starts")
    p.add_argument("--eps-ceiling", type=float, default=None,
                   help="overload may relax eKAQ eps up to this "
                        "(default: no degradation)")
    p.add_argument("--parallel-threshold", type=int, default=None,
                   help="batch size that dispatches to the process pool "
                        "(default: serial multiquery only)")
    p.add_argument("--n-workers", type=int, default=None,
                   help="process-pool width for parallel batches")
    p.add_argument("--routed", action="store_true",
                   help="pick the execution tier per batch with the "
                        "online BackendRouter (backend='routed')")
    p.add_argument("--drain-grace-s", type=float, default=10.0)
    p.add_argument("--shards", type=int, default=1,
                   help="partition the dataset across K shard workers "
                        "(default 1: unsharded)")
    p.add_argument("--shard-mode", choices=("process", "inprocess"),
                   default="process",
                   help="shard topology: one process per shard over "
                        "shared memory, or in-process workers")
    p.add_argument("--shard-partition", choices=("stride", "block"),
                   default="stride")
    p.add_argument("--shard-sub-deadline-ms", type=float, default=5000.0,
                   help="per-batch budget a shard gets before it is "
                        "treated as missing")
    p.add_argument("--no-partial-results", action="store_true",
                   help="turn missing-shard batches into typed errors "
                        "instead of widened partial answers")
    p.add_argument("--cache", action="store_true",
                   help="enable the certified answer cache (unsharded "
                        "servers with a distance kernel only)")
    p.add_argument("--cache-cell", type=float, default=None,
                   help="cache grid cell size (default: derived from the "
                        "indexed points)")
    p.add_argument("--cache-entries", type=int, default=4096,
                   help="cache capacity in entries")
    p.add_argument("--cache-mode", choices=("widen", "drop"),
                   default="widen",
                   help="how probes absorb streaming inserts: widen "
                        "transferred intervals by the inserted mass, or "
                        "drop stale entries")
    p.add_argument("--no-single-flight", action="store_true",
                   help="disable dedup of identical concurrent requests")
    return p


def make_server(args) -> KAQServer:
    wl = workload_for(args.dataset, n_queries=1, size=args.size)
    cache_cfg = None
    if args.cache:
        from repro.cache import CacheConfig

        cache_cfg = CacheConfig(
            cell_size=args.cache_cell, max_entries=args.cache_entries,
            on_insert=args.cache_mode)
    config = ServeConfig(
        host=args.host, port=args.port,
        batch=BatchConfig(
            max_batch=args.max_batch, min_wait_us=args.min_wait_us,
            max_wait_us=args.max_wait_us, target_fill=args.target_fill,
            parallel_threshold=args.parallel_threshold,
            n_workers=args.n_workers, routed=args.routed,
            single_flight=not args.no_single_flight),
        policy=AdmissionPolicy(
            max_queue=args.max_queue, degrade_at=args.degrade_at,
            eps_ceiling=args.eps_ceiling,
            partial_results=not args.no_partial_results),
        drain_grace_s=args.drain_grace_s,
        cache=cache_cfg)
    if args.shards > 1:
        from repro.shard import ShardConfig, build_router

        router = build_router(
            wl.points, wl.weights, wl.kernel, k=args.shards,
            scheme=args.scheme, mode=args.shard_mode,
            partition=args.shard_partition, index=args.index,
            leaf_capacity=args.leaf_capacity,
            config=ShardConfig(
                sub_deadline_s=args.shard_sub_deadline_ms / 1e3,
                allow_partial=not args.no_partial_results))
        return KAQServer(None, config, router=router)
    tree = _INDEXES[args.index](
        wl.points, weights=wl.weights, leaf_capacity=args.leaf_capacity)
    agg = KernelAggregator(tree, wl.kernel, scheme=args.scheme)
    return KAQServer(agg, config)


async def amain(args) -> None:
    server = make_server(args)
    await server.start()
    print(f"REPRO_SERVE_LISTENING host={args.host} port={server.port}",
          flush=True)
    stop = asyncio.Event()
    server.install_signal_handlers(stop)
    forever = asyncio.ensure_future(server.serve_forever())
    await stop.wait()
    print("REPRO_SERVE_DRAINING", flush=True)
    forever.cancel()
    await server.shutdown()
    print("REPRO_SERVE_STOPPED", flush=True)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(amain(args))
    except KeyboardInterrupt:  # pragma: no cover - belt and braces
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
