"""CLI entry point: ``python -m repro.serve --dataset home --index kd``.

Builds the served workload exactly the way the benchmarks do
(:func:`repro.bench.workload.workload_for`: registered dataset, its
weighting type's kernel/weights), indexes it, and serves until SIGTERM
or SIGINT, then drains gracefully.  Once listening it prints::

    REPRO_SERVE_LISTENING host=127.0.0.1 port=41873

so harnesses using ``--port 0`` can discover the bound port.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.bench.workload import workload_for
from repro.core import KernelAggregator
from repro.index import BallTree, KDTree
from repro.serve.batcher import BatchConfig
from repro.serve.policy import AdmissionPolicy
from repro.serve.server import KAQServer, ServeConfig

_INDEXES = {"kd": KDTree, "ball": BallTree}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve TKAQ/eKAQ queries over newline-delimited JSON.")
    p.add_argument("--dataset", required=True,
                   help="registered dataset name (see repro.datasets)")
    p.add_argument("--size", type=int, default=None,
                   help="override the dataset's default cardinality")
    p.add_argument("--index", choices=sorted(_INDEXES), default="kd")
    p.add_argument("--leaf-capacity", type=int, default=40)
    p.add_argument("--scheme", default="karl",
                   help="bound scheme: karl | sota | hybrid")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7207,
                   help="TCP port (0 = OS-assigned; printed on startup)")
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--min-wait-us", type=float, default=50.0)
    p.add_argument("--max-wait-us", type=float, default=5000.0)
    p.add_argument("--target-fill", type=float, default=0.5)
    p.add_argument("--max-queue", type=int, default=1024)
    p.add_argument("--degrade-at", type=float, default=0.5,
                   help="queue fraction where eKAQ degradation starts")
    p.add_argument("--eps-ceiling", type=float, default=None,
                   help="overload may relax eKAQ eps up to this "
                        "(default: no degradation)")
    p.add_argument("--parallel-threshold", type=int, default=None,
                   help="batch size that dispatches to the process pool "
                        "(default: serial multiquery only)")
    p.add_argument("--n-workers", type=int, default=None,
                   help="process-pool width for parallel batches")
    p.add_argument("--drain-grace-s", type=float, default=10.0)
    return p


def make_server(args) -> KAQServer:
    wl = workload_for(args.dataset, n_queries=1, size=args.size)
    tree = _INDEXES[args.index](
        wl.points, weights=wl.weights, leaf_capacity=args.leaf_capacity)
    agg = KernelAggregator(tree, wl.kernel, scheme=args.scheme)
    config = ServeConfig(
        host=args.host, port=args.port,
        batch=BatchConfig(
            max_batch=args.max_batch, min_wait_us=args.min_wait_us,
            max_wait_us=args.max_wait_us, target_fill=args.target_fill,
            parallel_threshold=args.parallel_threshold,
            n_workers=args.n_workers),
        policy=AdmissionPolicy(
            max_queue=args.max_queue, degrade_at=args.degrade_at,
            eps_ceiling=args.eps_ceiling),
        drain_grace_s=args.drain_grace_s)
    return KAQServer(agg, config)


async def amain(args) -> None:
    server = make_server(args)
    await server.start()
    print(f"REPRO_SERVE_LISTENING host={args.host} port={server.port}",
          flush=True)
    stop = asyncio.Event()
    server.install_signal_handlers(stop)
    forever = asyncio.ensure_future(server.serve_forever())
    await stop.wait()
    print("REPRO_SERVE_DRAINING", flush=True)
    forever.cancel()
    await server.shutdown()
    print("REPRO_SERVE_STOPPED", flush=True)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(amain(args))
    except KeyboardInterrupt:  # pragma: no cover - belt and braces
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
