"""The certified answer cache: grid-bucketed, LRU-bounded, epoch-stamped.

Keying is a coarse quantization of query space: a query hashes to the
grid cell ``floor(q / cell_size)`` (one integer per dimension).  A probe
checks the home cell plus its ``2d`` axis neighbours (one step along
each dimension — deliberately *not* the ``3^d`` full Moore
neighbourhood, which is infeasible beyond a few dimensions) and
transfers from the geometrically closest entry found.  Entries whose
cell is further away than one axis step are invisible to the probe, but
their transfer widening ``W * L * ||q - q'||`` would rarely certify at
that distance anyway — the grid is a cheap candidate filter, the
Lipschitz math is the correctness story.

Memory is bounded twice: each cell keeps at most ``bucket_width``
entries (FIFO within the cell), and the cache keeps at most
``max_entries`` entries in total, evicting whole least-recently-*probed*
cells.  Streaming inserts are absorbed through a cumulative worst-case
mass ledger (:func:`repro.shard.partition.worst_case_mass`): every entry
records the ledger state at creation, and a probe widens the transferred
interval by the mass inserted since — or, in ``on_insert="drop"`` mode,
discards entries from an older epoch outright.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.lipschitz import global_lipschitz, supports_transfer
from repro.cache.transfer import TransferredBounds, transfer_bounds
from repro.obs import runtime as _obs
from repro.obs.metrics import GEOMETRIC_BUCKETS
from repro.shard.partition import worst_case_mass

__all__ = ["CacheConfig", "CertifiedAnswerCache"]

#: probe-time modes for absorbing streaming inserts
_ON_INSERT = ("widen", "drop")


@dataclass
class CacheConfig:
    """Construction knobs for :class:`CertifiedAnswerCache`."""

    #: grid cell edge length; ``None`` derives a quarter of the mean
    #: per-dimension standard deviation of the indexed points
    cell_size: float | None = None
    max_entries: int = 4096       #: global entry bound (LRU cell eviction)
    bucket_width: int = 8         #: per-cell entry bound (FIFO)
    probe_neighbors: bool = True  #: also probe the 2d axis-neighbour cells
    on_insert: str = "widen"      #: staleness mode: "widen" or "drop"

    def __post_init__(self):
        if self.cell_size is not None and not self.cell_size > 0.0:
            raise InvalidParameterError(
                f"cell_size must be > 0; got {self.cell_size}")
        if self.max_entries < 1:
            raise InvalidParameterError(
                f"max_entries must be >= 1; got {self.max_entries}")
        if self.bucket_width < 1:
            raise InvalidParameterError(
                f"bucket_width must be >= 1; got {self.bucket_width}")
        if self.on_insert not in _ON_INSERT:
            raise InvalidParameterError(
                f"on_insert must be one of {_ON_INSERT}; "
                f"got {self.on_insert!r}")


@dataclass
class _Entry:
    """One cached certified interval, stamped with the ledger at creation."""

    q: np.ndarray
    lower: float
    upper: float
    epoch: int
    cum_lo: float
    cum_hi: float


class CertifiedAnswerCache:
    """Caches certified ``[lb, ub]`` intervals and transfers them soundly.

    Parameters
    ----------
    kernel : Kernel
        Must support bound transfer (distance kernel with a known global
        Lipschitz constant) — :class:`~repro.core.errors.TransferUnsupportedError`
        otherwise.
    weights : array-like
        The indexed point weights; ``W = sum |w_i|`` scales every
        transfer widening (and grows with streaming inserts so old
        entries stay conservative).
    config : CacheConfig, optional
    points : array-like, optional
        Only consulted when ``config.cell_size`` is ``None``, to derive
        a data-scaled grid cell.
    """

    def __init__(self, kernel, weights, config: CacheConfig | None = None,
                 points=None):
        self.config = config or CacheConfig()
        self.kernel = kernel
        self.lipschitz = global_lipschitz(kernel)  # typed rejection here
        w = np.asarray(weights, dtype=np.float64)
        self._abs_mass = float(np.abs(w).sum())
        cell = self.config.cell_size
        if cell is None:
            if points is None:
                raise InvalidParameterError(
                    "CacheConfig.cell_size is unset and no points were "
                    "given to derive one from")
            pts = np.asarray(points, dtype=np.float64)
            cell = max(1e-12, 0.25 * float(np.mean(np.std(pts, axis=0))))
        self.cell_size = float(cell)
        self.epoch = 0
        self._cum_lo = 0.0   # cumulative worst-case inserted mass, low end
        self._cum_hi = 0.0
        self._buckets: OrderedDict[tuple, list[_Entry]] = OrderedDict()
        self._n_entries = 0
        reg = _obs.registry()
        self._m_hit = reg.counter("cache.hit_total")
        self._m_miss = reg.counter("cache.miss_total")
        self._m_undecided = reg.counter("cache.undecided_total")
        self._m_insert = reg.counter("cache.insert_total")
        self._m_evict = reg.counter("cache.evict_total")
        self._m_stale_drop = reg.counter("cache.stale_dropped_total")
        self._m_stale_widen = reg.counter("cache.stale_widened_total")
        self._g_entries = reg.gauge("cache.entries")
        self._h_width = reg.histogram("cache.transfer_width",
                                      GEOMETRIC_BUCKETS)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    supports = staticmethod(supports_transfer)

    @property
    def lipschitz_mass(self) -> float:
        """``W * L`` — the per-unit-distance widening of every transfer."""
        return self._abs_mass * self.lipschitz

    def __len__(self) -> int:
        return self._n_entries

    @property
    def size(self) -> int:
        """Live entry count (also ``len(cache)``)."""
        return self._n_entries

    @classmethod
    def for_aggregator(cls, aggregator, config: CacheConfig | None = None):
        """Build a cache sized to an aggregator's kernel/weights/points."""
        tree = aggregator.tree
        return cls(aggregator.kernel, tree.weights, config=config,
                   points=tree.points)

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------

    def _key(self, q: np.ndarray) -> tuple:
        return tuple(int(math.floor(x / self.cell_size)) for x in q)

    def _candidates(self, key: tuple):
        """Entries in the home cell plus the 2d axis-neighbour cells."""
        keys = [key]
        if self.config.probe_neighbors:
            for i in range(len(key)):
                for step in (-1, 1):
                    keys.append(key[:i] + (key[i] + step,) + key[i + 1:])
        for k in keys:
            bucket = self._buckets.get(k)
            if bucket is None:
                continue
            if self.config.on_insert == "drop":
                live = [e for e in bucket if e.epoch == self.epoch]
                if len(live) != len(bucket):
                    self._m_stale_drop.inc(len(bucket) - len(live))
                    self._n_entries -= len(bucket) - len(live)
                    self._g_entries.set(self._n_entries)
                    bucket[:] = live
                    if not bucket:
                        del self._buckets[k]
                        continue
            yield k, bucket

    def lookup(self, q) -> TransferredBounds | None:
        """Transfer from the closest cached entry near ``q``, or ``None``.

        Pure probe: no hit/miss accounting (use :meth:`probe` for the
        serving path).  Touches the chosen entry's cell for LRU.
        """
        q = np.asarray(q, dtype=np.float64)
        best = None
        best_d2 = math.inf
        best_key = None
        for k, bucket in self._candidates(self._key(q)):
            for e in bucket:
                diff = q - e.q
                d2 = float(diff @ diff)
                if d2 < best_d2:
                    best, best_d2, best_key = e, d2, k
        if best is None:
            return None
        self._buckets.move_to_end(best_key)
        stale_lo = self._cum_lo - best.cum_lo
        stale_hi = self._cum_hi - best.cum_hi
        return transfer_bounds(
            best.lower, best.upper, self.lipschitz_mass,
            math.sqrt(best_d2), stale_lo=stale_lo, stale_hi=stale_hi)

    def probe(self, q, kind: str, param: float
              ) -> tuple[TransferredBounds | None, bool]:
        """The serving-path probe: ``(transferred bounds, served?)``.

        ``served`` is True only when the widened interval *certifies* the
        query under the engine's own rules (TKAQ decision / eKAQ stop
        test).  An uncertified transfer is returned anyway — its interval
        is still sound at ``q``, so the caller can warm-start refinement
        from it.  Hit/miss/undecided and transfer-width metrics are
        recorded here.
        """
        tb = self.lookup(q)
        if tb is None:
            self._m_miss.inc()
            return None, False
        self._h_width.observe(tb.widened)
        if tb.stale:
            self._m_stale_widen.inc()
        if kind == "tkaq":
            served = tb.decides_tkaq(param) is not None
        elif kind == "ekaq":
            served = tb.meets_ekaq(param)
        else:
            served = False  # refine/exact answers are never cache-served
        if served:
            self._m_hit.inc()
        else:
            self._m_undecided.inc()
            self._m_miss.inc()
        return tb, served

    # ------------------------------------------------------------------
    # population and invalidation
    # ------------------------------------------------------------------

    def insert(self, q, lower: float, upper: float) -> None:
        """Record a certified interval served at ``q``.

        Callers must only insert *deterministically sound* intervals —
        refinement bounds, exact values (``lower == upper``) — never
        probabilistic certificates (the coreset tier) or widened partial
        shard results.
        """
        q = np.ascontiguousarray(q, dtype=np.float64)
        key = self._key(q)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = []
        self._buckets.move_to_end(key)
        bucket.append(_Entry(q=q, lower=float(lower), upper=float(upper),
                             epoch=self.epoch, cum_lo=self._cum_lo,
                             cum_hi=self._cum_hi))
        self._n_entries += 1
        self._m_insert.inc()
        if len(bucket) > self.config.bucket_width:
            bucket.pop(0)
            self._n_entries -= 1
            self._m_evict.inc()
        while self._n_entries > self.config.max_entries:
            _, evicted = self._buckets.popitem(last=False)
            self._n_entries -= len(evicted)
            self._m_evict.inc(len(evicted))
        self._g_entries.set(self._n_entries)

    def note_insert(self, weights) -> None:
        """Absorb a streaming insert of ``weights`` into the ledger.

        Bumps the epoch (``on_insert="drop"`` entries from older epochs
        are discarded at probe time) and accumulates the inserted mass's
        worst-case contribution interval, by which ``"widen"``-mode
        probes stretch older entries.  ``W`` grows by the inserted
        ``sum|w|`` so future transfers of *new* entries stay sound too.
        """
        w = np.asarray(weights, dtype=np.float64)
        lo, hi = worst_case_mass(w, self.kernel)
        self.epoch += 1
        self._cum_lo += lo
        self._cum_hi += hi
        self._abs_mass += float(np.abs(w).sum())

    def clear(self) -> None:
        self._buckets.clear()
        self._n_entries = 0
        self._g_entries.set(0)
