"""Lipschitz bound transfer: move a certified interval to a nearby query.

An answered query holds a sound interval ``lb <= F_P(q) <= ub``.  For a
distance kernel with global Lipschitz constant ``L``
(:func:`repro.core.lipschitz.global_lipschitz`) the aggregate moves at
most ``W * L * ||q - q'||`` between queries, where ``W = sum_i |w_i|``
— so the interval, widened by that much (plus any staleness slack from
streaming inserts, see :class:`repro.cache.store.CertifiedAnswerCache`),
is sound at ``q'``::

    F_P(q') in [lb - W L r + stale_lo,  ub + W L r + stale_hi]

The widened interval is *served* only when it still decides the query:

* **TKAQ**: ``lb' > tau`` (answer True) or ``ub' <= tau`` (answer False)
  — the same certification rule the refinement loop terminates on;
* **eKAQ**: ``ub' <= (1 + eps) * lb'`` — the engine's termination test,
  so the midpoint estimate meets the identical ``(1 +- eps)`` contract.

A transfer that cannot certify is *not* wasted: the widened interval
still brackets the exact answer, so it warm-starts refinement (bounds
are clamped against it; intersecting two sound intervals is sound).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TransferredBounds", "transfer_bounds"]


@dataclass(frozen=True)
class TransferredBounds:
    """A sound interval at the *probe* query, derived from a cached entry."""

    lower: float       #: sound lower bound on F_P at the probe query
    upper: float       #: sound upper bound on F_P at the probe query
    distance: float    #: ||q_probe - q_entry||
    widened: float     #: the Lipschitz widening W * L * distance applied
    stale: bool        #: True when staleness slack also widened the interval

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def decides_tkaq(self, tau: float) -> bool | None:
        """The certified TKAQ answer at the probe, or ``None`` if undecided."""
        if self.lower > tau:
            return True
        if self.upper <= tau:
            return False
        return None

    def meets_ekaq(self, eps: float) -> bool:
        """True when the interval already satisfies the eKAQ stop rule."""
        return self.upper <= (1.0 + eps) * self.lower

    @property
    def estimate(self) -> float:
        """The midpoint — the engine's eKAQ estimator over the same rule."""
        return 0.5 * (self.lower + self.upper)


def transfer_bounds(lower: float, upper: float, lipschitz_mass: float,
                    distance: float, stale_lo: float = 0.0,
                    stale_hi: float = 0.0) -> TransferredBounds:
    """Widen ``[lower, upper]`` into a sound interval ``distance`` away.

    ``lipschitz_mass`` is the precomputed product ``W * L``
    (``sum|w_i| * global_lipschitz(kernel)``).  ``stale_lo <= 0 <=
    stale_hi`` is the cumulative worst-case mass inserted since the entry
    was recorded (:func:`repro.shard.partition.worst_case_mass` summed
    over inserts): the true aggregate gained between ``stale_lo`` and
    ``stale_hi``, so the sound interval shifts its endpoints by exactly
    those amounts.
    """
    widen = lipschitz_mass * distance
    return TransferredBounds(
        lower=lower - widen + stale_lo,
        upper=upper + widen + stale_hi,
        distance=distance,
        widened=widen,
        stale=bool(stale_lo != 0.0 or stale_hi != 0.0),
    )
