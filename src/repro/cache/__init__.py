"""repro.cache — certified answer cache with Lipschitz bound transfer.

Production KAQ traffic is skewed: many queries land near previously
answered ones.  Every served answer here is a *certified interval*
``[lb, ub]``, and for distance kernels the aggregate is globally
Lipschitz in the query point — so a cached interval can be widened by
``W * L * ||q - q'||`` into a sound interval at a nearby query and
served without touching the index, or used to warm-start refinement
when the widened interval cannot certify on its own.

Pieces:

* :func:`repro.core.lipschitz.global_lipschitz` — per-kernel constants
  (``core/`` owns the math; dot-product kernels get a typed rejection);
* :func:`~repro.cache.transfer.transfer_bounds` — the widening plus the
  TKAQ/eKAQ certification rules;
* :class:`~repro.cache.store.CertifiedAnswerCache` — grid-quantized
  buckets with axis-neighbour probing, LRU + per-cell bounds, and a
  worst-case mass ledger for streaming-insert invalidation.

The serving layer (:mod:`repro.serve`) wires a cache in front of the
micro-batcher with ``--cache``; contracts stay unconditional — a
transfer that cannot certify falls through to normal refinement.
"""

from repro.cache.store import CacheConfig, CertifiedAnswerCache
from repro.cache.transfer import TransferredBounds, transfer_bounds

__all__ = [
    "CacheConfig",
    "CertifiedAnswerCache",
    "TransferredBounds",
    "transfer_bounds",
]
