"""Kernel regression extension (paper Section VII future work)."""

from repro.regression.nadaraya_watson import NadarayaWatson

__all__ = ["NadarayaWatson"]
