"""Nadaraya-Watson kernel regression (the paper's "future work" extension).

The regression estimate is a ratio of two kernel aggregates over the same
point set:

    m(q) = sum_i y_i K(q, x_i)  /  sum_i K(q, x_i)

Numerator and denominator are Type III and Type I kernel aggregation
queries respectively, so both sides ride on the KARL engine; an
``epsilon``-approximate estimate follows from running eKAQ on each side
(with error ~2*eps on the ratio for positive targets).
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregator import KernelAggregator
from repro.core.errors import DataShapeError, NotFittedError, as_matrix
from repro.core.kernels import GaussianKernel, Kernel
from repro.index.builder import build_index

__all__ = ["NadarayaWatson"]


class NadarayaWatson:
    """Kernel regressor with index-accelerated prediction.

    Parameters
    ----------
    kernel : Kernel, optional
        Defaults to a Gaussian kernel with ``gamma = 1/d`` at fit time.
    index, leaf_capacity, scheme
        Index configuration shared by both aggregates.
    """

    def __init__(self, kernel: Kernel | None = None, index: str = "kd",
                 leaf_capacity: int = 80, scheme: str = "karl"):
        self.kernel = kernel
        self.index = index
        self.leaf_capacity = int(leaf_capacity)
        self.scheme = scheme
        self._num: KernelAggregator | None = None
        self._den: KernelAggregator | None = None
        self._y: np.ndarray | None = None
        self._cached_thresholders: dict[float, KernelAggregator] = {}

    def fit(self, X, y) -> "NadarayaWatson":
        """Index the training points for both aggregates."""
        X = as_matrix(X, name="X")
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.shape[0] != X.shape[0]:
            raise DataShapeError(
                f"y has length {y.shape[0]}, expected {X.shape[0]}"
            )
        if self.kernel is None:
            self.kernel = GaussianKernel(gamma=1.0 / X.shape[1])
        num_tree = build_index(
            self.index, X, weights=y, leaf_capacity=self.leaf_capacity
        )
        den_tree = build_index(
            self.index, X, weights=None, leaf_capacity=self.leaf_capacity
        )
        self._num = KernelAggregator(num_tree, self.kernel, scheme=self.scheme)
        self._den = KernelAggregator(den_tree, self.kernel, scheme=self.scheme)
        self._y = y.copy()
        self._cached_thresholders = {}
        return self

    def _require_fit(self):
        if self._num is None:
            raise NotFittedError("NadarayaWatson used before fit")

    def predict_one(self, q, eps: float = 0.0) -> float:
        """Regression estimate at ``q``; eKAQ-approximate when ``eps > 0``."""
        self._require_fit()
        if eps > 0.0:
            num = self._num.ekaq(q, eps).estimate
            den = self._den.ekaq(q, eps).estimate
        else:
            num = self._num.exact(q)
            den = self._den.exact(q)
        return num / den if den > 0.0 else 0.0

    def predict(self, queries, eps: float = 0.0) -> np.ndarray:
        """Vector of estimates for each row of ``queries``."""
        return np.array(
            [self.predict_one(q, eps) for q in np.atleast_2d(queries)]
        )

    def _threshold_aggregator(self, tau: float) -> KernelAggregator:
        """Evaluator for the identity ``m(q) > tau <=> sum (y_i - tau) K > 0``.

        The numerator tree's geometry is reused; only the statistics are
        recomputed for the shifted weights (cached per ``tau``).
        """
        agg = self._cached_thresholders.get(tau)
        if agg is None:
            tree = self._num.tree.reweighted(self._y - tau)
            agg = KernelAggregator(tree, self.kernel, scheme=self.scheme)
            self._cached_thresholders[tau] = agg
        return agg

    def above_threshold(self, q, tau: float) -> bool:
        """Pruned threshold query on the regression estimate.

        ``m(q) > tau``  iff  ``sum_i (y_i - tau) K(q, x_i) > 0`` (the
        denominator is positive), a Type III TKAQ at 0 — so the answer is
        exact and usually needs only a few refinement steps.
        """
        self._require_fit()
        return self._threshold_aggregator(float(tau)).tkaq(q, 0.0).answer
