"""Trace-set summaries: pruning ratios, bound-gap trajectories, phase times.

``summarize(traces)`` renders the three views the paper's evaluation (and
any "why was this query slow" investigation) needs:

1. **Overview by (kind, backend, scheme)** — queries, mean rounds, exact
   points per query, prune ratio, wall time per query, and (compare mode)
   how many pruned frontier nodes each bound scheme held tighter.
2. **Per-round pruning by scheme** — frontier width, active queries,
   retirements, and the cumulative prune ratio round by round.
3. **Phase wall-times** — where the seconds went (bound evaluation,
   exact leaf work, termination checks) per backend/scheme.

A fourth, optional view renders *metrics* rather than traces:
``metrics_summary(snapshot)`` tabulates the counter/gauge state of a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (or a serve ``stats``
response) grouped by subsystem prefix — ``serve.*`` queueing and
``cache.*`` hit/stale/size counters in particular.

CLI::

    python -m repro.obs.report traces.jsonl [more.jsonl ...] [--rounds N]
    python -m repro.obs.report traces.jsonl --metrics stats.json
"""

from __future__ import annotations

import argparse
import json
import math

from repro.bench.reporting import render_table
from repro.obs.export import load_traces
from repro.obs.trace import QueryTrace

__all__ = ["summarize", "metrics_summary", "main"]

#: how many leading rounds the per-round tables show by default
_DEFAULT_ROUNDS = 12


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else math.nan


def _group_key(t: QueryTrace) -> tuple[str, str, str]:
    return (t.kind, t.backend, t.scheme)


def _overview(groups) -> str:
    rows = []
    for (kind, backend, scheme), ts in groups.items():
        n_queries = sum(t.n_queries for t in ts)
        karl = sum(t.pruned_nodes_karl_tighter for t in ts)
        sota = sum(t.pruned_nodes_sota_tighter for t in ts)
        tied = sum(t.pruned_nodes_tied for t in ts)
        cmp_cell = f"{karl}/{sota}/{tied}" if karl or sota or tied else "-"
        rows.append([
            kind, backend, scheme, len(ts), n_queries,
            _mean(t.total_rounds / max(1, t.n_queries) for t in ts),
            _mean(t.total_points / max(1, t.n_queries) for t in ts),
            _mean(t.prune_ratio() for t in ts),
            1e3 * _mean(t.wall_time / max(1, t.n_queries) for t in ts),
            cmp_cell,
        ])
    return render_table(
        "Trace overview (karl/sota/tie = pruned-node bound tightness wins)",
        ["kind", "backend", "scheme", "traces", "queries", "rounds/q",
         "exact pts/q", "prune ratio", "ms/q", "karl/sota/tie"],
        rows,
    )


def _round_rows(ts: list[QueryTrace], max_rounds: int) -> list[list]:
    """Average the round records of a trace group, position by position."""
    depth = min(max(len(t.rounds) for t in ts), max_rounds)
    rows = []
    for i in range(depth):
        present = [t for t in ts if len(t.rounds) > i]
        rnds = [t.rounds[i] for t in present]
        # cumulative exact points up to and including round i, as a
        # fraction of the total point work the trace could have done
        cum_ratio = _mean(
            1.0 - sum(r.points for r in t.rounds[: i + 1])
            / (t.n_queries * t.n_points)
            for t in present
            if t.n_points
        )
        rows.append([
            i,
            len(present),
            _mean(r.frontier for r in rnds),
            _mean(r.active for r in rnds),
            sum(r.retired for r in rnds),
            sum(r.points for r in rnds),
            cum_ratio,
            _mean(r.gap for r in rnds if math.isfinite(r.gap)),
        ])
    return rows


def _per_round(groups, max_rounds: int) -> list[str]:
    tables = []
    for (kind, backend, scheme), ts in groups.items():
        with_rounds = [t for t in ts if t.rounds]
        if not with_rounds:
            continue
        tables.append(render_table(
            f"Rounds — {kind}/{backend}/{scheme} "
            f"(first {max_rounds}; gap = mean bound gap, trajectory)",
            ["round", "traces", "frontier", "active", "retired",
             "exact pts", "prune ratio", "gap"],
            _round_rows(with_rounds, max_rounds),
        ))
    return tables


def _phases(groups) -> str | None:
    rows = []
    for (kind, backend, scheme), ts in groups.items():
        totals: dict[str, float] = {}
        for t in ts:
            for name, secs in t.phases.items():
                totals[name] = totals.get(name, 0.0) + secs
        whole = sum(totals.values())
        for name in sorted(totals):
            rows.append([
                kind, backend, scheme, name, 1e3 * totals[name],
                100.0 * totals[name] / whole if whole else math.nan,
            ])
    if not rows:
        return None
    return render_table(
        "Phase wall-times",
        ["kind", "backend", "scheme", "phase", "total ms", "share %"],
        rows,
    )


def summarize(traces, max_rounds: int = _DEFAULT_ROUNDS) -> str:
    """Render the full text report for an iterable of traces.

    Accepts :class:`QueryTrace` objects or their ``to_dict`` forms (as
    read back from JSONL).
    """
    traces = [
        t if isinstance(t, QueryTrace) else QueryTrace.from_dict(t)
        for t in traces
    ]
    if not traces:
        return "no traces recorded"
    groups: dict[tuple, list[QueryTrace]] = {}
    for t in traces:
        groups.setdefault(_group_key(t), []).append(t)
    parts = [_overview(groups)]
    parts.extend(_per_round(groups, max_rounds))
    phase_table = _phases(groups)
    if phase_table is not None:
        parts.append(phase_table)
    return "\n\n".join(parts)


def metrics_summary(snapshot: dict) -> str:
    """Render a counters/gauges table from a metrics snapshot.

    Accepts either a raw :meth:`MetricsRegistry.snapshot` dict or a serve
    ``stats`` response payload (both carry ``counters``; the former also
    carries ``gauges``).  Rows are grouped by subsystem prefix — the
    ``cache.*`` family is where hit/miss/stale/size live.
    """
    rows = []
    for section in ("counters", "gauges"):
        for name in sorted(snapshot.get(section, {})):
            prefix = name.split(".", 1)[0]
            rows.append([prefix, section[:-1], name,
                         snapshot[section][name]])
    cache = snapshot.get("cache")
    if isinstance(cache, dict):  # serve stats: live cache introspection
        for key in sorted(cache):
            rows.append(["cache", "info", f"cache.{key}", cache[key]])
    if not rows:
        return "no metrics recorded"
    return render_table(
        "Metrics (by subsystem)",
        ["subsystem", "type", "metric", "value"],
        rows,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize JSONL query traces.",
    )
    parser.add_argument("paths", nargs="+", help="JSONL trace file(s)")
    parser.add_argument(
        "--rounds", type=int, default=_DEFAULT_ROUNDS,
        help="how many leading rounds the per-round tables show",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="JSON",
        help="also render a metrics snapshot (a MetricsRegistry.snapshot "
             "dump or a serve stats response) as a table",
    )
    args = parser.parse_args(argv)
    traces: list[QueryTrace] = []
    for path in args.paths:
        traces.extend(load_traces(path))
    print(summarize(traces, max_rounds=args.rounds))
    if args.metrics is not None:
        with open(args.metrics, "r", encoding="utf-8") as fh:
            print()
            print(metrics_summary(json.load(fh)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
