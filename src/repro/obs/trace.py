"""Per-query execution traces: what the refinement loop did, round by round.

A :class:`QueryTrace` records one evaluation — a single query or a whole
batch — as a list of :class:`TraceRound` records plus running totals and
per-phase wall times.  Rounds map 1:1 to refinement steps (one heap pop
for the sequential evaluator, one shared-frontier round for the
multi-query evaluator), so the trace answers "why was this query slow":
frontier growth, bound-gap trajectory, where the exact kernel work went,
and — when scheme comparison is on — whether KARL or SOTA bounds were the
tighter ones at the nodes that ended up pruned.

Totals are maintained independently of the ``rounds`` list, which is
capped at :data:`MAX_ROUNDS` records to bound trace memory on
pathological refinements; derived statistics
(:meth:`~repro.core.results.QueryStats.from_trace`) always use the
totals and therefore stay exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["TraceRound", "QueryTrace", "MAX_ROUNDS"]

#: per-trace cap on stored round records (totals keep counting past it)
MAX_ROUNDS = 8192


@dataclass(slots=True)
class TraceRound:
    """One refinement step.

    ``frontier`` is the frontier width associated with the step — after
    the pop for the sequential evaluator, entering the round for the
    query-major evaluator (matching ``BatchQueryStats.frontier_sizes``).
    ``points`` counts
    exact kernel evaluations this step, query-weighted for batches (a
    leaf of k points evaluated for m active queries adds m*k).
    ``pruned_points`` is the query-weighted number of points certified
    away at retirement (points still under the frontier when a query's
    bounds certified its answer).  ``lb``/``ub`` are the global bounds
    after the step for single queries; ``gap`` is the mean bound gap
    over still-active queries (``ub - lb`` for single queries).
    """

    frontier: int = 0
    active: int = 1
    expanded: int = 0
    leaves: int = 0
    points: int = 0
    retired: int = 0
    pruned_points: int = 0
    bound_evals: int = 0
    lb: float = math.nan
    ub: float = math.nan
    gap: float = math.nan

    def to_dict(self) -> dict:
        return {
            "frontier": self.frontier,
            "active": self.active,
            "expanded": self.expanded,
            "leaves": self.leaves,
            "points": self.points,
            "retired": self.retired,
            "pruned_points": self.pruned_points,
            "bound_evals": self.bound_evals,
            "lb": self.lb,
            "ub": self.ub,
            "gap": self.gap,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TraceRound":
        return cls(**{k: d[k] for k in d if k in cls.__dataclass_fields__})


@dataclass
class QueryTrace:
    """Trace of one query (or query batch) evaluation.

    ``kind`` is the query type (``tkaq``/``ekaq``/``refine``), ``backend``
    the evaluator (``loop``/``multiquery``/``dualtree``/``scan``/
    ``streaming``), ``scheme`` the bound scheme name, ``param`` the query
    parameter (tau or eps).  The ``total_*`` fields aggregate over every
    round, including rounds beyond the stored-record cap.
    """

    kind: str
    backend: str
    scheme: str
    n_points: int
    n_queries: int = 1
    param: float | None = None
    rounds: list[TraceRound] = field(default_factory=list)
    truncated: bool = False
    phases: dict[str, float] = field(default_factory=dict)
    # running totals (kept exact even when `rounds` is truncated)
    total_rounds: int = 0
    total_expanded: int = 0
    total_leaves: int = 0
    total_points: int = 0
    total_retired: int = 0
    total_bound_evals: int = 0
    #: query-weighted points certified away at retirement
    pruned_points: int = 0
    # scheme comparison at pruned frontier nodes (compare mode only)
    pruned_nodes_karl_tighter: int = 0
    pruned_nodes_sota_tighter: int = 0
    pruned_nodes_tied: int = 0
    wall_time: float = 0.0
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_round(
        self,
        frontier: int,
        expanded: int = 0,
        leaves: int = 0,
        points: int = 0,
        active: int = 1,
        retired: int = 0,
        pruned_points: int = 0,
        bound_evals: int = 0,
        lb: float = math.nan,
        ub: float = math.nan,
        gap: float | None = None,
    ) -> None:
        """Append one refinement step and fold it into the totals."""
        self.total_rounds += 1
        self.total_expanded += expanded
        self.total_leaves += leaves
        self.total_points += points
        self.total_retired += retired
        self.total_bound_evals += bound_evals
        self.pruned_points += pruned_points
        if len(self.rounds) >= MAX_ROUNDS:
            self.truncated = True
            return
        if gap is None:
            gap = ub - lb
        self.rounds.append(TraceRound(
            frontier=frontier, active=active, expanded=expanded,
            leaves=leaves, points=points, retired=retired,
            pruned_points=pruned_points, bound_evals=bound_evals,
            lb=lb, ub=ub, gap=gap,
        ))

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate wall time into a named phase."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def record_pruned_comparison(
        self, karl_tighter: int, sota_tighter: int, tied: int
    ) -> None:
        """Count pruned frontier nodes by which scheme bounded them tighter."""
        self.pruned_nodes_karl_tighter += karl_tighter
        self.pruned_nodes_sota_tighter += sota_tighter
        self.pruned_nodes_tied += tied

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------

    def points_accounted(self) -> int:
        """Exact-evaluated + pruned points (query-weighted).

        Every point is either evaluated exactly at a leaf or still under a
        frontier node when its query certifies, so for a completed trace
        this equals ``n_queries * n_points`` — the conservation law the
        trace-consistency tests assert.
        """
        return self.total_points + self.pruned_points

    def prune_ratio(self) -> float:
        """Fraction of point work avoided: 1 - evaluated / (queries * n)."""
        denom = self.n_queries * self.n_points
        return 1.0 - self.total_points / denom if denom else math.nan

    def gap_trajectory(self) -> list[float]:
        """Per-round bound gaps (mean over active queries for batches)."""
        return [r.gap for r in self.rounds]

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "backend": self.backend,
            "scheme": self.scheme,
            "n_points": self.n_points,
            "n_queries": self.n_queries,
            "param": self.param,
            "wall_time": self.wall_time,
            "truncated": self.truncated,
            "totals": {
                "rounds": self.total_rounds,
                "expanded": self.total_expanded,
                "leaves": self.total_leaves,
                "points": self.total_points,
                "retired": self.total_retired,
                "bound_evals": self.total_bound_evals,
                "pruned_points": self.pruned_points,
            },
            "pruned_scheme_comparison": {
                "karl_tighter": self.pruned_nodes_karl_tighter,
                "sota_tighter": self.pruned_nodes_sota_tighter,
                "tied": self.pruned_nodes_tied,
            },
            "phases": dict(self.phases),
            "extra": dict(self.extra),
            "rounds": [r.to_dict() for r in self.rounds],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "QueryTrace":
        totals = d.get("totals", {})
        cmp_ = d.get("pruned_scheme_comparison", {})
        trace = cls(
            kind=d["kind"],
            backend=d["backend"],
            scheme=d["scheme"],
            n_points=d["n_points"],
            n_queries=d.get("n_queries", 1),
            param=d.get("param"),
            truncated=d.get("truncated", False),
            phases=dict(d.get("phases", {})),
            total_rounds=totals.get("rounds", 0),
            total_expanded=totals.get("expanded", 0),
            total_leaves=totals.get("leaves", 0),
            total_points=totals.get("points", 0),
            total_retired=totals.get("retired", 0),
            total_bound_evals=totals.get("bound_evals", 0),
            pruned_points=totals.get("pruned_points", 0),
            pruned_nodes_karl_tighter=cmp_.get("karl_tighter", 0),
            pruned_nodes_sota_tighter=cmp_.get("sota_tighter", 0),
            pruned_nodes_tied=cmp_.get("tied", 0),
            wall_time=d.get("wall_time", 0.0),
            extra=dict(d.get("extra", {})),
        )
        trace.rounds = [TraceRound.from_dict(r) for r in d.get("rounds", [])]
        return trace
