"""Tracing runtime: the zero-cost-when-disabled hook the hot paths call.

Design contract with the evaluators (``core/aggregator.py``,
``core/multiquery.py``, ``core/dualtree.py``, ``core/streaming.py``,
``baselines/scan.py``):

* each evaluation calls :func:`start_trace` **once per query/batch**; it
  returns ``None`` while tracing is disabled (a module-global ``is None``
  check — no sink objects, no locks, no allocation);
* inner loops guard every recording statement with a single
  ``if trace is not None`` — the only per-round cost when disabled;
* finished traces go through :func:`finish_trace`, which stamps the wall
  time, pushes the trace into a bounded in-memory ring (for reports and
  the bench harness), appends to the optional JSONL sink, and folds the
  totals into the default metrics registry.

Enable programmatically (``repro.obs.enable(jsonl="traces.jsonl")``) or
by environment::

    REPRO_OBS_TRACE=/tmp/traces.jsonl   # enable + write JSONL
    REPRO_OBS_FORCE=1                   # enable, in-memory ring only
    REPRO_OBS_COMPARE=1                 # also dual-evaluate KARL vs SOTA
                                        # bounds at pruned frontier nodes

Scheme comparison (``compare=True``) re-evaluates every pruned frontier
node under both bound schemes at trace time; it is the one knob that adds
work proportional to the frontier, so it defaults to off.
"""

from __future__ import annotations

import os
import time
from collections import deque

from repro.obs.export import JsonlTraceSink
from repro.obs.metrics import SECONDS_BUCKETS, default_registry
from repro.obs.trace import QueryTrace

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "compare_enabled",
    "start_trace",
    "finish_trace",
    "ingest_trace",
    "recent_traces",
    "clear_recent",
    "registry",
]

#: how many finished traces the in-memory ring keeps by default
_DEFAULT_RING = 1024

# module-global state: `_ring is None` <=> disabled (the hot-path check)
_ring: deque | None = None
_sink: JsonlTraceSink | None = None
_compare: bool = False


def enable(jsonl=None, ring_capacity: int = _DEFAULT_RING,
           compare: bool = False) -> None:
    """Turn tracing on (idempotent; reconfigures if already on).

    Parameters
    ----------
    jsonl : path-like, optional
        Append every finished trace to this JSONL file.
    ring_capacity : int
        How many recent traces to keep in memory for
        :func:`recent_traces` / report embedding.
    compare : bool
        Also evaluate KARL and SOTA bounds at every pruned frontier node
        so traces record which scheme bounded it tighter (adds trace-time
        work proportional to the frontier size).
    """
    global _ring, _sink, _compare
    if _sink is not None:
        _sink.close()
    _ring = deque(maxlen=int(ring_capacity))
    _sink = JsonlTraceSink(jsonl) if jsonl else None
    _compare = bool(compare)


def disable() -> None:
    """Turn tracing off and release the sink (ring contents are dropped)."""
    global _ring, _sink, _compare
    if _sink is not None:
        _sink.close()
    _ring = None
    _sink = None
    _compare = False


def is_enabled() -> bool:
    return _ring is not None


def compare_enabled() -> bool:
    """True when traces should record KARL-vs-SOTA bound comparisons."""
    return _compare


def registry():
    """The default metrics registry (traced totals, custom gauges)."""
    return default_registry()


def start_trace(kind: str, backend: str, scheme: str, n_points: int,
                n_queries: int = 1, param: float | None = None):
    """A fresh :class:`QueryTrace`, or ``None`` while tracing is disabled.

    The ``None`` return is the zero-cost hook: hot paths hold the result
    in a local and guard recording with ``if trace is not None``.
    """
    if _ring is None:
        return None
    trace = QueryTrace(
        kind=kind, backend=backend, scheme=scheme,
        n_points=n_points, n_queries=n_queries, param=param,
    )
    trace.extra["_t0"] = time.perf_counter()
    return trace


def finish_trace(trace: QueryTrace) -> None:
    """Stamp, persist, and meter a finished trace."""
    t0 = trace.extra.pop("_t0", None)
    if t0 is not None:
        trace.wall_time = time.perf_counter() - t0
    if _ring is not None:
        _ring.append(trace)
    if _sink is not None:
        _sink.write(trace)
    _update_metrics(trace)


def ingest_trace(trace: QueryTrace) -> None:
    """Persist and meter a trace that finished in *another* process.

    The parallel evaluator's workers trace into their local ring and ship
    finished traces back with the shard results; the parent ingests them
    here so its ring, JSONL sink, and metrics registry reflect the work of
    the whole pool.  Unlike :func:`finish_trace` the recorded
    ``wall_time`` is preserved (the worker already stamped it).  No-op
    while tracing is disabled.
    """
    if _ring is None:
        return
    trace.extra.pop("_t0", None)
    _ring.append(trace)
    if _sink is not None:
        _sink.write(trace)
    _update_metrics(trace)


def recent_traces() -> list[QueryTrace]:
    """Most recent finished traces (oldest first); empty when disabled."""
    return list(_ring) if _ring is not None else []


def clear_recent() -> None:
    """Drop the in-memory ring contents (tracing stays enabled)."""
    if _ring is not None:
        _ring.clear()


def _update_metrics(trace: QueryTrace) -> None:
    reg = default_registry()
    reg.counter("queries_total").inc(trace.n_queries)
    reg.counter(f"queries.{trace.kind}.{trace.backend}").inc(trace.n_queries)
    reg.counter("rounds_total").inc(trace.total_rounds)
    reg.counter("nodes_expanded_total").inc(trace.total_expanded)
    reg.counter("leaves_evaluated_total").inc(trace.total_leaves)
    reg.counter("points_evaluated_total").inc(trace.total_points)
    reg.counter("bound_evaluations_total").inc(trace.total_bound_evals)
    reg.histogram("rounds_per_query").observe(
        trace.total_rounds / max(1, trace.n_queries)
    )
    reg.histogram("query_seconds", SECONDS_BUCKETS).observe(
        trace.wall_time / max(1, trace.n_queries)
    )


# environment-driven enabling: lets CI force the instrumented path on for
# a whole pytest run without touching any test code
_env_path = os.environ.get("REPRO_OBS_TRACE")
if _env_path or os.environ.get("REPRO_OBS_FORCE"):
    enable(
        jsonl=_env_path or None,
        compare=bool(os.environ.get("REPRO_OBS_COMPARE")),
    )
