"""Lightweight in-process metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` is a named collection of instruments with a
``snapshot()``/``reset()`` lifecycle — the shape every serving-side
metrics pipeline (Prometheus, statsd, ...) can scrape from.  Instruments
are plain Python objects updated under the GIL; the registry lock guards
only creation, so the hot path pays one dict lookup + one integer add.

The query engine updates the *default registry* (``default_registry()``)
once per finished query trace — never inside the refinement loop — so the
cost is independent of per-round work.  Histograms use fixed bucket
upper bounds (cumulative, Prometheus-style) chosen at creation.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
]

#: default histogram buckets: powers of two, good for round/point counts
GEOMETRIC_BUCKETS = tuple(float(2**i) for i in range(0, 21))

#: default latency buckets (seconds): 10us .. 10s, decade thirds
SECONDS_BUCKETS = tuple(
    round(10.0**e, 10) for e in [x / 3.0 for x in range(-15, 4)]
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """Last-set value (buffer sizes, frontier widths, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Cumulative-bucket histogram of observed values.

    ``buckets`` are the finite upper bounds; an implicit +inf bucket
    catches the rest.  ``counts[i]`` is the number of observations
    ``<= buckets[i]`` (cumulative at snapshot time, per-bucket in
    storage).
    """

    __slots__ = ("name", "buckets", "counts", "overflow", "total", "count")

    def __init__(self, name: str, buckets=GEOMETRIC_BUCKETS):
        self.name = name
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {self.name!r}: needs >= 1 bucket")
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.total += value
        self.count += 1
        # linear scan beats bisect for the short bucket lists used here
        for i, ub in enumerate(self.buckets):
            if value <= ub:
                self.counts[i] += 1
                return
        self.overflow += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper bound of the bucket holding rank q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]; got {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        seen = 0
        for ub, c in zip(self.buckets, self.counts):
            seen += c
            if seen >= rank:
                return ub
        return math.inf

    def reset(self) -> None:
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.total = 0.0
        self.count = 0


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when the name is already registered (creation is locked; updates are
    GIL-atomic).  Re-registering a name as a different instrument kind
    raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _get_or_create(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is not None:
            if not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, *args)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, buckets=GEOMETRIC_BUCKETS) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    def snapshot(self) -> dict:
        """Point-in-time dict of every instrument's state (JSON-friendly)."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Counter):
                out["counters"][name] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.value
            else:
                cumulative = []
                running = 0
                for ub, c in zip(inst.buckets, inst.counts):
                    running += c
                    cumulative.append([ub, running])
                out["histograms"][name] = {
                    "count": inst.count,
                    "sum": inst.total,
                    "buckets": cumulative,
                }
        return out

    def reset(self) -> None:
        """Zero every instrument (names stay registered)."""
        for inst in self._instruments.values():
            inst.reset()


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry the query engine reports into."""
    return _DEFAULT
