"""JSONL trace persistence: one JSON object per finished trace.

The JSONL format keeps traces greppable and streamable — a long benchmark
run appends as it goes, and :mod:`repro.obs.report` (or any ``jq``
pipeline) reads the file back without loading everything at once.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import QueryTrace

__all__ = ["JsonlTraceSink", "read_traces", "load_traces"]


class JsonlTraceSink:
    """Appends finished traces to a JSONL file, one line each.

    The file handle is opened lazily on the first write (so enabling
    tracing costs nothing until a query runs) and flushed per line so a
    crashed run still leaves a readable trace file.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._fh = None

    def write(self, trace: QueryTrace) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        json.dump(trace.to_dict(), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_traces(path):
    """Yield trace dicts from a JSONL file (skips blank lines)."""
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def load_traces(path) -> list[QueryTrace]:
    """Read a JSONL trace file back into :class:`QueryTrace` objects."""
    return [QueryTrace.from_dict(d) for d in read_traces(path)]
