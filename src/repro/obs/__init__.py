"""repro.obs — query-engine observability: metrics, traces, reports.

Three layers, cheapest first:

* **Metrics** (:mod:`repro.obs.metrics`): process-wide counters / gauges /
  histograms with ``snapshot()``/``reset()`` — updated once per finished
  query, never inside refinement loops.
* **Traces** (:mod:`repro.obs.trace`): per-query :class:`QueryTrace`
  records — per-round frontier sizes, bound-gap trajectory, exact-leaf
  kernel work, phase wall-times, and (in compare mode) KARL-vs-SOTA
  tightness at pruned nodes.  Exported as JSONL
  (:mod:`repro.obs.export`).
* **Reports** (:mod:`repro.obs.report`): pretty-printed summaries of a
  trace set — ``python -m repro.obs.report traces.jsonl``.

Tracing is off by default and costs one ``is None`` check per refinement
round when disabled.  Turn it on with::

    import repro.obs as obs
    obs.enable(jsonl="traces.jsonl")      # or REPRO_OBS_TRACE=... env var
    ...run queries...
    print(obs.report.summarize(obs.recent_traces()))

(``repro.obs.report`` is imported lazily — it pulls in the bench table
renderer, which the hot query path must not depend on.)

See ``docs/observability.md`` for the full guide and metrics glossary.
"""

from repro.obs.export import JsonlTraceSink, load_traces, read_traces
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.runtime import (
    clear_recent,
    compare_enabled,
    disable,
    enable,
    finish_trace,
    ingest_trace,
    is_enabled,
    recent_traces,
    start_trace,
)
from repro.obs.trace import QueryTrace, TraceRound

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "compare_enabled",
    "start_trace",
    "finish_trace",
    "ingest_trace",
    "recent_traces",
    "clear_recent",
    "QueryTrace",
    "TraceRound",
    "JsonlTraceSink",
    "read_traces",
    "load_traces",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
]


def __getattr__(name):
    # lazy: repro.obs.report imports the bench table renderer, which must
    # not be pulled into the query hot path's import graph
    if name == "report":
        import repro.obs.report as report

        return report
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
