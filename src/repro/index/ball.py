"""Bounding balls and their distance / inner-product bounds.

Ball-trees (Uhlmann / Moore "anchors", paper references [34], [29]) summarise
a node by a centroid and a covering radius.  The induced envelopes are

    max(0, ||q - c|| - r) <= dist(q, p) <= ||q - c|| + r
    q.c - ||q||*r <= q.p <= q.c + ||q||*r      (Cauchy-Schwarz)

for every point ``p`` inside the ball.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DataShapeError

__all__ = [
    "bounding_ball",
    "ball_mindist_sq",
    "ball_maxdist_sq",
    "ball_dist_bounds_many",
    "ball_dist_bounds_qm",
    "ball_ip_bounds",
    "ball_ip_bounds_many",
    "ball_ip_bounds_qm",
]


def bounding_ball(points: np.ndarray) -> tuple[np.ndarray, float]:
    """Return ``(center, radius)`` of a covering ball for ``points``.

    The center is the centroid; the radius is the distance to the farthest
    point.  This is the standard ball-tree construction (not the minimum
    enclosing ball, which is more expensive and not what [34]/[29] use).
    """
    if points.ndim != 2 or points.shape[0] == 0:
        raise DataShapeError("bounding_ball needs a non-empty (n, d) array")
    center = points.mean(axis=0)
    sq = np.einsum("ij,ij->i", points - center, points - center)
    return center, float(np.sqrt(sq.max()))


def ball_mindist_sq(q: np.ndarray, center: np.ndarray, radius: float) -> float:
    """Squared minimum distance from ``q`` to any point of the ball."""
    gap = float(np.linalg.norm(q - center)) - radius
    return gap * gap if gap > 0.0 else 0.0


def ball_maxdist_sq(q: np.ndarray, center: np.ndarray, radius: float) -> float:
    """Squared maximum distance from ``q`` to any point of the ball."""
    reach = float(np.linalg.norm(q - center)) + radius
    return reach * reach


def ball_dist_bounds_many(
    q: np.ndarray, centers: np.ndarray, radii: np.ndarray, scratch=None
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised ``(mindist_sq, maxdist_sq)`` for ``(m, d)`` centers.

    ``scratch`` (optional, same contract as
    :func:`repro.index.rectangle.rect_dist_bounds_many`) supplies
    ``(m, d)`` buffers for the intermediates; only the first is used
    here.  Values are unchanged.
    """
    if scratch is None:
        diff = centers - q
    else:
        diff = scratch[0]
        np.subtract(centers, q, out=diff)
    dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    near = np.maximum(dist - radii, 0.0)
    far = dist + radii
    return near * near, far * far


def ball_dist_bounds_qm(
    Q: np.ndarray, centers: np.ndarray, radii: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(mindist_sq, maxdist_sq)`` for every (query, ball) pair: ``(Q, m)``.

    Uses the Gram identity ``||q - c||^2 = ||q||^2 - 2 q.c + ||c||^2`` so
    the whole pair grid costs one matmul instead of a ``(Q, m, d)``
    broadcast.
    """
    qq = np.einsum("ij,ij->i", Q, Q)
    cc = np.einsum("ij,ij->i", centers, centers)
    d2 = qq[:, None] - 2.0 * (Q @ centers.T) + cc[None, :]
    np.maximum(d2, 0.0, out=d2)
    dist = np.sqrt(d2)
    near = np.maximum(dist - radii[None, :], 0.0)
    far = dist + radii[None, :]
    return near * near, far * far


def ball_ip_bounds(
    q: np.ndarray, center: np.ndarray, radius: float
) -> tuple[float, float]:
    """``(min, max)`` of ``q . p`` over points ``p`` in the ball."""
    mid = float(q @ center)
    spread = float(np.linalg.norm(q)) * radius
    return mid - spread, mid + spread


def ball_ip_bounds_many(
    q: np.ndarray, centers: np.ndarray, radii: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`ball_ip_bounds` for ``(m, d)`` centers."""
    mid = centers @ q
    spread = float(np.linalg.norm(q)) * radii
    return mid - spread, mid + spread


def ball_ip_bounds_qm(
    Q: np.ndarray, centers: np.ndarray, radii: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(min, max)`` inner product for every (query, ball) pair: ``(Q, m)``."""
    mid = Q @ centers.T
    norms = np.sqrt(np.einsum("ij,ij->i", Q, Q))
    spread = norms[:, None] * radii[None, :]
    return mid - spread, mid + spread
