"""Array-backed binary spatial index shared by the kd-tree and ball-tree.

The tree is stored as flat numpy arrays (structure-of-arrays) so that the
query-time evaluator touches no Python objects per node:

* topology: ``left``, ``right`` (child ids, -1 for leaves), ``depth``,
  ``start``/``end`` (the node's contiguous slice of the permuted points),
* geometry: bounding rectangle ``lo``/``hi`` for every node, plus bounding
  ball ``center``/``radius`` for every node (each tree kind *uses* its own
  geometry for bounds, but both are stored — they cost O(n d log n) once and
  enable hybrid/ablation experiments),
* statistics: :class:`~repro.index.stats.SignedStats` for KARL's O(d) linear
  bounds and the SOTA count/weight bounds.

Construction follows scikit-learn's BinaryTree: recursively partition on the
dimension of maximum spread at the median.  The kd-tree and ball-tree differ
in which geometry their ``node_dist_bounds`` reports, mirroring the paper's
setup where both are "currently supported by Scikit-learn" (Section III-C).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.errors import InvalidParameterError, as_matrix
from repro.index.ball import bounding_ball
from repro.index.rectangle import (
    ip_bounds_many,
    ip_bounds_qm,
    ip_max,
    ip_min,
    maxdist_sq,
    mindist_sq,
    rect_dist_bounds_many,
    rect_dist_bounds_qm,
)
from repro.index.ball import (
    ball_dist_bounds_many,
    ball_dist_bounds_qm,
    ball_ip_bounds,
    ball_ip_bounds_many,
    ball_ip_bounds_qm,
    ball_maxdist_sq,
    ball_mindist_sq,
)
from repro.index.stats import SignedStats, compute_signed_stats

__all__ = ["SpatialIndex"]


class SpatialIndex:
    """Base class: a balanced binary tree over a weighted point set.

    Parameters
    ----------
    points : (n, d) array
        The point set ``P``.
    weights : (n,) array or scalar, optional
        Per-point weights ``w_i`` (Type I/II/III).  Defaults to 1.0 each.
    leaf_capacity : int
        Maximum number of points per leaf (the paper's tuning knob).
    """

    #: subclasses set this to "kd" or "ball"
    kind: str = "base"

    def __init__(self, points, weights=None, leaf_capacity: int = 80):
        points = as_matrix(points)
        n, d = points.shape
        if leaf_capacity < 1:
            raise InvalidParameterError(
                f"leaf_capacity must be >= 1; got {leaf_capacity}"
            )
        if weights is None:
            weights = np.ones(n, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.ndim == 0:
                weights = np.full(n, float(weights))
            if weights.shape != (n,):
                raise InvalidParameterError(
                    f"weights must have shape ({n},); got {weights.shape}"
                )
            if not np.isfinite(weights).all():
                raise InvalidParameterError("weights contain NaN or inf")

        self.n = n
        self.d = d
        self.leaf_capacity = int(leaf_capacity)

        perm = np.arange(n, dtype=np.int64)
        left: list[int] = []
        right: list[int] = []
        depth: list[int] = []
        starts: list[int] = []
        ends: list[int] = []

        # BFS allocation: siblings are enqueued together, so they receive
        # *consecutive* node ids (right = left + 1).  The query evaluator
        # exploits this to compute both children's bounds from zero-copy
        # array views.
        queue = deque([(0, n, 0, -1, 0)])  # (start, end, depth, parent, side)
        while queue:
            s, e, dep, parent, side = queue.popleft()
            node_id = len(starts)
            starts.append(s)
            ends.append(e)
            depth.append(dep)
            left.append(-1)
            right.append(-1)
            if parent >= 0:
                if side == 0:
                    left[parent] = node_id
                else:
                    right[parent] = node_id
            if e - s > self.leaf_capacity:
                mid = self._split(points, perm, s, e)
                if s < mid < e:
                    queue.append((s, mid, dep + 1, node_id, 0))
                    queue.append((mid, e, dep + 1, node_id, 1))
                # else: all points identical -> keep as (oversized) leaf

        self.perm = perm
        self.points = points[perm]
        self.weights = weights[perm]
        self.start = np.asarray(starts, dtype=np.int64)
        self.end = np.asarray(ends, dtype=np.int64)
        self.left = np.asarray(left, dtype=np.int64)
        self.right = np.asarray(right, dtype=np.int64)
        self.depth = np.asarray(depth, dtype=np.int64)
        self.num_nodes = self.start.shape[0]
        self.max_depth = int(self.depth.max())

        self._build_geometry()
        self.stats: SignedStats = compute_signed_stats(
            self.points, self.weights, self.start, self.end
        )
        # Squared norms of the permuted points, reused by exact leaf kernels.
        self.sq_norms = np.einsum("ij,ij->i", self.points, self.points)

    # ------------------------------------------------------------------
    # construction hooks
    # ------------------------------------------------------------------

    def _split(self, points: np.ndarray, perm: np.ndarray, s: int, e: int) -> int:
        """Partition ``perm[s:e]`` in place; return the split index ``mid``.

        Default: median split on the dimension of maximum spread
        (scikit-learn's BinaryTree rule).  Returns ``s`` when the slice is
        degenerate (all points identical), which the caller treats as
        "do not split".
        """
        block = points[perm[s:e]]
        lo = block.min(axis=0)
        hi = block.max(axis=0)
        dim = int(np.argmax(hi - lo))
        if hi[dim] <= lo[dim]:
            return s
        mid = s + (e - s) // 2
        keys = points[perm[s:e], dim]
        order = np.argpartition(keys, mid - s)
        perm[s:e] = perm[s:e][order]
        return mid

    def _build_geometry(self) -> None:
        m = self.num_nodes
        self.lo = np.empty((m, self.d))
        self.hi = np.empty((m, self.d))
        self.center = np.empty((m, self.d))
        self.radius = np.empty(m)
        for i in range(m):
            block = self.points[self.start[i] : self.end[i]]
            self.lo[i] = block.min(axis=0)
            self.hi[i] = block.max(axis=0)
            c, r = bounding_ball(block)
            self.center[i] = c
            self.radius[i] = r

    # ------------------------------------------------------------------
    # query-time geometry (overridden per tree kind)
    # ------------------------------------------------------------------

    def node_dist_bounds(self, q: np.ndarray, node: int) -> tuple[float, float]:
        """``(mindist^2, maxdist^2)`` between ``q`` and node's geometry."""
        raise NotImplementedError

    def node_ip_bounds(self, q: np.ndarray, node: int) -> tuple[float, float]:
        """``(min, max)`` inner product between ``q`` and node's geometry."""
        raise NotImplementedError

    def nodes_dist_bounds_qm(
        self, Q: np.ndarray, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(mindist^2, maxdist^2)`` for every (query row, node) pair.

        Returns two ``(len(Q), len(nodes))`` matrices — the geometry kernel
        of the multi-query evaluator's fused bound rounds.
        """
        raise NotImplementedError

    def nodes_ip_bounds_qm(
        self, Q: np.ndarray, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(min, max)`` inner product for every (query row, node) pair."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` has no children."""
        return self.left[node] < 0

    def children(self, node: int) -> tuple[int, int]:
        """Child ids of an internal node."""
        return int(self.left[node]), int(self.right[node])

    def node_size(self, node: int) -> int:
        """Number of points owned by ``node``."""
        return int(self.end[node] - self.start[node])

    def leaf_slice(self, node: int) -> slice:
        """Slice of the permuted point/weight arrays owned by ``node``."""
        return slice(int(self.start[node]), int(self.end[node]))

    def reweighted(self, weights) -> "SpatialIndex":
        """Clone this tree with new per-point weights (original order).

        Geometry, topology, and the point permutation are shared (views);
        only the weight array and the signed statistics are recomputed
        (O(n d) prefix sums).  Used when the same point set serves several
        weightings — e.g. regression threshold queries, where the weights
        are ``y_i - tau`` for a query-time ``tau``.
        """
        import copy

        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim == 0:
            weights = np.full(self.n, float(weights))
        if weights.shape != (self.n,):
            raise InvalidParameterError(
                f"weights must have shape ({self.n},); got {weights.shape}"
            )
        if not np.isfinite(weights).all():
            raise InvalidParameterError("weights contain NaN or inf")
        clone = copy.copy(self)
        clone.weights = weights[self.perm]
        clone.stats = compute_signed_stats(
            clone.points, clone.weights, clone.start, clone.end
        )
        return clone

    # ------------------------------------------------------------------
    # flat per-node state for the native refinement kernels
    # ------------------------------------------------------------------

    def node_sizes(self) -> np.ndarray:
        """Per-node point counts ``end - start`` (cached).

        Used by the native path's terminal-frontier accounting, which sums
        pruned points over whole node-id arrays instead of per-node
        ``node_size`` calls.
        """
        sizes = self.__dict__.get("_node_sizes")
        if sizes is None:
            sizes = self.end - self.start
            self._node_sizes = sizes
        return sizes

    def terminal_mask(self, max_depth: int | None = None) -> np.ndarray:
        """``uint8`` mask of nodes the refinement loop treats as leaves.

        Matches ``KernelAggregator._is_terminal`` evaluated per node id:
        real leaves, plus every node at or below a ``max_depth`` cut.
        Cached per cut so the refinement loop's per-pop terminal test is a
        single array load (the mask depends only on topology, so
        ``reweighted`` clones share the cache).
        """
        cache = self.__dict__.setdefault("_terminal_masks", {})
        mask = cache.get(max_depth)
        if mask is None:
            is_leaf = self.left < 0
            if max_depth is not None:
                is_leaf = is_leaf | (self.depth >= max_depth)
            mask = np.ascontiguousarray(is_leaf, dtype=np.uint8)
            cache[max_depth] = mask
        return mask

    def _f32_cache(self) -> dict:
        """Lazily-built float32 mirrors of per-node geometry (shared by
        ``reweighted`` clones — geometry is weight-independent)."""
        return self.__dict__.setdefault("_f32_mirrors", {})

    def nodes_at_depth(self, depth: int) -> np.ndarray:
        """Ids of nodes that act as leaves when the tree is cut at ``depth``.

        Used by the in-situ online tuner (Section III-C): the tree with only
        the top ``depth`` levels is simulated by treating both real leaves
        above the cut and internal nodes exactly at the cut as leaves.
        """
        at_cut = self.depth == depth
        shallow_leaf = (self.depth < depth) & (self.left < 0)
        return np.flatnonzero(at_cut | shallow_leaf)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.n}, d={self.d}, "
            f"leaf_capacity={self.leaf_capacity}, nodes={self.num_nodes}, "
            f"max_depth={self.max_depth})"
        )


class RectGeometryMixin:
    """Distance/IP bounds from the node's bounding rectangle."""

    def node_dist_bounds(self, q, node):
        return (
            mindist_sq(q, self.lo[node], self.hi[node]),
            maxdist_sq(q, self.lo[node], self.hi[node]),
        )

    def node_ip_bounds(self, q, node):
        return (
            ip_min(q, self.lo[node], self.hi[node]),
            ip_max(q, self.lo[node], self.hi[node]),
        )

    def pair_dist_bounds(self, q, first):
        """Fused bounds for the sibling pair ``(first, first+1)`` (views)."""
        return rect_dist_bounds_many(
            q, self.lo[first : first + 2], self.hi[first : first + 2]
        )

    def pair_ip_bounds(self, q, first):
        """Fused inner-product bounds for the sibling pair ``(first, first+1)``."""
        return ip_bounds_many(
            q, self.lo[first : first + 2], self.hi[first : first + 2]
        )

    def all_pair_dist_bounds(self, q, scratch=None):
        """Distance bounds for every non-root node, in one fused call.

        Bitwise-identical to concatenating :meth:`pair_dist_bounds` over
        all sibling pairs: the rectangle formulas are elementwise +
        per-row reductions, so row values do not depend on how many rows
        share the call.  This is the native evaluator's per-query
        geometry precompute.  ``scratch`` forwards to
        :func:`rect_dist_bounds_many` for allocation-free intermediates.
        """
        return rect_dist_bounds_many(q, self.lo[1:], self.hi[1:], scratch)

    def all_pair_dist_bounds_f32(self, q32):
        """Float32 twin of :meth:`all_pair_dist_bounds` (mixed precision)."""
        cache = self._f32_cache()
        geom = cache.get("rect")
        if geom is None:
            geom = (
                np.ascontiguousarray(self.lo[1:], dtype=np.float32),
                np.ascontiguousarray(self.hi[1:], dtype=np.float32),
            )
            cache["rect"] = geom
        return rect_dist_bounds_many(q32, geom[0], geom[1])

    def nodes_dist_bounds_qm(self, Q, nodes):
        """Distance-bound grid for a query matrix against a node id set."""
        return rect_dist_bounds_qm(Q, self.lo[nodes], self.hi[nodes])

    def nodes_ip_bounds_qm(self, Q, nodes):
        """Inner-product-bound grid for a query matrix against a node id set."""
        return ip_bounds_qm(Q, self.lo[nodes], self.hi[nodes])


class BallGeometryMixin:
    """Distance/IP bounds from the node's bounding ball."""

    def node_dist_bounds(self, q, node):
        c = self.center[node]
        r = self.radius[node]
        return ball_mindist_sq(q, c, r), ball_maxdist_sq(q, c, r)

    def node_ip_bounds(self, q, node):
        return ball_ip_bounds(q, self.center[node], self.radius[node])

    def pair_dist_bounds(self, q, first):
        """Fused bounds for the sibling pair ``(first, first+1)`` (views)."""
        return ball_dist_bounds_many(
            q, self.center[first : first + 2], self.radius[first : first + 2]
        )

    def pair_ip_bounds(self, q, first):
        """Fused inner-product bounds for the sibling pair ``(first, first+1)``."""
        return ball_ip_bounds_many(
            q, self.center[first : first + 2], self.radius[first : first + 2]
        )

    def all_pair_dist_bounds(self, q, scratch=None):
        """Distance bounds for every non-root node, in one fused call.

        Bitwise-identical to concatenating :meth:`pair_dist_bounds` over
        all sibling pairs (per-row einsum + elementwise ops).  ``scratch``
        forwards to :func:`ball_dist_bounds_many`.
        """
        return ball_dist_bounds_many(q, self.center[1:], self.radius[1:], scratch)

    def all_pair_dist_bounds_f32(self, q32):
        """Float32 twin of :meth:`all_pair_dist_bounds` (mixed precision)."""
        cache = self._f32_cache()
        geom = cache.get("ball")
        if geom is None:
            geom = (
                np.ascontiguousarray(self.center[1:], dtype=np.float32),
                np.ascontiguousarray(self.radius[1:], dtype=np.float32),
            )
            cache["ball"] = geom
        return ball_dist_bounds_many(q32, geom[0], geom[1])

    def nodes_dist_bounds_qm(self, Q, nodes):
        """Distance-bound grid for a query matrix against a node id set."""
        return ball_dist_bounds_qm(Q, self.center[nodes], self.radius[nodes])

    def nodes_ip_bounds_qm(self, Q, nodes):
        """Inner-product-bound grid for a query matrix against a node id set."""
        return ball_ip_bounds_qm(Q, self.center[nodes], self.radius[nodes])
