"""Spatial index substrate: kd-tree and ball-tree with per-node statistics.

These trees store, per node, both geometry (rectangle + ball) and the
sufficient statistics KARL needs for its O(d) linear bounds.
"""

from repro.index.balltree import BallTree
from repro.index.base import SpatialIndex
from repro.index.builder import INDEX_KINDS, build_index
from repro.index.kdtree import KDTree
from repro.index.serialize import load_coreset, load_index, save_index
from repro.index.stats import SignedStats, compute_signed_stats

__all__ = [
    "BallTree",
    "KDTree",
    "SpatialIndex",
    "SignedStats",
    "build_index",
    "save_index",
    "load_index",
    "load_coreset",
    "compute_signed_stats",
    "INDEX_KINDS",
]
