"""Factory for index structures.

``build_index("kd" | "ball", ...)`` is the single entry point the tuner and
the high-level estimators go through, so new index kinds only need to be
registered here.
"""

from __future__ import annotations

from repro.core.errors import InvalidParameterError
from repro.index.balltree import BallTree
from repro.index.base import SpatialIndex
from repro.index.kdtree import KDTree

__all__ = ["build_index", "INDEX_KINDS"]

INDEX_KINDS = {"kd": KDTree, "ball": BallTree}


def build_index(kind, points, weights=None, leaf_capacity: int = 80) -> SpatialIndex:
    """Build a spatial index of the requested ``kind``.

    Parameters
    ----------
    kind : str
        ``"kd"`` or ``"ball"``.
    points, weights, leaf_capacity
        Forwarded to the index constructor.
    """
    try:
        cls = INDEX_KINDS[kind]
    except KeyError:
        raise InvalidParameterError(
            f"unknown index kind {kind!r}; expected one of {sorted(INDEX_KINDS)}"
        ) from None
    return cls(points, weights=weights, leaf_capacity=leaf_capacity)
