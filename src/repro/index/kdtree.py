"""kd-tree: median-split binary tree using rectangle geometry for bounds.

This is the index the paper recommends for the in-situ scenario thanks to
its low construction time (Section III-C), and one of the two structures the
offline tuner chooses between.
"""

from __future__ import annotations

from repro.index.base import RectGeometryMixin, SpatialIndex

__all__ = ["KDTree"]


class KDTree(RectGeometryMixin, SpatialIndex):
    """kd-tree over a weighted point set.

    Splits on the dimension of maximum spread at the median; query-time
    distance and inner-product envelopes come from each node's axis-aligned
    bounding rectangle (paper Definition 2).
    """

    kind = "kd"
