"""Per-node sufficient statistics for O(d) linear-bound aggregation.

KARL's bounds (paper Lemmas 2 and 5) need, for the weighted point set of an
index node, the precomputed quantities

    w_P = sum_i w_i
    a_P = sum_i w_i * p_i          (a d-vector)
    b_P = sum_i w_i * ||p_i||^2

With these, the aggregation of any linear function ``m*x + c`` of the kernel
argument is O(d) at query time.

Type III weighting (paper Section IV-A2) splits P into the positive-weight
part ``P+`` and the negative-weight part ``P-`` and bounds each side with
Type II machinery.  We therefore keep *two* stat sets per node — one over
the positive-weight points, one over the absolute values of the negative
weights.  Type I/II data simply has an empty negative part.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SignedStats", "compute_signed_stats"]


@dataclass
class SignedStats:
    """Sufficient statistics of a node, split by weight sign.

    Arrays are indexed by node id.  The ``neg_*`` members store statistics of
    ``|w_i|`` over the negative-weight points, so both halves can be bounded
    by the (positive-weight) Type II machinery.
    """

    pos_n: np.ndarray    # (m,)   int64   number of positive-weight points
    pos_w: np.ndarray    # (m,)   float64 sum of positive weights
    pos_a: np.ndarray    # (m, d) float64 sum of w_i * p_i
    pos_b: np.ndarray    # (m,)   float64 sum of w_i * ||p_i||^2
    neg_n: np.ndarray = field(default=None)  # type: ignore[assignment]
    neg_w: np.ndarray = field(default=None)  # type: ignore[assignment]
    neg_a: np.ndarray = field(default=None)  # type: ignore[assignment]
    neg_b: np.ndarray = field(default=None)  # type: ignore[assignment]

    @property
    def has_negative(self) -> bool:
        """True when any node carries negative-weight mass (Type III data)."""
        return self.neg_w is not None and bool(np.any(self.neg_w > 0.0))


def compute_signed_stats(
    points: np.ndarray,
    weights: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
) -> SignedStats:
    """Compute :class:`SignedStats` for every node of an array-backed tree.

    ``points``/``weights`` are the *permuted* arrays, so node ``i`` owns the
    contiguous slice ``[start[i], end[i])``.  Uses prefix sums so the total
    cost is O(n*d + m*d) regardless of tree shape.
    """
    n, d = points.shape
    m = start.shape[0]

    sq_norm = np.einsum("ij,ij->i", points, points)
    w_pos = np.maximum(weights, 0.0)
    w_neg = np.maximum(-weights, 0.0)

    def prefix(values: np.ndarray) -> np.ndarray:
        out = np.zeros((n + 1,) + values.shape[1:], dtype=np.float64)
        np.cumsum(values, axis=0, out=out[1:])
        return out

    def node_sums(pref: np.ndarray) -> np.ndarray:
        return pref[end] - pref[start]

    pos = SignedStats(
        pos_n=node_sums(prefix((weights > 0.0).astype(np.int64))).astype(np.int64),
        pos_w=node_sums(prefix(w_pos)),
        pos_a=node_sums(prefix(w_pos[:, None] * points)),
        pos_b=node_sums(prefix(w_pos * sq_norm)),
    )
    if np.any(w_neg > 0.0):
        pos.neg_n = node_sums(prefix((weights < 0.0).astype(np.int64))).astype(np.int64)
        pos.neg_w = node_sums(prefix(w_neg))
        pos.neg_a = node_sums(prefix(w_neg[:, None] * points))
        pos.neg_b = node_sums(prefix(w_neg * sq_norm))
    else:
        pos.neg_n = np.zeros(m, dtype=np.int64)
        pos.neg_w = np.zeros(m, dtype=np.float64)
        pos.neg_a = np.zeros((m, d), dtype=np.float64)
        pos.neg_b = np.zeros(m, dtype=np.float64)
    return pos
