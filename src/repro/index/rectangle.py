"""Axis-aligned bounding rectangles and their distance / inner-product bounds.

The state-of-the-art pruning framework (paper Section II-B) derives bounds
on the kernel argument from the minimum and maximum distance between a query
point ``q`` and a node's bounding rectangle ``R``:

    mindist(q, R) <= dist(q, p) <= maxdist(q, R)   for every p in R.

For dot-product kernels (polynomial, sigmoid — Section IV-B) the analogous
envelope is the minimum / maximum inner product between ``q`` and any point
of ``R``.

Everything here is vectorised numpy on ``(d,)`` per-node arrays or
``(m, d)`` stacks of nodes, so a bound evaluation is O(d).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DataShapeError

__all__ = [
    "bounding_rectangle",
    "mindist_sq",
    "maxdist_sq",
    "mindist_sq_many",
    "maxdist_sq_many",
    "rect_dist_bounds_many",
    "mindist_sq_qm",
    "maxdist_sq_qm",
    "rect_dist_bounds_qm",
    "rect_rect_dist_bounds",
    "ip_min",
    "ip_max",
    "ip_bounds_many",
    "ip_bounds_qm",
    "contains",
]


def bounding_rectangle(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(lo, hi)`` — the tightest axis-aligned box containing ``points``.

    ``points`` must be a non-empty ``(n, d)`` array.
    """
    if points.ndim != 2 or points.shape[0] == 0:
        raise DataShapeError("bounding_rectangle needs a non-empty (n, d) array")
    return points.min(axis=0), points.max(axis=0)


def mindist_sq(q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    """Squared minimum Euclidean distance from ``q`` to the box ``[lo, hi]``.

    Zero when ``q`` lies inside the box.
    """
    delta = np.maximum(lo - q, 0.0) + np.maximum(q - hi, 0.0)
    return float(delta @ delta)


def maxdist_sq(q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    """Squared maximum Euclidean distance from ``q`` to the box ``[lo, hi]``.

    Attained at the box corner farthest from ``q``.
    """
    delta = np.maximum(np.abs(q - lo), np.abs(q - hi))
    return float(delta @ delta)


def mindist_sq_many(q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Vectorised :func:`mindist_sq` for ``(m, d)`` stacks of boxes."""
    delta = np.maximum(lo - q, 0.0) + np.maximum(q - hi, 0.0)
    return np.einsum("ij,ij->i", delta, delta)


def maxdist_sq_many(q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Vectorised :func:`maxdist_sq` for ``(m, d)`` stacks of boxes."""
    delta = np.maximum(np.abs(q - lo), np.abs(q - hi))
    return np.einsum("ij,ij->i", delta, delta)


def rect_dist_bounds_many(
    q: np.ndarray, lo: np.ndarray, hi: np.ndarray, scratch=None
) -> tuple[np.ndarray, np.ndarray]:
    """Fused ``(mindist_sq, maxdist_sq)`` for ``(m, d)`` stacks of boxes.

    Shares the endpoint differences between the two computations — this is
    the hot path of the query evaluator (called once per expanded node,
    and over the whole node stack by the native tier's precompute).

    Because ``lo <= hi``, at most one of ``lo - q`` / ``q - hi`` is
    positive, so ``near = max(lo - q, q - hi, 0)``; the far corner offset
    is ``max(q - lo, hi - q) = -min(lo - q, q - hi)``, whose square needs
    no negation.  Bitwise-identical to the eight-temporary form.

    ``scratch`` (optional) is a tuple of three ``(m, d)`` buffers of the
    inputs' dtype; when given, the intermediates reuse them instead of
    allocating (same operations in the same order, so values are
    unchanged — the caller amortises the temporaries across queries).
    """
    if scratch is None:
        below = lo - q
        above = q - hi
        near = np.maximum(below, above)
    else:
        below, above, near = scratch
        np.subtract(lo, q, out=below)
        np.subtract(q, hi, out=above)
        np.maximum(below, above, out=near)
    np.maximum(near, 0.0, out=near)
    if scratch is None:
        far = np.minimum(below, above)
    else:
        far = below  # safe elementwise aliasing; `below` is dead after this
        np.minimum(below, above, out=far)
    return (
        np.einsum("ij,ij->i", near, near),
        np.einsum("ij,ij->i", far, far),
    )


def mindist_sq_qm(Q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """:func:`mindist_sq` broadcast over a query matrix: ``(Q, m)`` output.

    ``Q`` is ``(q, d)``, ``lo``/``hi`` are ``(m, d)`` stacks of boxes; entry
    ``[i, j]`` is the squared minimum distance from query ``i`` to box ``j``.
    """
    delta = np.maximum(lo[None, :, :] - Q[:, None, :], 0.0)
    delta += np.maximum(Q[:, None, :] - hi[None, :, :], 0.0)
    return np.einsum("qmd,qmd->qm", delta, delta)


def maxdist_sq_qm(Q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """:func:`maxdist_sq` broadcast over a query matrix: ``(Q, m)`` output."""
    delta = np.maximum(
        np.abs(Q[:, None, :] - lo[None, :, :]),
        np.abs(Q[:, None, :] - hi[None, :, :]),
    )
    return np.einsum("qmd,qmd->qm", delta, delta)


def rect_dist_bounds_qm(
    Q: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Fused ``(mindist_sq, maxdist_sq)`` for every (query, box) pair.

    The query-matrix analogue of :func:`rect_dist_bounds_many`: one
    ``(q, m, d)`` broadcast shares the endpoint differences between the
    near and far corners — the hot geometry path of the multi-query
    evaluator (one call per refinement round).

    Because ``lo <= hi``, at most one of ``lo - q`` / ``q - hi`` is
    positive, so ``near = max(lo - q, q - hi, 0)`` and the far corner is
    ``max(q - lo, hi - q) = -min(lo - q, q - hi)`` — four temporaries
    instead of eight.
    """
    below = lo[None, :, :] - Q[:, None, :]
    above = Q[:, None, :] - hi[None, :, :]
    near = np.maximum(below, above)
    np.maximum(near, 0.0, out=near)
    far = np.minimum(below, above)
    np.negative(far, out=far)
    return (
        np.einsum("qmd,qmd->qm", near, near),
        np.einsum("qmd,qmd->qm", far, far),
    )


def rect_rect_dist_bounds(
    lo1: np.ndarray, hi1: np.ndarray, lo2: np.ndarray, hi2: np.ndarray
) -> tuple[float, float]:
    """``(mindist_sq, maxdist_sq)`` between two axis-aligned boxes.

    The dual-tree traversal (Gray & Moore) bounds the distance between any
    query point in one box and any data point in the other.
    """
    gap = np.maximum(lo2 - hi1, 0.0) + np.maximum(lo1 - hi2, 0.0)
    far = np.maximum(np.abs(hi1 - lo2), np.abs(hi2 - lo1))
    return float(gap @ gap), float(far @ far)


def ip_min(q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    """Minimum of ``q . p`` over points ``p`` in the box ``[lo, hi]``.

    Per dimension the extremum of ``q_j * p_j`` sits at an interval endpoint,
    picked by the sign of ``q_j``.
    """
    return float(np.minimum(q * lo, q * hi).sum())


def ip_max(q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    """Maximum of ``q . p`` over points ``p`` in the box ``[lo, hi]``."""
    return float(np.maximum(q * lo, q * hi).sum())


def ip_bounds_many(
    q: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised ``(ip_min, ip_max)`` for ``(m, d)`` stacks of boxes."""
    a = q * lo
    b = q * hi
    return np.minimum(a, b).sum(axis=1), np.maximum(a, b).sum(axis=1)


def ip_bounds_qm(
    Q: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(ip_min, ip_max)`` for every (query, box) pair: ``(Q, m)`` output."""
    a = Q[:, None, :] * lo[None, :, :]
    b = Q[:, None, :] * hi[None, :, :]
    return np.minimum(a, b).sum(axis=2), np.maximum(a, b).sum(axis=2)


def contains(p: np.ndarray, lo: np.ndarray, hi: np.ndarray, atol: float = 0.0) -> bool:
    """True when point ``p`` lies inside the (closed) box, up to ``atol`` slack."""
    return bool(np.all(p >= lo - atol) and np.all(p <= hi + atol))
