"""Save / load spatial indexes as ``.npz`` archives.

Offline tuning builds indexes ahead of time (Section III-C); persisting
them lets the online phase skip construction entirely.  The archive stores
every array of the array-backed tree plus the metadata needed to
reconstruct it without touching the raw points again.

The array inventory (:func:`tree_arrays`) and the rehydration step
(:func:`rebuild_tree`) are the canonical definition of "everything a
built tree is made of" — the shared-memory exporter
(:mod:`repro.parallel.shared`) ships the same arrays through
``multiprocessing.shared_memory`` instead of a file, so both transports
rebuild byte-identical trees.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.index.balltree import BallTree
from repro.index.base import SpatialIndex
from repro.index.kdtree import KDTree
from repro.index.stats import SignedStats

__all__ = [
    "save_index", "load_index", "tree_arrays", "rebuild_tree",
    "load_coreset",
]

_FORMAT_VERSION = 1

#: per-part arrays of a persisted coreset (repro.sketch.Coreset)
_CORESET_ARRAYS = ("points", "weights", "counts", "draw_scale")

_ARRAYS = (
    "perm", "points", "weights", "start", "end", "left", "right", "depth",
    "lo", "hi", "center", "radius", "sq_norms",
)
_STAT_ARRAYS = ("pos_n", "pos_w", "pos_a", "pos_b",
                "neg_n", "neg_w", "neg_a", "neg_b")

_KINDS = {"kd": KDTree, "ball": BallTree}


def tree_arrays(tree: SpatialIndex) -> dict[str, np.ndarray]:
    """Every array needed to rebuild ``tree``, keyed by canonical name.

    Statistics arrays are prefixed ``stats_`` so the mapping is flat (one
    name per array) for any transport — ``.npz`` entries or named
    shared-memory blocks.
    """
    if tree.kind not in _KINDS:
        raise InvalidParameterError(f"cannot serialise index kind {tree.kind!r}")
    payload = {name: getattr(tree, name) for name in _ARRAYS}
    payload.update(
        {f"stats_{name}": getattr(tree.stats, name) for name in _STAT_ARRAYS}
    )
    return payload


def rebuild_tree(kind: str, leaf_capacity: int, arrays) -> SpatialIndex:
    """Reconstruct a fully functional tree from a :func:`tree_arrays` mapping.

    Arrays already in canonical layout (C-contiguous) are adopted as-is
    (no copies) — callers that hand over shared-memory views get a tree
    whose storage lives in those views.  Non-contiguous inputs (sliced or
    transposed views from an external producer) are normalised with a
    copy: the native refinement tier precomputes its structure-of-arrays
    node state with whole-array operations over these buffers and assumes
    the contiguous layout the builders produce.
    """
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise InvalidParameterError(f"unknown index kind {kind!r}") from None
    tree = cls.__new__(cls)
    for name in _ARRAYS:
        setattr(tree, name, np.ascontiguousarray(arrays[name]))
    tree.stats = SignedStats(
        **{name: np.ascontiguousarray(arrays[f"stats_{name}"])
           for name in _STAT_ARRAYS}
    )
    tree.leaf_capacity = int(leaf_capacity)
    tree.n, tree.d = tree.points.shape
    tree.num_nodes = tree.start.shape[0]
    tree.max_depth = int(tree.depth.max())
    return tree


def _coreset_payload(prefix: str, coreset) -> dict[str, np.ndarray]:
    from repro.sketch.coreset import METHODS

    payload = {
        prefix + name: np.asarray(getattr(coreset, name), dtype=np.float64)
        for name in _CORESET_ARRAYS
    }
    payload[prefix + "meta"] = np.array([
        float(coreset.samples), coreset.range_scale, coreset.total_weight,
        coreset.delta, coreset.err_prior, float(coreset.n_source),
        float(METHODS.index(coreset.method)),
    ])
    return payload


def _coreset_from(archive, prefix: str):
    from repro.sketch.coreset import METHODS, Coreset

    meta = archive[prefix + "meta"]
    arrays = {name: archive[prefix + name] for name in _CORESET_ARRAYS}
    return Coreset(
        **arrays,
        samples=int(meta[0]), range_scale=float(meta[1]),
        total_weight=float(meta[2]), delta=float(meta[3]),
        err_prior=float(meta[4]), n_source=int(meta[5]),
        method=METHODS[int(meta[6])],
    )


def _coreset_parts(coreset):
    """Normalise a Coreset or CoresetAggregator to ``(pos, neg)`` parts."""
    from repro.sketch.coreset import Coreset

    if isinstance(coreset, Coreset):
        return coreset, None
    pos = getattr(coreset, "_pos", None)
    neg = getattr(coreset, "_neg", None)
    if pos is None and neg is None:
        raise InvalidParameterError(
            f"cannot persist coreset object {coreset!r}; expected a "
            "repro.sketch Coreset or CoresetAggregator"
        )
    return pos, neg


def save_index(tree: SpatialIndex, path, coreset=None) -> None:
    """Persist a built index to ``path`` (a ``.npz`` file).

    ``coreset`` optionally embeds a pre-built coreset tier in the same
    archive — a :class:`~repro.sketch.Coreset` or a whole
    :class:`~repro.sketch.CoresetAggregator` (both sign parts persist).
    :func:`load_index` ignores it; :func:`load_coreset` retrieves it, so
    the online phase skips construction *and* calibration.
    """
    payload = dict(tree_arrays(tree))
    payload["meta"] = np.array(
        [_FORMAT_VERSION, tree.leaf_capacity, {"kd": 0, "ball": 1}[tree.kind]],
        dtype=np.int64,
    )
    if coreset is not None:
        pos, neg = _coreset_parts(coreset)
        if pos is not None:
            payload.update(_coreset_payload("coreset_pos_", pos))
        if neg is not None:
            payload.update(_coreset_payload("coreset_neg_", neg))
    np.savez_compressed(path, **payload)


def load_coreset(path):
    """Load the coreset parts embedded in an index archive, if any.

    Returns ``(pos, neg)`` — either may be ``None``; ``(None, None)``
    means the archive was saved without a coreset.  Rehydrate a query
    tier with ``KernelAggregator.attach_coreset(pos, neg)``.
    """
    with np.load(path, allow_pickle=False) as archive:
        pos = (
            _coreset_from(archive, "coreset_pos_")
            if "coreset_pos_meta" in archive else None
        )
        neg = (
            _coreset_from(archive, "coreset_neg_")
            if "coreset_neg_meta" in archive else None
        )
    return pos, neg


def load_index(path) -> SpatialIndex:
    """Load an index previously written by :func:`save_index`.

    The returned tree is fully functional (queries, stats, depth cuts)
    without re-reading or re-partitioning the original points.
    """
    with np.load(path, allow_pickle=False) as archive:
        meta = archive["meta"]
        if int(meta[0]) != _FORMAT_VERSION:
            raise InvalidParameterError(
                f"unsupported index format version {int(meta[0])}"
            )
        leaf_capacity = int(meta[1])
        kind = "kd" if int(meta[2]) == 0 else "ball"
        arrays = {
            name: archive[name]
            for name in (*_ARRAYS, *(f"stats_{s}" for s in _STAT_ARRAYS))
        }
    return rebuild_tree(kind, leaf_capacity, arrays)
