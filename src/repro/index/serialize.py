"""Save / load spatial indexes as ``.npz`` archives.

Offline tuning builds indexes ahead of time (Section III-C); persisting
them lets the online phase skip construction entirely.  The archive stores
every array of the array-backed tree plus the metadata needed to
reconstruct it without touching the raw points again.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.index.balltree import BallTree
from repro.index.base import SpatialIndex
from repro.index.kdtree import KDTree
from repro.index.stats import SignedStats

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1

_ARRAYS = (
    "perm", "points", "weights", "start", "end", "left", "right", "depth",
    "lo", "hi", "center", "radius", "sq_norms",
)
_STAT_ARRAYS = ("pos_n", "pos_w", "pos_a", "pos_b",
                "neg_n", "neg_w", "neg_a", "neg_b")

_KINDS = {"kd": KDTree, "ball": BallTree}


def save_index(tree: SpatialIndex, path) -> None:
    """Persist a built index to ``path`` (a ``.npz`` file)."""
    if tree.kind not in _KINDS:
        raise InvalidParameterError(f"cannot serialise index kind {tree.kind!r}")
    payload = {name: getattr(tree, name) for name in _ARRAYS}
    payload.update(
        {f"stats_{name}": getattr(tree.stats, name) for name in _STAT_ARRAYS}
    )
    payload["meta"] = np.array(
        [_FORMAT_VERSION, tree.leaf_capacity, {"kd": 0, "ball": 1}[tree.kind]],
        dtype=np.int64,
    )
    np.savez_compressed(path, **payload)


def load_index(path) -> SpatialIndex:
    """Load an index previously written by :func:`save_index`.

    The returned tree is fully functional (queries, stats, depth cuts)
    without re-reading or re-partitioning the original points.
    """
    with np.load(path, allow_pickle=False) as archive:
        meta = archive["meta"]
        if int(meta[0]) != _FORMAT_VERSION:
            raise InvalidParameterError(
                f"unsupported index format version {int(meta[0])}"
            )
        leaf_capacity = int(meta[1])
        kind = "kd" if int(meta[2]) == 0 else "ball"
        cls = _KINDS[kind]

        tree = cls.__new__(cls)
        for name in _ARRAYS:
            setattr(tree, name, archive[name])
        tree.stats = SignedStats(
            **{name: archive[f"stats_{name}"] for name in _STAT_ARRAYS}
        )
    tree.leaf_capacity = leaf_capacity
    tree.n, tree.d = tree.points.shape
    tree.num_nodes = tree.start.shape[0]
    tree.max_depth = int(tree.depth.max())
    return tree
