"""Ball-tree: binary tree using bounding-ball geometry for bounds.

Matches scikit-learn's BallTree construction (same max-spread median split
as the kd-tree; geometry is the centroid + covering radius).  The paper's
offline tuner picks between this and the kd-tree per dataset
(Section III-C, Figure 7).
"""

from __future__ import annotations

from repro.index.base import BallGeometryMixin, SpatialIndex

__all__ = ["BallTree"]


class BallTree(BallGeometryMixin, SpatialIndex):
    """Ball-tree over a weighted point set.

    Distance envelopes are ``max(0, ||q-c|| - r)`` and ``||q-c|| + r``;
    inner-product envelopes follow from Cauchy-Schwarz.  Rectangle bounds
    are tighter in low dimensions, ball bounds in high dimensions — which is
    exactly why the paper tunes the index choice per dataset.
    """

    kind = "ball"
