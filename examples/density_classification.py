"""Kernel density classification — the workload KARL's baseline was built
for (Gan & Bailis, SIGMOD'17; the paper's reference [15]).

Classify tumor-like samples by comparing class-conditional kernel
densities.  The decision is a single Type III threshold query at tau = 0,
so every prediction goes through the pruned KARL engine.  Also shows the
vectorised batch evaluator answering the same queries faster.

Run:  python examples/density_classification.py
"""

import time

import numpy as np

from repro import GaussianKernel, load_dataset, train_test_split
from repro.core.batch import BatchKernelAggregator
from repro.kde import KernelDensityClassifier


def main():
    # a two-class dataset (synthetic ijcnn1 stands in for labelled samples)
    ds = load_dataset("ijcnn1", size=12_000)
    Xtr, ytr, Xte, yte = train_test_split(ds.points, ds.labels, 0.2, rng=0)
    print(f"dataset: {ds.name}  train={len(ytr):,}  test={len(yte):,}  d={ds.d}")

    clf = KernelDensityClassifier(bandwidth="scott", leaf_capacity=40)
    t0 = time.perf_counter()
    clf.fit(Xtr, ytr)
    print(f"fitted signed-weight KDE index in {time.perf_counter() - t0:.2f} s "
          f"(gamma = {clf.gamma_:.1f})")

    t0 = time.perf_counter()
    acc = clf.score(Xte, yte)
    elapsed = time.perf_counter() - t0
    print(f"accuracy: {acc:.3f}   ({len(yte) / elapsed:,.0f} decisions/sec "
          f"via pruned TKAQ at tau=0)")

    # work saved per decision
    agg = clf.aggregator
    stats = [agg.tkaq(q, 0.0).stats for q in Xte[:300]]
    touched = np.mean([s.points_evaluated for s in stats])
    print(f"avg kernel evaluations per decision: {touched:.0f} of {len(ytr):,} "
          f"({touched / len(ytr):.1%})")

    # same decisions through the vectorised batch evaluator
    batch = BatchKernelAggregator(agg.tree, GaussianKernel(clf.gamma_))
    t0 = time.perf_counter()
    batch_preds = np.array(
        [1 if batch.tkaq(q, 0.0).answer else -1 for q in Xte]
    )
    batch_elapsed = time.perf_counter() - t0
    agree = np.mean(batch_preds == clf.predict(Xte))
    print(
        f"batch evaluator: {len(yte) / batch_elapsed:,.0f} decisions/sec, "
        f"{agree:.1%} agreement (identical bounds, vectorised schedule)"
    )


if __name__ == "__main__":
    main()
