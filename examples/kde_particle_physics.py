"""Kernel density estimation for particle searches (paper Figure 1).

Physicists use KDE to find dense regions in detector feature space (the
paper's miniboone motivation).  This example fits a Gaussian KDE with
Scott's-rule bandwidth on the synthetic miniboone dataset, renders the
density surface over the first two dimensions as ASCII art, and uses
threshold queries (TKAQ) to extract the "interesting" high-density cells —
the exact query the paper accelerates.

Run:  python examples/kde_particle_physics.py
"""

import numpy as np

from repro import KernelDensity, load_dataset
from repro.datasets import grid_queries

SHADES = " .:-=+*#%@"


def main():
    ds = load_dataset("miniboone", size=8000)
    print(f"dataset: {ds.name}  n={ds.n:,}  d={ds.d}")

    # project onto the first two dimensions, as the paper's Figure 1 does
    points_2d = ds.points[:, :2]
    kde = KernelDensity(bandwidth="scott").fit(points_2d)
    print(f"Scott bandwidth h={kde.bandwidth_:.4f}  ->  gamma={kde.gamma_:.1f}")

    # density surface on a grid
    per_dim = 44
    grid = grid_queries(0.0, 1.0, per_dim=per_dim, dims=2)
    dens = kde.density_many(grid, eps=0.1).reshape(per_dim, per_dim)

    # log shading: KDE surfaces are sharply peaked, like the paper's Fig. 1
    floor = dens.max() * 1e-4
    level = np.log(np.maximum(dens, floor) / floor)
    level = level / level.max() * (len(SHADES) - 1)
    print("\nDensity surface (dims 1-2), darker = denser (log scale):")
    for row in range(per_dim - 1, -1, -2):  # 2 rows per text line
        line = "".join(
            SHADES[int(level[col, row])] for col in range(per_dim)
        )
        print("   " + line)

    # threshold query: which grid cells exceed the mean aggregate of the
    # data points (the paper's mu working point)?
    mu = kde.mean_aggregate(points_2d[:200])
    tau = mu
    agg = kde.aggregator
    hot = sum(agg.tkaq(g, tau).answer for g in grid)
    print(
        f"\nTKAQ sweep: {hot}/{grid.shape[0]} grid cells above "
        f"tau = mu = {tau:.4f} (candidate signal regions)"
    )

    # show how cheap each threshold decision is vs scanning
    stats = [agg.tkaq(g, tau).stats for g in grid[:: per_dim]]
    touched = np.mean([s.points_evaluated for s in stats])
    print(
        f"average points touched per decision: {touched:.0f} of {ds.n:,} "
        f"({touched / ds.n:.1%})"
    )


if __name__ == "__main__":
    main()
