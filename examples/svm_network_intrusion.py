"""Network-intrusion detection with SVMs accelerated by KARL.

The paper motivates Types II and III with network security: 1-class SVMs
flag anomalous traffic, 2-class SVMs classify attack vs normal.  This
example trains both models from scratch (our SMO solvers) on the synthetic
nsl-kdd / kdd99 datasets, exports each decision function as a kernel
aggregation query, and shows that KARL answers it with a fraction of the
work of the LibSVM-style scan while returning identical predictions.

Run:  python examples/svm_network_intrusion.py
"""

import numpy as np

from repro import (
    GaussianKernel,
    KDTree,
    KernelAggregator,
    OneClassSVM,
    SVC,
    load_dataset,
    train_test_split,
)


def one_class_demo():
    print("=== 1-class SVM (Type II): anomaly detection on nsl-kdd ===")
    ds = load_dataset("nsl-kdd", size=4000)
    train, test = train_test_split(ds.points, test_fraction=0.25, rng=0)

    model = OneClassSVM(nu=0.15, kernel=GaussianKernel(1.0 / ds.d)).fit(train)
    sv, weights, tau = model.to_kaq()
    print(f"trained: {len(weights)} support vectors, rho = {tau:.4f}")

    tree = KDTree(sv, weights=weights, leaf_capacity=20)
    karl = KernelAggregator(tree, model.kernel)

    # KARL's TKAQ at tau = rho IS the inlier test
    karl_pred = np.array([1 if karl.tkaq(q, tau).answer else -1 for q in test])
    direct = model.predict(test)
    agree = np.mean(karl_pred == direct)
    touched = np.mean(
        [karl.tkaq(q, tau).stats.points_evaluated for q in test[:100]]
    )
    print(f"agreement with exact predictor: {agree:.1%}")
    print(
        f"flagged anomalies: {np.mean(karl_pred == -1):.1%} of test traffic; "
        f"avg {touched:.0f}/{len(weights)} SVs touched per decision\n"
    )


def two_class_demo():
    print("=== 2-class SVM (Type III): attack classification on ijcnn1 ===")
    ds = load_dataset("ijcnn1", size=6000)
    Xtr, ytr, Xte, yte = train_test_split(ds.points, ds.labels, 0.25, rng=0)

    model = SVC(C=1.0, kernel=GaussianKernel(1.0 / ds.d)).fit(Xtr, ytr)
    sv, weights, tau = model.to_kaq()
    acc = model.score(Xte, yte)
    print(
        f"trained: {len(weights)} support vectors "
        f"({(weights > 0).sum()} pos / {(weights < 0).sum()} neg), "
        f"rho = {tau:.4f}, test accuracy = {acc:.3f}"
    )

    tree = KDTree(sv, weights=weights, leaf_capacity=20)
    karl = KernelAggregator(tree, model.kernel)

    karl_pred = np.where(
        [karl.tkaq(q, tau).answer for q in Xte], 1, -1
    )
    direct = model.predict(Xte)  # LibSVM-style scan over the SVs
    print(f"agreement with exact predictor: {np.mean(karl_pred == direct):.1%}")

    stats = [karl.tkaq(q, tau).stats for q in Xte[:200]]
    touched = np.mean([s.points_evaluated for s in stats])
    iters = np.mean([s.iterations for s in stats])
    print(
        f"per decision: {iters:.1f} refinement steps, "
        f"{touched:.0f}/{len(weights)} kernel evaluations "
        f"(the exact predictor always pays {len(weights)})"
    )


if __name__ == "__main__":
    one_class_demo()
    two_class_demo()
