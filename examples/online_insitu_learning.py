"""In-situ / online kernel learning (paper Section III-C, Table IX).

In online learning the point set arrives with the queries, so index
construction and tuning count against the clock.  This example simulates a
stream of model refreshes: each round delivers a fresh point set and a
batch of queries; the in-situ evaluator builds one kd-tree, spends a small
sample of the batch probing truncated-tree depths (the paper's T_i trick),
and answers the rest at the best depth.  Three strategies are compared
end-to-end: pure scan, SOTA bounds with online tuning, and KARL with
online tuning.

Run:  python examples/online_insitu_learning.py
"""

import time

import numpy as np

from repro import GaussianKernel, OnlineTuner, ScanEvaluator, load_dataset
from repro.kde import scott_gamma


def main():
    rng = np.random.default_rng(3)
    rounds = 2
    n_queries = 1500
    totals = {"scan": 0.0, "SOTA_online": 0.0, "KARL_online": 0.0}

    print(f"Streaming {rounds} rounds of (new 50k-point model, "
          f"{n_queries}-query batch):\n")
    for rnd in range(rounds):
        ds = load_dataset("home", size=50_000, seed=rnd)
        kernel = GaussianKernel(scott_gamma(ds.points))
        queries = ds.sample_queries(n_queries, rng)

        # threshold from a handful of probes (the model's working point)
        scan = ScanEvaluator(ds.points, kernel)
        tau = float(np.mean([scan.exact(q) for q in queries[:10]]))

        t0 = time.perf_counter()
        scan_answers = [scan.exact(q) > tau for q in queries]
        scan_s = time.perf_counter() - t0
        totals["scan"] += scan_s
        print(f"round {rnd}:  scan {scan_s:6.2f} s", end="")

        for label, scheme in (("SOTA_online", "sota"), ("KARL_online", "karl")):
            tuner = OnlineTuner(
                kernel, scheme=scheme, sample_fraction=0.1,
                num_candidate_depths=5, leaf_capacity=40,
            )
            report = tuner.run(ds.points, None, queries, "tkaq", tau)
            assert report.answers == scan_answers, "answers must stay exact"
            totals[label] += report.total_seconds
            print(
                f"  |  {label} {report.total_seconds:5.2f} s "
                f"(build {report.build_seconds:.2f} + tune "
                f"{report.tune_seconds:.2f} + query {report.query_seconds:.2f}, "
                f"depth {report.best_depth})",
                end="",
            )
        print()

    print("\nend-to-end throughput (queries/sec, build + tune included):")
    for label, seconds in totals.items():
        print(f"  {label:12s} {rounds * n_queries / seconds:8.0f} q/s")
    print("\n(answers verified identical for every method, every round)")


if __name__ == "__main__":
    main()
