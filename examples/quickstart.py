"""Quickstart: kernel aggregation queries with KARL in five minutes.

Builds an index over a clustered point set, then answers the paper's two
query types — threshold (TKAQ) and approximate (eKAQ) — and shows how much
work the linear bounds save compared with a sequential scan.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GaussianKernel,
    KDTree,
    KernelAggregator,
    ScanEvaluator,
)


def main():
    rng = np.random.default_rng(7)

    # --- a clustered dataset in [0, 1]^8 ---------------------------------
    centers = rng.random((10, 8))
    points = np.clip(
        centers[rng.integers(0, 10, 50_000)]
        + 0.04 * rng.standard_normal((50_000, 8)),
        0.0, 1.0,
    )

    # --- index + evaluator ------------------------------------------------
    kernel = GaussianKernel(gamma=25.0)
    tree = KDTree(points, leaf_capacity=80)
    karl = KernelAggregator(tree, kernel, scheme="karl")
    scan = ScanEvaluator(points, kernel)

    q = points[0] + 0.01 * rng.standard_normal(8)
    exact = scan.exact(q)
    print(f"exact aggregate  F_P(q) = {exact:.2f}   (n = {tree.n:,} points)")

    # --- TKAQ: is F_P(q) above a threshold? -------------------------------
    tau = 0.5 * exact
    res = karl.tkaq(q, tau)
    print(
        f"TKAQ(tau={tau:.2f})  ->  {res.answer}   "
        f"[{res.stats.iterations} refinement steps, "
        f"{res.stats.points_evaluated:,}/{tree.n:,} points touched]"
    )

    # --- eKAQ: estimate with guaranteed relative error --------------------
    res = karl.ekaq(q, eps=0.1)
    rel_err = abs(res.estimate - exact) / exact
    print(
        f"eKAQ(eps=0.1)    ->  {res.estimate:.2f}   "
        f"[true rel. error {rel_err:.4f}, "
        f"{res.stats.points_evaluated:,} points touched]"
    )

    # --- KARL vs the state-of-the-art bounds ------------------------------
    sota = KernelAggregator(tree, kernel, scheme="sota")
    karl_iters = sum(karl.tkaq(p, tau).stats.iterations for p in points[:50])
    sota_iters = sum(sota.tkaq(p, tau).stats.iterations for p in points[:50])
    print(
        f"refinement steps over 50 queries:  "
        f"KARL {karl_iters:,}  vs  SOTA {sota_iters:,}  "
        f"({sota_iters / max(karl_iters, 1):.1f}x fewer with linear bounds)"
    )


if __name__ == "__main__":
    main()
