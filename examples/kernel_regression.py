"""Kernel regression on the KARL engine (the paper's future-work direction).

Nadaraya-Watson regression is a ratio of two kernel aggregates, so both
its numerator and denominator ride on KARL's index + linear bounds.  This
example fits a noisy 2-d surface, compares exact vs eKAQ-approximate
predictions, and shows the pruning saving.

Run:  python examples/kernel_regression.py
"""

import time

import numpy as np

from repro import GaussianKernel, NadarayaWatson


def target(X):
    return np.sin(4.0 * X[:, 0]) * np.cos(3.0 * X[:, 1])


def main():
    rng = np.random.default_rng(5)
    X = rng.random((30_000, 2))
    y = target(X) + 0.1 * rng.standard_normal(len(X))

    model = NadarayaWatson(kernel=GaussianKernel(150.0), leaf_capacity=80)
    t0 = time.perf_counter()
    model.fit(X, y)
    print(f"fitted two indexes over {len(X):,} points "
          f"in {time.perf_counter() - t0:.2f} s")

    grid = rng.random((200, 2))
    truth = target(grid)

    t0 = time.perf_counter()
    exact = model.predict(grid)
    exact_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    approx = model.predict(grid, eps=0.15)
    approx_s = time.perf_counter() - t0

    rmse_exact = float(np.sqrt(np.mean((exact - truth) ** 2)))
    rmse_approx = float(np.sqrt(np.mean((approx - truth) ** 2)))
    drift = float(np.max(np.abs(exact - approx)))

    print(f"exact prediction  : rmse {rmse_exact:.4f}  ({exact_s:.2f} s)")
    print(f"eKAQ prediction   : rmse {rmse_approx:.4f}  ({approx_s:.2f} s)")
    print(f"max |exact - approx| = {drift:.4f} "
          f"(bounded by the eps=0.15 guarantees on both aggregates)")


if __name__ == "__main__":
    main()
