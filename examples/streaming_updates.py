"""Streaming model maintenance under concept drift.

Online kernel learning (the motivation behind the paper's in-situ
scenario) keeps inserting points while queries arrive.  This example
feeds a drifting stream into the main+buffer :class:`StreamingAggregator`
and shows that (i) answers stay exact at every moment, (ii) rebuilds are
amortised, and (iii) the density surface tracks the drift.

Run:  python examples/streaming_updates.py
"""

import time

import numpy as np

from repro import GaussianKernel, StreamingAggregator
from repro.baselines import ScanEvaluator
from repro.datasets import DriftStream


def main():
    kernel = GaussianKernel(40.0)
    stream = DriftStream(d=5, batch_size=3000, clusters=5, drift=0.03, seed=11)
    sa = StreamingAggregator(kernel, leaf_capacity=40, min_buffer=512,
                             rebuild_fraction=0.3)

    all_points = []
    probe = None
    print("round |      n | rebuilds | F(probe)  | verify | insert+query ms")
    print("------+--------+----------+-----------+--------+----------------")
    for rnd in range(10):
        batch = stream.next_batch()
        if probe is None:
            probe = batch[0].copy()  # a fixed location to watch drift at

        t0 = time.perf_counter()
        sa.insert(batch)
        f_probe = sa.exact(probe)
        answers = [sa.tkaq(q, f_probe).answer for q in batch[:50]]
        elapsed = (time.perf_counter() - t0) * 1e3

        all_points.append(batch)
        scan = ScanEvaluator(np.vstack(all_points), kernel)
        exact = [scan.exact(q) > f_probe for q in batch[:50]]
        ok = "OK" if answers == exact else "MISMATCH"
        print(f"{rnd:5d} | {sa.n:6d} | {sa.rebuilds:8d} | {f_probe:9.1f} "
              f"| {ok:6s} | {elapsed:8.0f}")

    print(
        f"\nthe aggregate at the fixed probe drifted upward with the stream "
        f"while every answer matched a full rescan; "
        f"{sa.rebuilds} rebuilds for 10 insert batches."
    )


if __name__ == "__main__":
    main()
