"""A guided tour of KARL's bound functions (paper Figures 3-5 and 8).

Prints, for each kernel profile, the SOTA constant bounds and KARL's
linear bounds on a sample interval, plus an ASCII sketch of the geometry:
the chord above a convex curve, the optimal tangent below it, and the
anchored "rotate-down / rotate-up" lines for S-shaped profiles.

Run:  python examples/bound_functions_tour.py
"""

import numpy as np

from repro.core.bounds import envelope_lines
from repro.core.profiles import (
    GaussianProfile,
    PolynomialProfile,
    SigmoidProfile,
)

WIDTH, HEIGHT = 64, 17


def sketch(profile, lo, hi, xbar):
    lower, upper = envelope_lines(profile, lo, hi, xbar)
    xs = np.linspace(lo, hi, WIDTH)
    curves = {
        "*": np.asarray(profile.value(xs), dtype=float),
        "^": upper(xs),
        "_": lower(xs),
    }
    lo_y = min(c.min() for c in curves.values())
    hi_y = max(c.max() for c in curves.values())
    span = hi_y - lo_y or 1.0
    canvas = [[" "] * WIDTH for _ in range(HEIGHT)]
    for ch in ("^", "_", "*"):  # curve drawn last so it wins overlaps
        ys = curves[ch]
        for i, y in enumerate(ys):
            row = int((y - lo_y) / span * (HEIGHT - 1))
            canvas[HEIGHT - 1 - row][i] = ch
    return "\n".join("   " + "".join(row) for row in canvas), lower, upper


def describe(title, profile, lo, hi, xs, ws):
    s0 = ws.sum()
    s1 = float(ws @ xs)
    exact = float(ws @ profile.value(xs))
    gmin, gmax = profile.range_on(lo, hi)
    art, lower, upper = sketch(profile, lo, hi, s1 / s0)

    print(f"\n=== {title} on [{lo:g}, {hi:g}] ===")
    print(f"shape: {profile.shape_on(lo, hi)}")
    print(art)
    print("   * curve    ^ KARL upper line    _ KARL lower line")
    print(f"exact aggregate          : {exact:12.5f}")
    print(f"SOTA bounds  (constant)  : [{s0 * gmin:12.5f}, {s0 * gmax:12.5f}]")
    print(
        f"KARL bounds  (linear)    : [{lower.aggregate(s0, s1):12.5f}, "
        f"{upper.aggregate(s0, s1):12.5f}]"
    )


def main():
    rng = np.random.default_rng(0)

    # Figure 3-5: convex exp(-x) — chord upper, optimal tangent lower
    xs = rng.uniform(0.2, 2.2, 12)
    describe(
        "Gaussian profile exp(-x)  (Figures 3-5)",
        GaussianProfile(1.0), 0.2, 2.2, xs, np.ones(12),
    )

    # Figure 8: odd polynomial x^3 — anchored rotate-down / rotate-up lines
    xs = rng.uniform(-1.0, 1.0, 12)
    describe(
        "cubic profile x^3  (Figure 8)",
        PolynomialProfile(1.0, 0.0, 3), -1.0, 1.0, xs, np.ones(12),
    )

    # sigmoid tanh(x) — the other S-shape (convex-then-concave)
    xs = rng.uniform(-2.0, 2.0, 12)
    describe(
        "sigmoid profile tanh(x)  (Section IV-B)",
        SigmoidProfile(1.0, 0.0), -2.0, 2.0, xs, np.ones(12),
    )

    # Theorem 1 in action: the tangent point that maximises the lower bound
    profile = GaussianProfile(1.0)
    xs = rng.uniform(0.5, 3.0, 200)
    ws = np.ones(200)
    t_opt = float(ws @ xs) / ws.sum()
    print("\n=== Theorem 1: optimal tangent point ===")
    print(f"t_opt = weighted mean of arguments = {t_opt:.4f}")
    from repro.core.linear import tangent

    for t in (xs.max(), t_opt, xs.min()):
        val = tangent(profile, t).aggregate(ws.sum(), float(ws @ xs))
        marker = "  <- maximum" if abs(t - t_opt) < 1e-12 else ""
        print(f"  lower bound from tangent at t={t:6.3f}: {val:10.4f}{marker}")


if __name__ == "__main__":
    main()
