"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs `wheel` for PEP 660 editable
installs on this setuptools version; `python setup.py develop` works offline.
Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
