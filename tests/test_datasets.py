"""Tests for synthetic generators, the dataset registry, PCA, and splits."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError, NotFittedError
from repro.datasets import (
    DATASET_SPECS,
    PCA,
    dataset_names,
    load_dataset,
    train_test_split,
)
from repro.datasets.synthetic import (
    MixtureSpec,
    gaussian_mixture,
    grid_queries,
    labeled_mixture,
)


class TestGaussianMixture:
    def test_shape_and_range(self, rng):
        spec = MixtureSpec(n=500, d=7)
        pts = gaussian_mixture(spec, rng)
        assert pts.shape == (500, 7)
        assert pts.min() >= 0.0
        assert pts.max() <= 1.0

    def test_clustered_not_uniform(self, rng):
        """Clustered draws concentrate mass: nearest-neighbour distances are
        much smaller than for uniform points."""
        spec = MixtureSpec(n=800, d=6, clusters=5, cluster_scale=0.02)
        pts = gaussian_mixture(spec, rng)
        uni = rng.random((800, 6))

        def mean_nn(x):
            d2 = np.sum((x[:100, None, :] - x[None, :, :]) ** 2, axis=2)
            np.fill_diagonal(d2[:, :100], np.inf)
            return np.sqrt(d2.min(axis=1)).mean()

        assert mean_nn(pts) < 0.5 * mean_nn(uni)

    def test_zipf_weights_skew_cluster_sizes(self, rng):
        spec = MixtureSpec(
            n=3000, d=2, clusters=6, cluster_scale=0.01,
            uniform_fraction=0.0, zipf_exponent=2.0,
        )
        pts = gaussian_mixture(spec, rng)
        # the heaviest cluster should hold far more than 1/6 of the points;
        # estimate cluster occupancy by rounding to cluster centers via kmeans-ish:
        # simpler: compare densities — top-decile local density >> uniform share
        from repro.kde import KernelDensity

        kde = KernelDensity(bandwidth=0.05).fit(pts)
        dens = kde.density_many(pts[:300])
        # heavy-head clusters: local density spans a wide dynamic range
        assert np.percentile(dens, 90) > 3 * np.percentile(dens, 10)

    def test_invalid_spec(self, rng):
        with pytest.raises(InvalidParameterError):
            gaussian_mixture(MixtureSpec(n=0, d=3), rng)


class TestLabeledMixture:
    def test_labels_are_pm_one(self, rng):
        pts, labels = labeled_mixture(MixtureSpec(n=400, d=5), rng)
        assert set(np.unique(labels)) == {-1.0, 1.0}
        assert pts.shape == (400, 5)

    def test_both_classes_present(self, rng):
        _, labels = labeled_mixture(MixtureSpec(n=400, d=5), rng)
        assert (labels == 1).sum() > 50
        assert (labels == -1).sum() > 50

    def test_overlap_increases_class_mixing(self, rng):
        """Higher overlap => a 1-NN classifier does worse."""

        def nn_accuracy(overlap):
            gen = np.random.default_rng(0)
            pts, labels = labeled_mixture(
                MixtureSpec(n=600, d=4), gen, overlap=overlap
            )
            d2 = np.sum((pts[:200, None] - pts[None, 200:]) ** 2, axis=2)
            nn = np.argmin(d2, axis=1)
            return np.mean(labels[:200] == labels[200:][nn])

        assert nn_accuracy(0.9) < nn_accuracy(0.0) + 1e-9

    def test_grid_queries(self):
        g = grid_queries(0.0, 1.0, per_dim=5, dims=2)
        assert g.shape == (25, 2)
        assert g.min() == 0.0
        assert g.max() == 1.0


class TestRegistry:
    def test_all_specs_materialise(self):
        for name in dataset_names():
            ds = load_dataset(name, size=200)
            spec = DATASET_SPECS[name]
            assert ds.n == 200
            assert ds.d == spec.d
            assert ds.weighting == spec.weighting
            if spec.model == "svc":
                assert ds.labels is not None
            else:
                assert ds.labels is None

    def test_deterministic(self):
        a = load_dataset("home", size=300, seed=7)
        b = load_dataset("home", size=300, seed=7)
        assert np.array_equal(a.points, b.points)

    def test_seed_changes_data(self):
        a = load_dataset("home", size=300, seed=1)
        b = load_dataset("home", size=300, seed=2)
        assert not np.array_equal(a.points, b.points)

    def test_different_names_differ(self):
        a = load_dataset("nsl-kdd", size=300)
        b = load_dataset("kdd99", size=300)
        assert a.d == b.d == 41
        assert not np.array_equal(a.points, b.points)

    def test_weighting_filter(self):
        assert set(dataset_names("I")) == {"mnist", "miniboone", "home", "susy"}
        assert set(dataset_names("II")) == {"nsl-kdd", "kdd99", "covtype"}
        assert set(dataset_names("III")) == {"ijcnn1", "a9a", "covtype-b"}

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            load_dataset("cifar10")

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            load_dataset("home", size=0)

    def test_sample_queries(self, rng):
        ds = load_dataset("home", size=500)
        q = ds.sample_queries(50, rng)
        assert q.shape == (50, ds.d)
        # all queries come from the dataset
        assert all((ds.points == row).all(axis=1).any() for row in q[:5])


class TestPCA:
    def test_components_orthonormal(self, rng):
        pca = PCA(3).fit(rng.random((100, 8)))
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(3), atol=1e-9)

    def test_variance_ordering(self, rng):
        pca = PCA(4).fit(rng.standard_normal((200, 6)) * [5, 3, 2, 1, 0.5, 0.1])
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-9)

    def test_reconstruction_improves_with_components(self, rng):
        X = rng.standard_normal((150, 10)) * np.linspace(3, 0.1, 10)

        def recon_error(k):
            p = PCA(k).fit(X)
            return float(np.mean((p.inverse_transform(p.transform(X)) - X) ** 2))

        assert recon_error(8) < recon_error(2)

    def test_full_rank_exact_reconstruction(self, rng):
        X = rng.standard_normal((50, 5))
        p = PCA(5).fit(X)
        assert np.allclose(p.inverse_transform(p.transform(X)), X, atol=1e-9)

    def test_transform_shape(self, rng):
        p = PCA(2).fit(rng.random((40, 6)))
        assert p.transform(rng.random((7, 6))).shape == (7, 2)

    def test_component_count_validated(self, rng):
        with pytest.raises(InvalidParameterError):
            PCA(0)
        with pytest.raises(InvalidParameterError):
            PCA(10).fit(rng.random((20, 3)))

    def test_unfitted(self, rng):
        with pytest.raises(NotFittedError):
            PCA(2).transform(rng.random((5, 4)))


class TestSplit:
    def test_partition_sizes(self, rng):
        X = rng.random((100, 3))
        tr, te = train_test_split(X, test_fraction=0.25, rng=0)
        assert tr.shape[0] == 75
        assert te.shape[0] == 25

    def test_with_labels(self, rng):
        X = rng.random((100, 3))
        y = (rng.random(100) > 0.5).astype(float)
        trX, trY, teX, teY = train_test_split(X, y, 0.2, rng=0)
        assert trX.shape[0] == trY.shape[0] == 80
        assert teX.shape[0] == teY.shape[0] == 20

    def test_no_overlap_and_complete(self, rng):
        X = np.arange(50, dtype=float)[:, None]
        tr, te = train_test_split(X, test_fraction=0.3, rng=1)
        combined = np.sort(np.concatenate([tr, te]).ravel())
        assert np.array_equal(combined, np.arange(50, dtype=float))

    def test_invalid_fraction(self, rng):
        with pytest.raises(InvalidParameterError):
            train_test_split(rng.random((10, 2)), test_fraction=0.0)
