"""Tests for repro.serve: protocol, policy, batching, and a live server.

The live-server tests run a real :class:`KAQServer` on an ephemeral
loopback port (an event loop on a background thread) and talk to it with
the blocking :class:`ServeClient` — the same path production traffic
takes, including micro-batching, shedding, deadlines, degradation, and
graceful drain.  The replay test then re-evaluates every served batch
offline and demands bitwise-identical numbers.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core import GaussianKernel, KernelAggregator
from repro.index import KDTree
from repro.obs import runtime as obs_runtime
from repro.serve import (
    AdmissionPolicy,
    BatchConfig,
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
    decode_request,
    encode,
)
from repro.serve.policy import RUNG_ORDER


@pytest.fixture
def obs_sandbox():
    """Isolate the module-global tracing state (CI may force-enable it)."""
    saved = (obs_runtime._ring, obs_runtime._sink, obs_runtime._compare)
    obs_runtime._ring = None
    obs_runtime._sink = None
    obs_runtime._compare = False
    yield
    obs_runtime._ring, obs_runtime._sink, obs_runtime._compare = saved


# ----------------------------------------------------------------------
# protocol unit tests (no server)
# ----------------------------------------------------------------------


class TestProtocol:
    def test_decode_valid_tkaq(self):
        req = decode_request(
            b'{"op":"tkaq","id":7,"q":[0.1,0.2],"tau":0.5,"deadline_ms":20}')
        assert req.op == "tkaq" and req.id == 7
        assert req.q == [0.1, 0.2] and req.tau == 0.5
        assert req.deadline_ms == 20.0 and req.param == 0.5

    def test_decode_valid_admin(self):
        assert decode_request(b'{"op":"health"}').op == "health"
        assert decode_request(b'{"op":"stats","id":"s1"}').id == "s1"

    @pytest.mark.parametrize("line,fragment", [
        (b"not json", "invalid JSON"),
        (b"[1,2,3]", "JSON object"),
        (b'{"op":"frobnicate","q":[1]}', "unknown op"),
        (b'{"op":"tkaq","q":[1.0]}', "requires 'tau'"),
        (b'{"op":"tkaq","q":[],"tau":1}', "non-empty"),
        (b'{"op":"tkaq","q":[1,null],"tau":1}', "must be numbers"),
        (b'{"op":"tkaq","q":[1,true],"tau":1}', "must be numbers"),
        (b'{"op":"tkaq","q":[1],"tau":"hi"}', "must be a number"),
        (b'{"op":"tkaq","q":[1],"tau":NaN}', "finite"),
        (b'{"op":"ekaq","q":[1],"eps":-0.1}', ">= 0"),
        (b'{"op":"ekaq","q":[1],"eps":0.1,"deadline_ms":-5}', ">= 0"),
    ])
    def test_decode_rejects(self, line, fragment):
        with pytest.raises(ProtocolError, match=re.escape(fragment)):
            decode_request(line)

    def test_decode_enforces_dimension(self):
        with pytest.raises(ProtocolError, match="3 coordinates"):
            decode_request(b'{"op":"exact","q":[1.0,2.0]}', dim=3)

    def test_error_carries_request_id(self):
        with pytest.raises(ProtocolError) as exc:
            decode_request(b'{"op":"tkaq","id":42,"q":[1]}')
        assert exc.value.request_id == 42
        assert exc.value.code == "bad_request"

    def test_encode_round_trips_floats_bitwise(self, rng):
        values = rng.standard_normal(64) * 10.0 ** rng.integers(-12, 12, 64)
        payload = {"xs": values.tolist()}
        back = json.loads(encode(payload))
        assert all(a == b for a, b in zip(back["xs"], values.tolist()))


class TestAdmissionPolicy:
    def test_queue_bound(self):
        pol = AdmissionPolicy(max_queue=3)
        assert pol.admit(0) and pol.admit(2)
        assert not pol.admit(3) and not pol.admit(100)

    def test_no_ceiling_never_degrades(self):
        pol = AdmissionPolicy(max_queue=10, eps_ceiling=None)
        assert pol.effective_eps(0.1, 10) == (0.1, False)

    def test_degradation_ramp(self):
        pol = AdmissionPolicy(max_queue=100, degrade_at=0.5, eps_ceiling=0.5)
        assert pol.effective_eps(0.1, 10) == (0.1, False)
        assert pol.effective_eps(0.1, 50) == (0.1, False)
        mid, deg = pol.effective_eps(0.1, 75)
        assert deg and 0.1 < mid < 0.5
        full, deg = pol.effective_eps(0.1, 100)
        assert deg and full == pytest.approx(0.5)

    def test_looser_than_ceiling_untouched(self):
        pol = AdmissionPolicy(max_queue=10, degrade_at=0.0, eps_ceiling=0.3)
        assert pol.effective_eps(0.4, 9) == (0.4, False)

    def test_expired(self):
        assert AdmissionPolicy.expired(1.0, 2.0)
        assert not AdmissionPolicy.expired(3.0, 2.0)
        assert not AdmissionPolicy.expired(None, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(degrade_at=1.5)
        with pytest.raises(ValueError):
            AdmissionPolicy(eps_ceiling=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(coreset_at=-0.1)
        # rung order is pinned: the contract-preserving rung may not be
        # scheduled after the contract-loosening one
        with pytest.raises(ValueError, match="RUNG_ORDER"):
            AdmissionPolicy(degrade_at=0.3, eps_ceiling=0.5, coreset_at=0.8)

    def test_rung_order_is_pinned(self):
        assert RUNG_ORDER == ("coreset", "eps_inflation", "partial")

    def test_active_rungs_precedence(self):
        pol = AdmissionPolicy(max_queue=100, degrade_at=0.5,
                              eps_ceiling=0.5, coreset_at=0.25)
        # rungs engage in RUNG_ORDER as load climbs; the reported tuple
        # is always a subsequence of RUNG_ORDER
        assert pol.active_rungs(0) == ("partial",)
        assert pol.active_rungs(25) == ("coreset", "partial")
        assert pol.active_rungs(60) == ("coreset", "eps_inflation",
                                        "partial")
        for depth in (0, 10, 25, 50, 60, 99):
            rungs = pol.active_rungs(depth)
            idx = [RUNG_ORDER.index(r) for r in rungs]
            assert idx == sorted(idx)

    def test_active_rungs_respects_toggles(self):
        pol = AdmissionPolicy(max_queue=100, partial_results=False)
        assert pol.active_rungs(99) == ()
        pol = AdmissionPolicy(max_queue=100)  # partial_results defaults on
        assert pol.partial_results is True
        assert pol.active_rungs(0) == ("partial",)


# ----------------------------------------------------------------------
# live-server harness
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def served_problem():
    rng = np.random.default_rng(31)
    centers = rng.random((5, 4))
    pts = np.clip(centers[rng.integers(0, 5, 2500)]
                  + 0.05 * rng.standard_normal((2500, 4)), 0.0, 1.0)
    tree = KDTree(pts, leaf_capacity=40)
    kernel = GaussianKernel(8.0)
    return pts, tree, kernel


def make_server(served_problem, **overrides) -> ServerThread:
    pts, tree, kernel = served_problem
    agg = KernelAggregator(tree, kernel)
    config = ServeConfig(
        port=0,
        batch=overrides.pop("batch", BatchConfig(max_batch=16)),
        policy=overrides.pop("policy", AdmissionPolicy(max_queue=256)),
        **overrides)
    return ServerThread(agg, config)


# ----------------------------------------------------------------------
# live-server tests
# ----------------------------------------------------------------------


class TestLiveServer:
    def test_health_and_stats(self, served_problem):
        with make_server(served_problem) as st:
            with ServeClient(port=st.port) as client:
                h = client.check(client.health())
                assert h["status"] == "serving"
                assert h["n_points"] == 2500 and h["d"] == 4
                assert h["kernel"] == "GaussianKernel"
                s = client.check(client.stats())
                assert s["queue_depth"] == 0
                assert set(s["windows_us"]) == {"tkaq", "ekaq", "exact",
                                                "refine"}
                assert "serve.requests_total" in s["counters"]

    def test_single_ops_match_offline(self, served_problem):
        pts, tree, kernel = served_problem
        agg = KernelAggregator(tree, kernel)
        with make_server(served_problem) as st:
            with ServeClient(port=st.port) as client:
                for q in pts[:5]:
                    exact = agg.exact(q)
                    r = client.check(client.exact(q))
                    # served exact goes through exact_many — bitwise match
                    assert r["value"] == agg.exact_many(q[None, :])[0]
                    assert r["value"] == pytest.approx(exact, rel=1e-12)
                    tau = exact * 0.9
                    r = client.check(client.tkaq(q, tau))
                    assert r["answer"] == bool(exact > tau)
                    assert r["lower"] <= exact <= r["upper"]
                    r = client.check(client.ekaq(q, 0.1))
                    assert abs(r["estimate"] - exact) <= 0.1 * exact
                    assert r["served_eps"] == 0.1 and not r["degraded"]

    def test_refine_op_served(self, served_problem):
        pts, tree, kernel = served_problem
        agg = KernelAggregator(tree, kernel)
        with make_server(served_problem) as st:
            with ServeClient(port=st.port) as client:
                q = pts[3]
                exact = agg.exact(q)
                prev_width = np.inf
                for rounds in (0, 8, 64):
                    r = client.check(client.refine(q, rounds))
                    assert r["lower"] <= exact <= r["upper"]
                    assert r["served_rounds"] == rounds
                    width = r["upper"] - r["lower"]
                    assert width <= prev_width + 1e-12
                    prev_width = width

    def test_concurrent_clients_mixed_params(self, served_problem):
        """Several pipelining connections, heterogeneous tau/eps merged
        into shared micro-batches; every answer individually correct."""
        pts, tree, kernel = served_problem
        agg = KernelAggregator(tree, kernel)
        exact = {i: agg.exact(pts[i]) for i in range(40)}
        errors: list = []

        def client_run(offset):
            try:
                with ServeClient(port=port) as client:
                    payloads = []
                    for i in range(offset, offset + 10):
                        if i % 2:
                            payloads.append({
                                "op": "tkaq", "q": pts[i].tolist(),
                                "tau": exact[i] * (0.8 + 0.05 * i)})
                        else:
                            payloads.append({
                                "op": "ekaq", "q": pts[i].tolist(),
                                "eps": 0.05 + 0.01 * (i % 7)})
                    responses = client.request_many(payloads)
                    for i, (p, r) in enumerate(zip(payloads, responses),
                                               start=offset):
                        assert r["ok"], r
                        if p["op"] == "tkaq":
                            assert r["answer"] == bool(exact[i] > p["tau"])
                        else:
                            bound = p["eps"] * exact[i]
                            assert abs(r["estimate"] - exact[i]) <= bound
            except Exception as exc:  # noqa: BLE001 - surface in main thread
                errors.append(exc)

        with make_server(served_problem) as st:
            port = st.port
            threads = [threading.Thread(target=client_run, args=(off,))
                       for off in (0, 10, 20, 30)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
        assert not errors, errors

    def test_batches_coalesce(self, served_problem):
        with make_server(served_problem) as st:
            with ServeClient(port=st.port) as client:
                pts = served_problem[0]
                responses = client.request_many([
                    {"op": "ekaq", "q": pts[i].tolist(), "eps": 0.2}
                    for i in range(32)])
        assert all(r["ok"] for r in responses)
        assert max(r["n_batch"] for r in responses) > 1
        n_batches = len({r["batch"] for r in responses})
        assert n_batches < 32  # strictly fewer batches than requests

    def test_bitwise_replay_of_served_batches(self, served_problem):
        """Reconstruct every served micro-batch offline and demand
        bitwise-equal numbers — the served answers ARE the engine's."""
        pts, tree, kernel = served_problem
        rng = np.random.default_rng(7)
        payloads = []
        for i in range(48):
            q = pts[rng.integers(0, len(pts))]
            if i % 2:
                payloads.append({"op": "tkaq", "q": q.tolist(),
                                 "tau": float(rng.uniform(1, 60))})
            else:
                payloads.append({"op": "ekaq", "q": q.tolist(),
                                 "eps": float(rng.uniform(0.02, 0.4))})
        with make_server(served_problem) as st:
            with ServeClient(port=st.port) as client:
                responses = client.request_many(payloads)
        assert all(r["ok"] for r in responses)

        agg = KernelAggregator(tree, kernel)
        by_batch: dict = {}
        for p, r in zip(payloads, responses):
            by_batch.setdefault((r["op"], r["batch"]), []).append((p, r))
        for (op, _), members in by_batch.items():
            members.sort(key=lambda pr: pr[1]["batch_index"])
            assert [r["batch_index"] for _, r in members] == \
                list(range(len(members)))
            Q = np.array([p["q"] for p, _ in members])
            backend = members[0][1]["backend"]
            if op == "tkaq":
                served = np.array([r["served_tau"] for _, r in members])
                res = agg.tkaq_many_results(Q, served, backend=backend)
                for i, (_, r) in enumerate(members):
                    assert r["answer"] == bool(res.answers[i])
                    assert r["lower"] == res.lower[i]
                    assert r["upper"] == res.upper[i]
            else:
                served = np.array([r["served_eps"] for _, r in members])
                res = agg.ekaq_many_results(Q, served, backend=backend)
                for i, (_, r) in enumerate(members):
                    assert r["estimate"] == res.estimates[i]
                    assert r["lower"] == res.lower[i]
                    assert r["upper"] == res.upper[i]

    def test_deadline_expired_dropped_before_evaluation(self, served_problem):
        pts = served_problem[0]
        batch = BatchConfig(max_batch=128, min_wait_us=30_000.0,
                            max_wait_us=30_000.0, initial_wait_us=30_000.0)
        with make_server(served_problem, batch=batch) as st:
            with ServeClient(port=st.port) as client:
                responses = client.request_many([
                    {"op": "ekaq", "q": pts[i].tolist(), "eps": 0.2,
                     "deadline_ms": 1.0}
                    for i in range(4)])
        # the 30ms batching window guarantees every 1ms deadline expires
        assert all(not r["ok"] and r["error"] == "deadline_exceeded"
                   for r in responses)

    def test_overload_sheds_explicitly(self, served_problem):
        pts = served_problem[0]
        batch = BatchConfig(max_batch=256, min_wait_us=50_000.0,
                            max_wait_us=50_000.0, initial_wait_us=50_000.0)
        policy = AdmissionPolicy(max_queue=4)
        with make_server(served_problem, batch=batch, policy=policy) as st:
            with ServeClient(port=st.port) as client:
                responses = client.request_many([
                    {"op": "ekaq", "q": pts[i % 50].tolist(), "eps": 0.2}
                    for i in range(40)])
        # no silent drops: every request got exactly one response
        assert len(responses) == 40
        shed = [r for r in responses if not r["ok"]]
        served = [r for r in responses if r["ok"]]
        assert all(r["error"] == "overloaded" for r in shed)
        assert shed, "expected load shedding with a 4-deep queue"
        assert served, "some admitted requests must still be answered"

    def test_overload_degrades_eps(self, served_problem):
        pts, tree, kernel = served_problem
        batch = BatchConfig(max_batch=64, min_wait_us=20_000.0,
                            max_wait_us=20_000.0, initial_wait_us=20_000.0)
        policy = AdmissionPolicy(max_queue=32, degrade_at=0.0,
                                 eps_ceiling=0.6)
        agg = KernelAggregator(tree, kernel)
        with make_server(served_problem, batch=batch, policy=policy) as st:
            with ServeClient(port=st.port) as client:
                responses = client.request_many([
                    {"op": "ekaq", "q": pts[i].tolist(), "eps": 0.05}
                    for i in range(20)])
        assert all(r["ok"] for r in responses)
        degraded = [r for r in responses if r["degraded"]]
        assert degraded, "queue pressure should have relaxed some requests"
        for i, r in enumerate(responses):
            assert r["served_eps"] >= 0.05
            if r["degraded"]:
                assert r["served_eps"] > 0.05
            exact = agg.exact(np.asarray(pts[i]))
            # the served tolerance is the contract actually honoured
            assert abs(r["estimate"] - exact) <= r["served_eps"] * exact

    def test_errors_are_convertible(self, served_problem):
        with make_server(served_problem) as st:
            with ServeClient(port=st.port) as client:
                bad = client.request({"op": "tkaq", "q": [0.1], "tau": 1.0})
                assert not bad["ok"] and bad["error"] == "bad_request"
                with pytest.raises(ServeError, match="bad_request"):
                    client.check(bad)

    def test_shutdown_drains_and_closes_aggregator(self, served_problem):
        pts = served_problem[0]
        st = make_server(served_problem).start()
        agg = st.server._agg
        with ServeClient(port=st.port) as client:
            client.check(client.ekaq(pts[0], 0.2))
            st.shutdown()
        assert agg._closed
        # serial backends still usable after the serving close()
        assert agg.exact(pts[0]) > 0


class TestServeObservability:
    def test_metrics_and_traces(self, served_problem, obs_sandbox):
        obs_runtime.enable()
        reg = obs_runtime.registry()
        before_sheds = reg.counter("serve.shed_total").value
        pts, tree, _ = served_problem
        with make_server(served_problem) as st:
            with ServeClient(port=st.port) as client:
                client.request_many([
                    {"op": "tkaq", "q": pts[i].tolist(), "tau": 5.0}
                    for i in range(12)])
                client.request_many([
                    {"op": "ekaq", "q": pts[i].tolist(), "eps": 0.2}
                    for i in range(12)])
        serve_traces = [t for t in obs_runtime.recent_traces()
                        if t.backend == "serve"]
        assert serve_traces, "serving should ingest umbrella batch traces"
        for t in serve_traces:
            assert t.kind in ("tkaq", "ekaq", "exact")
            assert t.n_points == tree.n
            # the serving layer's point-conservation law
            assert t.points_accounted() == t.n_queries * t.n_points
            assert t.wall_time > 0
        assert {t.kind for t in serve_traces} == {"tkaq", "ekaq"}
        assert reg.histogram("serve.batch_size").count >= len(serve_traces)
        assert reg.histogram("serve.queue_delay_seconds").count >= 24
        assert reg.counter("serve.requests_total").value >= 24
        assert reg.counter("serve.shed_total").value == before_sheds

    def test_deadline_and_shed_counters(self, served_problem, obs_sandbox):
        obs_runtime.enable()
        reg = obs_runtime.registry()
        pts = served_problem[0]
        batch = BatchConfig(max_batch=256, min_wait_us=30_000.0,
                            max_wait_us=30_000.0, initial_wait_us=30_000.0)
        policy = AdmissionPolicy(max_queue=6)
        misses0 = reg.counter("serve.deadline_miss_total").value
        sheds0 = reg.counter("serve.shed_total").value
        with make_server(served_problem, batch=batch, policy=policy) as st:
            with ServeClient(port=st.port) as client:
                responses = client.request_many(
                    [{"op": "ekaq", "q": pts[i % 50].tolist(), "eps": 0.2,
                      "deadline_ms": 1.0} for i in range(30)])
        codes = {r.get("error") for r in responses if not r["ok"]}
        assert reg.counter("serve.shed_total").value > sheds0
        assert reg.counter("serve.deadline_miss_total").value > misses0
        assert codes <= {"overloaded", "deadline_exceeded"}


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
class TestCLI:
    def test_cli_serves_and_drains_on_sigterm(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath("src")] + env.get("PYTHONPATH", "").split(
                os.pathsep)).rstrip(os.pathsep)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--dataset", "home",
             "--size", "2000", "--port", "0", "--max-batch", "8"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True)
        try:
            line = proc.stdout.readline()
            m = re.search(r"REPRO_SERVE_LISTENING host=(\S+) port=(\d+)",
                          line)
            assert m, line
            with ServeClient(host=m.group(1), port=int(m.group(2)),
                             timeout=30.0) as client:
                health = client.check(client.health())
                assert health["d"] == 10  # the home mirror is 10-d
                q = [0.5] * health["d"]
                r = client.check(client.ekaq(q, 0.2))
                assert r["estimate"] > 0
                proc.send_signal(signal.SIGTERM)
                deadline = time.monotonic() + 30
                while proc.poll() is None and time.monotonic() < deadline:
                    time.sleep(0.05)
            assert proc.returncode == 0, proc.stderr.read()
            rest = proc.stdout.read()
            assert "REPRO_SERVE_DRAINING" in rest
            assert "REPRO_SERVE_STOPPED" in rest
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
            proc.stderr.close()
