"""Unit and property tests for bounding-rectangle geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.errors import DataShapeError
from repro.index.rectangle import (
    bounding_rectangle,
    contains,
    ip_bounds_many,
    ip_max,
    ip_min,
    maxdist_sq,
    maxdist_sq_many,
    mindist_sq,
    mindist_sq_many,
    rect_dist_bounds_many,
)

finite = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)


def boxes_and_query(d=4, n_boxes=3):
    """Strategy producing (q, lo, hi) with lo <= hi elementwise."""
    arr = hnp.arrays(np.float64, (n_boxes, 2, d), elements=finite)
    q = hnp.arrays(np.float64, (d,), elements=finite)
    return st.tuples(q, arr).map(
        lambda t: (t[0], np.minimum(t[1][:, 0], t[1][:, 1]),
                   np.maximum(t[1][:, 0], t[1][:, 1]))
    )


class TestBoundingRectangle:
    def test_tightness(self, rng):
        pts = rng.random((50, 3))
        lo, hi = bounding_rectangle(pts)
        assert np.allclose(lo, pts.min(axis=0))
        assert np.allclose(hi, pts.max(axis=0))

    def test_single_point(self):
        lo, hi = bounding_rectangle(np.array([[1.0, 2.0]]))
        assert np.allclose(lo, hi)

    def test_rejects_empty(self):
        with pytest.raises(DataShapeError):
            bounding_rectangle(np.empty((0, 3)))

    def test_rejects_1d(self):
        with pytest.raises(DataShapeError):
            bounding_rectangle(np.array([1.0, 2.0]))


class TestMinMaxDist:
    def test_inside_box_mindist_zero(self):
        lo = np.zeros(3)
        hi = np.ones(3)
        assert mindist_sq(np.full(3, 0.5), lo, hi) == 0.0

    def test_outside_single_axis(self):
        lo = np.zeros(2)
        hi = np.ones(2)
        q = np.array([2.0, 0.5])
        assert mindist_sq(q, lo, hi) == pytest.approx(1.0)
        assert maxdist_sq(q, lo, hi) == pytest.approx(4.0 + 0.25)

    def test_corner_distance(self):
        lo = np.zeros(2)
        hi = np.ones(2)
        q = np.array([-1.0, -1.0])
        assert mindist_sq(q, lo, hi) == pytest.approx(2.0)
        assert maxdist_sq(q, lo, hi) == pytest.approx(8.0)

    @settings(max_examples=60, deadline=None)
    @given(boxes_and_query())
    def test_envelopes_random_points_in_box(self, data):
        q, lo, hi = data
        rng = np.random.default_rng(0)
        for b in range(lo.shape[0]):
            mind = mindist_sq(q, lo[b], hi[b])
            maxd = maxdist_sq(q, lo[b], hi[b])
            assert mind <= maxd + 1e-9
            # random points inside the box respect the envelope
            u = rng.random((40, lo.shape[1]))
            pts = lo[b] + u * (hi[b] - lo[b])
            d2 = np.sum((pts - q) ** 2, axis=1)
            assert np.all(d2 >= mind - 1e-7 * (1 + abs(mind)))
            assert np.all(d2 <= maxd + 1e-7 * (1 + abs(maxd)))

    @settings(max_examples=60, deadline=None)
    @given(boxes_and_query())
    def test_maxdist_attained_at_corner(self, data):
        q, lo, hi = data
        for b in range(lo.shape[0]):
            d = lo.shape[1]
            corners = np.array(
                [[lo[b][j] if (m >> j) & 1 else hi[b][j] for j in range(d)]
                 for m in range(2**d)]
            )
            d2 = np.sum((corners - q) ** 2, axis=1)
            assert maxdist_sq(q, lo[b], hi[b]) == pytest.approx(d2.max(), rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(boxes_and_query())
    def test_many_variants_match_scalar(self, data):
        q, lo, hi = data
        mind = mindist_sq_many(q, lo, hi)
        maxd = maxdist_sq_many(q, lo, hi)
        fused_min, fused_max = rect_dist_bounds_many(q, lo, hi)
        for b in range(lo.shape[0]):
            assert mind[b] == pytest.approx(mindist_sq(q, lo[b], hi[b]))
            assert maxd[b] == pytest.approx(maxdist_sq(q, lo[b], hi[b]))
        assert np.allclose(fused_min, mind)
        assert np.allclose(fused_max, maxd)


class TestInnerProductBounds:
    @settings(max_examples=60, deadline=None)
    @given(boxes_and_query())
    def test_ip_envelope(self, data):
        q, lo, hi = data
        rng = np.random.default_rng(1)
        for b in range(lo.shape[0]):
            lo_ip = ip_min(q, lo[b], hi[b])
            hi_ip = ip_max(q, lo[b], hi[b])
            assert lo_ip <= hi_ip + 1e-9
            u = rng.random((40, lo.shape[1]))
            pts = lo[b] + u * (hi[b] - lo[b])
            ips = pts @ q
            span = 1 + abs(lo_ip) + abs(hi_ip)
            assert np.all(ips >= lo_ip - 1e-7 * span)
            assert np.all(ips <= hi_ip + 1e-7 * span)

    @settings(max_examples=40, deadline=None)
    @given(boxes_and_query())
    def test_ip_many_matches_scalar(self, data):
        q, lo, hi = data
        mn, mx = ip_bounds_many(q, lo, hi)
        for b in range(lo.shape[0]):
            assert mn[b] == pytest.approx(ip_min(q, lo[b], hi[b]))
            assert mx[b] == pytest.approx(ip_max(q, lo[b], hi[b]))

    def test_ip_sign_selection(self):
        lo = np.array([-1.0, 2.0])
        hi = np.array([3.0, 5.0])
        q = np.array([2.0, -1.0])
        # dim0: q>0 -> min at lo, max at hi; dim1: q<0 -> min at hi, max at lo
        assert ip_min(q, lo, hi) == pytest.approx(2 * -1 + -1 * 5)
        assert ip_max(q, lo, hi) == pytest.approx(2 * 3 + -1 * 2)


class TestContains:
    def test_inside_and_outside(self):
        lo = np.zeros(2)
        hi = np.ones(2)
        assert contains(np.array([0.5, 0.5]), lo, hi)
        assert contains(np.array([0.0, 1.0]), lo, hi)
        assert not contains(np.array([1.5, 0.5]), lo, hi)

    def test_atol_slack(self):
        lo = np.zeros(1)
        hi = np.ones(1)
        assert contains(np.array([1.0 + 1e-9]), lo, hi, atol=1e-8)
