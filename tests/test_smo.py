"""Tests for the binary C-SVM SMO solver: feasibility, KKT, classification."""

import numpy as np
import pytest

from repro.core import GaussianKernel, PolynomialKernel
from repro.core.errors import DataShapeError, InvalidParameterError
from repro.svm.smo import solve_binary_svm


def separable_blobs(rng, n=120, gap=2.0):
    pos = rng.standard_normal((n // 2, 2)) * 0.3 + [gap, 0]
    neg = rng.standard_normal((n // 2, 2)) * 0.3 + [-gap, 0]
    X = np.vstack([pos, neg])
    y = np.array([1.0] * (n // 2) + [-1.0] * (n // 2))
    perm = rng.permutation(n)
    return X[perm], y[perm]


def decision(X, y, alpha, rho, kernel, queries):
    coef = alpha * y
    return np.array(
        [float(coef @ kernel.pairwise(q, X)) - rho for q in np.atleast_2d(queries)]
    )


class TestFeasibility:
    def test_box_and_equality_constraints(self, rng):
        X, y = separable_blobs(rng)
        kernel = GaussianKernel(0.5)
        sol = solve_binary_svm(X, y, kernel, C=1.0)
        assert np.all(sol.alpha >= -1e-12)
        assert np.all(sol.alpha <= 1.0 + 1e-12)
        assert float(y @ sol.alpha) == pytest.approx(0.0, abs=1e-9)
        assert sol.converged

    def test_some_support_vectors_exist(self, rng):
        X, y = separable_blobs(rng)
        sol = solve_binary_svm(X, y, GaussianKernel(0.5), C=1.0)
        assert sol.support_mask().sum() >= 2


class TestKKT:
    def test_margin_conditions(self, rng):
        """Free SVs sit on the margin; others respect the inequalities."""
        X, y = separable_blobs(rng, gap=1.2)
        kernel = GaussianKernel(0.5)
        C = 1.0
        sol = solve_binary_svm(X, y, kernel, C=C, tol=1e-4)
        f = decision(X, y, sol.alpha, sol.rho, kernel, X)
        margins = y * f
        free = (sol.alpha > 1e-6) & (sol.alpha < C - 1e-6)
        if free.any():
            assert np.allclose(margins[free], 1.0, atol=5e-3)
        at_zero = sol.alpha <= 1e-6
        assert np.all(margins[at_zero] >= 1.0 - 5e-3)
        at_C = sol.alpha >= C - 1e-6
        assert np.all(margins[at_C] <= 1.0 + 5e-3)


class TestClassification:
    def test_separable_data_perfectly_classified(self, rng):
        X, y = separable_blobs(rng)
        kernel = GaussianKernel(0.5)
        sol = solve_binary_svm(X, y, kernel, C=10.0)
        preds = np.sign(decision(X, y, sol.alpha, sol.rho, kernel, X))
        assert np.mean(preds == y) == 1.0

    def test_polynomial_kernel_training(self, rng):
        X, y = separable_blobs(rng)
        X = X / 3.0  # keep dot products tame for degree-3
        kernel = PolynomialKernel(gamma=1.0, coef0=1.0, degree=3)
        sol = solve_binary_svm(X, y, kernel, C=5.0)
        preds = np.sign(decision(X, y, sol.alpha, sol.rho, kernel, X))
        assert np.mean(preds == y) >= 0.95

    def test_xor_needs_nonlinear_kernel(self, rng):
        """Gaussian SVM solves XOR — a sanity check that the dual solver
        really optimises the kernelised objective."""
        n = 200
        X = rng.uniform(-1, 1, (n, 2))
        y = np.where(X[:, 0] * X[:, 1] > 0, 1.0, -1.0)
        kernel = GaussianKernel(4.0)
        sol = solve_binary_svm(X, y, kernel, C=10.0)
        preds = np.sign(decision(X, y, sol.alpha, sol.rho, kernel, X))
        assert np.mean(preds == y) >= 0.97


class TestValidation:
    def test_label_values_checked(self, rng):
        X = rng.random((10, 2))
        with pytest.raises(InvalidParameterError):
            solve_binary_svm(X, np.zeros(10), GaussianKernel(1.0))

    def test_single_class_rejected(self, rng):
        X = rng.random((10, 2))
        with pytest.raises(InvalidParameterError):
            solve_binary_svm(X, np.ones(10), GaussianKernel(1.0))

    def test_length_mismatch(self, rng):
        with pytest.raises(DataShapeError):
            solve_binary_svm(rng.random((10, 2)), np.ones(5), GaussianKernel(1.0))

    def test_nonpositive_C(self, rng):
        X, y = separable_blobs(rng, n=20)
        with pytest.raises(InvalidParameterError):
            solve_binary_svm(X, y, GaussianKernel(1.0), C=0.0)

    def test_max_iter_respected(self, rng):
        X, y = separable_blobs(rng, gap=0.1)
        sol = solve_binary_svm(X, y, GaussianKernel(1.0), C=1.0, max_iter=3)
        assert sol.iterations <= 3


class TestGramCacheFallback:
    def test_large_n_row_cache_path(self, rng):
        """n above the dense limit exercises the row-cache branch."""
        from repro.svm.smo import _GramCache

        X = rng.random((50, 3))
        kernel = GaussianKernel(1.0)
        dense = _GramCache(kernel, X, dense_limit=100)
        sparse = _GramCache(kernel, X, dense_limit=10, max_rows=4)
        for i in (0, 7, 21, 7, 49):
            assert np.allclose(dense.row(i), sparse.row(i))
        assert np.allclose(dense.diag(), sparse.diag())


class TestShrinking:
    def _overlapping_problem(self, rng, n=900):
        pos = rng.standard_normal((n // 2, 3)) * 0.6 + 0.3
        neg = rng.standard_normal((n // 2, 3)) * 0.6 - 0.3
        X = np.vstack([pos, neg])
        y = np.array([1.0] * (n // 2) + [-1.0] * (n // 2))
        perm = rng.permutation(n)
        return X[perm], y[perm]

    def test_same_solution_as_unshrunk(self, rng):
        X, y = self._overlapping_problem(rng)
        kernel = GaussianKernel(1.0)
        plain = solve_binary_svm(X, y, kernel, C=0.5, tol=1e-3)
        shrunk = solve_binary_svm(X, y, kernel, C=0.5, tol=1e-3, shrinking=True)
        assert shrunk.converged
        # identical decision behaviour (dual solutions may differ slightly
        # within tolerance; decisions must agree)
        f_plain = decision(X, y, plain.alpha, plain.rho, kernel, X[:100])
        f_shrunk = decision(X, y, shrunk.alpha, shrunk.rho, kernel, X[:100])
        agree = np.mean(np.sign(f_plain) == np.sign(f_shrunk))
        assert agree >= 0.98

    def test_shrunk_solution_satisfies_global_kkt(self, rng):
        from repro.svm.smo import _GramCache, _full_gradient, _max_violation

        X, y = self._overlapping_problem(rng)
        kernel = GaussianKernel(1.0)
        C = 0.5
        sol = solve_binary_svm(X, y, kernel, C=C, tol=1e-3, shrinking=True)
        gram = _GramCache(kernel, X)
        grad = _full_gradient(sol.alpha, y, gram, len(y))
        violation, _, _ = _max_violation(sol.alpha, grad, y, C)
        assert violation < 1e-3 + 1e-6

    def test_feasibility_maintained(self, rng):
        X, y = self._overlapping_problem(rng, n=600)
        sol = solve_binary_svm(X, y, GaussianKernel(1.0), C=0.3,
                               tol=1e-3, shrinking=True)
        assert np.all(sol.alpha >= -1e-12)
        assert np.all(sol.alpha <= 0.3 + 1e-12)
        assert float(y @ sol.alpha) == pytest.approx(0.0, abs=1e-9)

    def test_small_problems_bypass_shrinking(self, rng):
        X, y = separable_blobs(rng, n=60)
        a = solve_binary_svm(X, y, GaussianKernel(0.5), C=1.0)
        b = solve_binary_svm(X, y, GaussianKernel(0.5), C=1.0, shrinking=True)
        assert np.allclose(a.alpha, b.alpha)
        assert a.rho == pytest.approx(b.rho)
