"""Metamorphic properties of the full query pipeline.

Each test states an algebraic identity of the aggregation function and
checks that the *entire* indexed evaluation path (tree + bounds +
refinement) respects it — a class of bugs unit tests on components miss.
"""

import numpy as np
import pytest

from repro.core import GaussianKernel, KernelAggregator, LaplacianKernel
from repro.index import KDTree


def make_agg(pts, w, kernel, cap=20):
    return KernelAggregator(KDTree(pts, weights=w, leaf_capacity=cap), kernel)


@pytest.fixture
def base(rng):
    centers = rng.random((4, 3))
    pts = np.clip(
        centers[rng.integers(0, 4, 600)] + 0.08 * rng.standard_normal((600, 3)),
        0, 1,
    )
    w = rng.random(600)
    return pts, w


class TestWeightScaling:
    def test_aggregate_scales_linearly(self, base, rng):
        pts, w = base
        kernel = GaussianKernel(10.0)
        a = make_agg(pts, w, kernel)
        q = pts[0]
        for c in (0.1, 0.9, 3.7, 42.0):
            b = make_agg(pts, c * w, kernel)
            assert b.exact(q) == pytest.approx(c * a.exact(q), rel=1e-9)

    def test_tkaq_threshold_scales(self, base, rng):
        pts, w = base
        kernel = GaussianKernel(10.0)
        a = make_agg(pts, w, kernel)
        b = make_agg(pts, 3.0 * w, kernel)
        for q in pts[:10]:
            f = a.exact(q)
            for tau in (0.5 * f, 1.5 * f):
                assert a.tkaq(q, tau).answer == b.tkaq(q, 3.0 * tau).answer


class TestTranslationInvariance:
    def test_distance_kernels_are_shift_invariant(self, base, rng):
        pts, w = base
        shift = rng.standard_normal(3) * 5.0
        for kernel in (GaussianKernel(10.0), LaplacianKernel(2.0)):
            a = make_agg(pts, w, kernel)
            b = make_agg(pts + shift, w, kernel)
            for q in pts[:5]:
                assert b.exact(q + shift) == pytest.approx(
                    a.exact(q), rel=1e-7
                )
                res_a = a.ekaq(q, 0.2)
                res_b = b.ekaq(q + shift, 0.2)
                # both estimates must be within the band around the same F
                f = a.exact(q)
                for est in (res_a.estimate, res_b.estimate):
                    assert 0.8 * f - 1e-9 <= est <= 1.2 * f + 1e-9


class TestRotationInvariance:
    def test_orthogonal_transform_preserves_aggregate(self, base, rng):
        pts, w = base
        # random orthogonal matrix via QR
        m = rng.standard_normal((3, 3))
        qmat, _ = np.linalg.qr(m)
        kernel = GaussianKernel(10.0)
        a = make_agg(pts, w, kernel)
        b = make_agg(pts @ qmat.T, w, kernel)
        for q in pts[:5]:
            assert b.exact(qmat @ q) == pytest.approx(a.exact(q), rel=1e-7)
            # the tree differs entirely, but TKAQ answers must agree
            f = a.exact(q)
            assert (
                b.tkaq(qmat @ q, 0.7 * f).answer
                == a.tkaq(q, 0.7 * f).answer
                is True
            )


class TestUnionAdditivity:
    def test_aggregate_over_union_is_sum_of_parts(self, base, rng):
        pts, w = base
        kernel = GaussianKernel(10.0)
        half = len(pts) // 2
        a = make_agg(pts[:half], w[:half], kernel)
        b = make_agg(pts[half:], w[half:], kernel)
        both = make_agg(pts, w, kernel)
        q = rng.random(3)
        assert both.exact(q) == pytest.approx(a.exact(q) + b.exact(q), rel=1e-9)

    def test_duplicating_points_doubles_aggregate(self, base, rng):
        pts, w = base
        kernel = GaussianKernel(10.0)
        single = make_agg(pts, w, kernel)
        doubled = make_agg(
            np.vstack([pts, pts]), np.concatenate([w, w]), kernel
        )
        q = rng.random(3)
        assert doubled.exact(q) == pytest.approx(2 * single.exact(q), rel=1e-9)


class TestGammaMonotonicity:
    def test_larger_gamma_smaller_aggregate(self, base):
        pts, w = base
        q = pts[0]
        values = [
            make_agg(pts, w, GaussianKernel(g)).exact(q) for g in (1.0, 5.0, 25.0)
        ]
        assert values[0] >= values[1] >= values[2]


class TestWorkMonotonicity:
    def test_looser_eps_never_more_work(self, base):
        pts, w = base
        agg = make_agg(pts, w, GaussianKernel(10.0))
        for q in pts[:5]:
            tight = agg.ekaq(q, 0.05).stats
            loose = agg.ekaq(q, 0.4).stats
            assert loose.iterations <= tight.iterations

    def test_extreme_thresholds_are_cheap(self, base):
        pts, w = base
        agg = make_agg(pts, w, GaussianKernel(10.0))
        q = pts[0]
        f = agg.exact(q)
        near = agg.tkaq(q, f * 1.0001).stats.iterations
        far = agg.tkaq(q, f * 100.0).stats.iterations
        assert far <= near

    def test_leaf_capacity_one_extreme_still_correct(self, base):
        pts, w = base
        kernel = GaussianKernel(10.0)
        fine = make_agg(pts[:200], w[:200], kernel, cap=1)
        coarse = make_agg(pts[:200], w[:200], kernel, cap=200)
        q = pts[0]
        f = fine.exact(q)
        for tau in (0.5 * f, 2.0 * f):
            assert fine.tkaq(q, tau).answer == coarse.tkaq(q, tau).answer
