"""Tests for the benchmark harness: workloads, methods, timers, reporting."""

import numpy as np
import pytest

from repro.bench import (
    make_method,
    render_table,
    throughput_ekaq,
    throughput_tkaq,
    tune_method,
    type1_workload,
    type2_workload,
    type3_workload,
    workload_for,
)
from repro.core.errors import InvalidParameterError


@pytest.fixture(scope="module")
def wl1():
    return type1_workload("miniboone", n_queries=20, size=1500)


@pytest.fixture(scope="module")
def wl2():
    return type2_workload("nsl-kdd", n_queries=20, size=1200)


@pytest.fixture(scope="module")
def wl3():
    return type3_workload("ijcnn1", n_queries=20, size=1200)


class TestWorkloadBuilders:
    def test_type1_properties(self, wl1):
        assert wl1.weighting == "I"
        assert np.all(wl1.weights == 1.0)
        assert wl1.tau == pytest.approx(wl1.ensure_exact().mean())
        assert wl1.queries.shape == (20, wl1.d)

    def test_type2_properties(self, wl2):
        assert wl2.weighting == "II"
        assert np.all(wl2.weights > 0)
        assert wl2.n < 1200  # support vectors only

    def test_type3_properties(self, wl3):
        assert wl3.weighting == "III"
        assert (wl3.weights > 0).any()
        assert (wl3.weights < 0).any()

    def test_type3_polynomial(self):
        wl = type3_workload("ijcnn1", n_queries=10, size=800, polynomial=True)
        from repro.core import PolynomialKernel

        assert isinstance(wl.kernel, PolynomialKernel)
        assert wl.kernel.degree == 3
        assert wl.queries.min() >= -1.0 - 1e-9

    def test_workload_for_dispatch(self):
        assert workload_for("miniboone", 5, size=500).weighting == "I"
        assert workload_for("nsl-kdd", 5, size=500).weighting == "II"
        assert workload_for("ijcnn1", 5, size=500).weighting == "III"

    def test_sigma_positive(self, wl1):
        assert wl1.sigma() > 0

    def test_exact_values_cached(self, wl1):
        a = wl1.ensure_exact()
        assert wl1.ensure_exact() is a

    def test_type3_requires_labels(self):
        with pytest.raises(InvalidParameterError):
            type3_workload("home", n_queries=5, size=500)


class TestMethods:
    def test_all_methods_answer_identically(self, wl1):
        exact = wl1.ensure_exact()
        for m in ("scan", "sota", "karl", "hybrid"):
            ev = make_method(m, wl1, leaf_capacity=40)
            for q, f in zip(wl1.queries, exact):
                assert ev.tkaq(q, wl1.tau).answer == (f > wl1.tau)

    def test_unknown_method(self, wl1):
        with pytest.raises(InvalidParameterError):
            make_method("annoy", wl1)

    def test_tuned_method(self, wl1):
        agg, report = tune_method(
            "karl", wl1, "tkaq", kinds=("kd",), leaf_capacities=(40, 160),
            sample_size=5, rng=0,
        )
        assert len(report.candidates) == 2
        assert agg.scheme.name == "karl"


class TestTimers:
    def test_throughput_positive(self, wl1):
        ev = make_method("scan", wl1)
        t = throughput_tkaq(ev, wl1.queries, wl1.tau, min_seconds=0.05)
        assert float(t) > 0
        t2 = throughput_ekaq(ev, wl1.queries, wl1.eps, min_seconds=0.05)
        assert float(t2) > 0

    def test_repr(self, wl1):
        ev = make_method("scan", wl1)
        t = throughput_tkaq(ev, wl1.queries, wl1.tau, min_seconds=0.02)
        assert "q/s" in repr(t)


class TestReporting:
    def test_render_alignment(self):
        table = render_table(
            "Demo", ["name", "value"], [["alpha", 1.0], ["b", 123456.0]]
        )
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "alpha" in table
        assert "123,456" in table

    def test_float_formatting(self):
        table = render_table("T", ["x"], [[0.00123], [12.3], [0.0]])
        assert "0.00123" in table
        assert "12.3" in table

    def test_empty_rows(self):
        table = render_table("T", ["a", "b"], [])
        assert "a" in table


class TestWorkloadForUnknown:
    def test_unknown_dataset_raises(self):
        with pytest.raises(InvalidParameterError):
            workload_for("imagenet", 5, size=100)
