"""Property tests for the bound schemes — the mathematical heart of KARL.

The central invariant (paper Lemma 1): for any interval covering the
arguments and any non-negative weights,

    lower <= sum_i w_i g(x_i) <= upper

and KARL's bounds are never looser than SOTA's (Lemmas 3-4).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    HybridBounds,
    KARLBounds,
    SOTABounds,
    envelope_lines,
)
from repro.core.profiles import (
    CauchyProfile,
    EpanechnikovProfile,
    GaussianProfile,
    LaplacianProfile,
    PolynomialProfile,
    SigmoidProfile,
)

PROFILES = [
    GaussianProfile(1.0),
    GaussianProfile(7.0),
    LaplacianProfile(2.0),
    CauchyProfile(1.5),
    EpanechnikovProfile(0.4),
    EpanechnikovProfile(3.0),
    PolynomialProfile(1.0, 0.0, 2),
    PolynomialProfile(0.7, 0.3, 3),
    PolynomialProfile(1.2, -0.4, 3),
    PolynomialProfile(1.0, 0.0, 5),
    PolynomialProfile(2.0, 0.5, 1),
    PolynomialProfile(0.8, -0.1, 4),
    SigmoidProfile(1.0, 0.0),
    SigmoidProfile(0.6, 0.4),
    SigmoidProfile(2.0, -0.7),
]


def _domain(profile):
    """Argument domain to sample from: x >= 0 for distance profiles."""
    if isinstance(profile, (GaussianProfile, LaplacianProfile, CauchyProfile,
                            EpanechnikovProfile)):
        return 0.0, 8.0
    return -3.0, 3.0


@st.composite
def interval_and_args(draw, profile):
    lo_d, hi_d = _domain(profile)
    a = draw(st.floats(lo_d, hi_d))
    b = draw(st.floats(lo_d, hi_d))
    lo, hi = min(a, b), max(a, b)
    n = draw(st.integers(1, 12))
    xs = np.array([draw(st.floats(lo, hi)) for _ in range(n)])
    ws = np.array([draw(st.floats(0.0, 2.0)) for _ in range(n)])
    return lo, hi, xs, ws


@pytest.mark.parametrize("profile", PROFILES, ids=repr)
class TestEnvelopeValidity:
    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_envelope_sandwiches_pointwise(self, profile, data):
        lo, hi, xs, ws = data.draw(interval_and_args(profile))
        s0 = ws.sum()
        s1 = float(ws @ xs)
        xbar = s1 / s0 if s0 > 0 else 0.5 * (lo + hi)
        lower, upper = envelope_lines(profile, lo, hi, xbar)
        grid = np.linspace(lo, hi, 257)
        g = profile.value(grid)
        scale = 1e-9 * (1.0 + np.abs(g).max())
        assert np.all(lower(grid) <= g + scale)
        assert np.all(upper(grid) >= g - scale)

    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_karl_bounds_sandwich_aggregate(self, profile, data):
        lo, hi, xs, ws = data.draw(interval_and_args(profile))
        s0 = ws.sum()
        s1 = float(ws @ xs)
        exact = float(ws @ profile.value(xs))
        lb, ub = KARLBounds().part_bounds(profile, lo, hi, s0, s1)
        tol = 1e-8 * (1.0 + abs(exact))
        assert lb <= exact + tol
        assert ub >= exact - tol

    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_sota_bounds_sandwich_aggregate(self, profile, data):
        lo, hi, xs, ws = data.draw(interval_and_args(profile))
        s0 = ws.sum()
        s1 = float(ws @ xs)
        exact = float(ws @ profile.value(xs))
        lb, ub = SOTABounds().part_bounds(profile, lo, hi, s0, s1)
        tol = 1e-8 * (1.0 + abs(exact))
        assert lb <= exact + tol
        assert ub >= exact - tol

    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_karl_at_least_as_tight_as_sota(self, profile, data):
        """Lemmas 3-4: the linear bounds dominate the constant bounds."""
        lo, hi, xs, ws = data.draw(interval_and_args(profile))
        s0 = ws.sum()
        s1 = float(ws @ xs)
        klb, kub = KARLBounds().part_bounds(profile, lo, hi, s0, s1)
        slb, sub = SOTABounds().part_bounds(profile, lo, hi, s0, s1)
        tol = 1e-7 * (1.0 + abs(slb) + abs(sub))
        assert klb >= slb - tol
        assert kub <= sub + tol

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_hybrid_matches_karl(self, profile, data):
        lo, hi, xs, ws = data.draw(interval_and_args(profile))
        s0 = ws.sum()
        s1 = float(ws @ xs)
        klb, kub = KARLBounds().part_bounds(profile, lo, hi, s0, s1)
        hlb, hub = HybridBounds().part_bounds(profile, lo, hi, s0, s1)
        tol = 1e-7 * (1.0 + abs(klb) + abs(kub))
        assert hlb >= klb - tol
        assert hub <= kub + tol


class TestTypeIIICombination:
    def test_node_bounds_signed_parts(self):
        profile = GaussianProfile(2.0)
        scheme = KARLBounds()
        rng = np.random.default_rng(3)
        xs = rng.uniform(0.2, 1.5, 30)
        w = rng.standard_normal(30)
        lo, hi = xs.min(), xs.max()
        wp, wn = np.maximum(w, 0), np.maximum(-w, 0)
        pos = (wp.sum(), float(wp @ xs))
        neg = (wn.sum(), float(wn @ xs))
        exact = float(w @ profile.value(xs))
        lb, ub = scheme.node_bounds(profile, lo, hi, pos, neg)
        assert lb <= exact + 1e-9
        assert ub >= exact - 1e-9

    def test_empty_negative_part_is_identity(self):
        profile = GaussianProfile(1.0)
        scheme = KARLBounds()
        pos = (3.0, 2.0)
        a = scheme.node_bounds(profile, 0.1, 2.0, pos, None)
        b = scheme.node_bounds(profile, 0.1, 2.0, pos, (0.0, 0.0))
        assert a == b


class TestDegenerateCases:
    @pytest.mark.parametrize("profile", PROFILES, ids=repr)
    def test_zero_width_interval(self, profile):
        lo_d, _ = _domain(profile)
        x = lo_d + 0.7
        lb, ub = KARLBounds().part_bounds(profile, x, x, 2.0, 2.0 * x)
        exact = 2.0 * float(profile.value(x))
        assert lb == pytest.approx(exact, rel=1e-9)
        assert ub == pytest.approx(exact, rel=1e-9)

    def test_zero_mass_part(self):
        profile = GaussianProfile(1.0)
        assert KARLBounds().part_bounds(profile, 0.0, 1.0, 0.0, 0.0) == (0.0, 0.0)

    def test_envelope_degenerate_interval_constant_lines(self):
        profile = GaussianProfile(1.0)
        lower, upper = envelope_lines(profile, 1.0, 1.0, 1.0)
        assert lower.m == 0.0
        assert upper.m == 0.0
        assert lower.c == pytest.approx(float(profile.value(1.0)))


class TestKARLFastPathConsistency:
    """The inlined part_bounds must agree with the reference envelope_lines."""

    @pytest.mark.parametrize("profile", PROFILES, ids=repr)
    def test_fast_path_equals_reference(self, profile):
        rng = np.random.default_rng(11)
        lo_d, hi_d = _domain(profile)
        for _ in range(50):
            a, b = np.sort(rng.uniform(lo_d, hi_d, 2))
            if b - a < 1e-9:
                continue
            xs = rng.uniform(a, b, 8)
            ws = rng.uniform(0.0, 2.0, 8)
            s0, s1 = ws.sum(), float(ws @ xs)
            lower, upper = envelope_lines(profile, a, b, s1 / s0)
            ref = (lower.aggregate(s0, s1), upper.aggregate(s0, s1))
            fast = KARLBounds().part_bounds(profile, a, b, s0, s1)
            assert fast[0] == pytest.approx(ref[0], rel=1e-9, abs=1e-9)
            assert fast[1] == pytest.approx(ref[1], rel=1e-9, abs=1e-9)


class TestGaussianEnvelopeGeometry:
    """Spot-check the constructions of the paper's Figures 4 and 5."""

    def test_upper_is_the_chord(self):
        p = GaussianProfile(1.0)
        lo, hi = 0.3, 2.1
        _, upper = envelope_lines(p, lo, hi, 1.0)
        assert upper(lo) == pytest.approx(float(p.value(lo)))
        assert upper(hi) == pytest.approx(float(p.value(hi)))

    def test_lower_is_tangent_at_mean(self):
        p = GaussianProfile(1.0)
        lo, hi, xbar = 0.3, 2.1, 0.9
        lower, _ = envelope_lines(p, lo, hi, xbar)
        assert lower(xbar) == pytest.approx(float(p.value(xbar)))
        assert lower.m == pytest.approx(float(p.deriv(xbar)))

    def test_optimal_tangent_beats_endpoint_tangent(self):
        """Theorem 1: tangent at t_opt = mean dominates tangent at x_max."""
        from repro.core.linear import tangent

        p = GaussianProfile(1.0)
        rng = np.random.default_rng(5)
        xs = rng.uniform(0.5, 3.0, 40)
        ws = np.ones(40)
        s0, s1 = ws.sum(), float(ws @ xs)
        opt = tangent(p, s1 / s0).aggregate(s0, s1)
        endpoint = tangent(p, xs.max()).aggregate(s0, s1)
        assert opt >= endpoint

    def test_theorem1_topt_is_stationary_maximum(self):
        """H(t) of Theorem 1 peaks at t = mean of the arguments."""
        from repro.core.linear import tangent

        p = GaussianProfile(1.0)
        rng = np.random.default_rng(6)
        xs = rng.uniform(0.2, 4.0, 25)
        ws = rng.uniform(0.5, 1.5, 25)
        s0, s1 = ws.sum(), float(ws @ xs)
        t_opt = s1 / s0
        h_opt = tangent(p, t_opt).aggregate(s0, s1)
        for dt in (-0.3, -0.05, 0.05, 0.3):
            assert tangent(p, t_opt + dt).aggregate(s0, s1) <= h_opt + 1e-12
