"""Tests for the scalar kernel profiles: values, derivatives, shapes, ranges."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.profiles import (
    GaussianProfile,
    LaplacianProfile,
    PolynomialProfile,
    SigmoidProfile,
)


def numeric_deriv(profile, x, h=1e-6):
    return (profile.value(x + h) - profile.value(x - h)) / (2 * h)


class TestGaussianProfile:
    def test_values(self):
        p = GaussianProfile(2.0)
        assert p.value(0.0) == pytest.approx(1.0)
        assert p.value(1.0) == pytest.approx(np.exp(-2.0))

    def test_scalar_matches_array(self):
        p = GaussianProfile(3.0)
        xs = np.array([0.0, 0.5, 2.0])
        arr = p.value(xs)
        for i, x in enumerate(xs):
            assert p.value(float(x)) == pytest.approx(arr[i])
            assert p.deriv(float(x)) == pytest.approx(p.deriv(xs)[i])

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.0, 20.0))
    def test_derivative_matches_numeric(self, x):
        p = GaussianProfile(1.5)
        assert p.deriv(x) == pytest.approx(numeric_deriv(p, x), rel=1e-4, abs=1e-9)

    def test_shape_and_range(self):
        p = GaussianProfile(1.0)
        assert p.shape_on(0.0, 5.0) == "convex"
        gmin, gmax = p.range_on(1.0, 3.0)
        assert gmin == pytest.approx(np.exp(-3.0))
        assert gmax == pytest.approx(np.exp(-1.0))

    def test_rejects_bad_gamma(self):
        with pytest.raises(InvalidParameterError):
            GaussianProfile(0.0)
        with pytest.raises(InvalidParameterError):
            GaussianProfile(-1.0)


class TestLaplacianProfile:
    def test_value_is_exp_of_distance(self):
        p = LaplacianProfile(2.0)
        assert p.value(4.0) == pytest.approx(np.exp(-2.0 * 2.0))

    def test_convex_in_squared_distance(self):
        # midpoint test on a few intervals: g((a+b)/2) <= (g(a)+g(b))/2
        p = LaplacianProfile(1.3)
        for a, b in [(0.1, 2.0), (1.0, 9.0), (0.0, 1.0)]:
            mid = p.value((a + b) / 2)
            assert mid <= (p.value(a) + p.value(b)) / 2 + 1e-12

    def test_deriv_guarded_at_zero(self):
        p = LaplacianProfile(1.0)
        assert np.isfinite(p.deriv(0.0))

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.01, 20.0))
    def test_derivative_matches_numeric(self, x):
        p = LaplacianProfile(0.8)
        assert p.deriv(x) == pytest.approx(numeric_deriv(p, x), rel=1e-3, abs=1e-9)

    def test_range(self):
        p = LaplacianProfile(1.0)
        gmin, gmax = p.range_on(1.0, 4.0)
        assert gmin == pytest.approx(np.exp(-2.0))
        assert gmax == pytest.approx(np.exp(-1.0))


class TestPolynomialProfile:
    def test_degree_validation(self):
        with pytest.raises(InvalidParameterError):
            PolynomialProfile(1.0, 0.0, 0)
        with pytest.raises(InvalidParameterError):
            PolynomialProfile(1.0, 0.0, 2.5)

    def test_linear_shape(self):
        p = PolynomialProfile(2.0, 1.0, 1)
        assert p.shape_on(-5.0, 5.0) == "linear"
        assert p.value(2.0) == pytest.approx(5.0)

    def test_even_degree_convex(self):
        p = PolynomialProfile(1.0, 0.0, 4)
        assert p.shape_on(-3.0, 3.0) == "convex"
        assert p.inflection is None

    def test_odd_degree_shapes(self):
        p = PolynomialProfile(1.0, 0.0, 3)
        assert p.inflection == pytest.approx(0.0)
        assert p.shape_on(-2.0, -0.5) == "concave"
        assert p.shape_on(0.5, 2.0) == "convex"
        assert p.shape_on(-1.0, 1.0) == "s_convex_right"

    def test_inflection_shifts_with_coef0(self):
        p = PolynomialProfile(2.0, 1.0, 3)
        assert p.inflection == pytest.approx(-0.5)

    def test_even_range_includes_zero_at_root(self):
        p = PolynomialProfile(1.0, -1.0, 2)  # root at x=1
        gmin, gmax = p.range_on(0.0, 2.0)
        assert gmin == 0.0
        assert gmax == pytest.approx(1.0)

    def test_even_range_without_root(self):
        p = PolynomialProfile(1.0, 0.0, 2)
        gmin, gmax = p.range_on(1.0, 2.0)
        assert gmin == pytest.approx(1.0)
        assert gmax == pytest.approx(4.0)

    def test_odd_range_monotone(self):
        p = PolynomialProfile(1.0, 0.0, 3)
        gmin, gmax = p.range_on(-2.0, 1.0)
        assert gmin == pytest.approx(-8.0)
        assert gmax == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(-3.0, 3.0), st.integers(1, 6))
    def test_derivative_matches_numeric(self, x, deg):
        p = PolynomialProfile(0.9, 0.3, deg)
        assert p.deriv(x) == pytest.approx(
            numeric_deriv(p, x), rel=1e-3, abs=1e-6
        )


class TestSigmoidProfile:
    def test_shapes(self):
        p = SigmoidProfile(1.0, 0.0)
        assert p.shape_on(-3.0, -0.5) == "convex"
        assert p.shape_on(0.5, 3.0) == "concave"
        assert p.shape_on(-1.0, 1.0) == "s_concave_right"

    def test_range_monotone(self):
        p = SigmoidProfile(1.0, 0.0)
        gmin, gmax = p.range_on(-1.0, 2.0)
        assert gmin == pytest.approx(np.tanh(-1.0))
        assert gmax == pytest.approx(np.tanh(2.0))

    @settings(max_examples=40, deadline=None)
    @given(st.floats(-5.0, 5.0))
    def test_derivative_matches_numeric(self, x):
        p = SigmoidProfile(0.7, -0.2)
        assert p.deriv(x) == pytest.approx(numeric_deriv(p, x), rel=1e-3, abs=1e-9)

    def test_deriv_overflow_guard(self):
        p = SigmoidProfile(1.0, 0.0)
        assert p.deriv(1e6) == 0.0
        assert p.deriv(-1e6) == 0.0
        arr = p.deriv(np.array([0.0, 1e6]))
        assert arr[0] == pytest.approx(1.0)
        assert arr[1] == 0.0

    def test_scalar_matches_array(self):
        p = SigmoidProfile(1.2, 0.5)
        xs = np.array([-1.0, 0.0, 2.0])
        arr_v = p.value(xs)
        arr_d = p.deriv(xs)
        for i, x in enumerate(xs):
            assert p.value(float(x)) == pytest.approx(arr_v[i])
            assert p.deriv(float(x)) == pytest.approx(arr_d[i])


class TestSecondDerivatives:
    """deriv2 feeds the Newton tangency solver; check against finite
    differences for every profile family."""

    def numeric_deriv2(self, profile, x, h=1e-4):
        return (
            profile.value(x + h) - 2 * profile.value(x) + profile.value(x - h)
        ) / h**2

    def test_gaussian(self):
        p = GaussianProfile(1.7)
        for x in (0.1, 1.0, 3.0):
            assert p.deriv2(x) == pytest.approx(
                self.numeric_deriv2(p, x), rel=1e-3
            )

    def test_laplacian(self):
        p = LaplacianProfile(0.9)
        for x in (0.5, 2.0, 6.0):
            assert p.deriv2(x) == pytest.approx(
                self.numeric_deriv2(p, x), rel=1e-3
            )

    def test_polynomial(self):
        p = PolynomialProfile(0.8, 0.2, 5)
        for x in (-1.5, 0.3, 2.0):
            assert p.deriv2(x) == pytest.approx(
                self.numeric_deriv2(p, x), rel=1e-3, abs=1e-6
            )

    def test_polynomial_linear_is_zero(self):
        p = PolynomialProfile(2.0, 0.0, 1)
        assert p.deriv2(0.7) == 0.0

    def test_sigmoid(self):
        p = SigmoidProfile(1.3, -0.4)
        for x in (-2.0, 0.0, 1.5):
            assert p.deriv2(x) == pytest.approx(
                self.numeric_deriv2(p, x), rel=1e-3, abs=1e-9
            )

    def test_sigmoid_overflow_guard(self):
        p = SigmoidProfile(1.0, 0.0)
        assert p.deriv2(1e6) == 0.0
        arr = p.deriv2(np.array([0.5, 1e6]))
        assert arr[1] == 0.0

    def test_array_scalar_consistency(self):
        from repro.core.profiles import CauchyProfile

        for p in (GaussianProfile(2.0), CauchyProfile(1.5),
                  PolynomialProfile(1.0, 0.1, 3)):
            xs = np.array([0.2, 0.9, 2.5])
            arr = p.deriv2(xs)
            for i, x in enumerate(xs):
                assert p.deriv2(float(x)) == pytest.approx(arr[i])
