"""Reusable fault-injection harness for sharded scatter-gather tests.

Not a test module (no ``test_`` prefix): it is imported by
``test_shard*.py`` and by anything else that needs to kill, delay, or
corrupt shard workers *deterministically*.  All injection rides the
shard transport itself — a ``("fault", spec)`` control message arms the
worker — so every fault lands at a well-defined point in the request
stream instead of depending on scheduler timing:

``kill(i)``
    The worker SIGKILLs itself on its *next* evaluation request, after
    consuming it: a deterministic mid-batch crash (the scatter has
    happened, the gather sees EOF).  ``mode="signal"`` instead SIGKILLs
    the process immediately from outside — the untidy variant.
``delay(i, seconds)``
    The worker sleeps before answering its next request(s) — drives the
    sub-deadline/missing-shard path while the worker stays alive, which
    also exercises stale-response resynchronisation afterwards.
``corrupt(i)``
    The worker answers with non-finite garbage — must be caught by
    response validation and treated exactly like a missing shard.
``drop(i)``
    In-process shards only: the next ``collect`` returns ``None`` —
    the missing-shard path with no processes involved.

``make_problem``/``make_router`` build small clustered workloads and
routers with test-friendly defaults, and ``assert_sound`` is the one
oracle every fault scenario must pass: whatever was injected, a served
interval still brackets the exact answer.
"""

from __future__ import annotations

import os
import signal

import numpy as np

from repro.core import GaussianKernel, KernelAggregator
from repro.index import build_index
from repro.shard import LocalShard, ShardConfig, build_router

#: generous default — fault tests shrink it explicitly when they need to
SUB_DEADLINE_S = 30.0


def make_problem(n=900, d=4, n_queries=8, seed=23, negative_frac=0.0):
    """A small clustered dataset + queries + exact answers.

    Returns ``(points, weights, kernel, queries, exact)``; ``exact`` is
    computed by an unsharded aggregator and is the oracle for every
    soundness assertion.  ``negative_frac`` flips that fraction of the
    weights negative (Type III territory).
    """
    rng = np.random.default_rng(seed)
    centers = rng.random((4, d))
    pts = centers[rng.integers(0, 4, n)] + 0.07 * rng.standard_normal((n, d))
    weights = rng.uniform(0.5, 2.0, size=n)
    if negative_frac > 0.0:
        flip = rng.random(n) < negative_frac
        weights[flip] *= -1.0
    kernel = GaussianKernel(6.0)
    queries = np.clip(centers[rng.integers(0, 4, n_queries)]
                      + 0.1 * rng.standard_normal((n_queries, d)), -1.0, 2.0)
    tree = build_index("kd", pts, weights, leaf_capacity=40)
    agg = KernelAggregator(tree, kernel)
    exact = agg.exact_many(queries)
    agg.close()
    return pts, weights, kernel, queries, exact


def make_router(problem, k=2, mode="process", sub_deadline_s=SUB_DEADLINE_S,
                warm=True, **config_kwargs):
    """A router over ``make_problem``'s dataset, warmed past cold-start.

    ``warm=True`` runs one throwaway batch so process workers are past
    spawn/import before any test shrinks the sub-deadline — without it,
    a short deadline would count worker startup as a fault.
    """
    pts, weights, kernel, queries, _ = problem
    router = build_router(
        pts, weights, kernel, k=k, mode=mode, leaf_capacity=40,
        config=ShardConfig(sub_deadline_s=sub_deadline_s, **config_kwargs))
    if warm:
        router.ekaq_many_results(queries[:1], 0.5)
    return router


class FaultHarness:
    """Deterministic fault injection against one router's shards."""

    def __init__(self, router):
        self.router = router

    # -- crash faults --------------------------------------------------

    def kill(self, shard_id: int, mode: str = "eval") -> None:
        """Kill one shard worker.

        ``mode="eval"`` (default) arms the worker to SIGKILL itself on
        its next evaluation request — a deterministic mid-batch death.
        ``mode="signal"`` SIGKILLs the process right now from outside.
        """
        shard = self.router.shards[shard_id]
        if mode == "eval":
            shard.inject(die_next=1)
        elif mode == "signal":
            if shard.pid is None:
                raise ValueError(f"shard {shard_id} has no process to kill")
            os.kill(shard.pid, signal.SIGKILL)
        else:
            raise ValueError(f"unknown kill mode {mode!r}")

    def kill_all(self, mode: str = "eval") -> None:
        """Every shard dies (on next request, or immediately)."""
        for sid in range(len(self.router.shards)):
            self.kill(sid, mode=mode)

    # -- latency and data faults ---------------------------------------

    def delay(self, shard_id: int, seconds: float, n: int = 1) -> None:
        """The shard sleeps ``seconds`` before each of its next ``n``
        answers (drive it past the router's sub-deadline)."""
        self.router.shards[shard_id].inject(delay_s=float(seconds),
                                            delay_n=int(n))

    def corrupt(self, shard_id: int, n: int = 1) -> None:
        """The shard's next ``n`` responses carry non-finite garbage."""
        self.router.shards[shard_id].inject(corrupt_n=int(n))

    def drop(self, shard_id: int, n: int = 1) -> None:
        """In-process shards: the next ``n`` collects report missing."""
        shard = self.router.shards[shard_id]
        if not isinstance(shard, LocalShard):
            raise ValueError("drop() targets in-process shards; use "
                             "kill()/delay() for process shards")
        shard.inject(fail_n=n)


def assert_sound(result, exact, atol: float = 1e-9) -> None:
    """The universal post-fault oracle: intervals still bracket truth."""
    lower = np.asarray(result.lower)
    upper = np.asarray(result.upper)
    exact = np.asarray(exact)
    assert (lower <= exact + atol).all(), \
        f"lower bound exceeds exact: {lower - exact}"
    assert (exact <= upper + atol).all(), \
        f"upper bound below exact: {exact - upper}"
    assert (lower <= upper + atol).all()
