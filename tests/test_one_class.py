"""Tests for the one-class nu-SVM: feasibility, nu-property, KAQ export."""

import numpy as np
import pytest

from repro.core import GaussianKernel
from repro.core.errors import InvalidParameterError, NotFittedError
from repro.svm.one_class import OneClassSVM, solve_one_class


@pytest.fixture
def blob(rng):
    return rng.standard_normal((400, 3)) * 0.2 + 0.5


class TestSolver:
    def test_feasibility(self, blob):
        kernel = GaussianKernel(2.0)
        sol = solve_one_class(blob, kernel, nu=0.2)
        n = blob.shape[0]
        upper = 1.0 / (0.2 * n)
        assert np.all(sol.alpha >= -1e-12)
        assert np.all(sol.alpha <= upper + 1e-12)
        assert sol.alpha.sum() == pytest.approx(1.0, abs=1e-9)

    def test_gradient_optimality(self, blob):
        """At the optimum, no feasible pair can decrease the objective."""
        kernel = GaussianKernel(2.0)
        nu = 0.2
        sol = solve_one_class(blob, kernel, nu=nu, tol=1e-5)
        K = kernel.matrix(blob)
        grad = K @ sol.alpha
        upper = 1.0 / (nu * blob.shape[0])
        grow = grad[sol.alpha < upper - 1e-9]
        shrink = grad[sol.alpha > 1e-9]
        assert shrink.max() - grow.min() < 1e-3

    def test_invalid_nu(self, blob):
        with pytest.raises(InvalidParameterError):
            solve_one_class(blob, GaussianKernel(1.0), nu=0.0)
        with pytest.raises(InvalidParameterError):
            solve_one_class(blob, GaussianKernel(1.0), nu=1.5)


class TestEstimator:
    def test_nu_controls_outlier_fraction(self, blob):
        """The nu-property: about nu of the training data is rejected."""
        for nu in (0.1, 0.3):
            model = OneClassSVM(nu=nu, kernel=GaussianKernel(2.0)).fit(blob)
            rejected = float(np.mean(model.predict(blob) == -1))
            assert abs(rejected - nu) < 0.12

    def test_far_points_are_outliers(self, blob):
        model = OneClassSVM(nu=0.1, kernel=GaussianKernel(2.0)).fit(blob)
        far = np.full((5, 3), 5.0)
        assert np.all(model.predict(far) == -1)

    def test_default_kernel_gamma(self, blob):
        model = OneClassSVM(nu=0.1).fit(blob)
        assert model.kernel.gamma == pytest.approx(1.0 / 3.0)

    def test_positive_dual_coefficients(self, blob):
        model = OneClassSVM(nu=0.2, kernel=GaussianKernel(2.0)).fit(blob)
        assert np.all(model.dual_coef_ > 0)

    def test_to_kaq_reproduces_decision(self, blob, rng):
        model = OneClassSVM(nu=0.2, kernel=GaussianKernel(2.0)).fit(blob)
        sv, w, tau = model.to_kaq()
        queries = rng.standard_normal((10, 3)) * 0.4 + 0.5
        f = model.decision_function(queries)
        for q, fv in zip(queries, f):
            agg = float(w @ model.kernel.pairwise(q, sv))
            assert agg - tau == pytest.approx(fv, abs=1e-9)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            OneClassSVM().predict(np.zeros((1, 3)))
        with pytest.raises(NotFittedError):
            OneClassSVM().to_kaq()

    def test_sv_fraction_at_least_nu(self, blob):
        nu = 0.25
        model = OneClassSVM(nu=nu, kernel=GaussianKernel(2.0)).fit(blob)
        assert len(model.dual_coef_) >= nu * blob.shape[0] * 0.8
