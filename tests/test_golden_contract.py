"""Golden regression contract: frozen Table-7-style workload values.

A deterministic synthetic workload (Type I and Type II Gaussian-KDE, the
setting of the paper's Table 7) is evaluated once and its outputs frozen
into ``tests/data/golden_contract.json``:

* the exact aggregates ``F_P(q)`` (hex floats — bit-exact storage),
* TKAQ answers at the workload's median threshold,
* eKAQ estimates and terminal bounds for **both** batch backends
  (per-query loop and query-major multiquery) under both bound schemes.

The tests assert today's code reproduces the frozen values *bitwise*: any
change to bound math, refinement order, or termination — however small —
shows up as a diff here, separating "refactored the engine" from "changed
the answers".

Regenerate intentionally with::

    REPRO_GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_golden_contract.py

and review the resulting JSON diff like any other behaviour change.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro import GaussianKernel, KDTree, KernelAggregator

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_contract.json"

SEED = 20240805
N_POINTS = 3000
N_QUERIES = 24
DIM = 5
GAMMA = 8.0
LEAF_CAPACITY = 40
EPS = 0.1

SCHEMES = ("karl", "sota")
BACKENDS = ("loop", "multiquery")
WEIGHTINGS = ("type1", "type2")
SHARD_K = 3  # frozen sharded topology: K in-process shards, stride split


def _hex_list(values) -> list[str]:
    return [float(v).hex() for v in np.asarray(values, dtype=np.float64)]


def _from_hex(hexes) -> np.ndarray:
    return np.array([float.fromhex(h) for h in hexes])


def _workload():
    """The frozen dataset/queries: deterministic, clustered, Table-7-like."""
    rng = np.random.default_rng(SEED)
    centers = rng.random((8, DIM))
    which = rng.integers(0, 8, N_POINTS)
    pts = np.clip(
        centers[which] + 0.08 * rng.standard_normal((N_POINTS, DIM)), 0.0, 1.0
    )
    queries = np.clip(
        centers[rng.integers(0, 8, N_QUERIES)]
        + 0.1 * rng.standard_normal((N_QUERIES, DIM)),
        0.0, 1.0,
    )
    weights = {
        "type1": None,                       # uniform (KDE)
        "type2": rng.random(N_POINTS) + 0.1,  # positive (1-class SVM style)
    }
    return pts, queries, weights


def _compute() -> dict:
    pts, queries, weights = _workload()
    kernel = GaussianKernel(gamma=GAMMA)
    out = {
        "seed": SEED, "n": N_POINTS, "queries": N_QUERIES, "dim": DIM,
        "gamma": GAMMA, "leaf_capacity": LEAF_CAPACITY, "eps": EPS,
        "workloads": {},
    }
    for wname in WEIGHTINGS:
        tree = KDTree(pts, weights=weights[wname], leaf_capacity=LEAF_CAPACITY)
        agg = KernelAggregator(tree, kernel)  # exact() is scheme-independent
        exact = agg.exact_many(queries)
        tau = float(np.median(exact))
        entry = {"exact": _hex_list(exact), "tau": float(tau).hex(),
                 "schemes": {}}
        for scheme in SCHEMES:
            agg = KernelAggregator(tree, kernel, scheme=scheme)
            per_backend = {}
            for backend in BACKENDS:
                tk = agg.tkaq_many_results(queries, tau, backend=backend)
                ek = agg.ekaq_many_results(queries, EPS, backend=backend)
                per_backend[backend] = {
                    "tkaq_answers": [bool(a) for a in tk.answers],
                    "ekaq_estimates": _hex_list(ek.estimates),
                    "ekaq_lower": _hex_list(ek.lower),
                    "ekaq_upper": _hex_list(ek.upper),
                }
            entry["schemes"][scheme] = per_backend
        entry["sharded"] = _compute_sharded(pts, queries, weights[wname],
                                            kernel, tau)
        out["workloads"][wname] = entry
    return out


def _compute_sharded(pts, queries, weights, kernel, tau) -> dict:
    """The K=3 stride-sharded extension of the frozen workload.

    In-process shards merge in fixed shard order, so the scattered
    values are deterministic — but the summation order differs from the
    single tree, so they are frozen separately rather than required to
    equal the unsharded hex values.
    """
    from repro.shard import build_router

    w = np.ones(len(pts)) if weights is None else weights
    router = build_router(pts, w, kernel, k=SHARD_K, mode="inprocess",
                          partition="stride", leaf_capacity=LEAF_CAPACITY)
    try:
        tk = router.tkaq_many_results(queries, tau)
        ek = router.ekaq_many_results(queries, EPS)
        return {
            "k": SHARD_K,
            "exact": _hex_list(router.exact_many(queries)),
            "tkaq_answers": [bool(a) for a in tk.answers],
            "ekaq_estimates": _hex_list(ek.estimates),
            "ekaq_lower": _hex_list(ek.lower),
            "ekaq_upper": _hex_list(ek.upper),
        }
    finally:
        router.close()


@pytest.fixture(scope="module")
def golden():
    if os.environ.get("REPRO_GOLDEN_REGEN"):
        data = _compute()
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(data, indent=1) + "\n")
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} missing; regenerate with REPRO_GOLDEN_REGEN=1"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def current():
    return _compute()


class TestGoldenContract:
    def test_workload_parameters_unchanged(self, golden):
        assert golden["seed"] == SEED
        assert golden["n"] == N_POINTS
        assert golden["gamma"] == GAMMA

    @pytest.mark.parametrize("wname", WEIGHTINGS)
    def test_exact_values_bitwise(self, golden, current, wname):
        frozen = golden["workloads"][wname]["exact"]
        now = current["workloads"][wname]["exact"]
        assert now == frozen

    @pytest.mark.parametrize("wname", WEIGHTINGS)
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_query_outputs_bitwise(self, golden, current, wname, scheme,
                                   backend):
        frozen = golden["workloads"][wname]["schemes"][scheme][backend]
        now = current["workloads"][wname]["schemes"][scheme][backend]
        assert now["tkaq_answers"] == frozen["tkaq_answers"]
        assert now["ekaq_estimates"] == frozen["ekaq_estimates"]
        assert now["ekaq_lower"] == frozen["ekaq_lower"]
        assert now["ekaq_upper"] == frozen["ekaq_upper"]

    @pytest.mark.parametrize("wname", WEIGHTINGS)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_eps_contract_on_frozen_values(self, golden, wname, scheme):
        """The frozen estimates themselves honor the (1 +- eps) contract."""
        exact = _from_hex(golden["workloads"][wname]["exact"])
        eps = golden["eps"]
        for backend in BACKENDS:
            entry = golden["workloads"][wname]["schemes"][scheme][backend]
            est = _from_hex(entry["ekaq_estimates"])
            lo = _from_hex(entry["ekaq_lower"])
            hi = _from_hex(entry["ekaq_upper"])
            tol = 1e-12 * (1.0 + np.abs(exact))
            assert np.all(lo <= exact + tol)
            assert np.all(exact <= hi + tol)
            assert np.all(np.abs(est - exact) <= eps * exact + tol)

    @pytest.mark.parametrize("mode", ("0", "auto"))
    @pytest.mark.parametrize("wname", WEIGHTINGS)
    def test_native_tier_matches_frozen_values(self, golden, wname, mode):
        """Both refinement tiers reproduce the frozen contract bitwise.

        ``mode="0"`` pins the interpreted loop, ``mode="auto"`` the native
        tier (JIT when numba is installed, the generated fast loop
        otherwise) — the frozen values must not depend on the tier.
        """
        from repro import native

        pts, queries, weights = _workload()
        kernel = GaussianKernel(gamma=GAMMA)
        before = native.get_mode()
        try:
            native.set_mode(mode)
            tree = KDTree(
                pts, weights=weights[wname], leaf_capacity=LEAF_CAPACITY
            )
            agg = KernelAggregator(tree, kernel, scheme="karl")
            frozen = golden["workloads"][wname]
            tau = float.fromhex(frozen["tau"])
            tk = agg.tkaq_many_results(queries, tau, backend="loop")
            ek = agg.ekaq_many_results(queries, EPS, backend="loop")
            expect = frozen["schemes"]["karl"]["loop"]
            assert [bool(a) for a in tk.answers] == expect["tkaq_answers"]
            assert _hex_list(ek.estimates) == expect["ekaq_estimates"]
            assert _hex_list(ek.lower) == expect["ekaq_lower"]
            assert _hex_list(ek.upper) == expect["ekaq_upper"]
        finally:
            native.set_mode(before)

    @pytest.mark.parametrize("wname", WEIGHTINGS)
    def test_sharded_outputs_bitwise(self, golden, current, wname):
        frozen = golden["workloads"][wname]["sharded"]
        now = current["workloads"][wname]["sharded"]
        assert frozen["k"] == SHARD_K
        assert now == frozen

    @pytest.mark.parametrize("wname", WEIGHTINGS)
    def test_sharded_answers_match_unsharded(self, golden, wname):
        """The K=3 merge changes summation order, never decisions."""
        entry = golden["workloads"][wname]
        assert (entry["sharded"]["tkaq_answers"]
                == entry["schemes"]["karl"]["loop"]["tkaq_answers"])
        exact = _from_hex(entry["exact"])
        sh_exact = _from_hex(entry["sharded"]["exact"])
        np.testing.assert_allclose(sh_exact, exact, rtol=1e-12)
        lo = _from_hex(entry["sharded"]["ekaq_lower"])
        hi = _from_hex(entry["sharded"]["ekaq_upper"])
        est = _from_hex(entry["sharded"]["ekaq_estimates"])
        tol = 1e-12 * (1.0 + np.abs(exact))
        assert np.all(lo <= exact + tol)
        assert np.all(exact <= hi + tol)
        assert np.all(np.abs(est - exact) <= golden["eps"] * exact + tol)

    @pytest.mark.parametrize("wname", WEIGHTINGS)
    def test_answers_agree_across_schemes_and_backends(self, golden, wname):
        entry = golden["workloads"][wname]
        reference = entry["schemes"]["karl"]["loop"]["tkaq_answers"]
        for scheme in SCHEMES:
            for backend in BACKENDS:
                assert (entry["schemes"][scheme][backend]["tkaq_answers"]
                        == reference), (scheme, backend)
