"""The online backend router: arm derivation, policy, and soundness.

The soundness property is the one that matters: ``backend="routed"``
answers satisfy *exactly* the contracts of the backends it dispatches
to — tkaq answers match brute force, ekaq estimates respect the
relative-epsilon guarantee — on every workload family, whatever arm
the bandit picked and however it sliced batches for probing.  The
policy tests pin the explore/exploit machinery (warmup, hysteresis,
floors) that makes routing *profitable*, not just sound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.baselines.scan import ScanEvaluator
from repro.core import BackendRouter, KernelAggregator, RouterConfig
from repro.core.errors import InvalidParameterError
from repro.core.kernels import GaussianKernel, PolynomialKernel
from repro.core.router import RouterArm
from repro.index import KDTree
from repro.workloads import WorkloadSpec, build_workload

SMALL = {
    "drift": WorkloadSpec("drift", size=400, n_batches=4, batch_size=24,
                          seed=3),
    "adversarial": WorkloadSpec("adversarial", size=400, n_batches=3,
                                batch_size=24, seed=5,
                                params={"probe_rounds": 6}),
    "embedding": WorkloadSpec("embedding", dataset="synthetic", size=500,
                              n_batches=3, batch_size=24, seed=7,
                              params={"ambient_d": 12, "target_d": 4}),
    "mixed_tenant": WorkloadSpec("mixed_tenant", size=400, n_batches=5,
                                 batch_size=24, seed=9),
}


@pytest.fixture
def agg(rng):
    pts = rng.random((600, 4))
    tree = KDTree(pts, leaf_capacity=32)
    return KernelAggregator(tree, GaussianKernel(4.0), coreset=True)


class TestRouterConfig:
    @pytest.mark.parametrize("bad", [
        {"epsilon": 1.5}, {"epsilon": -0.1}, {"epsilon_decay": 0.0},
        {"epsilon_decay": 1.5}, {"ewma": 0.0}, {"ewma": 2.0},
        {"min_pulls": 0},
    ])
    def test_validation(self, bad):
        with pytest.raises(InvalidParameterError):
            RouterConfig(**bad)

    def test_coerce_shapes(self):
        assert isinstance(RouterConfig.coerce(None), RouterConfig)
        assert isinstance(RouterConfig.coerce(True), RouterConfig)
        assert RouterConfig.coerce({"epsilon": 0.2}).epsilon == 0.2
        cfg = RouterConfig(seed=9)
        assert RouterConfig.coerce(cfg) is cfg

    def test_coerce_rejects_junk(self):
        with pytest.raises(InvalidParameterError):
            RouterConfig.coerce("greedy")

    def test_arm_call_kwargs(self):
        assert RouterArm("multiquery", "multiquery").call_kwargs() == {}
        par = RouterArm("parallel-c64", "parallel", n_workers=2,
                        chunk_size=64)
        assert par.call_kwargs() == {"n_workers": 2, "chunk_size": 64}


class TestArmDerivation:
    def test_auto_always_offered(self, agg):
        router = BackendRouter()
        arms = {a.name for a in router._arms(agg, 256, None)}
        assert "auto" in arms

    def test_large_batch_arms(self, agg):
        arms = {a.name for a in BackendRouter()._arms(agg, 256, None)}
        assert arms == {"auto", "multiquery", "coreset", "exact"}

    def test_small_batch_adds_loop(self, agg):
        arms = {a.name for a in BackendRouter()._arms(agg, 16, None)}
        assert "loop" in arms

    def test_warm_restricts_to_refining_arms(self, agg):
        warm = (np.zeros(4), np.ones(4))
        arms = {a.name for a in BackendRouter()._arms(agg, 256, warm)}
        assert "coreset" not in arms and "exact" not in arms
        assert "multiquery" in arms and "auto" in arms

    def test_unbounded_kernel_drops_coreset_arm(self, rng):
        pts = rng.random((200, 3))
        agg = KernelAggregator(KDTree(pts), PolynomialKernel(1.0, 1.0, 2))
        arms = {a.name for a in BackendRouter()._arms(agg, 256, None)}
        assert "coreset" not in arms
        assert "exact" in arms and "auto" in arms

    def test_parallel_arms_opt_in(self, agg):
        router = BackendRouter(RouterConfig(use_parallel=True,
                                            parallel_min_batch=64))
        arms = {a.name for a in router._arms(agg, 256, None)}
        assert any(a.startswith("parallel-c") for a in arms)
        small = {a.name for a in router._arms(agg, 32, None)}
        assert not any(a.startswith("parallel-c") for a in small)


class TestRoutedDispatch:
    def test_tkaq_answers_match_bruteforce(self, agg, rng):
        Q = rng.random((64, 4))
        exact = ScanEvaluator(agg.tree.points, agg.kernel).exact_many(Q)
        tau = float(np.median(exact))
        for _ in range(3):  # repeated calls take different arms
            res = agg.tkaq_many_results(Q, tau, backend="routed")
            np.testing.assert_array_equal(res.answers, exact > tau)

    def test_ekaq_relative_error_contract(self, agg, rng):
        Q = rng.random((64, 4))
        exact = ScanEvaluator(agg.tree.points, agg.kernel).exact_many(Q)
        eps = 0.1
        for _ in range(3):
            res = agg.ekaq_many_results(Q, eps, backend="routed")
            assert np.all(res.estimates >= (1 - eps) * exact - 1e-9)
            assert np.all(res.estimates <= (1 + eps) * exact + 1e-9)

    def test_router_state_learns(self, agg, rng):
        Q = rng.random((32, 4))
        agg.tkaq_many_results(Q, 1.0, backend="routed")
        router = agg.router_backend()
        assert router.decisions >= 1
        snap = router.snapshot()
        assert snap["decisions"] == router.decisions
        assert snap["contexts"]
        assert router.best_arms()

    def test_shared_router_instance(self, agg, rng):
        shared = BackendRouter()
        other = KernelAggregator(agg.tree, agg.kernel, coreset=True,
                                 router=shared)
        assert other.router_backend() is shared

    def test_float32_rejected(self, rng):
        pts = rng.random((200, 3))
        agg = KernelAggregator(KDTree(pts), GaussianKernel(4.0),
                               precision="float32")
        with pytest.raises(InvalidParameterError, match="float32"):
            agg.tkaq_many_results(rng.random((8, 3)), 0.5,
                                  backend="routed")

    def test_routed_warm_start(self, agg, rng):
        Q = rng.random((16, 4))
        exact = ScanEvaluator(agg.tree.points, agg.kernel).exact_many(Q)
        warm = (np.zeros(16), np.full(16, agg.tree.n, dtype=float))
        res = agg.ekaq_many_results(Q, 0.1, backend="routed", warm=warm)
        assert np.all(res.estimates >= (1 - 0.1) * exact - 1e-9)
        assert np.all(res.estimates <= (1 + 0.1) * exact + 1e-9)

    def test_metrics_emitted(self, agg, rng):
        reg = obs.default_registry()
        reg.reset()
        agg.tkaq_many_results(rng.random((16, 4)), 0.5, backend="routed")
        snap = reg.snapshot()
        assert snap["counters"]["router.decisions"] >= 1


class TestExactBackend:
    def test_tkaq_exact(self, agg, rng):
        Q = rng.random((16, 4))
        vals = ScanEvaluator(agg.tree.points, agg.kernel).exact_many(Q)
        tau = float(np.median(vals))
        res = agg.tkaq_many_results(Q, tau, backend="exact")
        np.testing.assert_array_equal(res.answers, vals > tau)
        np.testing.assert_allclose(res.lower, vals)
        np.testing.assert_allclose(res.upper, vals)

    def test_ekaq_exact(self, agg, rng):
        Q = rng.random((16, 4))
        vals = ScanEvaluator(agg.tree.points, agg.kernel).exact_many(Q)
        res = agg.ekaq_many_results(Q, 0.1, backend="exact")
        np.testing.assert_allclose(res.estimates, vals)
        assert np.all(res.lower == res.upper)

    def test_exact_rejects_warm(self, agg, rng):
        with pytest.raises(InvalidParameterError, match="warm"):
            agg.ekaq_many_results(rng.random((4, 4)), 0.1, backend="exact",
                                  warm=(np.zeros(4), np.ones(4)))


class TestPolicy:
    def test_global_warmup_pulls_each_arm_once(self, agg, rng):
        router = BackendRouter()
        cfg_agg = KernelAggregator(agg.tree, agg.kernel, coreset=True,
                                   router=router)
        Q = rng.random((128, 4))
        for _ in range(6):
            cfg_agg.tkaq_many_results(Q, 0.5, backend="routed")
        pulls = {name: st_.pulls for (kind, name), st_ in
                 router._global.items() if kind == "tkaq"}
        assert all(p >= 1 for p in pulls.values())

    def test_fresh_context_skips_warmup(self, agg, rng):
        """A second context reuses global priors instead of re-measuring."""
        router = BackendRouter(RouterConfig(epsilon=0.0, epsilon_min=0.0))
        a = KernelAggregator(agg.tree, agg.kernel, coreset=True,
                             router=router)
        Q = rng.random((128, 4))
        for _ in range(6):
            a.tkaq_many_results(Q, 0.5, backend="routed")
        decisions_before = router.decisions
        explored_before = router.explored
        # different size bucket -> fresh context, same kind
        a.tkaq_many_results(rng.random((700, 4)), 0.5, backend="routed")
        assert router.decisions == decisions_before + 1
        # no forced warmup: at most the in-context probe cadence explores
        assert router.explored <= explored_before + 1

    def test_hysteresis_keeps_incumbent(self):
        router = BackendRouter(RouterConfig(epsilon=0.0, epsilon_min=0.0,
                                            switch_margin=1.1))
        kind = "tkaq"
        arms = [RouterArm("a", "loop"), RouterArm("b", "loop")]
        key = (kind, 1, 0, False)
        from repro.core.router import _ArmState
        for arm in arms:
            router._global[(kind, arm.name)] = _ArmState(pulls=1)
        st_ = router._state(key)
        st_.arms = {"a": _ArmState(pulls=3, qps=100.0),
                    "b": _ArmState(pulls=3, qps=105.0)}
        st_.incumbent = "a"
        st_.decisions = 10  # off the probe cadence
        pick, explored, best = router._choose(key, arms)
        assert best.name == "a"  # 5% edge is inside the 10% margin
        st_.arms["b"].qps = 150.0
        st_.decisions = 12
        pick, explored, best = router._choose(key, arms)
        assert best.name == "b"  # 50% edge dethrones

    def test_explore_floor_excludes_dominated(self):
        router = BackendRouter(RouterConfig(epsilon=1.0, epsilon_decay=1.0,
                                            explore_floor=0.5, seed=1))
        from repro.core.router import _ArmState
        kind = "ekaq"
        arms = [RouterArm("fast", "loop"), RouterArm("slow", "loop")]
        key = (kind, 0, 0, False)
        for name, qps in (("fast", 100.0), ("slow", 10.0)):
            g = _ArmState(pulls=2, qps=qps)
            router._global[(kind, name)] = g
        st_ = router._state(key)
        st_.arms = {"fast": _ArmState(pulls=2, qps=100.0),
                    "slow": _ArmState(pulls=2, qps=10.0)}
        st_.incumbent = "fast"
        st_.decisions = 20
        picks = {router._choose(key, arms)[0].name for _ in range(30)}
        assert picks == {"fast"}  # slow is below the floor, never probed


class TestMerge:
    def test_merge_tkaq(self, agg, rng):
        Q = rng.random((32, 4))
        tau = np.full(32, 0.5)
        a = agg.tkaq_many_results(Q[:8], tau[:8], backend="multiquery")
        b = agg.tkaq_many_results(Q[8:], tau[8:], backend="multiquery")
        full = agg.tkaq_many_results(Q, tau, backend="multiquery")
        merged = BackendRouter._merge("tkaq", a, b)
        np.testing.assert_array_equal(merged.answers, full.answers)
        assert merged.stats.n_queries == 32
        assert merged.stats.points_evaluated == (
            a.stats.points_evaluated + b.stats.points_evaluated)

    def test_merge_ekaq(self, agg, rng):
        Q = rng.random((24, 4))
        a = agg.ekaq_many_results(Q[:6], 0.1, backend="multiquery")
        b = agg.ekaq_many_results(Q[6:], 0.1, backend="multiquery")
        merged = BackendRouter._merge("ekaq", a, b)
        assert merged.estimates.shape == (24,)
        assert np.all(merged.lower <= merged.estimates + 1e-12)
        assert merged.stats.n_queries == 24


class TestContractOnEveryFamily:
    """Routed answers obey the same eps/tau contracts as backend="auto".

    Hypothesis drives the router seed (= which arms get explored when)
    so the contract is checked across genuinely different routing
    decisions, on every workload family.
    """

    @settings(max_examples=3, deadline=None)
    @given(router_seed=st.integers(min_value=0, max_value=10_000))
    @pytest.mark.parametrize("family", sorted(SMALL))
    def test_contract(self, family, router_seed):
        wl = build_workload(SMALL[family])
        exact = ScanEvaluator(wl.points, wl.kernel, wl.weights)
        agg = wl.aggregator(
            router=BackendRouter(RouterConfig(seed=router_seed,
                                              epsilon=0.5)))
        for batch in wl.batches():
            f = exact.exact_many(batch.queries)
            if batch.kind == "tkaq":
                res = agg.tkaq_many_results(batch.queries, batch.tau,
                                            backend="routed")
                np.testing.assert_array_equal(res.answers, f > batch.tau)
            else:
                res = agg.ekaq_many_results(batch.queries, batch.eps,
                                            backend="routed")
                assert np.all(
                    res.estimates >= (1 - batch.eps) * f - 1e-9)
                assert np.all(
                    res.estimates <= (1 + batch.eps) * f + 1e-9)
