"""Coreset backend: construction, certificates, contracts, and wiring.

The load-bearing invariant throughout: the coreset tier may *never*
weaken a query contract.  Whatever the coreset size, kernel, weighting,
or certificate regime, ``backend="coreset"`` answers must satisfy the
same ``(1 +- eps)`` / threshold guarantees as the exact backends —
served from the sample when the certificate covers it, or transparently
via fallback when it does not.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KernelAggregator
from repro.core.errors import DataShapeError, InvalidParameterError
from repro.core.kernels import (
    CauchyKernel,
    EpanechnikovKernel,
    GaussianKernel,
    LaplacianKernel,
    PolynomialKernel,
    SigmoidKernel,
)
from repro.core.streaming import StreamingAggregator
from repro.index import build_index, load_coreset, load_index, save_index
from repro.sketch import (
    Coreset,
    CoresetAggregator,
    CoresetConfig,
    StreamingCoreset,
    bernstein_error,
    build_coreset,
    certified_estimate,
    exact_coreset,
    hoeffding_error,
    merge_coresets,
    reduce_coreset,
)

#: kernels the coreset tier supports (bounded values, distance argument)
DISTANCE_KERNELS = [
    GaussianKernel(gamma=2.0),
    LaplacianKernel(gamma=1.0),
    CauchyKernel(gamma=0.8),
    EpanechnikovKernel(gamma=0.25),
]


def _workload(seed=0, n=3000, d=4, weighting="uniform"):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, d))
    if weighting == "uniform":
        w = np.ones(n)
    elif weighting == "positive":
        w = rng.random(n) + 1e-3
    else:
        w = rng.standard_normal(n)
    Q = rng.random((120, d))
    return pts, w, Q


def _exact(kernel, pts, w, Q):
    return kernel.matrix(Q, pts) @ w


# ---------------------------------------------------------------------------
# error bound primitives
# ---------------------------------------------------------------------------


class TestErrorBounds:
    def test_hoeffding_shrinks_with_samples(self):
        errs = [hoeffding_error(1.0, m, 1e-6) for m in (10, 100, 1000)]
        assert errs[0] > errs[1] > errs[2] > 0.0

    def test_hoeffding_scales(self):
        base = hoeffding_error(1.0, 50, 1e-3)
        assert hoeffding_error(2.0, 50, 1e-3) == pytest.approx(2 * base)
        assert hoeffding_error(1.0, 50, 1e-3, value_max=3.0) == \
            pytest.approx(3 * base)

    def test_hoeffding_zero_samples(self):
        assert hoeffding_error(5.0, 0, 1e-6) == 0.0

    def test_bernstein_vectorised_and_zero_var(self):
        err = bernstein_error(np.array([0.0, 1.0, 4.0]), 100, 1e-6, 10.0)
        assert err.shape == (3,)
        # zero variance leaves only the linear term
        assert err[0] == pytest.approx(3 * 10.0 * np.log(3e6) / 100)
        assert err[2] > err[1] > err[0]

    def test_bernstein_zero_samples(self):
        assert np.all(bernstein_error(np.ones(3), 0, 1e-6, 1.0) == 0.0)


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------


class TestBuildCoreset:
    def test_exact_when_m_covers_n(self):
        pts, w, _ = _workload(n=100)
        c = build_coreset(pts, w, 100)
        assert c.is_exact() and c.method == "exact" and c.size == 100
        assert c.hoeffding_err() == 0.0

    def test_weighted_properties(self):
        pts, w, _ = _workload(n=500, weighting="positive")
        c = build_coreset(pts, w, 64, rng=0)
        assert c.method == "weighted" and c.samples == 64
        assert c.size <= 64
        assert c.counts.sum() == pytest.approx(64)
        # every draw has scale W; estimator weights sum to W exactly
        assert np.all(c.draw_scale == pytest.approx(w.sum()))
        assert c.weights.sum() == pytest.approx(w.sum())
        assert c.range_scale == pytest.approx(w.sum())

    def test_uniform_range_tracks_max_weight(self):
        pts, w, _ = _workload(n=500, weighting="positive")
        c = build_coreset(pts, w, 64, method="uniform", rng=0)
        assert c.range_scale == pytest.approx(500 * w.max())

    def test_unbiased_over_seeds(self):
        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(n=400, weighting="positive")
        q = Q[:1]
        truth = float(_exact(kernel, pts, w, q)[0])
        ests = []
        for seed in range(200):
            c = build_coreset(pts, w, 32, rng=seed)
            ests.append(float(certified_estimate(kernel, c, q)[0][0]))
        # the estimator is unbiased; 200 seeds x 32 draws pins the mean
        assert np.mean(ests) == pytest.approx(truth, rel=0.05)

    def test_zero_total_weight_is_exact(self):
        pts, _, _ = _workload(n=50)
        c = build_coreset(pts, np.zeros(50), 10)
        assert c.is_exact()

    def test_validation_errors(self):
        pts, w, _ = _workload(n=50)
        with pytest.raises(InvalidParameterError):
            build_coreset(pts, -w, 10)
        with pytest.raises(InvalidParameterError):
            build_coreset(pts, w, 0)
        with pytest.raises(InvalidParameterError):
            build_coreset(pts, w, 10, delta=0.0)
        with pytest.raises(InvalidParameterError):
            build_coreset(pts, w, 10, method="nope")
        with pytest.raises(DataShapeError):
            build_coreset(pts, w[:-1], 10)
        with pytest.raises(InvalidParameterError):
            Coreset(
                points=pts, weights=w, counts=np.ones(50),
                draw_scale=w, samples=0, range_scale=0.0,
                total_weight=1.0, delta=0.5, method="bogus", n_source=50,
            )


class TestMergeReduce:
    def test_merge_exact_parts_stays_exact(self):
        a_pts, a_w, _ = _workload(seed=1, n=40)
        b_pts, b_w, _ = _workload(seed=2, n=60)
        merged = merge_coresets(exact_coreset(a_pts, a_w),
                                exact_coreset(b_pts, b_w))
        assert merged.is_exact() and merged.size == 100
        assert merged.total_weight == pytest.approx(a_w.sum() + b_w.sum())

    def test_merge_sampled_parts_compounds_error(self):
        pts, w, _ = _workload(n=400, weighting="positive")
        a = build_coreset(pts[:200], w[:200], 32, rng=0)
        b = build_coreset(pts[200:], w[200:], 32, rng=1)
        merged = merge_coresets(a, b)
        assert not merged.is_exact()
        assert merged.method == "merged" and merged.samples == 0
        assert merged.err_prior == pytest.approx(
            a.hoeffding_err() + b.hoeffding_err())
        assert merged.n_source == 400

    def test_merge_dimension_mismatch(self):
        a = exact_coreset(np.ones((3, 2)), np.ones(3))
        b = exact_coreset(np.ones((3, 5)), np.ones(3))
        with pytest.raises(DataShapeError):
            merge_coresets(a, b)

    def test_reduce_noop_when_small(self):
        pts, w, _ = _workload(n=50)
        c = exact_coreset(pts, w)
        assert reduce_coreset(c, 100) is c

    def test_reduce_inherits_error(self):
        pts, w, _ = _workload(n=800, weighting="positive")
        a = build_coreset(pts[:400], w[:400], 128, rng=0)
        b = build_coreset(pts[400:], w[400:], 128, rng=1)
        merged = merge_coresets(a, b)
        red = reduce_coreset(merged, 64, rng=2)
        assert red.size <= 64
        assert red.err_prior == pytest.approx(merged.hoeffding_err())
        # the reduced stage's own error stacks on top of the inherited one
        assert red.hoeffding_err() > merged.hoeffding_err()


# ---------------------------------------------------------------------------
# certificates
# ---------------------------------------------------------------------------


class TestCertifiedEstimate:
    @pytest.mark.parametrize("method", ["weighted", "uniform"])
    @pytest.mark.parametrize("certificate", ["bernstein", "hoeffding"])
    def test_certificate_validity(self, method, certificate):
        """|est - exact| <= err at delta=1e-6 — any fixed seed passes."""
        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(n=2000, weighting="positive")
        exact = _exact(kernel, pts, w, Q)
        c = build_coreset(pts, w, 256, method=method, rng=0)
        est, err = certified_estimate(kernel, c, Q, certificate=certificate)
        assert np.all(np.abs(est - exact) <= err + 1e-9)
        assert np.all(err > 0)

    def test_bernstein_beats_hoeffding_when_concentrated(self):
        # low variance + enough samples that the linear term is paid off
        kernel = GaussianKernel(gamma=0.25)
        pts, w, Q = _workload(n=4000)
        c = build_coreset(pts, w, 1024, rng=0)
        _, eb = certified_estimate(kernel, c, Q, certificate="bernstein")
        _, eh = certified_estimate(kernel, c, Q, certificate="hoeffding")
        assert eb.mean() < eh.mean()

    def test_exact_coreset_zero_error(self):
        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(n=200)
        est, err = certified_estimate(kernel, exact_coreset(pts, w), Q)
        assert np.all(err == 0.0)
        assert est == pytest.approx(_exact(kernel, pts, w, Q))

    def test_rejects_dot_product_kernels(self):
        pts, w, Q = _workload(n=100)
        c = exact_coreset(pts, w)
        with pytest.raises(InvalidParameterError):
            certified_estimate(PolynomialKernel(gamma=1.0, degree=2), c, Q)


# ---------------------------------------------------------------------------
# the aggregator tier
# ---------------------------------------------------------------------------


class TestCoresetConfig:
    def test_defaults_and_coerce(self):
        assert CoresetConfig.coerce(None).m is None
        assert CoresetConfig.coerce(True).certificate == "bernstein"
        cfg = CoresetConfig.coerce({"m": 512, "certificate": "hoeffding"})
        assert cfg.m == 512 and cfg.certificate == "hoeffding"
        same = CoresetConfig(m=7)
        assert CoresetConfig.coerce(same) is same
        with pytest.raises(InvalidParameterError):
            CoresetConfig.coerce("yes")

    @pytest.mark.parametrize("kwargs", [
        {"m": 0}, {"delta": 0.0}, {"delta": 1.0},
        {"certificate": "chernoff"}, {"method": "stratified"},
        {"target_eps": 0.0}, {"target_quantile": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            CoresetConfig(**kwargs)


class TestSupports:
    def test_distance_kernels_supported(self):
        for kernel in DISTANCE_KERNELS:
            assert CoresetAggregator.supports(kernel)

    def test_dot_product_kernels_not(self):
        assert not CoresetAggregator.supports(
            PolynomialKernel(gamma=1.0, degree=2))
        assert not CoresetAggregator.supports(
            SigmoidKernel(gamma=0.5, coef0=0.1))


def _aggregator(kernel, pts, w, **kwargs):
    tree = build_index("kd", pts, w)
    return KernelAggregator(tree, kernel, **kwargs)


class TestCoresetAggregatorContracts:
    @pytest.mark.parametrize("kernel", DISTANCE_KERNELS,
                             ids=lambda k: type(k).__name__)
    @pytest.mark.parametrize("weighting", ["uniform", "positive", "signed"])
    def test_ekaq_contract_all_kernels_weightings(self, kernel, weighting):
        pts, w, Q = _workload(seed=3, weighting=weighting)
        agg = _aggregator(kernel, pts, w)
        eps = 0.15
        res = agg.ekaq_many_results(Q, eps, backend="coreset")
        exact = agg.exact_many(Q)
        assert np.all(np.abs(res.estimates - exact)
                      <= eps * np.abs(exact) + 1e-9)
        # terminal bounds bracket the exact aggregate
        assert np.all(res.lower <= exact + 1e-9)
        assert np.all(res.upper >= exact - 1e-9)

    def test_forced_fallback_contract_holds(self):
        """A uselessly small coreset must not weaken any answer."""
        kernel = GaussianKernel(gamma=8.0)
        pts, w, Q = _workload(seed=4)
        agg = _aggregator(kernel, pts, w,
                          coreset={"m": 8, "target_eps": 1e9})
        sketch = agg.coreset_backend()
        res = agg.ekaq_many_results(Q, 0.05, backend="coreset")
        exact = agg.exact_many(Q)
        assert np.all(np.abs(res.estimates - exact) <= 0.05 * exact + 1e-9)
        assert sketch.fallback_queries > 0
        assert sketch.fallback_rate > 0.5

    def test_tkaq_scalar_and_vector(self):
        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(seed=5)
        agg = _aggregator(kernel, pts, w)
        exact = agg.exact_many(Q)
        tau = float(np.median(exact))
        res = agg.tkaq_many_results(Q, tau, backend="coreset")
        assert np.array_equal(res.answers, exact > tau)
        # keep vector taus off the exact values: ties at tau == F(q)
        # tie-break by float rounding order
        taus = np.linspace(exact.min(), exact.max(), Q.shape[0]) + 1e-7
        res_v = agg.tkaq_many_results(Q, taus, backend="coreset")
        assert np.array_equal(res_v.answers, exact > taus)

    def test_vector_eps(self):
        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(seed=6)
        agg = _aggregator(kernel, pts, w)
        eps = np.where(np.arange(Q.shape[0]) % 2 == 0, 0.05, 0.4)
        res = agg.ekaq_many_results(Q, eps, backend="coreset")
        exact = agg.exact_many(Q)
        assert np.all(np.abs(res.estimates - exact) <= eps * exact + 1e-9)

    def test_stats_account_batch(self):
        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(seed=7)
        agg = _aggregator(kernel, pts, w)
        res = agg.ekaq_many_results(Q, 0.3, backend="coreset")
        assert res.stats is not None
        assert res.stats.n_queries == Q.shape[0]
        assert res.stats.points_evaluated > 0

    def test_deterministic_per_seed(self):
        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(seed=8)
        r1 = _aggregator(kernel, pts, w).ekaq_many_results(
            Q, 0.2, backend="coreset")
        r2 = _aggregator(kernel, pts, w).ekaq_many_results(
            Q, 0.2, backend="coreset")
        assert np.array_equal(r1.estimates, r2.estimates)


class TestDispatch:
    def test_explicit_backend_builds_default(self):
        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(seed=9)
        agg = _aggregator(kernel, pts, w)
        assert not agg.coreset_enabled
        agg.ekaq_many(Q, 0.3, backend="coreset")
        assert agg.coreset_enabled  # built tier now serves auto too

    def test_auto_requires_opt_in(self):
        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(seed=10)
        plain = _aggregator(kernel, pts, w)
        plain.ekaq_many(Q, 0.3)  # auto
        assert plain._coreset is None
        opted = _aggregator(kernel, pts, w, coreset=True)
        opted.ekaq_many(Q, 0.3)  # auto, batch >= 64
        assert opted._coreset is not None
        assert opted._coreset.served_queries + \
            opted._coreset.fallback_queries == Q.shape[0]

    def test_auto_skips_small_batches(self):
        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(seed=11)
        agg = _aggregator(kernel, pts, w, coreset=True)
        agg.ekaq_many(Q[:8], 0.3)
        assert agg._coreset is None

    def test_unsupported_kernel_explicit_raises_auto_falls_through(self):
        kernel = PolynomialKernel(gamma=0.5, coef0=0.1, degree=2)
        pts, w, Q = _workload(seed=12, n=400)
        agg = _aggregator(kernel, pts, w, coreset=True)
        assert not agg.coreset_enabled
        with pytest.raises(InvalidParameterError):
            agg.ekaq_many(Q, 0.3, backend="coreset")
        est = agg.ekaq_many(Q, 0.3)  # auto quietly uses exact backends
        exact = agg.exact_many(Q)
        assert np.all(np.abs(est - exact) <= 0.3 * np.abs(exact) + 1e-9)

    def test_unknown_backend_mentions_coreset(self):
        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(seed=13, n=200)
        with pytest.raises(InvalidParameterError, match="coreset"):
            _aggregator(kernel, pts, w).ekaq_many(Q, 0.3, backend="bogus")


class TestObsIntegration:
    def test_sketch_metrics_and_trace_conservation(self):
        from repro.obs import runtime as obs

        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(seed=14)
        agg = _aggregator(kernel, pts, w)
        obs.enable()
        try:
            obs.registry().reset()
            res = agg.ekaq_many_results(Q, 0.5, backend="coreset")
            sketch = agg._coreset
            snap = obs.registry().snapshot()
            assert snap["counters"]["sketch.served_total"] == \
                sketch.served_queries
            assert snap["counters"]["sketch.fallback_total"] == \
                sketch.fallback_queries
            assert snap["gauges"]["sketch.coreset_points"] == sketch.size
            coreset_traces = [
                t for t in obs.recent_traces() if t.backend == "coreset"
            ]
            if sketch.served_queries:
                assert coreset_traces
            n = agg.tree.n
            for t in coreset_traces:
                assert t.total_points + t.pruned_points == t.n_queries * n
            assert res.stats.n_queries == Q.shape[0]
        finally:
            obs.disable()


class TestPersistence:
    def test_round_trip_bitwise(self, tmp_path):
        kernel = GaussianKernel(gamma=2.0)
        pts, w, Q = _workload(seed=15, weighting="signed")
        tree = build_index("kd", pts, w)
        agg = KernelAggregator(tree, kernel)
        res = agg.ekaq_many_results(Q, 0.2, backend="coreset")
        path = tmp_path / "idx.npz"
        save_index(tree, path, coreset=agg.coreset_backend())
        pos, neg = load_coreset(path)
        assert pos is not None and neg is not None
        agg2 = KernelAggregator(load_index(path), kernel)
        agg2.attach_coreset(pos, neg)
        assert agg2.coreset_enabled
        res2 = agg2.ekaq_many_results(Q, 0.2, backend="coreset")
        assert np.array_equal(res.estimates, res2.estimates)
        assert np.array_equal(res.lower, res2.lower)
        assert np.array_equal(res.upper, res2.upper)

    def test_plain_archive_has_no_coreset(self, tmp_path):
        pts, w, _ = _workload(seed=16, n=200)
        tree = build_index("kd", pts, w)
        path = tmp_path / "plain.npz"
        save_index(tree, path)
        assert load_coreset(path) == (None, None)
        load_index(path)  # and the tree itself still loads

    def test_single_coreset_persists(self, tmp_path):
        pts, w, _ = _workload(seed=17, n=300, weighting="positive")
        tree = build_index("kd", pts, w)
        c = build_coreset(pts, w, 64, rng=0)
        path = tmp_path / "one.npz"
        save_index(tree, path, coreset=c)
        pos, neg = load_coreset(path)
        assert neg is None
        assert pos.samples == c.samples and pos.method == c.method
        assert np.array_equal(pos.points, c.points)
        assert np.array_equal(pos.weights, c.weights)

    def test_from_parts_requires_a_part(self):
        pts, w, _ = _workload(seed=18, n=200)
        agg = _aggregator(GaussianKernel(gamma=2.0), pts, w)
        with pytest.raises(InvalidParameterError):
            CoresetAggregator.from_parts(agg, None, None)


# ---------------------------------------------------------------------------
# streaming merge-and-reduce
# ---------------------------------------------------------------------------


class TestStreamingCoreset:
    def test_certificate_valid_through_inserts(self):
        kernel = GaussianKernel(gamma=1.0)
        sc = StreamingCoreset(m=256, seed=0)
        rng = np.random.default_rng(0)
        all_pts, all_w = [], []
        for _ in range(9):
            pts = rng.random((300, 3))
            w = rng.uniform(0.1, 2.0, 300)
            sc.insert(pts, w)
            all_pts.append(pts)
            all_w.append(w)
        Q = rng.random((60, 3))
        est, err = sc.estimate_with_error(kernel, Q)
        exact = _exact(kernel, np.vstack(all_pts), np.concatenate(all_w), Q)
        assert np.all(np.abs(est - exact) <= err + 1e-9)
        assert sc.n_inserted == 2700
        assert sc.size < 2700
        assert sc.levels >= 1

    def test_signed_weights_split_into_towers(self):
        kernel = GaussianKernel(gamma=1.0)
        sc = StreamingCoreset(m=128, seed=1)
        rng = np.random.default_rng(1)
        pts = rng.random((1200, 3))
        w = rng.standard_normal(1200)
        sc.insert(pts, w)
        Q = rng.random((40, 3))
        est, err = sc.estimate_with_error(kernel, Q)
        exact = _exact(kernel, pts, w, Q)
        assert np.all(np.abs(est - exact) <= err + 1e-9)

    def test_buffer_only_is_exact(self):
        kernel = GaussianKernel(gamma=1.0)
        sc = StreamingCoreset(m=1024)
        rng = np.random.default_rng(2)
        pts = rng.random((100, 2))
        sc.insert(pts)
        Q = rng.random((10, 2))
        est, err = sc.estimate_with_error(kernel, Q)
        assert np.all(err == 0.0)
        assert est == pytest.approx(_exact(kernel, pts, np.ones(100), Q))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            StreamingCoreset(m=0)
        with pytest.raises(InvalidParameterError):
            StreamingCoreset(delta=2.0)
        sc = StreamingCoreset(m=16)
        sc.insert(np.ones((4, 3)))
        with pytest.raises(DataShapeError):
            sc.insert(np.ones((4, 5)))
        with pytest.raises(DataShapeError):
            sc.insert(np.ones((4, 3)), np.ones(3))


class TestStreamingAggregatorIntegration:
    def _fill(self, coreset):
        sa = StreamingAggregator(
            GaussianKernel(gamma=1.0), min_buffer=200, coreset=coreset)
        rng = np.random.default_rng(3)
        for _ in range(6):
            sa.insert(rng.random((400, 3)), rng.uniform(0.5, 1.5, 400))
        return sa, rng.random((50, 3))

    def test_ekaq_many_contract_with_fallback(self):
        sa, Q = self._fill(coreset={"m": 256})
        est = sa.ekaq_many(Q, 0.1)
        exact = np.array([sa.exact(q) for q in Q])
        assert np.all(np.abs(est - exact) <= 0.1 * exact + 1e-9)

    def test_tkaq_many_matches_truth(self):
        sa, Q = self._fill(coreset=True)
        exact = np.array([sa.exact(q) for q in Q])
        tau = float(np.median(exact))
        assert np.array_equal(sa.tkaq_many(Q, tau), exact > tau)

    def test_loop_backend_and_validation(self):
        sa, Q = self._fill(coreset=None)
        assert sa.coreset is None
        est = sa.ekaq_many(Q, 0.2, backend="loop")
        exact = np.array([sa.exact(q) for q in Q])
        assert np.all(np.abs(est - exact) <= 0.2 * exact + 1e-9)
        with pytest.raises(InvalidParameterError):
            sa.ekaq_many(Q, 0.2, backend="coreset")
        with pytest.raises(InvalidParameterError):
            sa.tkaq_many(Q, 0.5, backend="warp")

    def test_unsupported_kernel_rejected_at_init(self):
        with pytest.raises(InvalidParameterError):
            StreamingAggregator(
                PolynomialKernel(gamma=1.0, degree=2), coreset=True)


# ---------------------------------------------------------------------------
# property-based: the contract survives anything hypothesis throws at it
# ---------------------------------------------------------------------------


@st.composite
def coreset_problem(draw):
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(50, 600))
    d = draw(st.integers(1, 4))
    kernel = draw(st.sampled_from(DISTANCE_KERNELS))
    weighting = draw(st.sampled_from(["uniform", "positive", "signed"]))
    m = draw(st.sampled_from([4, 32, 256, None]))  # tiny m forces fallback
    eps = draw(st.sampled_from([0.01, 0.1, 0.5]))
    rng = np.random.default_rng(seed)
    pts = rng.random((n, d)) * draw(st.sampled_from([1.0, 3.0]))
    if weighting == "uniform":
        w = np.ones(n)
    elif weighting == "positive":
        w = rng.random(n) + 1e-3
    else:
        w = rng.standard_normal(n)
    Q = rng.random((draw(st.integers(1, 40)), d))
    return pts, w, kernel, Q, m, eps


class TestPropertyContract:
    @given(coreset_problem())
    @settings(max_examples=30, deadline=None)
    def test_ekaq_contract(self, problem):
        pts, w, kernel, Q, m, eps = problem
        tree = build_index("kd", pts, w)
        cfg = None if m is None else {"m": m}
        agg = KernelAggregator(tree, kernel, coreset=cfg)
        res = agg.ekaq_many_results(Q, eps, backend="coreset")
        exact = agg.exact_many(Q)
        assert np.all(
            np.abs(res.estimates - exact) <= eps * np.abs(exact) + 1e-9)

    @given(coreset_problem())
    @settings(max_examples=20, deadline=None)
    def test_tkaq_answers_exact(self, problem):
        pts, w, kernel, Q, m, _ = problem
        tree = build_index("kd", pts, w)
        cfg = None if m is None else {"m": m}
        agg = KernelAggregator(tree, kernel, coreset=cfg)
        exact = agg.exact_many(Q)
        tau = float(np.median(exact))
        res = agg.tkaq_many_results(Q, tau, backend="coreset")
        # queries landing exactly on tau (median of one query!) tie-break
        # by float rounding; the contract only binds off the threshold
        clear = np.abs(exact - tau) > 1e-9 * np.maximum(1.0, np.abs(exact))
        assert np.array_equal(res.answers[clear], exact[clear] > tau)
