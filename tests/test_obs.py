"""Tests for the observability layer: metrics, traces, runtime, reports."""

import json
import math

import pytest

import repro.obs as obs
import repro.obs.runtime as obs_runtime
from repro import GaussianKernel, KDTree, KernelAggregator, MultiQueryAggregator
from repro.obs.metrics import (
    GEOMETRIC_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import summarize
from repro.obs.trace import MAX_ROUNDS, QueryTrace, TraceRound


@pytest.fixture
def obs_sandbox():
    """Isolate the module-global tracing state (CI may force-enable it)."""
    saved = (obs_runtime._ring, obs_runtime._sink, obs_runtime._compare)
    obs_runtime._ring = None
    obs_runtime._sink = None
    obs_runtime._compare = False
    yield
    obs_runtime._ring, obs_runtime._sink, obs_runtime._compare = saved


@pytest.fixture
def small_problem(rng):
    pts = rng.random((600, 3))
    tree = KDTree(pts, leaf_capacity=20)
    kernel = GaussianKernel(gamma=6.0)
    return pts, tree, kernel


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_reset(self):
        c = Counter("x")
        c.inc(5)
        c.reset()
        assert c.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(7)
        g.inc()
        g.dec(3)
        assert g.value == 5.0


class TestHistogram:
    def test_mean_and_count(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean() == pytest.approx(138.875)
        assert h.overflow == 1

    def test_quantile_bucket_bounds(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.75) == 2.0
        assert h.quantile(1.0) == 4.0

    def test_quantile_overflow_is_inf(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(99.0)
        assert h.quantile(1.0) == math.inf

    def test_empty_quantile_nan(self):
        assert math.isnan(Histogram("h").quantile(0.5))

    def test_default_buckets_shapes(self):
        assert GEOMETRIC_BUCKETS[0] == 1.0
        assert GEOMETRIC_BUCKETS[-1] == 2.0**20
        assert all(b > a for a, b in zip(SECONDS_BUCKETS, SECONDS_BUCKETS[1:]))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_layout(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.2)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 2.0
        assert snap["gauges"]["g"] == 1.5
        hist = snap["histograms"]["h"]
        assert hist["count"] == 1
        assert hist["buckets"] == [[1.0, 0], [2.0, 1]]  # cumulative

    def test_reset_zeroes_but_keeps_names(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(9)
        reg.reset()
        assert reg.snapshot()["counters"]["c"] == 0.0


class TestQueryTrace:
    def test_record_round_folds_totals(self):
        t = QueryTrace("tkaq", "loop", "karl", n_points=100)
        t.record_round(frontier=2, expanded=1, bound_evals=2, lb=0.0, ub=5.0)
        t.record_round(frontier=1, leaves=1, points=40, lb=1.0, ub=2.0)
        assert t.total_rounds == 2
        assert t.total_expanded == 1
        assert t.total_leaves == 1
        assert t.total_points == 40
        assert t.total_bound_evals == 2
        assert t.gap_trajectory() == [5.0, 1.0]

    def test_conservation_view(self):
        t = QueryTrace("ekaq", "loop", "karl", n_points=100)
        t.record_round(frontier=1, leaves=1, points=30)
        t.pruned_points += 70
        assert t.points_accounted() == 100
        assert t.prune_ratio() == pytest.approx(0.7)

    def test_round_cap_keeps_totals_exact(self):
        t = QueryTrace("ekaq", "loop", "karl", n_points=10)
        for _ in range(MAX_ROUNDS + 5):
            t.record_round(frontier=1, points=1)
        assert len(t.rounds) == MAX_ROUNDS
        assert t.truncated
        assert t.total_rounds == MAX_ROUNDS + 5
        assert t.total_points == MAX_ROUNDS + 5

    def test_dict_roundtrip(self):
        t = QueryTrace("tkaq", "multiquery", "hybrid", n_points=50,
                       n_queries=4, param=0.5)
        t.record_round(frontier=3, active=4, retired=1, expanded=1,
                       bound_evals=8, lb=1.0, ub=1.25, gap=0.25)
        t.add_phase("bounds", 0.125)
        t.record_pruned_comparison(3, 1, 2)
        t.extra["note"] = "x"
        back = QueryTrace.from_dict(json.loads(json.dumps(t.to_dict())))
        assert back.to_dict() == t.to_dict()
        assert back.rounds[0].gap == 0.25
        assert back.pruned_nodes_karl_tighter == 3

    def test_trace_round_from_dict_ignores_unknown_keys(self):
        r = TraceRound.from_dict({"frontier": 2, "future_field": 1})
        assert r.frontier == 2


class TestRuntime:
    def test_disabled_start_trace_is_none(self, obs_sandbox):
        assert obs.start_trace("tkaq", "loop", "karl", 10) is None
        assert not obs.is_enabled()
        assert obs.recent_traces() == []

    def test_enable_disable_cycle(self, obs_sandbox):
        obs.enable()
        assert obs.is_enabled()
        t = obs.start_trace("tkaq", "loop", "karl", 10)
        assert isinstance(t, QueryTrace)
        obs.finish_trace(t)
        assert len(obs.recent_traces()) == 1
        assert obs.recent_traces()[0].wall_time >= 0.0
        obs.disable()
        assert not obs.is_enabled()
        assert obs.recent_traces() == []

    def test_ring_capacity_bounds_memory(self, obs_sandbox):
        obs.enable(ring_capacity=3)
        for _ in range(10):
            obs.finish_trace(obs.start_trace("tkaq", "loop", "karl", 1))
        assert len(obs.recent_traces()) == 3

    def test_clear_recent_keeps_enabled(self, obs_sandbox):
        obs.enable()
        obs.finish_trace(obs.start_trace("tkaq", "loop", "karl", 1))
        obs.clear_recent()
        assert obs.is_enabled()
        assert obs.recent_traces() == []

    def test_compare_flag(self, obs_sandbox):
        obs.enable(compare=True)
        assert obs.compare_enabled()
        obs.enable(compare=False)
        assert not obs.compare_enabled()

    def test_finish_updates_default_registry(self, obs_sandbox):
        obs.enable()
        reg = obs.default_registry()
        before = reg.counter("queries_total").value
        t = obs.start_trace("tkaq", "loop", "karl", 10, n_queries=5)
        t.record_round(frontier=1, points=10)
        obs.finish_trace(t)
        assert reg.counter("queries_total").value == before + 5


class TestJsonlExport:
    def test_sink_appends_and_reloads(self, obs_sandbox, tmp_path):
        path = tmp_path / "traces.jsonl"
        obs.enable(jsonl=path)
        for i in range(3):
            t = obs.start_trace("ekaq", "loop", "karl", 100, param=0.1)
            t.record_round(frontier=1, leaves=1, points=10 * (i + 1))
            obs.finish_trace(t)
        obs.disable()
        loaded = obs.load_traces(path)
        assert [t.total_points for t in loaded] == [10, 20, 30]
        assert all(t.param == 0.1 for t in loaded)

    def test_sink_lazy_reopen_after_close(self, tmp_path):
        sink = obs.JsonlTraceSink(tmp_path / "t.jsonl")
        t = QueryTrace("tkaq", "loop", "karl", 1)
        sink.write(t)
        sink.close()
        sink.write(t)  # must reopen, not crash
        sink.close()
        assert len(obs.load_traces(tmp_path / "t.jsonl")) == 2


class TestEngineTracing:
    def test_single_query_traced(self, obs_sandbox, small_problem):
        pts, tree, kernel = small_problem
        obs.enable()
        agg = KernelAggregator(tree, kernel)
        res = agg.ekaq(pts[0], eps=0.05)
        traces = obs.recent_traces()
        assert len(traces) == 1
        t = traces[0]
        assert (t.kind, t.backend, t.scheme) == ("ekaq", "loop", "karl")
        assert t.param == 0.05
        assert t.total_rounds == res.stats.iterations
        assert t.points_accounted() == tree.n
        # final recorded global bounds match the result
        assert t.extra["lb"] == pytest.approx(res.lower)
        assert t.extra["ub"] == pytest.approx(res.upper)

    def test_batch_traced(self, obs_sandbox, small_problem):
        pts, tree, kernel = small_problem
        obs.enable()
        mq = MultiQueryAggregator(tree, kernel)
        res = mq.tkaq_many_results(pts[:32], tau=10.0)
        (t,) = obs.recent_traces()
        assert (t.kind, t.backend) == ("tkaq", "multiquery")
        assert t.n_queries == 32
        assert t.total_rounds == res.stats.rounds
        assert t.points_accounted() == 32 * tree.n

    def test_compare_mode_records_tightness(self, obs_sandbox, small_problem):
        pts, tree, kernel = small_problem
        obs.enable(compare=True)
        agg = KernelAggregator(tree, kernel)
        agg.tkaq(pts[0], tau=1e-6)  # certifies early -> pruned frontier
        (t,) = obs.recent_traces()
        judged = (t.pruned_nodes_karl_tighter + t.pruned_nodes_sota_tighter
                  + t.pruned_nodes_tied)
        assert judged > 0

    def test_disabled_results_identical(self, obs_sandbox, small_problem):
        pts, tree, kernel = small_problem
        agg = KernelAggregator(tree, kernel)
        off = agg.ekaq(pts[3], eps=0.1)
        obs.enable()
        on = agg.ekaq(pts[3], eps=0.1)
        assert on.estimate == off.estimate
        assert on.stats == off.stats


class TestReport:
    def _traces(self, obs_sandbox, small_problem):
        pts, tree, kernel = small_problem
        obs.enable()
        agg = KernelAggregator(tree, kernel)
        agg.ekaq(pts[0], eps=0.1)
        MultiQueryAggregator(tree, kernel).ekaq_many(pts[:16], 0.1)
        return obs.recent_traces()

    def test_summarize_sections(self, obs_sandbox, small_problem):
        text = summarize(self._traces(obs_sandbox, small_problem))
        assert "Trace overview" in text
        assert "ekaq" in text
        assert "multiquery" in text
        assert "Phase wall-times" in text
        assert "Rounds —" in text

    def test_summarize_accepts_dicts(self, obs_sandbox, small_problem):
        traces = self._traces(obs_sandbox, small_problem)
        text = summarize([t.to_dict() for t in traces])
        assert "Trace overview" in text

    def test_summarize_empty(self):
        assert summarize([]) == "no traces recorded"

    def test_cli_main(self, obs_sandbox, small_problem, tmp_path, capsys):
        pts, tree, kernel = small_problem
        path = tmp_path / "t.jsonl"
        obs.enable(jsonl=path)
        KernelAggregator(tree, kernel).ekaq(pts[0], eps=0.1)
        obs.disable()
        from repro.obs.report import main

        assert main([str(path), "--rounds", "4"]) == 0
        out = capsys.readouterr().out
        assert "Trace overview" in out


class TestBenchEmbedding:
    def test_emit_embeds_trace_summary_in_result_file(
            self, obs_sandbox, tmp_path, monkeypatch, small_problem):
        import repro.bench.reporting as reporting

        pts, tree, kernel = small_problem
        obs.enable()
        KernelAggregator(tree, kernel).ekaq(pts[0], eps=0.1)
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        table = reporting.render_table("T", ["a"], [[1.0]])
        returned = reporting.emit("obs_embed", table)
        assert returned == table  # print/return contract unchanged
        written = (tmp_path / "obs_embed.txt").read_text()
        assert "Trace overview" in written
        assert obs.recent_traces() == []  # ring drained into the file

    def test_emit_plain_when_disabled(self, obs_sandbox, tmp_path,
                                      monkeypatch):
        import repro.bench.reporting as reporting

        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        table = reporting.render_table("T", ["a"], [[1.0]])
        reporting.emit("obs_plain", table)
        assert (tmp_path / "obs_plain.txt").read_text() == table + "\n"


class TestStreamingMetrics:
    def test_rebuild_and_buffer_gauges(self, obs_sandbox, rng):
        from repro import StreamingAggregator

        obs.enable()
        reg = obs.default_registry()
        before = reg.counter("streaming.rebuilds").value
        st = StreamingAggregator(GaussianKernel(4.0), min_buffer=4,
                                 rebuild_fraction=0.1)
        st.insert(rng.random((50, 3)))
        assert reg.counter("streaming.rebuilds").value > before
        assert reg.gauge("streaming.indexed_points").value == 50.0
