"""Tests for Platt probability calibration."""

import numpy as np
import pytest

from repro.core import GaussianKernel
from repro.core.errors import (
    DataShapeError,
    InvalidParameterError,
    NotFittedError,
)
from repro.svm import SVC
from repro.svm.platt import fit_sigmoid, sigmoid_probability


class TestFitSigmoid:
    def test_recovers_known_sigmoid(self, rng):
        """Labels drawn from a known sigmoid should recover its slope sign
        and produce calibrated probabilities."""
        f = rng.uniform(-4, 4, 4000)
        true_p = 1.0 / (1.0 + np.exp(-2.0 * f))  # A=-2, B=0
        y = np.where(rng.random(4000) < true_p, 1.0, -1.0)
        a, b = fit_sigmoid(f, y)
        assert a < 0  # decision and probability positively related
        est = sigmoid_probability(f, a, b)
        # calibration: mean |estimated - true| small
        assert float(np.mean(np.abs(est - true_p))) < 0.05

    def test_separable_decision_values(self, rng):
        f = np.concatenate([rng.uniform(1, 3, 50), rng.uniform(-3, -1, 50)])
        y = np.array([1.0] * 50 + [-1.0] * 50)
        a, b = fit_sigmoid(f, y)
        p = sigmoid_probability(f, a, b)
        assert np.all(p[:50] > 0.5)
        assert np.all(p[50:] < 0.5)

    def test_probability_bounds(self, rng):
        f = rng.standard_normal(200)
        y = np.where(f + 0.3 * rng.standard_normal(200) > 0, 1.0, -1.0)
        a, b = fit_sigmoid(f, y)
        p = sigmoid_probability(np.array([-1e6, 0.0, 1e6]), a, b)
        assert np.all(p >= 0.0)
        assert np.all(p <= 1.0)

    def test_validation(self, rng):
        with pytest.raises(DataShapeError):
            fit_sigmoid(np.zeros(5), np.ones(4))
        with pytest.raises(InvalidParameterError):
            fit_sigmoid(np.zeros(4), np.zeros(4))
        with pytest.raises(InvalidParameterError):
            fit_sigmoid(np.zeros(4), np.ones(4))  # single class


class TestSVCProbability:
    @pytest.fixture
    def trained(self, rng):
        pos = rng.standard_normal((120, 2)) * 0.4 + [1.0, 0]
        neg = rng.standard_normal((120, 2)) * 0.4 + [-1.0, 0]
        X = np.vstack([pos, neg])
        y = np.array([1.0] * 120 + [-1.0] * 120)
        perm = rng.permutation(240)
        return SVC(C=2.0, kernel=GaussianKernel(1.0)).fit(X[perm], y[perm]), X, y

    def test_proba_requires_calibration(self, trained, rng):
        clf, X, y = trained
        with pytest.raises(NotFittedError):
            clf.predict_proba(X[:2])

    def test_self_calibration(self, trained):
        clf, X, y = trained
        clf.calibrate()
        proba = clf.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        # confident correct ordering deep inside each blob
        assert proba[0, 1] > 0.8  # a positive-blob point
        assert proba[-1, 0] > 0.8  # a negative-blob point

    def test_holdout_calibration(self, trained, rng):
        clf, X, y = trained
        clf.calibrate(X[::2], y[::2])
        p = clf.predict_proba(X[1::2])[:, 1]
        preds = np.where(p > 0.5, 1, -1)
        assert np.mean(preds == y[1::2]) > 0.95

    def test_refit_clears_calibration(self, trained, rng):
        clf, X, y = trained
        clf.calibrate()
        clf.fit(X, y)
        with pytest.raises(NotFittedError):
            clf.predict_proba(X[:2])
