"""Tests for the vectorised batch evaluator (agreement with sequential)."""

import numpy as np
import pytest

from repro.baselines import ScanEvaluator
from repro.core import (
    CauchyKernel,
    EpanechnikovKernel,
    GaussianKernel,
    KernelAggregator,
    LaplacianKernel,
    PolynomialKernel,
)
from repro.core.batch import BatchKernelAggregator
from repro.core.errors import InvalidParameterError
from repro.index import BallTree, KDTree

DIST_KERNELS = [
    GaussianKernel(10.0),
    LaplacianKernel(2.0),
    CauchyKernel(4.0),
    EpanechnikovKernel(3.0),
]


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(21)
    centers = rng.random((6, 5))
    pts = np.clip(
        centers[rng.integers(0, 6, 4000)] + 0.05 * rng.standard_normal((4000, 5)),
        0, 1,
    )
    w = rng.random(4000)
    w_signed = rng.standard_normal(4000)
    queries = pts[rng.choice(4000, 15, replace=False)]
    return pts, w, w_signed, queries


class TestAgreement:
    @pytest.mark.parametrize("kernel", DIST_KERNELS, ids=repr)
    @pytest.mark.parametrize("tree_cls", [KDTree, BallTree], ids=["kd", "ball"])
    def test_tkaq_matches_sequential(self, data, kernel, tree_cls):
        pts, w, _, queries = data
        tree = tree_cls(pts, weights=w, leaf_capacity=30)
        seq = KernelAggregator(tree, kernel)
        batch = BatchKernelAggregator(tree, kernel)
        scan = ScanEvaluator(pts, kernel, w)
        exact = scan.exact_many(queries)
        for tau in (exact.mean(), exact.mean() * 0.3):
            for q, f in zip(queries, exact):
                assert batch.tkaq(q, tau).answer == (f > tau)
                assert batch.tkaq(q, tau).answer == seq.tkaq(q, tau).answer

    @pytest.mark.parametrize("kernel", DIST_KERNELS, ids=repr)
    def test_ekaq_guarantee(self, data, kernel):
        pts, w, _, queries = data
        tree = KDTree(pts, weights=w, leaf_capacity=30)
        batch = BatchKernelAggregator(tree, kernel)
        scan = ScanEvaluator(pts, kernel, w)
        for eps in (0.1, 0.3):
            for q in queries[:8]:
                f = scan.exact(q)
                res = batch.ekaq(q, eps)
                assert (1 - eps) * f - 1e-9 <= res.estimate <= (1 + eps) * f + 1e-9

    def test_signed_weights(self, data):
        pts, _, w_signed, queries = data
        kernel = GaussianKernel(8.0)
        tree = KDTree(pts, weights=w_signed, leaf_capacity=30)
        batch = BatchKernelAggregator(tree, kernel)
        scan = ScanEvaluator(pts, kernel, w_signed)
        for q in queries:
            f = scan.exact(q)
            assert batch.tkaq(q, f + 0.5).answer == (f > f + 0.5)
            assert batch.tkaq(q, f - 0.5).answer == (f > f - 0.5)

    def test_exact_matches_scan(self, data):
        pts, w, _, queries = data
        kernel = GaussianKernel(8.0)
        tree = KDTree(pts, weights=w, leaf_capacity=30)
        batch = BatchKernelAggregator(tree, kernel)
        scan = ScanEvaluator(pts, kernel, w)
        assert batch.exact(queries[0]) == pytest.approx(scan.exact(queries[0]),
                                                        rel=1e-9)

    def test_sota_scheme(self, data):
        pts, w, _, queries = data
        kernel = GaussianKernel(8.0)
        tree = KDTree(pts, weights=w, leaf_capacity=30)
        batch = BatchKernelAggregator(tree, kernel, scheme="sota")
        scan = ScanEvaluator(pts, kernel, w)
        exact = scan.exact_many(queries)
        tau = exact.mean()
        for q, f in zip(queries, exact):
            assert batch.tkaq(q, tau).answer == (f > tau)


class TestSplitFraction:
    def test_small_fraction_fewer_rounds(self, data):
        pts, w, _, queries = data
        kernel = GaussianKernel(8.0)
        tree = KDTree(pts, weights=w, leaf_capacity=30)
        eager = BatchKernelAggregator(tree, kernel, split_fraction=0.01)
        lazy = BatchKernelAggregator(tree, kernel, split_fraction=1.0)
        scan = ScanEvaluator(pts, kernel, w)
        tau = float(scan.exact_many(queries).mean())
        q = queries[0]
        # refining almost everything per round needs fewer rounds
        assert eager.tkaq(q, tau).stats.iterations <= lazy.tkaq(q, tau).stats.iterations

    def test_invalid_fraction(self, data):
        pts, w, _, _ = data
        tree = KDTree(pts[:100], leaf_capacity=30)
        with pytest.raises(InvalidParameterError):
            BatchKernelAggregator(tree, GaussianKernel(1.0), split_fraction=0.0)


class TestValidation:
    def test_rejects_dot_product_kernels(self, data):
        pts, _, _, _ = data
        tree = KDTree(pts[:100], leaf_capacity=30)
        with pytest.raises(InvalidParameterError):
            BatchKernelAggregator(tree, PolynomialKernel(gamma=1.0, degree=3))

    def test_rejects_unknown_scheme(self, data):
        pts, _, _, _ = data
        tree = KDTree(pts[:100], leaf_capacity=30)
        with pytest.raises(InvalidParameterError):
            BatchKernelAggregator(tree, GaussianKernel(1.0), scheme="hybrid")

    def test_negative_eps(self, data):
        pts, _, _, _ = data
        tree = KDTree(pts[:100], leaf_capacity=30)
        batch = BatchKernelAggregator(tree, GaussianKernel(1.0))
        with pytest.raises(InvalidParameterError):
            batch.ekaq(pts[0], -0.1)
