"""Tests for kernel classes: exact values, Gram matrices, node hooks."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.core.kernels import (
    CauchyKernel,
    EpanechnikovKernel,
    GaussianKernel,
    LaplacianKernel,
    PolynomialKernel,
    SigmoidKernel,
    kernel_from_name,
)
from repro.index import KDTree


def naive_value(kernel, q, p):
    d2 = float(np.sum((q - p) ** 2))
    if isinstance(kernel, GaussianKernel):
        return np.exp(-kernel.gamma * d2)
    if isinstance(kernel, LaplacianKernel):
        return np.exp(-kernel.gamma * np.sqrt(d2))
    if isinstance(kernel, CauchyKernel):
        return 1.0 / (1.0 + kernel.gamma * d2)
    if isinstance(kernel, EpanechnikovKernel):
        return max(0.0, 1.0 - kernel.gamma * d2)
    ip = float(q @ p)
    if isinstance(kernel, PolynomialKernel):
        return (kernel.gamma * ip + kernel.coef0) ** kernel.degree
    return np.tanh(kernel.gamma * ip + kernel.coef0)


class TestPairwise:
    def test_matches_naive(self, any_kernel, rng):
        pts = rng.uniform(-1, 1, (30, 4))
        q = rng.uniform(-1, 1, 4)
        vals = any_kernel.pairwise(q, pts)
        for i in range(30):
            assert vals[i] == pytest.approx(
                naive_value(any_kernel, q, pts[i]), rel=1e-9, abs=1e-12
            )

    def test_call_single_pair(self, any_kernel, rng):
        q, p = rng.random(3), rng.random(3)
        assert any_kernel(q, p) == pytest.approx(
            naive_value(any_kernel, q, p), rel=1e-9, abs=1e-12
        )

    def test_gaussian_self_similarity(self):
        k = GaussianKernel(2.0)
        q = np.array([0.3, 0.7])
        assert k(q, q) == pytest.approx(1.0)

    def test_precomputed_norms_match(self, rng):
        k = GaussianKernel(3.0)
        pts = rng.random((20, 5))
        q = rng.random(5)
        sq = np.einsum("ij,ij->i", pts, pts)
        a = k.pairwise(q, pts)
        b = k.pairwise(q, pts, sq, float(q @ q))
        assert np.allclose(a, b)


class TestMatrix:
    def test_symmetric_for_self(self, any_kernel, rng):
        X = rng.uniform(-1, 1, (15, 3))
        K = any_kernel.matrix(X)
        assert K.shape == (15, 15)
        assert np.allclose(K, K.T, atol=1e-10)

    def test_matches_pairwise_rows(self, any_kernel, rng):
        X = rng.uniform(-1, 1, (10, 3))
        Y = rng.uniform(-1, 1, (7, 3))
        K = any_kernel.matrix(X, Y)
        for i in range(10):
            assert np.allclose(K[i], any_kernel.pairwise(X[i], Y), atol=1e-10)


class TestNodeHooks:
    def test_interval_covers_arguments(self, any_kernel, rng):
        pts = rng.uniform(-1, 1, (400, 4))
        tree = KDTree(pts, leaf_capacity=20)
        q = rng.uniform(-1, 1, 4)
        q_sq = float(q @ q)
        for node in range(min(tree.num_nodes, 40)):
            lo, hi = any_kernel.node_interval(tree, q, node, q_sq)
            args = any_kernel.arguments(
                q, tree.points[tree.leaf_slice(node)], q_sq=q_sq
            )
            assert np.all(args >= lo - 1e-9)
            assert np.all(args <= hi + 1e-9)

    def test_moments_match_bruteforce(self, any_kernel, rng):
        pts = rng.uniform(-1, 1, (300, 4))
        w = rng.standard_normal(300)
        tree = KDTree(pts, weights=w, leaf_capacity=30)
        q = rng.uniform(-1, 1, 4)
        q_sq = float(q @ q)
        for node in range(min(tree.num_nodes, 20)):
            sl = tree.leaf_slice(node)
            bw = tree.weights[sl]
            args = any_kernel.arguments(q, tree.points[sl], q_sq=q_sq)
            for part, mask in (("pos", bw > 0), ("neg", bw < 0)):
                s0, s1 = any_kernel.node_moments(tree, q, node, q_sq, part)
                assert s0 == pytest.approx(np.abs(bw[mask]).sum(), abs=1e-9)
                assert s1 == pytest.approx(
                    float(np.abs(bw[mask]) @ args[mask]), rel=1e-6, abs=1e-6
                )


class TestFactory:
    def test_names(self):
        assert isinstance(kernel_from_name("rbf", gamma=1.0), GaussianKernel)
        assert isinstance(kernel_from_name("gaussian", gamma=1.0), GaussianKernel)
        assert isinstance(
            kernel_from_name("poly", gamma=1.0, degree=3), PolynomialKernel
        )
        assert isinstance(kernel_from_name("sigmoid", gamma=1.0), SigmoidKernel)
        assert isinstance(kernel_from_name("laplacian", gamma=1.0), LaplacianKernel)
        assert isinstance(kernel_from_name("cauchy", gamma=1.0), CauchyKernel)
        assert isinstance(
            kernel_from_name("epanechnikov", gamma=1.0), EpanechnikovKernel
        )

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            kernel_from_name("chi2", gamma=1.0)

    def test_case_insensitive(self):
        assert isinstance(kernel_from_name("RBF", gamma=2.0), GaussianKernel)


class TestParameterValidation:
    def test_gamma_positive(self):
        for ctor in (GaussianKernel, LaplacianKernel):
            with pytest.raises(InvalidParameterError):
                ctor(gamma=-1.0)

    def test_polynomial_degree(self):
        with pytest.raises(InvalidParameterError):
            PolynomialKernel(gamma=1.0, degree=0)
