"""Tests for the shared-memory multiprocess batch execution layer.

Covers the `repro.parallel` contract end to end: bitwise parallel/serial
parity across scheme x kernel x index, merged-stat equality, the chunking
heuristic, shared-memory lifecycle (no leaked blocks after ``close()``),
fail-fast on a killed worker, serial fallback when shared memory is
unavailable, and worker-trace round-tripping through the observability
layer.  Pool workers are real spawned processes — the module keeps
workloads small so each pool pays its startup cost only once.
"""

import os
import signal
import time

import numpy as np
import pytest

import repro.obs as obs
from repro.obs import runtime as obs_runtime
from repro.core import (
    GaussianKernel,
    KernelAggregator,
    LaplacianKernel,
    ParallelExecutionError,
    PolynomialKernel,
)
from repro.core.errors import InvalidParameterError
from repro.index import BallTree, KDTree
from repro.parallel import (
    AttachedIndex,
    ParallelEvaluator,
    SharedIndex,
    auto_chunk_size,
    default_workers,
    shared_memory_available,
)
from repro.parallel import evaluator as par_evaluator
from repro.parallel.evaluator import _CHUNKS_PER_WORKER, _MIN_CHUNK

N_WORKERS = int(os.environ.get("REPRO_PAR_TEST_WORKERS", "2"))

SCHEMES = ["karl", "sota", "hybrid"]


@pytest.fixture
def obs_sandbox():
    """Isolate the module-global tracing state (CI may force-enable it)."""
    saved = (obs_runtime._ring, obs_runtime._sink, obs_runtime._compare)
    obs_runtime._ring = None
    obs_runtime._sink = None
    obs_runtime._compare = False
    yield
    obs_runtime._ring, obs_runtime._sink, obs_runtime._compare = saved


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(42)
    centers = rng.random((4, 4))
    pts = np.clip(
        centers[rng.integers(0, 4, 1500)] + 0.07 * rng.standard_normal((1500, 4)),
        0, 1,
    )
    w = rng.random(1500) + 0.05
    queries = np.vstack(
        [pts[rng.choice(1500, 16, replace=False)], rng.random((8, 4))]
    )
    return pts, w, queries


def make_tree(tree_cls, workload, leaf_capacity=40):
    pts, w, _ = workload
    return tree_cls(pts, weights=w, leaf_capacity=leaf_capacity)


# ----------------------------------------------------------------------
# chunking heuristic
# ----------------------------------------------------------------------


class TestAutoChunkSize:
    def test_small_batch_is_single_chunk(self):
        for nq in (1, 5, _MIN_CHUNK):
            assert auto_chunk_size(nq, 8) == nq

    def test_never_below_min_chunk(self):
        assert auto_chunk_size(_MIN_CHUNK + 1, 64) == _MIN_CHUNK

    def test_targets_chunks_per_worker(self):
        nq, workers = 10_000, 4
        chunk = auto_chunk_size(nq, workers)
        n_chunks = -(-nq // chunk)
        assert n_chunks <= workers * _CHUNKS_PER_WORKER
        assert chunk >= _MIN_CHUNK

    def test_default_workers_positive(self):
        assert default_workers() >= 1


# ----------------------------------------------------------------------
# shared-memory export / attach
# ----------------------------------------------------------------------


@pytest.mark.skipif(not shared_memory_available(), reason="no shared_memory")
class TestSharedIndex:
    @pytest.mark.parametrize("tree_cls", [KDTree, BallTree], ids=["kd", "ball"])
    def test_attach_rebuilds_equal_tree(self, workload, tree_cls):
        from repro.index.serialize import tree_arrays

        tree = make_tree(tree_cls, workload)
        with SharedIndex(tree) as shared:
            attached = AttachedIndex(shared.handle)
            try:
                re = attached.tree
                assert re.kind == tree.kind
                assert re.n == tree.n and re.d == tree.d
                assert re.num_nodes == tree.num_nodes
                for name, arr in tree_arrays(tree).items():
                    rearr = tree_arrays(re)[name]
                    assert np.array_equal(arr, rearr), name
                    assert not rearr.flags.writeable
            finally:
                attached.close()

    def test_close_unlinks_every_block(self, workload):
        from multiprocessing import shared_memory as shm

        tree = make_tree(KDTree, workload)
        shared = SharedIndex(tree)
        names = shared.block_names
        assert names and shared.nbytes > 0
        shared.close()
        assert shared.closed
        for name in names:
            with pytest.raises(FileNotFoundError):
                shm.SharedMemory(name=name)
        shared.close()  # idempotent

    def test_evaluator_close_releases_blocks(self, workload):
        from multiprocessing import shared_memory as shm

        pts, w, queries = workload
        tree = make_tree(KDTree, workload)
        ev = ParallelEvaluator(tree, GaussianKernel(6.0), n_workers=N_WORKERS)
        ev.tkaq_many(queries, 1.0)
        names = ev._shared.block_names
        assert names
        ev.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shm.SharedMemory(name=name)


# ----------------------------------------------------------------------
# parallel / serial parity
# ----------------------------------------------------------------------


@pytest.mark.skipif(not shared_memory_available(), reason="no shared_memory")
class TestParity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("tree_cls", [KDTree, BallTree], ids=["kd", "ball"])
    def test_single_chunk_bitwise_vs_multiquery(self, workload, scheme,
                                                tree_cls):
        """A batch one chunk wide is bitwise-identical to serial multiquery."""
        pts, w, queries = workload
        tree = make_tree(tree_cls, workload)
        kernel = GaussianKernel(6.0)
        agg = KernelAggregator(tree, kernel, scheme=scheme)
        tau = float(np.median(agg.exact_many(queries)))
        with ParallelEvaluator(tree, kernel, scheme=scheme,
                               n_workers=N_WORKERS) as ev:
            pt = ev.tkaq_many_results(queries, tau)
            pe = ev.ekaq_many_results(queries, 0.1)
        st = agg.tkaq_many_results(queries, tau, backend="multiquery")
        se = agg.ekaq_many_results(queries, 0.1, backend="multiquery")

        assert np.array_equal(pt.answers, st.answers)
        assert np.array_equal(pt.lower, st.lower)
        assert np.array_equal(pt.upper, st.upper)
        assert np.array_equal(pe.estimates, se.estimates)
        assert np.array_equal(pe.lower, se.lower)
        assert np.array_equal(pe.upper, se.upper)

    @pytest.mark.parametrize(
        "kernel", [LaplacianKernel(2.0),
                   PolynomialKernel(gamma=0.5, coef0=1.0, degree=2)],
        ids=["laplacian", "polynomial"],
    )
    def test_kernels_bitwise_vs_serial_auto(self, workload, kernel):
        """Parity holds for multiquery-capable and loop-only kernels alike."""
        pts, w, queries = workload
        tree = make_tree(KDTree, workload)
        agg = KernelAggregator(tree, kernel)
        tau = float(np.median(agg.exact_many(queries)))
        with ParallelEvaluator(tree, kernel, n_workers=N_WORKERS) as ev:
            pt = ev.tkaq_many_results(queries, tau)
        st = agg.tkaq_many_results(queries, tau, backend="auto")
        assert np.array_equal(pt.answers, st.answers)
        assert np.array_equal(pt.lower, st.lower)
        assert np.array_equal(pt.upper, st.upper)

    def test_loop_backend_bitwise_under_any_sharding(self, workload):
        """Per-query refinement is independent, so chunking cannot matter."""
        pts, w, _ = workload
        rng = np.random.default_rng(3)
        queries = rng.random((30, 4))
        tree = make_tree(KDTree, workload)
        kernel = GaussianKernel(6.0)
        agg = KernelAggregator(tree, kernel)
        tau = float(np.median(agg.exact_many(queries)))
        st = agg.tkaq_many_results(queries, tau, backend="loop")
        with ParallelEvaluator(tree, kernel, n_workers=N_WORKERS,
                               chunk_size=7, worker_backend="loop") as ev:
            pt = ev.tkaq_many_results(queries, tau)
        assert np.array_equal(pt.answers, st.answers)
        assert np.array_equal(pt.lower, st.lower)
        assert np.array_equal(pt.upper, st.upper)

    def test_chunked_matches_per_chunk_serial_and_merged_stats(self, workload):
        """Chunked runs equal serial evaluation of the same shards, and the
        merged ``BatchQueryStats`` equals the shard stats folded together."""
        pts, w, _ = workload
        rng = np.random.default_rng(11)
        queries = rng.random((150, 4))
        chunk = 50
        tree = make_tree(KDTree, workload)
        kernel = GaussianKernel(6.0)
        agg = KernelAggregator(tree, kernel)
        tau = float(np.median(agg.exact_many(queries)))

        with ParallelEvaluator(tree, kernel, n_workers=N_WORKERS,
                               chunk_size=chunk) as ev:
            pt = ev.tkaq_many_results(queries, tau)

        from repro.core import BatchQueryStats

        ref_stats = BatchQueryStats()
        answers, lowers, uppers = [], [], []
        for s in range(0, len(queries), chunk):
            r = agg.tkaq_many_results(queries[s:s + chunk], tau,
                                      backend="multiquery")
            answers.append(r.answers)
            lowers.append(r.lower)
            uppers.append(r.upper)
            ref_stats.merge_batch(r.stats)

        assert np.array_equal(pt.answers, np.concatenate(answers))
        assert np.array_equal(pt.lower, np.concatenate(lowers))
        assert np.array_equal(pt.upper, np.concatenate(uppers))
        assert pt.stats.n_queries == ref_stats.n_queries == len(queries)
        assert pt.stats.rounds == ref_stats.rounds
        assert pt.stats.nodes_expanded == ref_stats.nodes_expanded
        assert pt.stats.leaves_evaluated == ref_stats.leaves_evaluated
        assert pt.stats.points_evaluated == ref_stats.points_evaluated
        assert pt.stats.bound_evaluations == ref_stats.bound_evaluations
        assert pt.stats.frontier_sizes == ref_stats.frontier_sizes
        assert pt.stats.active_counts == ref_stats.active_counts
        assert pt.stats.retired_per_round == ref_stats.retired_per_round


# ----------------------------------------------------------------------
# public API wiring (backend="parallel")
# ----------------------------------------------------------------------


@pytest.mark.skipif(not shared_memory_available(), reason="no shared_memory")
class TestAggregatorBackend:
    def test_backend_parallel_matches_multiquery(self, workload):
        pts, w, queries = workload
        tree = make_tree(KDTree, workload)
        with KernelAggregator(tree, GaussianKernel(6.0)) as agg:
            tau = float(np.median(agg.exact_many(queries)))
            serial = agg.tkaq_many_results(queries, tau, backend="multiquery")
            par = agg.tkaq_many_results(queries, tau, backend="parallel",
                                        n_workers=N_WORKERS)
            assert np.array_equal(par.answers, serial.answers)
            assert np.array_equal(par.lower, serial.lower)
            assert np.array_equal(par.upper, serial.upper)
            # shorthand variants share the pool (same key)
            assert np.array_equal(
                agg.tkaq_many(queries, tau, backend="parallel",
                              n_workers=N_WORKERS),
                serial.answers,
            )
            est = agg.ekaq_many(queries, 0.1, backend="parallel",
                                n_workers=N_WORKERS)
            assert np.array_equal(
                est, agg.ekaq_many(queries, 0.1, backend="multiquery")
            )

    def test_pool_kwargs_rejected_on_serial_backends(self, workload):
        tree = make_tree(KDTree, workload)
        agg = KernelAggregator(tree, GaussianKernel(6.0))
        q = workload[2]
        with pytest.raises(InvalidParameterError, match="parallel"):
            agg.tkaq_many(q, 1.0, backend="multiquery", n_workers=2)
        with pytest.raises(InvalidParameterError, match="parallel"):
            agg.ekaq_many(q, 0.1, backend="loop", chunk_size=8)

    def test_unknown_backend_message_lists_parallel(self, workload):
        tree = make_tree(KDTree, workload)
        agg = KernelAggregator(tree, GaussianKernel(6.0))
        with pytest.raises(InvalidParameterError, match="'parallel'"):
            agg.tkaq_many(workload[2], 1.0, backend="bogus")

    def test_close_is_idempotent(self, workload):
        tree = make_tree(KDTree, workload)
        agg = KernelAggregator(tree, GaussianKernel(6.0))
        agg.tkaq_many(workload[2], 1.0, backend="parallel",
                      n_workers=N_WORKERS)
        agg.close()
        agg.close()  # second (and any later) close is a no-op
        agg.close()

    def test_parallel_after_close_raises(self, workload):
        pts, w, queries = workload
        tree = make_tree(KDTree, workload)
        agg = KernelAggregator(tree, GaussianKernel(6.0))
        a1 = agg.tkaq_many(queries, 1.0, backend="parallel",
                           n_workers=N_WORKERS)
        agg.close()
        with pytest.raises(RuntimeError, match="closed"):
            agg.tkaq_many(queries, 1.0, backend="parallel",
                          n_workers=N_WORKERS)
        with pytest.raises(RuntimeError, match="closed"):
            agg.ekaq_many(queries, 0.2, backend="parallel",
                          n_workers=N_WORKERS)
        # serial backends keep working after close()
        a2 = agg.tkaq_many(queries, 1.0)
        assert np.array_equal(a1, a2)

    def test_context_manager_exit_closes_parallel(self, workload):
        tree = make_tree(KDTree, workload)
        with KernelAggregator(tree, GaussianKernel(6.0)) as agg:
            agg.tkaq_many(workload[2], 1.0, backend="parallel",
                          n_workers=N_WORKERS)
        with pytest.raises(RuntimeError, match="closed"):
            agg.tkaq_many(workload[2], 1.0, backend="parallel",
                          n_workers=N_WORKERS)


# ----------------------------------------------------------------------
# failure model
# ----------------------------------------------------------------------


@pytest.mark.skipif(not shared_memory_available(), reason="no shared_memory")
class TestFailureModel:
    def test_killed_worker_raises_then_pool_rebuilds(self, workload):
        pts, w, queries = workload
        tree = make_tree(KDTree, workload)
        kernel = GaussianKernel(6.0)
        with ParallelEvaluator(tree, kernel, n_workers=N_WORKERS) as ev:
            before = ev.tkaq_many(queries, 1.0)  # warm the pool
            for pid in list(ev._pool._processes):
                os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 60.0
            with pytest.raises(ParallelExecutionError):
                while time.monotonic() < deadline:
                    ev.tkaq_many(queries, 1.0)
            # next batch transparently rebuilds the pool
            after = ev.tkaq_many(queries, 1.0)
            assert np.array_equal(before, after)

    def test_parent_side_validation(self, workload):
        pts, w, _ = workload
        tree = make_tree(KDTree, workload)
        with ParallelEvaluator(tree, GaussianKernel(6.0),
                               n_workers=N_WORKERS) as ev:
            with pytest.raises(InvalidParameterError):
                ev.ekaq_many(workload[2], -0.5)
            from repro.core.errors import DataShapeError

            with pytest.raises(DataShapeError):
                ev.tkaq_many(np.ones((3, 9)), 1.0)  # wrong dimension

    def test_serial_fallback_without_shared_memory(self, workload,
                                                   monkeypatch):
        pts, w, queries = workload
        tree = make_tree(KDTree, workload)
        kernel = GaussianKernel(6.0)
        monkeypatch.setattr(
            par_evaluator, "shared_memory_available", lambda: False
        )
        with pytest.warns(RuntimeWarning, match="serial"):
            ev = ParallelEvaluator(tree, kernel, n_workers=N_WORKERS)
        assert ev.serial_fallback
        agg = KernelAggregator(tree, kernel)
        tau = 1.0
        assert np.array_equal(
            ev.tkaq_many(queries, tau),
            agg.tkaq_many(queries, tau, backend="auto"),
        )
        ev.close()


# ----------------------------------------------------------------------
# observability round-trip
# ----------------------------------------------------------------------


@pytest.mark.skipif(not shared_memory_available(), reason="no shared_memory")
class TestObservability:
    def test_worker_traces_roundtrip_to_parent(self, workload, tmp_path,
                                               obs_sandbox):
        pts, w, queries = workload
        tree = make_tree(KDTree, workload)
        kernel = GaussianKernel(6.0)
        path = tmp_path / "parallel.jsonl"
        obs.enable(jsonl=path)
        try:
            with ParallelEvaluator(tree, kernel, n_workers=N_WORKERS) as ev:
                ev.tkaq_many(queries, 1.0)
            traces = obs.recent_traces()
        finally:
            obs.disable()

        umbrella = [t for t in traces if t.backend == "parallel"]
        workers = [t for t in traces if t.backend != "parallel"]
        assert len(umbrella) == 1
        assert workers, "worker traces should round-trip to the parent ring"
        (ut,) = umbrella
        assert ut.kind == "tkaq" and ut.n_queries == len(queries)
        # point conservation holds for the merged umbrella trace
        assert ut.total_points + ut.pruned_points == len(queries) * tree.n
        assert ut.extra["n_chunks"] >= 1
        for t in workers:
            assert "worker_pid" in t.extra and "chunk" in t.extra
            assert t.wall_time > 0.0

        from repro.obs import read_traces

        on_disk = list(read_traces(path))
        assert len(on_disk) == len(traces)

    def test_parallel_metrics_updated(self, workload, obs_sandbox):
        pts, w, queries = workload
        tree = make_tree(KDTree, workload)
        obs.enable()
        try:
            reg = obs_runtime.registry()
            reg.reset()
            with ParallelEvaluator(tree, GaussianKernel(6.0),
                                   n_workers=N_WORKERS) as ev:
                ev.tkaq_many(queries, 1.0)
            snap = reg.snapshot()
        finally:
            obs.disable()
        assert snap["counters"]["parallel.batches_total"] == 1
        assert snap["counters"]["parallel.queries_total"] == len(queries)
        assert snap["gauges"]["parallel.n_workers"] == N_WORKERS

    def test_tracing_changes_nothing(self, workload, obs_sandbox):
        pts, w, queries = workload
        tree = make_tree(KDTree, workload)
        kernel = GaussianKernel(6.0)
        with ParallelEvaluator(tree, kernel, n_workers=N_WORKERS) as ev:
            plain = ev.tkaq_many_results(queries, 1.0)
            obs.enable()
            try:
                traced = ev.tkaq_many_results(queries, 1.0)
            finally:
                obs.disable()
        assert np.array_equal(plain.answers, traced.answers)
        assert np.array_equal(plain.lower, traced.lower)
        assert np.array_equal(plain.upper, traced.upper)


# ----------------------------------------------------------------------
# heterogeneous per-query parameters (sharded with the query rows)
# ----------------------------------------------------------------------


@pytest.mark.skipif(not shared_memory_available(), reason="no shared_memory")
class TestHeterogeneousParams:
    def test_vector_params_shard_with_queries(self, workload):
        pts, w, queries = workload
        tree = make_tree(KDTree, workload)
        agg = KernelAggregator(tree, GaussianKernel(6.0))
        exact = np.array([agg.exact(q) for q in queries])
        rng = np.random.default_rng(5)
        taus = exact * rng.uniform(0.5, 1.5, exact.shape)
        epss = rng.uniform(0.05, 0.6, queries.shape[0])
        # force several chunks so the vectors must be sharded correctly
        with ParallelEvaluator(tree, GaussianKernel(6.0),
                               n_workers=N_WORKERS, chunk_size=7) as ev:
            tk = ev.tkaq_many_results(queries, taus)
            ek = ev.ekaq_many_results(queries, epss)
        assert np.array_equal(tk.answers, exact > taus)
        assert np.all(np.abs(ek.estimates - exact) <= epss * exact + 1e-12)
        assert np.array_equal(tk.tau, taus)
        assert np.array_equal(ek.eps, epss)

    def test_vector_params_match_serial_chunked(self, workload):
        """Chunk-by-chunk serial evaluation with the same param slices is
        bitwise-identical to the parallel run."""
        pts, w, queries = workload
        tree = make_tree(KDTree, workload)
        agg = KernelAggregator(tree, GaussianKernel(6.0))
        rng = np.random.default_rng(6)
        epss = rng.uniform(0.05, 0.6, queries.shape[0])
        chunk = 9
        with ParallelEvaluator(tree, GaussianKernel(6.0),
                               n_workers=N_WORKERS, chunk_size=chunk) as ev:
            par = ev.ekaq_many_results(queries, epss)
        parts = [
            agg.ekaq_many_results(queries[s:s + chunk], epss[s:s + chunk])
            for s in range(0, queries.shape[0], chunk)
        ]
        serial = np.concatenate([p.estimates for p in parts])
        assert np.array_equal(par.estimates, serial)

    def test_vector_length_validated_before_dispatch(self, workload):
        tree = make_tree(KDTree, workload)
        with ParallelEvaluator(tree, GaussianKernel(6.0),
                               n_workers=N_WORKERS) as ev:
            from repro.core.errors import DataShapeError

            with pytest.raises(DataShapeError):
                ev.tkaq_many(workload[2], np.zeros(3))
