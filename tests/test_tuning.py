"""Tests for offline grid tuning and the in-situ online tuner."""

import numpy as np
import pytest

from repro.baselines import ScanEvaluator
from repro.core import GaussianKernel, OfflineTuner, OnlineTuner
from repro.core.errors import InvalidParameterError
from repro.core.tuning import make_query_runner


@pytest.fixture
def small_problem(rng):
    centers = rng.random((4, 3))
    pts = np.clip(
        centers[rng.integers(0, 4, 3000)] + 0.05 * rng.standard_normal((3000, 3)),
        0, 1,
    )
    kernel = GaussianKernel(15.0)
    queries = pts[rng.choice(3000, 40, replace=False)]
    scan = ScanEvaluator(pts, kernel)
    tau = float(scan.exact_many(queries).mean())
    return pts, kernel, queries, tau, scan


class TestQueryRunner:
    def test_tkaq_runner(self, small_problem):
        pts, kernel, queries, tau, scan = small_problem
        runner = make_query_runner("tkaq", tau)
        assert runner(scan, queries[0]) == (scan.exact(queries[0]) > tau)

    def test_ekaq_runner(self, small_problem):
        pts, kernel, queries, tau, scan = small_problem
        runner = make_query_runner("ekaq", 0.2)
        est = runner(scan, queries[0])
        assert est == pytest.approx(scan.exact(queries[0]))

    def test_invalid_type(self):
        with pytest.raises(InvalidParameterError):
            make_query_runner("range", 1.0)


class TestOfflineTuner:
    def test_reports_full_grid(self, small_problem):
        pts, kernel, queries, tau, _ = small_problem
        tuner = OfflineTuner(
            kernel, kinds=("kd", "ball"), leaf_capacities=(40, 160),
            sample_size=10, rng=0,
        )
        agg, report = tuner.tune(pts, None, queries, "tkaq", tau)
        assert len(report.candidates) == 4
        kinds = {(c.kind, c.leaf_capacity) for c in report.candidates}
        assert kinds == {("kd", 40), ("kd", 160), ("ball", 40), ("ball", 160)}

    def test_best_worst_ordering(self, small_problem):
        pts, kernel, queries, tau, _ = small_problem
        tuner = OfflineTuner(
            kernel, kinds=("kd",), leaf_capacities=(20, 320), sample_size=10, rng=0
        )
        _, report = tuner.tune(pts, None, queries, "tkaq", tau)
        assert report.best.throughput >= report.worst.throughput

    def test_returned_aggregator_matches_best(self, small_problem):
        pts, kernel, queries, tau, _ = small_problem
        tuner = OfflineTuner(
            kernel, kinds=("kd", "ball"), leaf_capacities=(40,),
            sample_size=10, rng=0,
        )
        agg, report = tuner.tune(pts, None, queries, "tkaq", tau)
        assert agg.tree.kind == report.best.kind
        assert agg.tree.leaf_capacity == report.best.leaf_capacity

    def test_answers_are_correct(self, small_problem):
        pts, kernel, queries, tau, scan = small_problem
        tuner = OfflineTuner(
            kernel, kinds=("kd",), leaf_capacities=(40,), sample_size=5, rng=0
        )
        agg, _ = tuner.tune(pts, None, queries, "tkaq", tau)
        exact = scan.exact_many(queries)
        for q, f in zip(queries, exact):
            assert agg.tkaq(q, tau).answer == (f > tau)

    def test_sample_capped_at_pool(self, small_problem):
        pts, kernel, queries, tau, _ = small_problem
        tuner = OfflineTuner(
            kernel, kinds=("kd",), leaf_capacities=(80,), sample_size=10_000, rng=0
        )
        # must not raise even though sample_size > |queries|
        tuner.tune(pts, None, queries, "tkaq", tau)


class TestOnlineTuner:
    def test_all_queries_answered_correctly(self, small_problem):
        pts, kernel, queries, tau, scan = small_problem
        tuner = OnlineTuner(kernel, sample_fraction=0.2, num_candidate_depths=4)
        report = tuner.run(pts, None, queries, "tkaq", tau)
        exact = scan.exact_many(queries)
        assert len(report.answers) == len(queries)
        for ans, f in zip(report.answers, exact):
            assert ans == (f > tau)

    def test_timing_fields_positive(self, small_problem):
        pts, kernel, queries, tau, _ = small_problem
        tuner = OnlineTuner(kernel, sample_fraction=0.2, num_candidate_depths=3)
        report = tuner.run(pts, None, queries, "tkaq", tau)
        assert report.build_seconds > 0
        assert report.tune_seconds > 0
        assert report.total_seconds >= report.build_seconds
        assert report.throughput > 0

    def test_best_depth_within_tree(self, small_problem):
        pts, kernel, queries, tau, _ = small_problem
        tuner = OnlineTuner(kernel, sample_fraction=0.3, num_candidate_depths=5)
        report = tuner.run(pts, None, queries, "tkaq", tau)
        assert 0 <= report.best_depth
        assert report.best_depth in report.depth_throughputs

    def test_candidate_depths_are_subset(self, small_problem):
        pts, kernel, queries, tau, _ = small_problem
        tuner = OnlineTuner(kernel, num_candidate_depths=4)
        depths = tuner._candidate_depths(20)
        assert len(depths) <= 4 + 1
        assert all(0 <= dd <= 20 for dd in depths)
        assert depths == sorted(depths)

    def test_small_tree_uses_all_depths(self, small_problem):
        pts, kernel, queries, tau, _ = small_problem
        tuner = OnlineTuner(kernel, num_candidate_depths=10)
        assert tuner._candidate_depths(3) == [0, 1, 2, 3]

    def test_invalid_sample_fraction(self):
        with pytest.raises(InvalidParameterError):
            OnlineTuner(GaussianKernel(1.0), sample_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            OnlineTuner(GaussianKernel(1.0), sample_fraction=1.5)

    def test_ekaq_workload(self, small_problem):
        pts, kernel, queries, tau, scan = small_problem
        tuner = OnlineTuner(kernel, sample_fraction=0.2, num_candidate_depths=3)
        report = tuner.run(pts, None, queries, "ekaq", 0.3)
        exact = scan.exact_many(queries)
        for est, f in zip(report.answers, exact):
            assert (1 - 0.3) * f - 1e-9 <= est <= (1 + 0.3) * f + 1e-9


class TestTunersWithWeights:
    def test_offline_tuner_type3_weights(self, rng):
        pts = rng.random((1500, 3))
        w = rng.standard_normal(1500)
        kernel = GaussianKernel(8.0)
        queries = pts[rng.choice(1500, 20, replace=False)]
        from repro.baselines import ScanEvaluator

        scan = ScanEvaluator(pts, kernel, w)
        exact = scan.exact_many(queries)
        tau = float(exact.mean())
        tuner = OfflineTuner(kernel, kinds=("kd",), leaf_capacities=(40,),
                             sample_size=5, rng=0)
        agg, _ = tuner.tune(pts, w, queries, "tkaq", tau)
        for q, f in zip(queries, exact):
            assert agg.tkaq(q, tau).answer == (f > tau)

    def test_online_tuner_type2_weights(self, rng):
        pts = rng.random((1500, 3))
        w = rng.random(1500)
        kernel = GaussianKernel(8.0)
        queries = pts[rng.choice(1500, 20, replace=False)]
        from repro.baselines import ScanEvaluator

        scan = ScanEvaluator(pts, kernel, w)
        exact = scan.exact_many(queries)
        tau = float(exact.mean())
        tuner = OnlineTuner(kernel, sample_fraction=0.2, num_candidate_depths=3)
        report = tuner.run(pts, w, queries, "tkaq", tau)
        assert report.answers == [f > tau for f in exact]
