"""Randomised end-to-end fuzzing of the full query pipeline.

Hypothesis drives random (dataset shape, kernel, weighting, tree, scheme,
query-parameter) configurations through index construction and both query
types, checking the exact-answer contract against brute force every time.
This is the widest net in the suite: any interaction bug between the
components almost certainly violates one of these oracles.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ScanEvaluator
from repro.core import (
    CauchyKernel,
    EpanechnikovKernel,
    GaussianKernel,
    KernelAggregator,
    LaplacianKernel,
    PolynomialKernel,
    SigmoidKernel,
)
from repro.index import BallTree, KDTree


@st.composite
def pipeline_config(draw):
    n = draw(st.integers(20, 400))
    d = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 10_000))
    kernel_kind = draw(st.sampled_from(
        ["gaussian", "laplacian", "cauchy", "epanechnikov", "poly2",
         "poly3", "sigmoid"]
    ))
    weighting = draw(st.sampled_from(["I", "II", "III"]))
    tree_kind = draw(st.sampled_from(["kd", "ball"]))
    scheme = draw(st.sampled_from(["karl", "sota"]))
    cap = draw(st.integers(1, 64))
    return n, d, seed, kernel_kind, weighting, tree_kind, scheme, cap


def _make_kernel(kind, rng):
    gamma = float(rng.uniform(0.2, 30.0))
    if kind == "gaussian":
        return GaussianKernel(gamma)
    if kind == "laplacian":
        return LaplacianKernel(float(rng.uniform(0.2, 5.0)))
    if kind == "cauchy":
        return CauchyKernel(gamma)
    if kind == "epanechnikov":
        return EpanechnikovKernel(float(rng.uniform(0.5, 20.0)))
    coef0 = float(rng.uniform(-0.5, 0.5))
    if kind == "poly2":
        return PolynomialKernel(float(rng.uniform(0.2, 2.0)), coef0, 2)
    if kind == "poly3":
        return PolynomialKernel(float(rng.uniform(0.2, 2.0)), coef0, 3)
    return SigmoidKernel(float(rng.uniform(0.2, 2.0)), coef0)


def _make_weights(weighting, n, rng):
    if weighting == "I":
        return np.full(n, float(rng.uniform(0.1, 3.0)))
    if weighting == "II":
        return rng.uniform(0.01, 2.0, n)
    return rng.standard_normal(n)


class TestPipelineFuzz:
    @settings(max_examples=60, deadline=None)
    @given(config=pipeline_config())
    def test_tkaq_matches_bruteforce(self, config):
        n, d, seed, kernel_kind, weighting, tree_kind, scheme, cap = config
        rng = np.random.default_rng(seed)
        pts = rng.random((n, d))
        w = _make_weights(weighting, n, rng)
        kernel = _make_kernel(kernel_kind, rng)

        cls = KDTree if tree_kind == "kd" else BallTree
        tree = cls(pts, weights=w, leaf_capacity=cap)
        agg = KernelAggregator(tree, kernel, scheme=scheme)
        scan = ScanEvaluator(pts, kernel, w)

        q = rng.random(d)
        f = scan.exact(q)
        margin = 0.1 * (1.0 + abs(f))
        assert agg.tkaq(q, f - margin).answer
        assert not agg.tkaq(q, f + margin).answer

    @settings(max_examples=40, deadline=None)
    @given(config=pipeline_config())
    def test_ekaq_bounds_bracket_bruteforce(self, config):
        n, d, seed, kernel_kind, weighting, tree_kind, scheme, cap = config
        rng = np.random.default_rng(seed)
        pts = rng.random((n, d))
        w = _make_weights(weighting, n, rng)
        kernel = _make_kernel(kernel_kind, rng)

        cls = KDTree if tree_kind == "kd" else BallTree
        tree = cls(pts, weights=w, leaf_capacity=cap)
        agg = KernelAggregator(tree, kernel, scheme=scheme)
        scan = ScanEvaluator(pts, kernel, w)

        q = rng.random(d)
        f = scan.exact(q)
        res = agg.ekaq(q, float(rng.uniform(0.0, 0.5)))
        tol = 1e-7 * (1.0 + abs(f))
        assert res.lower <= f + tol
        assert res.upper >= f - tol
        if res.lower > 0:  # relative guarantee applies
            assert (1 - res.eps) * f - tol <= res.estimate
            assert res.estimate <= (1 + res.eps) * f + tol

    @settings(max_examples=30, deadline=None)
    @given(config=pipeline_config())
    def test_depth_caps_never_change_answers(self, config):
        n, d, seed, kernel_kind, weighting, tree_kind, scheme, cap = config
        rng = np.random.default_rng(seed)
        pts = rng.random((n, d))
        w = _make_weights(weighting, n, rng)
        kernel = _make_kernel(kernel_kind, rng)
        cls = KDTree if tree_kind == "kd" else BallTree
        tree = cls(pts, weights=w, leaf_capacity=cap)
        scan = ScanEvaluator(pts, kernel, w)

        q = rng.random(d)
        f = scan.exact(q)
        tau = f - 0.2 * (1.0 + abs(f))
        for depth in {0, tree.max_depth // 2, tree.max_depth}:
            agg = KernelAggregator(tree, kernel, scheme=scheme, max_depth=depth)
            assert agg.tkaq(q, tau).answer
