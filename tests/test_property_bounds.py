"""Property-based correctness of node bounds on real index nodes.

``test_bounds.py`` checks the schemes on synthetic (interval, moments)
inputs; here hypothesis drives the *full stack* — random datasets,
weights, queries, and kernels, through index construction and the
evaluator's node-bound path — and asserts the paper's invariants on
every tree node:

* **Soundness (Lemma 1)**: ``lower <= F_node(q) <= upper`` for every
  scheme, node, and weighting type;
* **Dominance (Lemmas 3-4)**: KARL's gap never exceeds SOTA's for
  convex-decreasing distance kernels, and Hybrid never loses to either;
* **Matrix/scalar agreement**: the fused batch bound grids equal the
  scalar per-node bounds the sequential evaluator uses.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregator import KernelAggregator
from repro.core.bounds import HybridBounds, KARLBounds, SOTABounds
from repro.core.kernels import (
    CauchyKernel,
    EpanechnikovKernel,
    GaussianKernel,
    LaplacianKernel,
    PolynomialKernel,
    SigmoidKernel,
)
from repro.core.multiquery import MultiQueryAggregator
from repro.index.builder import build_index

SCHEMES = [KARLBounds(), SOTABounds(), HybridBounds()]

#: convex-decreasing distance kernels — the KARL-dominance setting
DISTANCE_KERNELS = [
    GaussianKernel(gamma=6.0),
    LaplacianKernel(gamma=2.5),
    CauchyKernel(gamma=1.5),
    EpanechnikovKernel(gamma=0.9),
]

#: inner-product kernels — soundness must still hold
IP_KERNELS = [
    PolynomialKernel(gamma=0.8, coef0=0.3, degree=2),
    PolynomialKernel(gamma=0.7, coef0=-0.2, degree=3),
    SigmoidKernel(gamma=0.7, coef0=0.1),
]


@st.composite
def problem(draw, kernels, signed_allowed=True):
    """A random (tree, kernel, query) triple via a drawn RNG seed."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(30, 200))
    d = draw(st.integers(1, 5))
    kind = draw(st.sampled_from(["kd", "ball"]))
    leaf = draw(st.sampled_from([5, 20, 60]))
    kernel = draw(st.sampled_from(kernels))
    weighting = draw(
        st.sampled_from(["uniform", "positive", "signed"])
        if signed_allowed else st.sampled_from(["uniform", "positive"])
    )
    rng = np.random.default_rng(seed)
    pts = rng.random((n, d)) * draw(st.sampled_from([1.0, 4.0]))
    if weighting == "uniform":
        w = None
    elif weighting == "positive":
        w = rng.random(n) + 1e-3
    else:
        w = rng.standard_normal(n)
    tree = build_index(kind, pts, weights=w, leaf_capacity=leaf)
    in_hull = draw(st.booleans())
    q = pts[int(rng.integers(n))] if in_hull else rng.random(d) * 6.0 - 1.0
    return tree, kernel, np.ascontiguousarray(q)


def _exact_node(tree, kernel, q, q_sq, node):
    sl = slice(int(tree.start[node]), int(tree.end[node]))
    vals = kernel.pairwise(q, tree.points[sl], tree.sq_norms[sl], q_sq)
    return float(tree.weights[sl] @ vals)


def _tol(*values):
    return 1e-8 * (1.0 + max(abs(v) for v in values))


class TestSoundness:
    @settings(max_examples=40, deadline=None)
    @given(p=problem(DISTANCE_KERNELS + IP_KERNELS))
    def test_every_node_bounds_contain_exact(self, p):
        tree, kernel, q = p
        agg = KernelAggregator(tree, kernel)
        q_sq = float(q @ q)
        for node in range(tree.num_nodes):
            exact = _exact_node(tree, kernel, q, q_sq, node)
            for scheme in SCHEMES:
                lb, ub = agg._node_bounds(q, q_sq, node, scheme)
                tol = _tol(exact, lb, ub)
                assert lb <= exact + tol, (scheme.name, node)
                assert exact <= ub + tol, (scheme.name, node)


class TestDominance:
    @settings(max_examples=40, deadline=None)
    @given(p=problem(DISTANCE_KERNELS))
    def test_karl_never_looser_than_sota(self, p):
        tree, kernel, q = p
        agg = KernelAggregator(tree, kernel)
        q_sq = float(q @ q)
        karl, sota = KARLBounds(), SOTABounds()
        for node in range(tree.num_nodes):
            klb, kub = agg._node_bounds(q, q_sq, node, karl)
            slb, sub = agg._node_bounds(q, q_sq, node, sota)
            tol = _tol(klb, kub, slb, sub)
            assert kub - klb <= (sub - slb) + tol, node

    @settings(max_examples=30, deadline=None)
    @given(p=problem(DISTANCE_KERNELS))
    def test_hybrid_best_of_both(self, p):
        tree, kernel, q = p
        agg = KernelAggregator(tree, kernel)
        q_sq = float(q @ q)
        hybrid = HybridBounds()
        for node in range(tree.num_nodes):
            hlb, hub = agg._node_bounds(q, q_sq, node, hybrid)
            for other in (KARLBounds(), SOTABounds()):
                olb, oub = agg._node_bounds(q, q_sq, node, other)
                tol = _tol(hlb, hub, olb, oub)
                assert hlb >= olb - tol, (other.name, node)
                assert hub <= oub + tol, (other.name, node)


class TestMatrixScalarAgreement:
    @settings(max_examples=30, deadline=None)
    @given(p=problem(DISTANCE_KERNELS), seed=st.integers(0, 2**32 - 1))
    def test_grid_matches_scalar_bounds(self, p, seed):
        tree, kernel, q = p
        agg = KernelAggregator(tree, kernel)
        mq = MultiQueryAggregator(tree, kernel)
        rng = np.random.default_rng(seed)
        Q = np.vstack([q, rng.random((3, tree.d))])
        q_sq = np.einsum("ij,ij->i", Q, Q)
        nodes = np.arange(tree.num_nodes, dtype=np.int64)
        for scheme in SCHEMES:
            lb_mat, ub_mat = mq._grid_bounds(Q, q_sq, nodes, scheme)
            for i, qi in enumerate(Q):
                for node in nodes:
                    lb, ub = agg._node_bounds(qi, float(q_sq[i]), int(node),
                                              scheme)
                    assert lb_mat[i, node] == pytest.approx(lb, rel=1e-9,
                                                            abs=1e-12)
                    assert ub_mat[i, node] == pytest.approx(ub, rel=1e-9,
                                                            abs=1e-12)


class TestQueryLevelSoundness:
    """The refined global bounds bracket the true aggregate."""

    @settings(max_examples=25, deadline=None)
    @given(p=problem(DISTANCE_KERNELS + IP_KERNELS), eps=st.sampled_from(
        [0.0, 0.05, 0.5]))
    def test_ekaq_bounds_bracket_exact(self, p, eps):
        tree, kernel, q = p
        agg = KernelAggregator(tree, kernel)
        exact = agg.exact(q)
        res = agg.ekaq(q, eps)
        tol = _tol(exact, res.lower, res.upper)
        assert res.lower <= exact + tol
        assert exact <= res.upper + tol

    @settings(max_examples=25, deadline=None)
    @given(p=problem(DISTANCE_KERNELS + IP_KERNELS),
           frac=st.floats(0.1, 1.9))
    def test_tkaq_answer_matches_exact(self, p, frac):
        tree, kernel, q = p
        agg = KernelAggregator(tree, kernel)
        exact = agg.exact(q)
        tau = exact * frac + (1e-6 if exact == 0.0 else 0.0)
        if abs(exact - tau) < 1e-9 * (1.0 + abs(exact)):
            return  # knife-edge threshold: float-order sensitive
        assert agg.tkaq(q, tau).answer == (exact > tau)
