"""Tests for Nadaraya-Watson kernel regression on the KARL engine."""

import numpy as np
import pytest

from repro.core import GaussianKernel
from repro.core.errors import DataShapeError, NotFittedError
from repro.regression import NadarayaWatson


@pytest.fixture
def sine_data(rng):
    X = rng.random((2000, 2))
    y = np.sin(5 * X[:, 0]) + 0.05 * rng.standard_normal(2000)
    return X, y


class TestNadarayaWatson:
    def test_recovers_smooth_function(self, sine_data, rng):
        X, y = sine_data
        model = NadarayaWatson(kernel=GaussianKernel(60.0)).fit(X, y)
        grid = rng.random((50, 2))
        preds = model.predict(grid)
        truth = np.sin(5 * grid[:, 0])
        assert np.sqrt(np.mean((preds - truth) ** 2)) < 0.15

    def test_exact_matches_bruteforce(self, sine_data, rng):
        X, y = sine_data
        gamma = 20.0
        model = NadarayaWatson(kernel=GaussianKernel(gamma)).fit(X, y)
        q = rng.random(2)
        k = np.exp(-gamma * np.sum((X - q) ** 2, axis=1))
        assert model.predict_one(q) == pytest.approx(
            float(y @ k) / float(k.sum()), rel=1e-9
        )

    def test_approximate_close_to_exact(self, sine_data):
        X, y = sine_data
        model = NadarayaWatson(kernel=GaussianKernel(60.0)).fit(X, y)
        for q in X[:10]:
            exact = model.predict_one(q)
            approx = model.predict_one(q, eps=0.1)
            assert approx == pytest.approx(exact, abs=0.25 * (abs(exact) + 0.1))

    def test_interpolates_constant_target(self, rng):
        X = rng.random((500, 3))
        model = NadarayaWatson(kernel=GaussianKernel(10.0)).fit(X, np.full(500, 2.5))
        assert model.predict_one(rng.random(3)) == pytest.approx(2.5)

    def test_default_kernel(self, rng):
        model = NadarayaWatson().fit(rng.random((100, 4)), rng.random(100))
        assert model.kernel.gamma == pytest.approx(0.25)

    def test_length_mismatch(self, rng):
        with pytest.raises(DataShapeError):
            NadarayaWatson().fit(rng.random((10, 2)), rng.random(9))

    def test_unfitted(self, rng):
        with pytest.raises(NotFittedError):
            NadarayaWatson().predict(rng.random((2, 2)))

    def test_zero_density_region_returns_zero(self, rng):
        X = rng.random((200, 2)) * 0.1
        model = NadarayaWatson(kernel=GaussianKernel(5000.0)).fit(X, rng.random(200))
        assert model.predict_one(np.array([50.0, 50.0])) == 0.0


class TestThresholdQueries:
    def test_above_threshold_matches_exact_ratio(self, sine_data):
        X, y = sine_data
        from repro.core import GaussianKernel

        model = NadarayaWatson(kernel=GaussianKernel(60.0)).fit(X, y)
        for q in X[:25]:
            m = model.predict_one(q)
            for tau in (m - 0.2, m + 0.2, 0.0):
                if abs(m - tau) < 1e-9:
                    continue
                assert model.above_threshold(q, tau) == (m > tau)

    def test_thresholder_cache_reused(self, sine_data):
        X, y = sine_data
        model = NadarayaWatson().fit(X, y)
        a = model._threshold_aggregator(0.5)
        b = model._threshold_aggregator(0.5)
        assert a is b
        c = model._threshold_aggregator(0.7)
        assert c is not a

    def test_cache_cleared_on_refit(self, sine_data, rng):
        X, y = sine_data
        model = NadarayaWatson().fit(X, y)
        model.above_threshold(X[0], 0.5)
        assert model._cached_thresholders
        model.fit(rng.random((100, 2)), rng.random(100))
        assert not model._cached_thresholders

    def test_unfitted(self, rng):
        from repro.core.errors import NotFittedError

        with pytest.raises(NotFittedError):
            NadarayaWatson().above_threshold(rng.random(2), 0.5)
