"""Tests for the experiment CLI dispatcher."""

import pytest

from repro.bench.runner import EXPERIMENTS, _benchmarks_dir, main


class TestRunnerCLI:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "table7" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_registry_points_at_real_files(self):
        bench_dir = _benchmarks_dir()
        for name, (filename, builders) in EXPERIMENTS.items():
            path = bench_dir / filename
            assert path.exists(), name
            source = path.read_text()
            for builder in builders:
                assert f"def {builder}(" in source, (name, builder)

    def test_every_table_and_figure_is_covered(self):
        """DESIGN.md promises one bench per table/figure of Section V."""
        expected = {"table7", "table8", "table9", "table10",
                    "fig6", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13"}
        assert expected.issubset(set(EXPERIMENTS))
