"""The bench-regression gate: ``python -m repro.bench.compare``.

The CI contract under test: regressions fail loudly (exit 1), broken
*current* results fail loudly (exit 2), and every incomparability —
missing baseline, malformed baseline, unstamped or mismatched host —
skips quietly (exit 0) so a new benchmark or a new CI runner never
blocks the build.
"""

import json

import pytest

from repro.bench.compare import (
    ERROR,
    OK,
    REGRESSED,
    compare_payloads,
    host_class,
    main,
    throughput_metrics,
)

HOST = {"machine": "x86_64", "schedulable_cpus": 8, "python": "3.11.7"}


def _payload(qps, host=HOST):
    out = {
        "eps": 0.1,
        "datasets": [
            {"dataset": "home", "ekaq_qps": qps, "fallback_rate": 0.01},
            {"dataset": "susy", "ekaq_qps": 2 * qps, "n": 40000},
        ],
        "single_qps": 10 * qps,
    }
    if host is not None:
        out["host"] = host
    return out


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestThroughputMetrics:
    def test_collects_nested_qps_with_labels(self):
        metrics = throughput_metrics(_payload(100.0))
        assert metrics == {
            "datasets.dataset=home.ekaq_qps": 100.0,
            "datasets.dataset=susy.ekaq_qps": 200.0,
            "single_qps": 1000.0,
        }

    def test_ignores_non_qps_bools_and_strings(self):
        metrics = throughput_metrics({
            "ready_qps": True,          # bool is not a measurement
            "name_qps": "fast",         # nor is a string
            "latency_ms": 3.0,          # wrong suffix
            "real_qps": 5,              # ints count
        })
        assert metrics == {"real_qps": 5.0}

    def test_list_label_fallback_to_index(self):
        metrics = throughput_metrics({"rows": [{"x_qps": 1.0}]})
        assert metrics == {"rows.0.x_qps": 1.0}

    def test_n_workers_label(self):
        metrics = throughput_metrics(
            {"workers": [{"n_workers": 4, "batch_qps": 7.0}]})
        assert metrics == {"workers.n_workers=4.batch_qps": 7.0}


class TestHostClass:
    def test_stamped(self):
        # unstamped native fields read as interpreted/numba-free defaults
        assert host_class(_payload(1.0)) == ("x86_64", 8, "auto", None)

    def test_native_state_splits_the_class(self):
        jit = dict(HOST, repro_native="auto", numba="0.59.0")
        interp = dict(HOST, repro_native="0", numba=None)
        assert host_class(_payload(1.0, host=jit)) != host_class(
            _payload(1.0, host=interp)
        )
        assert host_class(_payload(1.0, host=interp)) == (
            "x86_64", 8, "0", None,
        )

    def test_unstamped_variants(self):
        assert host_class(_payload(1.0, host=None)) is None
        assert host_class(_payload(1.0, host={"machine": "arm64"})) is None
        assert host_class({"host": "not-a-dict"}) is None
        assert host_class([1, 2]) is None


class TestComparePayloads:
    def test_flags_only_regressions_beyond_threshold(self):
        base = _payload(100.0)
        cur = _payload(100.0)
        cur["datasets"][0]["ekaq_qps"] = 65.0   # -35%: regressed
        cur["datasets"][1]["ekaq_qps"] = 150.0  # -25%: within threshold
        cur["single_qps"] = 2000.0              # improvement
        rows, regressions = compare_payloads(base, cur, threshold=0.30)
        assert len(rows) == 3
        assert regressions == ["datasets.dataset=home.ekaq_qps"]

    def test_disjoint_metrics_ignored(self):
        rows, regressions = compare_payloads(
            {"old_qps": 9.0}, {"new_qps": 1.0})
        assert rows == [] and regressions == []


class TestMainExitCodes:
    def test_regression_fails(self, tmp_path, capsys):
        """The acceptance scenario: a synthetic 2x slowdown exits 1."""
        base = _write(tmp_path, "base.json", _payload(100.0))
        cur = _write(tmp_path, "cur.json", _payload(50.0))
        assert main([str(base), str(cur)]) == REGRESSED
        out = capsys.readouterr().out
        assert "FAIL" in out and "ekaq_qps" in out

    def test_no_regression_passes(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload(100.0))
        cur = _write(tmp_path, "cur.json", _payload(95.0))
        assert main([str(base), str(cur)]) == OK
        assert "OK" in capsys.readouterr().out

    def test_missing_baseline_skips(self, tmp_path, capsys):
        cur = _write(tmp_path, "cur.json", _payload(50.0))
        assert main([str(tmp_path / "nope.json"), str(cur)]) == OK
        assert "skip" in capsys.readouterr().out

    def test_malformed_baseline_skips(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text("{not json")
        cur = _write(tmp_path, "cur.json", _payload(50.0))
        assert main([str(base), str(cur)]) == OK
        assert "skip" in capsys.readouterr().out

    def test_non_dict_baseline_skips(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text("[1, 2, 3]")
        cur = _write(tmp_path, "cur.json", _payload(50.0))
        assert main([str(base), str(cur)]) == OK

    def test_host_mismatch_skips(self, tmp_path, capsys):
        other = dict(HOST, schedulable_cpus=2)
        base = _write(tmp_path, "base.json", _payload(100.0, host=other))
        cur = _write(tmp_path, "cur.json", _payload(10.0))
        assert main([str(base), str(cur)]) == OK
        assert "not comparable" in capsys.readouterr().out

    def test_unstamped_baseline_skips(self, tmp_path):
        # pre-stamping baselines (e.g. BENCH_parallel.json) must not fail
        base = _write(tmp_path, "base.json", _payload(100.0, host=None))
        cur = _write(tmp_path, "cur.json", _payload(10.0))
        assert main([str(base), str(cur)]) == OK

    def test_missing_current_errors(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload(100.0))
        assert main([str(base), str(tmp_path / "nope.json")]) == ERROR
        assert "error" in capsys.readouterr().err

    def test_malformed_current_errors(self, tmp_path):
        base = _write(tmp_path, "base.json", _payload(100.0))
        cur = tmp_path / "cur.json"
        cur.write_text("nope")
        assert main([str(base), str(cur)]) == ERROR

    def test_no_shared_metrics_skips(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json",
                      {"host": HOST, "old_qps": 1.0})
        cur = _write(tmp_path, "cur.json",
                     {"host": HOST, "new_qps": 1.0})
        assert main([str(base), str(cur)]) == OK
        assert "no shared" in capsys.readouterr().out

    def test_custom_threshold(self, tmp_path):
        base = _write(tmp_path, "base.json", _payload(100.0))
        cur = _write(tmp_path, "cur.json", _payload(85.0))  # -15%
        assert main([str(base), str(cur)]) == OK
        assert main(["--threshold", "0.10", str(base), str(cur)]) == REGRESSED

    @pytest.mark.parametrize("bad", ["0", "1", "-0.5", "2"])
    def test_threshold_validation(self, tmp_path, bad):
        base = _write(tmp_path, "base.json", _payload(100.0))
        cur = _write(tmp_path, "cur.json", _payload(100.0))
        with pytest.raises(SystemExit) as exc:
            main(["--threshold", bad, str(base), str(cur)])
        assert exc.value.code == 2

    def test_delta_table_printed(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload(100.0))
        cur = _write(tmp_path, "cur.json", _payload(120.0))
        assert main([str(base), str(cur)]) == OK
        out = capsys.readouterr().out
        assert "throughput delta" in out
        assert "+20.0%" in out

class TestRecordedGate:
    """Benchmarks can record their own acceptance gate in the payload."""

    def test_binding_failed_gate_regresses(self, tmp_path, capsys):
        cur = _payload(100.0)
        cur["gate"] = {"passed": False, "binding": True,
                       "routed_qps": 10.0, "best_static_qps": 20.0}
        base = _write(tmp_path, "base.json", _payload(100.0))
        path = _write(tmp_path, "cur.json", cur)
        assert main([str(base), str(path)]) == REGRESSED
        assert "recorded gate failed" in capsys.readouterr().out

    def test_gate_enforced_without_baseline(self, tmp_path):
        # the gate is self-contained: no baseline needed to enforce it
        cur = _payload(100.0)
        cur["gate"] = {"passed": False, "binding": True}
        path = _write(tmp_path, "cur.json", cur)
        assert main([str(tmp_path / "nope.json"), str(path)]) == REGRESSED

    def test_non_binding_failed_gate_skips(self, tmp_path):
        cur = _payload(100.0)
        cur["gate"] = {"passed": False, "binding": False}  # smoke scale
        base = _write(tmp_path, "base.json", _payload(100.0))
        path = _write(tmp_path, "cur.json", cur)
        assert main([str(base), str(path)]) == OK

    def test_passed_gate_ok(self, tmp_path):
        cur = _payload(100.0)
        cur["gate"] = {"passed": True, "binding": True}
        base = _write(tmp_path, "base.json", _payload(100.0))
        path = _write(tmp_path, "cur.json", cur)
        assert main([str(base), str(path)]) == OK


class TestDirectoryMode:
    """``--all`` discovers and gates every BENCH_*.json pair at once."""

    def _dirs(self, tmp_path):
        base = tmp_path / "baseline"
        cur = tmp_path / "current"
        base.mkdir()
        cur.mkdir()
        return base, cur

    def test_discovers_every_pair(self, tmp_path, capsys):
        base, cur = self._dirs(tmp_path)
        for name in ("BENCH_alpha.json", "BENCH_beta.json"):
            _write(base, name, _payload(100.0))
            _write(cur, name, _payload(110.0))
        _write(cur, "not_a_bench.json", _payload(1.0))  # ignored
        assert main(["--all", str(base), str(cur)]) == OK
        out = capsys.readouterr().out
        assert "BENCH_alpha.json" in out and "BENCH_beta.json" in out
        assert "not_a_bench" not in out
        assert "2 benchmark(s) checked" in out

    def test_current_only_file_skips(self, tmp_path, capsys):
        # a brand-new benchmark has no committed baseline yet
        base, cur = self._dirs(tmp_path)
        _write(cur, "BENCH_new.json", _payload(50.0))
        assert main(["--all", str(base), str(cur)]) == OK
        assert "no committed baseline" in capsys.readouterr().out

    def test_baseline_only_file_errors(self, tmp_path, capsys):
        # the benchmark that should have regenerated it produced nothing
        base, cur = self._dirs(tmp_path)
        _write(base, "BENCH_gone.json", _payload(100.0))
        assert main(["--all", str(base), str(cur)]) == ERROR
        assert "produced no matching results" in capsys.readouterr().err

    def test_worst_exit_code_wins(self, tmp_path):
        # one regressed pair (1) + one missing current (2) -> 2
        base, cur = self._dirs(tmp_path)
        _write(base, "BENCH_slow.json", _payload(100.0))
        _write(cur, "BENCH_slow.json", _payload(40.0))
        _write(base, "BENCH_gone.json", _payload(100.0))
        assert main(["--all", str(base), str(cur)]) == ERROR

    def test_regression_in_any_pair_fails(self, tmp_path):
        base, cur = self._dirs(tmp_path)
        _write(base, "BENCH_ok.json", _payload(100.0))
        _write(cur, "BENCH_ok.json", _payload(100.0))
        _write(base, "BENCH_slow.json", _payload(100.0))
        _write(cur, "BENCH_slow.json", _payload(40.0))
        assert main(["--all", str(base), str(cur)]) == REGRESSED

    def test_recorded_gate_enforced_in_directory_mode(self, tmp_path):
        base, cur = self._dirs(tmp_path)
        payload = _payload(100.0)
        payload["gate"] = {"passed": False, "binding": True}
        _write(cur, "BENCH_gated.json", payload)
        _write(base, "BENCH_gated.json", _payload(100.0))
        assert main(["--all", str(base), str(cur)]) == REGRESSED

    def test_empty_directories_skip(self, tmp_path, capsys):
        base, cur = self._dirs(tmp_path)
        assert main(["--all", str(base), str(cur)]) == OK
        assert "skip" in capsys.readouterr().out

    def test_missing_directories_skip(self, tmp_path):
        assert main(["--all", str(tmp_path / "a"), str(tmp_path / "b")]) == OK

    def test_module_invocable(self, tmp_path):
        import subprocess
        import sys

        base = _write(tmp_path, "base.json", _payload(100.0))
        cur = _write(tmp_path, "cur.json", _payload(40.0))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench.compare",
             str(base), str(cur)],
            capture_output=True, text=True,
        )
        assert proc.returncode == REGRESSED
        assert "FAIL" in proc.stdout
