"""Trace/engine consistency: conservation laws and counter equivalence.

Two invariants tie the observability layer to the evaluators:

1. **Point conservation** — for any completed query, every point is either
   evaluated exactly at a leaf or still under a frontier node when the
   query certifies, so ``total_points + pruned_points`` equals
   ``n_queries * n`` (query-weighted for batches; pair-weighted for the
   dual tree, where approximated/zero pairs play the pruned role).
2. **Counter equivalence** — ``QueryStats.from_trace`` /
   ``BatchQueryStats.from_trace`` rebuild exactly the counters the legacy
   stats path reports, so the two accounting systems cannot drift apart.
"""

import numpy as np
import pytest

import repro.obs as obs
import repro.obs.runtime as obs_runtime
from repro import (
    DualTreeEvaluator,
    GaussianKernel,
    KDTree,
    KernelAggregator,
    LaplacianKernel,
    MultiQueryAggregator,
    ScanEvaluator,
    StreamingAggregator,
)
from repro.core.results import BatchQueryStats, QueryStats


@pytest.fixture
def traced():
    """Enable tracing for the test, restoring whatever state CI set up."""
    saved = (obs_runtime._ring, obs_runtime._sink, obs_runtime._compare)
    obs_runtime._sink = None
    obs.enable()
    yield
    obs_runtime._ring, obs_runtime._sink, obs_runtime._compare = saved


@pytest.fixture
def problem(rng):
    pts = rng.random((1500, 4))
    tree = KDTree(pts, leaf_capacity=25)
    return pts, tree


def _last_trace():
    traces = obs.recent_traces()
    assert traces, "no trace recorded"
    return traces[-1]


class TestConservation:
    @pytest.mark.parametrize("scheme", ["karl", "sota", "hybrid"])
    def test_loop_tkaq(self, traced, problem, scheme):
        pts, tree = problem
        agg = KernelAggregator(tree, GaussianKernel(6.0), scheme=scheme)
        for tau in (1e-6, 10.0, 1e6):
            agg.tkaq(pts[0], tau)
            t = _last_trace()
            assert t.points_accounted() == tree.n
            assert t.scheme == scheme

    def test_loop_ekaq_exhaustion(self, traced, problem, rng):
        pts, tree = problem
        # signed weights can refine to exhaustion: still conserves
        tree = KDTree(pts, leaf_capacity=25,
                      weights=rng.standard_normal(len(pts)))
        agg = KernelAggregator(tree, GaussianKernel(6.0))
        agg.ekaq(pts[0], eps=0.0)
        assert _last_trace().points_accounted() == tree.n

    @pytest.mark.parametrize("kind", ["tkaq", "ekaq"])
    def test_multiquery(self, traced, problem, kind):
        pts, tree = problem
        mq = MultiQueryAggregator(tree, GaussianKernel(6.0))
        if kind == "tkaq":
            mq.tkaq_many_results(pts[:64], tau=5.0)
        else:
            mq.ekaq_many_results(pts[:64], eps=0.05)
        t = _last_trace()
        assert t.n_queries == 64
        assert t.points_accounted() == 64 * tree.n

    def test_scan(self, traced, problem):
        pts, _ = problem
        sc = ScanEvaluator(pts, GaussianKernel(6.0))
        sc.tkaq(pts[0], 1.0)
        assert _last_trace().points_accounted() == len(pts)
        sc.ekaq_many(pts[:10], 0.1)
        t = _last_trace()
        assert t.points_accounted() == 10 * len(pts)
        assert t.prune_ratio() == 0.0

    @pytest.mark.parametrize("kernel", [GaussianKernel(6.0), LaplacianKernel(2.0)])
    def test_dualtree(self, traced, problem, kernel):
        pts, tree = problem
        dt = DualTreeEvaluator(tree, kernel)
        dt.ekaq_many(pts[:128], eps=0.2)
        t = _last_trace()
        assert t.backend == "dualtree"
        assert t.points_accounted() == 128 * tree.n

    def test_streaming(self, traced, problem):
        pts, _ = problem
        st = StreamingAggregator(GaussianKernel(6.0))
        st.insert(pts[:1200])
        st.rebuild()
        st.insert(pts[1200:1300])  # stays buffered (< min_buffer)
        st.tkaq(pts[0], 5.0)
        t = _last_trace()
        assert t.backend == "streaming"
        # the trace covers the indexed part; buffered points are exact adds
        assert t.points_accounted() == 1200


class TestCounterEquivalence:
    def test_query_stats_from_trace(self, traced, problem):
        pts, tree = problem
        agg = KernelAggregator(tree, GaussianKernel(6.0))
        res = agg.ekaq(pts[1], eps=0.05)
        rebuilt = QueryStats.from_trace(_last_trace())
        assert rebuilt == res.stats

    def test_query_stats_from_trace_tkaq(self, traced, problem):
        pts, tree = problem
        agg = KernelAggregator(tree, GaussianKernel(6.0))
        res = agg.tkaq(pts[2], tau=20.0)
        assert QueryStats.from_trace(_last_trace()) == res.stats

    def test_batch_stats_from_trace(self, traced, problem):
        pts, tree = problem
        mq = MultiQueryAggregator(tree, GaussianKernel(6.0))
        res = mq.ekaq_many_results(pts[:48], eps=0.1)
        rebuilt = BatchQueryStats.from_trace(_last_trace())
        s = res.stats
        assert rebuilt.rounds == s.rounds
        assert rebuilt.nodes_expanded == s.nodes_expanded
        assert rebuilt.leaves_evaluated == s.leaves_evaluated
        assert rebuilt.points_evaluated == s.points_evaluated
        assert rebuilt.bound_evaluations == s.bound_evaluations
        assert rebuilt.frontier_sizes == s.frontier_sizes
        assert rebuilt.active_counts == s.active_counts
        assert rebuilt.retired_per_round == s.retired_per_round

    def test_per_round_retired_sums_to_batch(self, traced, problem):
        pts, tree = problem
        mq = MultiQueryAggregator(tree, GaussianKernel(6.0))
        mq.tkaq_many_results(pts[:40], tau=5.0)
        t = _last_trace()
        assert sum(r.retired for r in t.rounds) == 40
        assert t.total_retired == 40

    def test_loop_bound_evals_match_formula(self, traced, problem):
        pts, tree = problem
        agg = KernelAggregator(tree, GaussianKernel(6.0))
        res = agg.ekaq(pts[4], eps=0.1)
        t = _last_trace()
        assert t.total_bound_evals == res.stats.bound_evaluations()
        assert t.total_bound_evals == 1 + 2 * res.stats.nodes_expanded


class TestTracingChangesNothing:
    """Answers and stats are bit-identical with tracing on vs off."""

    def test_loop_and_batch(self, problem):
        pts, tree = problem
        saved = (obs_runtime._ring, obs_runtime._sink, obs_runtime._compare)
        try:
            agg = KernelAggregator(tree, GaussianKernel(6.0))
            mq = MultiQueryAggregator(tree, GaussianKernel(6.0))

            obs_runtime._ring = None
            obs_runtime._sink = None
            off_e = agg.ekaq(pts[5], eps=0.1)
            off_b = mq.tkaq_many_results(pts[:32], tau=5.0)

            obs.enable(compare=True)
            on_e = agg.ekaq(pts[5], eps=0.1)
            on_b = mq.tkaq_many_results(pts[:32], tau=5.0)
        finally:
            obs_runtime._ring, obs_runtime._sink, obs_runtime._compare = saved

        assert on_e.estimate == off_e.estimate
        assert on_e.lower == off_e.lower and on_e.upper == off_e.upper
        assert on_e.stats == off_e.stats
        assert np.array_equal(on_b.answers, off_b.answers)
        assert np.array_equal(on_b.lower, off_b.lower)
        assert on_b.stats.rounds == off_b.stats.rounds
        assert on_b.stats.frontier_sizes == off_b.stats.frontier_sizes
