"""Native refinement tier: bitwise parity, mode plumbing, float32 contracts.

The native tier's correctness story is *exact agreement*, not tolerance:
the float64 fallback loop (and, with numba installed, the JIT kernel and
its uncompiled pykernel twin) must reproduce the interpreted best-first
loop bit for bit — same bounds, same pop counts, same leaf visits.  The
opt-in float32 path trades bitwise identity for certified interval
soundness: every result interval must still contain the float64 exact
aggregate, and every stop certificate must hold unconditionally.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import native
from repro.core import KernelAggregator
from repro.core.errors import InvalidParameterError
from repro.core.kernels import (
    CauchyKernel,
    EpanechnikovKernel,
    GaussianKernel,
    LaplacianKernel,
    PolynomialKernel,
)
from repro.core.multiquery import _worst_gap_rows_np
from repro.index.builder import build_index
from repro.index.serialize import rebuild_tree, tree_arrays
from repro.native.fastloop import build_fast_loop
from repro.native.kernels import worst_gap_rows_py

DIST_KERNELS = {
    "gaussian": GaussianKernel(gamma=0.8),
    "laplacian": LaplacianKernel(gamma=0.8),
    "cauchy": CauchyKernel(gamma=0.8),
    "epanechnikov": EpanechnikovKernel(gamma=0.15),
}
SCHEMES = ("karl", "sota", "hybrid")
F32_KERNELS = ("gaussian", "cauchy", "epanechnikov")


@pytest.fixture(autouse=True)
def _restore_native_mode():
    """Every test leaves the process-global native mode as it found it."""
    before = native.get_mode()
    yield
    native.set_mode(before)
    native.force_pykernel(False)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(17)
    pts = rng.normal(size=(2000, 5))
    signed = np.where(
        rng.random(2000) < 0.3, -rng.random(2000), rng.random(2000)
    )
    queries = rng.normal(size=(6, 5))
    return pts, signed, queries


@pytest.fixture(scope="module")
def trees(data):
    pts, signed, _ = data
    return {
        (kind, weighted): build_index(
            kind, pts, signed if weighted else None, leaf_capacity=25
        )
        for kind in ("kd", "ball")
        for weighted in (False, True)
    }


def _run_all(agg, queries):
    """Every query mode, with the full bitwise-comparable signature."""
    out = []
    for q in queries:
        for r in (
            agg.ekaq(q, 0.05),
            agg.tkaq(q, 1.0),
            agg.refine_bounds(q, 37),
        ):
            out.append((
                r.lower, r.upper, r.stats.iterations, r.stats.nodes_expanded,
                r.stats.leaves_evaluated, r.stats.points_evaluated,
            ))
    return out


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("kname", sorted(DIST_KERNELS))
@pytest.mark.parametrize("weighted", (False, True), ids=("plain", "signed"))
@pytest.mark.parametrize("kind", ("kd", "ball"))
def test_native_bitwise_parity(trees, data, kind, weighted, kname, scheme):
    """Fallback tier == interpreted loop, bitwise, across the support matrix."""
    _, _, queries = data
    tree = trees[(kind, weighted)]
    kernel = DIST_KERNELS[kname]
    native.set_mode("0")
    interp = _run_all(KernelAggregator(tree, kernel, scheme=scheme), queries)
    native.set_mode("auto")
    fast = _run_all(KernelAggregator(tree, kernel, scheme=scheme), queries)
    assert interp == fast


def test_fast_loop_matches_traced_twin(trees, data):
    """The code-generated loop == the per-pop traced twin, bitwise.

    ``trace=True`` routes ``_run_python`` through the instrumented twin
    (which calls ``kernels.node_bounds_scalar`` per child), so this pins
    the generated part-bound transcriptions to the kernels module.
    """
    _, _, queries = data
    native.set_mode("auto")
    for kname in ("gaussian", "epanechnikov"):
        agg = KernelAggregator(
            trees[("kd", True)], DIST_KERNELS[kname], scheme="hybrid"
        )
        for q in queries:
            fast = agg.ekaq(q, 0.05)
            traced = agg.ekaq(q, 0.05, trace=True)
            assert (fast.lower, fast.upper) == (traced.lower, traced.upper)
            assert fast.stats.iterations == traced.stats.iterations


def test_pykernel_matches_fallback(trees, data):
    """The uncompiled array-heap kernel == the heapq fallback, bitwise."""
    _, _, queries = data
    native.set_mode("auto")
    tree = trees[("kd", True)]
    kernel = DIST_KERNELS["gaussian"]
    native.force_pykernel(True)
    kern = _run_all(KernelAggregator(tree, kernel), queries)
    native.force_pykernel(False)
    fall = _run_all(KernelAggregator(tree, kernel), queries)
    assert kern == fall


def test_scratch_reuse_is_stateless(trees, data):
    """Per-refiner scratch buffers must not leak state across queries."""
    _, _, queries = data
    native.set_mode("auto")
    shared = KernelAggregator(trees[("kd", True)], DIST_KERNELS["cauchy"])
    for q in queries:
        fresh = KernelAggregator(trees[("kd", True)], DIST_KERNELS["cauchy"])
        a = shared.ekaq(q, 0.05)
        b = fresh.ekaq(q, 0.05)
        assert (a.lower, a.upper) == (b.lower, b.upper)


def test_mode_zero_disables_native(trees):
    native.set_mode("0")
    assert not native.enabled()
    agg = KernelAggregator(trees[("kd", False)], DIST_KERNELS["gaussian"])
    assert agg._native_refiner() is None
    native.set_mode("auto")
    assert agg._native_refiner() is not None


def test_unsupported_kernel_falls_back(trees):
    native.set_mode("auto")
    agg = KernelAggregator(
        trees[("kd", False)], PolynomialKernel(gamma=0.7, coef0=0.2, degree=2)
    )
    assert agg._native_refiner() is None


def test_fast_loop_codegen_all_configs():
    """Every (scheme, profile, neg, f32) combination generates and caches."""
    for scheme_id in (0, 1, 2):
        for pid in (0, 1, 2, 3):
            for has_neg in (False, True):
                for widen in (False, True):
                    fn = build_fast_loop(
                        scheme_id, pid, 0.8, 0.25, has_neg, widen
                    )
                    assert callable(fn)
                    assert fn is build_fast_loop(
                        scheme_id, pid, 0.8, 0.25, has_neg, widen
                    )


def test_worst_gap_rows_matches_argmax():
    rng = np.random.default_rng(5)
    for _ in range(20):
        lb = np.round(rng.random((7, 13)), 1)  # quantized: ties happen
        ub = lb + np.round(rng.random((7, 13)), 1)
        expect = np.argmax(ub - lb, axis=1)
        np.testing.assert_array_equal(_worst_gap_rows_np(lb, ub), expect)
        np.testing.assert_array_equal(worst_gap_rows_py(lb, ub), expect)


def test_rebuild_tree_normalises_layout(data):
    """Deserialized trees expose C-contiguous arrays (the SoA precompute
    runs whole-array operations over them) with values intact."""
    pts, signed, queries = data
    tree = build_index("kd", pts, signed, leaf_capacity=25)
    arrays = tree_arrays(tree)
    mangled = {}
    for name, arr in arrays.items():
        if arr.ndim == 2:
            mangled[name] = np.asfortranarray(arr)
        elif arr.ndim == 1 and arr.shape[0] > 1:
            buf = np.empty((arr.shape[0], 2), dtype=arr.dtype)
            buf[:, 0] = arr
            mangled[name] = buf[:, 0]  # non-contiguous view, same values
        else:
            mangled[name] = arr
    rebuilt = rebuild_tree("kd", 25, mangled)
    for name in arrays:
        got = getattr(rebuilt, name, None)
        if isinstance(got, np.ndarray):
            assert got.flags.c_contiguous, name
    native.set_mode("auto")
    a = KernelAggregator(tree, DIST_KERNELS["gaussian"])
    b = KernelAggregator(rebuilt, DIST_KERNELS["gaussian"])
    for q in queries:
        ra, rb = a.ekaq(q, 0.05), b.ekaq(q, 0.05)
        assert (ra.lower, ra.upper) == (rb.lower, rb.upper)


# ----------------------------------------------------------------------
# certified float32
# ----------------------------------------------------------------------


def test_float32_requires_supported_profile(trees):
    with pytest.raises(InvalidParameterError, match="float32"):
        KernelAggregator(
            trees[("kd", False)], DIST_KERNELS["laplacian"],
            precision="float32",
        )


def test_invalid_precision_rejected(trees):
    with pytest.raises(InvalidParameterError, match="precision"):
        KernelAggregator(
            trees[("kd", False)], DIST_KERNELS["gaussian"], precision="half"
        )


def test_float32_needs_native_enabled(trees, data):
    _, _, queries = data
    native.set_mode("auto")
    agg = KernelAggregator(
        trees[("kd", False)], DIST_KERNELS["gaussian"], precision="float32"
    )
    native.set_mode("0")
    with pytest.raises(InvalidParameterError, match="float32"):
        agg.ekaq(queries[0], 0.1)


def test_float32_rejects_batch_backends(trees, data):
    _, _, queries = data
    native.set_mode("auto")
    agg = KernelAggregator(
        trees[("kd", False)], DIST_KERNELS["gaussian"], precision="float32"
    )
    with pytest.raises(InvalidParameterError, match="float32"):
        agg.ekaq_many(queries, 0.1, backend="multiquery")
    with pytest.raises(InvalidParameterError, match="float32"):
        agg.ekaq_many(queries, 0.1, backend="parallel")


@pytest.mark.parametrize("kname", F32_KERNELS)
@pytest.mark.parametrize("weighted", (False, True), ids=("plain", "signed"))
def test_float32_ekaq_contract(trees, data, kname, weighted):
    """Widened float32 intervals contain the float64 exact value, and the
    eKAQ certificate holds whenever refinement stopped early."""
    _, _, queries = data
    native.set_mode("auto")
    tree = trees[("kd", weighted)]
    agg64 = KernelAggregator(tree, DIST_KERNELS[kname])
    agg32 = KernelAggregator(tree, DIST_KERNELS[kname], precision="float32")
    eps = 0.1
    for q in queries:
        exact = agg64.exact(q)
        r = agg32.ekaq(q, eps)
        assert r.lower <= exact <= r.upper
        if not weighted:
            # positive weights: the certificate is meaningful, and even a
            # heap-exhausted interval (exact sum widened by the rounding
            # certificate) satisfies it at this data size and tolerance
            assert r.upper <= (1.0 + eps) * r.lower + 1e-9


@pytest.mark.parametrize("kname", F32_KERNELS)
def test_float32_tkaq_decisions_sound(trees, data, kname):
    """TKAQ answers computed on widened float32 bounds match float64 truth."""
    _, _, queries = data
    native.set_mode("auto")
    tree = trees[("kd", False)]
    agg64 = KernelAggregator(tree, DIST_KERNELS[kname])
    agg32 = KernelAggregator(tree, DIST_KERNELS[kname], precision="float32")
    for q in queries:
        exact = agg64.exact(q)
        for tau in (0.25 * exact, exact * 1.5, 10.0):
            r = agg32.tkaq(q, tau)
            # only a *certified* side may decide; either way the interval
            # must still bracket the truth
            assert r.lower <= exact <= r.upper
            if r.answer:
                assert exact > tau
            elif r.upper <= tau:
                assert exact <= tau


@settings(deadline=None, max_examples=20)
@given(
    seed=st.integers(0, 2**31 - 1),
    gamma=st.floats(0.05, 5.0),
    eps=st.floats(0.01, 0.5),
)
def test_float32_soundness_fuzz(seed, gamma, eps):
    """Property: the certified float32 interval always contains the
    float64 exact aggregate, for random data/bandwidth/tolerance."""
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(400, 3))
    tree = build_index("kd", pts, None, leaf_capacity=16)
    native.set_mode("auto")
    agg64 = KernelAggregator(tree, GaussianKernel(gamma=gamma))
    agg32 = KernelAggregator(
        tree, GaussianKernel(gamma=gamma), precision="float32"
    )
    q = rng.normal(size=3)
    exact = agg64.exact(q)
    r = agg32.ekaq(q, eps)
    # summation-order allowance: a fully-converged interval degenerates
    # to the refinement's leaf-ordered float sum, which can lawfully
    # differ from the vectorised exact sum by accumulation rounding
    tol = len(pts) * np.finfo(np.float64).eps * abs(exact)
    assert r.lower - tol <= exact <= r.upper + tol
