"""Tests for linear functions of the kernel argument and moment identities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.linear import Line, chord, moments_dist_sq, moments_dot, tangent
from repro.core.profiles import GaussianProfile

finite = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)


class TestLine:
    def test_call(self):
        line = Line(2.0, 1.0)
        assert line(3.0) == pytest.approx(7.0)
        assert np.allclose(line(np.array([0.0, 1.0])), [1.0, 3.0])

    def test_aggregate_matches_pointwise_sum(self, rng):
        xs = rng.random(30)
        w = rng.random(30)
        line = Line(-1.5, 0.7)
        s0, s1 = w.sum(), float(w @ xs)
        assert line.aggregate(s0, s1) == pytest.approx(float(w @ line(xs)))

    def test_frozen(self):
        with pytest.raises(Exception):
            Line(1.0, 2.0).m = 3.0


class TestChordAndTangent:
    def test_chord_interpolates_endpoints(self):
        p = GaussianProfile(1.0)
        line = chord(p, 0.5, 2.0)
        assert line(0.5) == pytest.approx(float(p.value(0.5)))
        assert line(2.0) == pytest.approx(float(p.value(2.0)))

    def test_chord_above_convex_function(self):
        p = GaussianProfile(1.0)
        line = chord(p, 0.0, 3.0)
        xs = np.linspace(0.0, 3.0, 100)
        assert np.all(line(xs) >= p.value(xs) - 1e-12)

    def test_chord_degenerate_interval(self):
        p = GaussianProfile(1.0)
        line = chord(p, 1.0, 1.0)
        assert line.m == 0.0
        assert line.c == pytest.approx(float(p.value(1.0)))

    def test_tangent_touches_and_lower_bounds(self):
        p = GaussianProfile(1.0)
        t = 1.3
        line = tangent(p, t)
        assert line(t) == pytest.approx(float(p.value(t)))
        xs = np.linspace(0.0, 5.0, 200)
        assert np.all(line(xs) <= p.value(xs) + 1e-12)


class TestMoments:
    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(np.float64, (20, 3), elements=finite),
        hnp.arrays(np.float64, (3,), elements=finite),
        hnp.arrays(np.float64, (20,), elements=st.floats(0.0, 3.0)),
    )
    def test_dist_sq_moment_identity(self, pts, q, w):
        a = (w[:, None] * pts).sum(axis=0)
        b = float(w @ np.sum(pts**2, axis=1))
        s0, s1 = moments_dist_sq(float(q @ q), q, float(w.sum()), a, b)
        brute = float(w @ np.sum((pts - q) ** 2, axis=1))
        assert s0 == pytest.approx(w.sum())
        assert s1 == pytest.approx(brute, rel=1e-7, abs=1e-6)

    def test_dist_sq_moment_clamps_negative(self):
        # engineered cancellation: all points equal q
        q = np.array([1e8, 1e8])
        pts = np.tile(q, (5, 1))
        w = np.ones(5)
        a = (w[:, None] * pts).sum(axis=0)
        b = float(w @ np.sum(pts**2, axis=1))
        s0, s1 = moments_dist_sq(float(q @ q), q, 5.0, a, b)
        assert s1 >= 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(np.float64, (20, 3), elements=finite),
        hnp.arrays(np.float64, (3,), elements=finite),
        hnp.arrays(np.float64, (20,), elements=st.floats(0.0, 3.0)),
    )
    def test_dot_moment_identity(self, pts, q, w):
        a = (w[:, None] * pts).sum(axis=0)
        s0, s1 = moments_dot(q, float(w.sum()), a)
        brute = float(w @ (pts @ q))
        assert s1 == pytest.approx(brute, rel=1e-7, abs=1e-6)
